//! Determinism guarantees: identical seeds → identical layouts,
//! traces and attack outcomes (the property that makes every number in
//! EXPERIMENTS.md reproducible).

use avx_aslr::channel::{KernelBaseFinder, Prober, SimProber, Threshold};
use avx_aslr::os::linux::{LinuxConfig, LinuxSystem};
use avx_aslr::os::windows::{WindowsConfig, WindowsSystem};
use avx_aslr::uarch::{CpuProfile, MaskedOp, OpKind};

fn full_run(seed: u64) -> (Option<u64>, Vec<u64>, u64) {
    let system = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    let scan = KernelBaseFinder::new(th).scan(&mut p);
    (
        scan.base.map(|b| b.as_u64()),
        scan.samples,
        p.total_cycles(),
    )
}

#[test]
fn identical_seeds_identical_everything() {
    let a = full_run(314);
    let b = full_run(314);
    assert_eq!(a.0, b.0, "same base");
    assert_eq!(a.1, b.1, "same 512-sample trace, noise included");
    assert_eq!(a.2, b.2, "same cycle accounting");
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = full_run(1);
    let b = full_run(2);
    assert!(a.0 != b.0 || a.1 != b.1, "different layouts or traces");
}

#[test]
fn layout_seed_and_machine_seed_are_independent() {
    // Same layout, different probe-noise seed: same base, different trace.
    let system = LinuxSystem::build(LinuxConfig::seeded(50));
    let truth_base = system.truth().kernel_base;
    let (m1, _) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 111);
    let system = LinuxSystem::build(LinuxConfig::seeded(50));
    let (m2, _) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 222);

    let run = |machine| {
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(
            &mut p,
            LinuxSystem::build(LinuxConfig::seeded(50))
                .truth()
                .user
                .calibration,
            16,
        );
        KernelBaseFinder::new(th).scan(&mut p)
    };
    let s1 = run(m1);
    let s2 = run(m2);
    assert_eq!(s1.base.unwrap(), truth_base);
    assert_eq!(s1.base, s2.base, "layout identical → same base");
    assert_ne!(s1.samples, s2.samples, "noise seeds differ → traces differ");
}

#[test]
fn windows_layout_deterministic() {
    let a = WindowsSystem::build(WindowsConfig {
        seed: 9,
        ..WindowsConfig::default()
    });
    let b = WindowsSystem::build(WindowsConfig {
        seed: 9,
        ..WindowsConfig::default()
    });
    assert_eq!(a.truth().kernel_base, b.truth().kernel_base);
    assert_eq!(a.truth().entry, b.truth().entry);
}

#[test]
fn single_probe_stream_is_reproducible() {
    let mk = || {
        let system = LinuxSystem::build(LinuxConfig::seeded(3));
        let (machine, truth) = system.into_machine(CpuProfile::ice_lake_i7_1065g7(), 77);
        (machine, truth)
    };
    let (mut m1, truth) = mk();
    let (mut m2, _) = mk();
    let probe = MaskedOp::probe_load(truth.kernel_base);
    for i in 0..200 {
        assert_eq!(
            m1.execute(probe).cycles,
            m2.execute(probe).cycles,
            "probe {i}"
        );
    }
    let _ = OpKind::Load;
}
