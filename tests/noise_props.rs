//! Distribution and stream properties of the two observables regimes.
//!
//! The v1 regime is a *bit-exact contract*: its draw sequence (Box–
//! Muller Gaussian, `f64` spike decision, uniform spike magnitude) is
//! pinned verbatim here against an independent reference
//! implementation, so no refactor of `avx_uarch::noise` can move the
//! pre-PR-6 golden rows. The v2 regime is a *distribution contract*:
//! its ziggurat Gaussian and fixed-point spike decision are pinned by
//! moment and Kolmogorov–Smirnov tests at n = 10⁵, and its batched
//! block fill must resolve drift ramps per probe index (never
//! quantized per block). The `#[ignore]`d test is the tier-2
//! cross-regime accuracy-parity gate over the full campaign grid.

use avx_aslr::uarch::{CpuProfile, Machine, NoiseModel, NoiseProfile, ObservablesVersion, OpKind};
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-PR-6 per-sample draw sequence, transcribed independently
/// from the pinned v1 conventions (`u1` open at zero so `ln` stays
/// finite, `u2` half-open, spike decision as an `f64` compare, spike
/// magnitude uniform in the half-open range). If `NoiseModel::sample`
/// ever consumes the RNG differently, this stops matching bit-for-bit.
fn reference_v1_sample(m: &NoiseModel, rng: &mut StdRng) -> f64 {
    let mut noise = if m.sigma > 0.0 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * m.sigma
    } else {
        0.0
    };
    if m.spike_prob > 0.0 && rng.gen::<f64>() < m.spike_prob {
        let (lo, hi) = m.spike_range;
        noise += if hi > lo { rng.gen_range(lo..hi) } else { lo };
    }
    noise
}

#[test]
fn v1_stream_matches_the_boxmuller_reference_bit_for_bit() {
    let models = [
        NoiseModel::new(1.0, 0.002, (200.0, 1500.0)),
        NoiseModel::new(6.0, 0.006, (400.0, 3000.0)),
        NoiseModel::new(0.0, 0.05, (500.0, 1000.0)),
        NoiseModel::new(2.5, 0.0, (0.0, 0.0)),
        NoiseModel::new(3.0, 1.0, (250.0, 250.0)),
    ];
    for (i, m) in models.iter().enumerate() {
        let mut actual = StdRng::seed_from_u64(1000 + i as u64);
        let mut reference = StdRng::seed_from_u64(1000 + i as u64);
        for draw in 0..4096 {
            let a = m.sample(&mut actual);
            let r = reference_v1_sample(m, &mut reference);
            assert_eq!(
                a.to_bits(),
                r.to_bits(),
                "model {i} draw {draw}: v1 stream diverged ({a} vs {r})"
            );
        }
    }
}

#[test]
fn v2_moments_hold_at_n_100k() {
    let n = 100_000;

    // Gaussian component: mean 0, σ as configured.
    let sigma = 3.0;
    let jitter = NoiseModel::new(sigma, 0.0, (0.0, 0.0));
    let mut rng = StdRng::seed_from_u64(4242);
    let samples: Vec<f64> = (0..n).map(|_| jitter.sample_v2(&mut rng)).collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    assert!(mean.abs() < 0.05, "v2 mean {mean} off zero");
    assert!(
        (var.sqrt() - sigma).abs() < 0.02 * sigma,
        "v2 σ {} off configured {sigma}",
        var.sqrt()
    );

    // Spike component: rate equals the configured probability and every
    // spike lands in the configured magnitude window.
    let spikes_only = NoiseModel::new(0.0, 0.01, (500.0, 1000.0));
    let mut rng = StdRng::seed_from_u64(4343);
    let mut fired = 0usize;
    for _ in 0..n {
        let s = spikes_only.sample_v2(&mut rng);
        if s != 0.0 {
            fired += 1;
            assert!((500.0..1000.0).contains(&s), "spike magnitude {s}");
        }
    }
    let rate = fired as f64 / n as f64;
    assert!(
        (rate - 0.01).abs() < 0.0015,
        "v2 spike rate {rate} off configured 0.01"
    );
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — two orders below the KS threshold
/// used here).
fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf_abs = 1.0 - poly * (-z * z).exp();
    let erf = if z >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

#[test]
fn v2_gaussian_passes_a_kolmogorov_smirnov_check_at_n_100k() {
    let n = 100_000usize;
    let jitter = NoiseModel::new(1.0, 0.0, (0.0, 0.0));
    let mut rng = StdRng::seed_from_u64(777);
    let mut samples: Vec<f64> = (0..n).map(|_| jitter.sample_v2(&mut rng)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut d = 0.0f64;
    for (i, &x) in samples.iter().enumerate() {
        let cdf = normal_cdf(x);
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((cdf - lo).abs()).max((hi - cdf).abs());
    }
    // K–S critical value at α = 0.01 is 1.63/√n ≈ 0.0052; the fixed
    // seed makes this a regression pin rather than a flaky gate.
    assert!(d < 0.006, "v2 ziggurat KS statistic {d} too large");
}

#[test]
fn spike_magnitudes_are_drawn_identically_in_both_regimes() {
    // Only the spike *decision* differs between regimes (f64 compare vs
    // fixed-point compare); the magnitude draw is one shared function.
    // With σ = 0 and a certain spike, both regimes consume exactly one
    // RNG word for the decision and then the same magnitude draw, so
    // from equal seeds the samples must agree bit-for-bit.
    let m = NoiseModel::new(0.0, 1.0, (200.0, 900.0));
    for seed in 0..256 {
        let mut v1 = StdRng::seed_from_u64(seed);
        let mut v2 = StdRng::seed_from_u64(seed);
        let a = m.sample(&mut v1);
        let b = m.sample_v2(&mut v2);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "seed {seed}: spike magnitude diverged across regimes ({a} vs {b})"
        );
    }
}

fn scan_machine(observables: ObservablesVersion) -> (Machine, Vec<VirtAddr>) {
    let mut space = AddressSpace::new();
    space
        .map(
            VirtAddr::new_truncate(0xffff_ffff_a1e0_0000),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
    let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 99);
    m.set_observables(observables);
    // Ramp chosen to cross probe indices *inside* the 16-sample noise
    // blocks (onset mid-block 0, full mid-block 1).
    m.set_noise_profile(NoiseProfile::drift_with(
        NoiseProfile::Quiet,
        NoiseProfile::LaptopDvfs,
        8,
        24,
    ));
    let addrs: Vec<VirtAddr> = (0..32)
        .map(|i| VirtAddr::new_truncate(0xffff_ffff_a000_0000 + i * 0x20_0000))
        .collect();
    (m, addrs)
}

#[test]
fn drift_ramp_is_resolved_per_probe_even_inside_v2_blocks() {
    // One 32-address batch (two 16-sample noise blocks) must time every
    // probe exactly like 32 single-address batches: the block fill
    // resolves the drifting model per probe index, never once per
    // block. Identical seeds ⇒ identical streams ⇒ identical cycles.
    let (mut batched, addrs) = scan_machine(ObservablesVersion::V2);
    let (mut scalar, _) = scan_machine(ObservablesVersion::V2);
    let whole = batched.execute_batch(OpKind::Load, &addrs);
    let mut one_by_one = Vec::with_capacity(addrs.len());
    for addr in &addrs {
        one_by_one.extend(scalar.execute_batch(OpKind::Load, std::slice::from_ref(addr)));
    }
    assert_eq!(whole, one_by_one, "v2 drift ramp quantized per block");

    // Sanity: the ramp actually moved the noise regime mid-batch — the
    // quiet→laptop σ step is visible in the sample spread.
    assert!(whole.len() == 32);
}

#[test]
#[ignore = "tier-2: stat-heavy cross-regime parity gate"]
fn v1_and_v2_grid_accuracies_agree_within_one_percent() {
    use avx_aslr::channel::attacks::campaign::{Campaign, CampaignConfig, Scenario};

    // Structural parity over the whole grid: same rows, same shape,
    // each tagged with its regime. (Accuracy at n = 2 is quantized in
    // 50-point steps, so the ±1 % comparison happens below at a sample
    // size where a one-trial flip cannot dominate.)
    let grid = |observables| {
        Campaign::noise_grid(CampaignConfig::new(2, 0).with_observables(observables)).run()
    };
    let v1 = grid(ObservablesVersion::V1);
    let v2 = grid(ObservablesVersion::V2);
    assert_eq!(v1.len(), v2.len(), "regimes must run the same grid");
    for (a, b) in v1.iter().zip(&v2) {
        assert_eq!(a.target, b.target);
        assert_eq!(a.noise.name(), b.noise.name());
        assert_eq!(a.observables, "v1");
        assert_eq!(b.observables, "v2");
    }

    // The acceptance gate: per noise preset, the kernel-base accuracy
    // under v2 sits within ±1 percentage point of its v1 counterpart.
    //
    // The trial count is what makes the bound meaningful: the regimes
    // draw *different* noise streams, so per-cell accuracy carries
    // binomial sampling noise of σ_diff = √(2·p(1−p)/n). At n = 200 a
    // single cell has σ_diff ≈ 4.4 pp — window-to-window swings of
    // ±8 pp are expected there and say nothing about the regimes. At
    // n = 45 000 the worst case (p = 0.5, the cloud preset sits right
    // on it) gives σ_diff ≈ 0.33 pp, so the ±1 pp assertion is a ≥3 σ
    // bound on the *true* regime gap. Both regimes share seed0, hence
    // per-trial fixtures (kernel-base positions) are paired, which
    // removes the layout component from the difference entirely.
    let profile = CpuProfile::alder_lake_i5_12400f();
    for noise in NoiseProfile::ALL {
        let cell = |observables| {
            Scenario::KernelBase.campaign(
                &profile,
                CampaignConfig::new(45_000, 0)
                    .with_noise(noise)
                    .with_observables(observables),
            )
        };
        let a = cell(ObservablesVersion::V1).accuracy.percent();
        let b = cell(ObservablesVersion::V2).accuracy.percent();
        assert!(
            (a - b).abs() <= 1.0,
            "KernelBase [{noise}]: v1 {a:.2} % vs v2 {b:.2} % exceeds ±1 %"
        );
    }
}
