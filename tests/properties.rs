//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;

use avx_aslr::channel::{ProbeStrategy, SimProber, Threshold};
use avx_aslr::mmu::{AddressSpace, PageSize, PteFlags, VirtAddr, Walker};
use avx_aslr::uarch::{CpuProfile, ElemWidth, Machine, Mask, MaskedOp, NoiseModel, OpKind};

/// Arbitrary canonical virtual addresses (both halves).
fn arb_vaddr() -> impl Strategy<Value = VirtAddr> {
    prop_oneof![
        (0u64..0x0000_8000_0000_0000).prop_map(VirtAddr::new_truncate),
        (0xffff_8000_0000_0000..=u64::MAX).prop_map(VirtAddr::new_truncate),
    ]
}

fn arb_page_size() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        Just(PageSize::Size4K),
        Just(PageSize::Size2M),
        Just(PageSize::Size1G),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P1 as an invariant: an all-zero-mask op NEVER faults, whatever
    /// the address and whatever is or is not mapped there.
    #[test]
    fn all_zero_mask_never_faults(addr in arb_vaddr(), store in any::<bool>(), seed in any::<u64>()) {
        let mut space = AddressSpace::new();
        space.map(VirtAddr::new_truncate(0x5555_5555_4000), PageSize::Size4K, PteFlags::user_rw()).unwrap();
        let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, seed);
        let op = if store {
            MaskedOp::probe_store(addr)
        } else {
            MaskedOp::probe_load(addr)
        };
        let out = m.execute(op);
        prop_assert!(out.fault.is_none());
        prop_assert!(out.cycles >= 1);
    }

    /// The dual: an unmasked lane touching a non-present page always
    /// faults for scalar-equivalent (all-set) accesses.
    #[test]
    fn unmasked_invalid_always_faults(offset in 0u64..256, store in any::<bool>()) {
        let mut space = AddressSpace::new();
        // Leave everything unmapped; probe offset pages into nowhere.
        space.map(VirtAddr::new_truncate(0x5555_5555_4000), PageSize::Size4K, PteFlags::user_rw()).unwrap();
        let addr = VirtAddr::new_truncate(0x6000_0000_0000 + offset * 4096);
        let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 7);
        let op = MaskedOp {
            kind: if store { OpKind::Store } else { OpKind::Load },
            addr,
            mask: Mask::all_set(8),
            width: ElemWidth::Dword,
        };
        let out = m.execute(op);
        prop_assert!(out.fault.is_some());
    }

    /// Mapping then walking always terminates at the mapped level, with
    /// effective permissions bounded by the leaf flags.
    #[test]
    fn map_walk_coherence(
        slot in 0u64..512,
        size in arb_page_size(),
        user in any::<bool>(),
        writable in any::<bool>(),
    ) {
        let mut space = AddressSpace::new();
        let base = match size {
            PageSize::Size4K => 0x5000_0000_0000u64,
            PageSize::Size2M => 0x5100_0000_0000,
            PageSize::Size1G => 0x5200_0000_0000,
        };
        let va = VirtAddr::new_truncate(base + slot * size.bytes());
        let mut flags = PteFlags::PRESENT;
        if user { flags |= PteFlags::USER; }
        if writable { flags |= PteFlags::WRITABLE; }
        space.map(va, size, flags).unwrap();
        let walk = Walker::new().walk(&space, va);
        prop_assert!(walk.is_mapped());
        prop_assert_eq!(walk.page_size(), Some(size));
        prop_assert_eq!(walk.perms.user, user);
        prop_assert_eq!(walk.perms.writable, writable);
        // Interior addresses resolve identically.
        let interior = va.wrapping_add(size.bytes() / 2);
        let walk2 = Walker::new().walk(&space, interior);
        prop_assert!(walk2.is_mapped());
        prop_assert_eq!(walk2.mapping.unwrap().start, va);
    }

    /// Unmapping restores the unmapped classification.
    #[test]
    fn map_unmap_roundtrip(slot in 0u64..4096) {
        let mut space = AddressSpace::new();
        let va = VirtAddr::new_truncate(0x7000_0000_0000 + slot * 4096);
        space.map(va, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        assert!(Walker::new().walk(&space, va).is_mapped());
        space.unmap(va, PageSize::Size4K).unwrap();
        prop_assert!(!Walker::new().walk(&space, va).is_mapped());
        // And re-mapping works again.
        space.map(va, PageSize::Size4K, PteFlags::user_ro()).unwrap();
        prop_assert!(Walker::new().walk(&space, va).is_mapped());
    }

    /// Timing monotonicity under the calibrated threshold: kernel-mapped
    /// steady probes classify mapped, unmapped ones never do (noiseless).
    #[test]
    fn threshold_separates_mapped_from_unmapped(kernel_slot in 0u64..500) {
        let mut space = AddressSpace::new();
        let kernel = VirtAddr::new_truncate(
            avx_aslr::os::linux::KERNEL_TEXT_REGION_START + kernel_slot * 0x20_0000,
        );
        space.map(kernel, PageSize::Size2M, PteFlags::kernel_rx()).unwrap();
        let calib = VirtAddr::new_truncate(0x5555_5555_4000);
        space.map(calib, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        let mut machine = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 11);
        machine.set_noise(NoiseModel::none());
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, calib, 8);
        let mapped = ProbeStrategy::SecondOfTwo.measure(&mut p, OpKind::Load, kernel);
        prop_assert!(th.is_mapped(mapped), "mapped at {mapped} vs {}", th.boundary());
        // A different slot is unmapped.
        let other_slot = (kernel_slot + 7) % 500;
        let other = VirtAddr::new_truncate(
            avx_aslr::os::linux::KERNEL_TEXT_REGION_START + other_slot * 0x20_0000,
        );
        let unmapped = ProbeStrategy::SecondOfTwo.measure(&mut p, OpKind::Load, other);
        prop_assert!(!th.is_mapped(unmapped), "unmapped at {unmapped}");
    }

    /// Loads move exactly the unmasked lanes; masked-out lanes read 0.
    #[test]
    fn load_lane_semantics(mask_bits in 0u8..=0xff, pattern in any::<[u8; 4]>()) {
        let mut space = AddressSpace::new();
        let page = VirtAddr::new_truncate(0x5555_5555_4000);
        space.map(page, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 5);
        // Fill all 8 lanes with the pattern.
        for lane in 0..8u64 {
            m.poke(page.wrapping_add(lane * 4), &pattern);
        }
        let op = MaskedOp {
            kind: OpKind::Load,
            addr: page,
            mask: Mask::new(mask_bits, 8),
            width: ElemWidth::Dword,
        };
        let out = m.execute(op);
        prop_assert!(out.fault.is_none());
        let data = out.data.unwrap();
        for lane in 0..8usize {
            let got = &data[lane * 4..lane * 4 + 4];
            if mask_bits & (1 << lane) != 0 {
                prop_assert_eq!(got, &pattern[..], "lane {} transferred", lane);
            } else {
                prop_assert_eq!(got, &[0u8; 4][..], "lane {} zeroed", lane);
            }
        }
    }

    /// Probe strategies never return values below the deterministic
    /// floor, and MinOf is never slower than a single probe on the same
    /// state (spikes are strictly positive).
    #[test]
    fn min_strategy_filters_spikes(seed in any::<u64>()) {
        let mut space = AddressSpace::new();
        let kernel = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
        space.map(kernel, PageSize::Size2M, PteFlags::kernel_rx()).unwrap();
        let mut machine = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, seed);
        machine.set_noise(NoiseModel::new(0.0, 0.3, (500.0, 900.0)));
        let mut p = SimProber::new(machine);
        let min8 = ProbeStrategy::MinOf(8).measure(&mut p, OpKind::Load, kernel);
        prop_assert_eq!(min8, 93, "floor recovered despite 30% spike rate");
    }

    /// Region extraction from a page bitmap is a partition: runs are
    /// disjoint, ordered, and cover exactly the mapped pages.
    #[test]
    fn module_run_extraction_partitions(bitmap in prop::collection::vec(any::<bool>(), 1..200)) {
        use avx_aslr::channel::attacks::modules::DetectedModule;
        // Rebuild via the public scan path is heavy; validate the
        // invariant through a tiny local reimplementation comparison.
        let start = VirtAddr::new_truncate(avx_aslr::os::linux::MODULE_REGION_START);
        let runs: Vec<DetectedModule> = {
            // reference implementation
            let mut out = Vec::new();
            let mut begin: Option<usize> = None;
            for (i, &b) in bitmap.iter().enumerate() {
                match (b, begin) {
                    (true, None) => begin = Some(i),
                    (false, Some(s)) => {
                        out.push(DetectedModule {
                            base: start.wrapping_add(s as u64 * 4096),
                            size: ((i - s) * 4096) as u64,
                        });
                        begin = None;
                    }
                    _ => {}
                }
            }
            if let Some(s) = begin {
                out.push(DetectedModule {
                    base: start.wrapping_add(s as u64 * 4096),
                    size: ((bitmap.len() - s) * 4096) as u64,
                });
            }
            out
        };
        let mapped_pages: usize = bitmap.iter().filter(|&&b| b).count();
        let covered: u64 = runs.iter().map(|r| r.size / 4096).sum();
        prop_assert_eq!(covered as usize, mapped_pages);
        for pair in runs.windows(2) {
            prop_assert!(pair[0].base.as_u64() + pair[0].size < pair[1].base.as_u64());
        }
    }
}
