//! Cross-crate integration tests: every end-to-end attack of the paper
//! against freshly randomized systems, with realistic noise enabled.

use avx_aslr::channel::attacks::behavior::{SpyConfig, TlbSpy};
use avx_aslr::channel::attacks::cloud::run_scenario;
use avx_aslr::channel::attacks::modules::score;
use avx_aslr::channel::attacks::userspace::{LibraryMatcher, UserSpaceScanner};
use avx_aslr::channel::attacks::windows::kernel_base_from_shadow;
use avx_aslr::channel::{
    AmdKernelBaseFinder, KernelBaseFinder, KptiAttack, ModuleClassifier, ModuleScanner,
    PermissionAttack, SimProber, Threshold, TlbAttack, WindowsKaslrAttack,
};
use avx_aslr::mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_aslr::os::activity::{apply_activity, ActivityTimeline};
use avx_aslr::os::cloud::CloudScenario;
use avx_aslr::os::linux::{LinuxConfig, LinuxSystem, KPTI_TRAMPOLINE_OFFSET};
use avx_aslr::os::modules::UBUNTU_18_04_MODULES;
use avx_aslr::os::process::{build_process, ImageSignature};
use avx_aslr::os::windows::{WindowsConfig, WindowsSystem, WindowsVersion};
use avx_aslr::os::ExecutionContext;
use avx_aslr::uarch::{CpuProfile, Machine};

fn linux_attack_succeeds(profile: CpuProfile, seed: u64) -> bool {
    let system = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (machine, truth) = system.into_machine(profile, seed);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    KernelBaseFinder::new(th).scan(&mut p).base == Some(truth.kernel_base)
}

#[test]
fn kaslr_break_works_across_intel_profiles_and_seeds() {
    let mut wins = 0;
    let mut total = 0;
    for profile in [
        CpuProfile::alder_lake_i5_12400f(),
        CpuProfile::ice_lake_i7_1065g7(),
        CpuProfile::coffee_lake_i9_9900(),
        CpuProfile::skylake_i7_6600u(),
        CpuProfile::xeon_cascade_lake(),
    ] {
        for seed in 0..6 {
            total += 1;
            if linux_attack_succeeds(profile.clone(), seed * 13 + 1) {
                wins += 1;
            }
        }
    }
    assert!(wins * 100 >= total * 95, "{wins}/{total} under noise");
}

#[test]
fn amd_kaslr_break_works_across_seeds() {
    let mut wins = 0;
    for seed in 0..8u64 {
        let system = LinuxSystem::build(LinuxConfig::seeded(seed * 7 + 3));
        let (machine, truth) = system.into_machine(CpuProfile::zen3_ryzen5_5600x(), seed);
        let mut p = SimProber::new(machine);
        let scan = AmdKernelBaseFinder::for_default_kernel().scan(&mut p);
        if scan.base == Some(truth.kernel_base) {
            wins += 1;
        }
    }
    assert!(wins >= 7, "{wins}/8");
}

#[test]
fn module_scan_detects_and_identifies() {
    let system = LinuxSystem::build(LinuxConfig::seeded(42));
    let (machine, truth) = system.into_machine(CpuProfile::ice_lake_i7_1065g7(), 42);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    let scan = ModuleScanner::new(th).scan(&mut p);
    let ids = ModuleClassifier::new(&UBUNTU_18_04_MODULES).classify(&scan);
    let s = score(&scan, &ids, &truth.modules);
    assert!(s.exact.rate() > 0.97, "exact {}", s.exact);
    assert!(s.identified.rate() > 0.9, "identified {}", s.identified);
}

#[test]
fn kpti_trampoline_derandomizes_hidden_kernel() {
    for seed in [5u64, 6, 7] {
        let system = LinuxSystem::build(LinuxConfig {
            kpti: true,
            ..LinuxConfig::seeded(seed)
        });
        let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let scan = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
        assert_eq!(scan.base, Some(truth.kernel_base), "seed {seed}");
    }
}

#[test]
fn behaviour_spy_tracks_random_timelines() {
    let timeline = ActivityTimeline::random(avx_aslr::os::Behaviour::MouseMovement, 60.0, 3, 99);
    let system = LinuxSystem::build(LinuxConfig::seeded(8));
    let (machine, truth) = system.into_machine(CpuProfile::ice_lake_i7_1065g7(), 8);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    let module = truth.module("psmouse").unwrap();
    let (base, pages) = (module.base, module.spec.pages());
    let tlb = TlbAttack::from_threshold(&th);
    let spy = TlbSpy::new(
        SpyConfig {
            duration_s: 60.0,
            ..SpyConfig::default()
        },
        tlb,
    );
    let trace = spy.monitor(&mut p, base, |p, t| {
        apply_activity(p.machine_mut(), &timeline, base, pages, t);
    });
    assert!(trace.score(&timeline, tlb.hit_boundary) > 0.9);
}

#[test]
fn userspace_fingerprinting_inside_sgx() {
    let mut space = AddressSpace::new();
    let truth = build_process(
        &mut space,
        &ImageSignature::fig7_app(),
        &ImageSignature::standard_set(),
        77,
    );
    let own = VirtAddr::new_truncate(0x5400_0000_0000);
    space
        .map(own, PageSize::Size4K, PteFlags::user_ro())
        .unwrap();
    let machine = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, 77);
    let mut p = SimProber::with_context(machine, ExecutionContext::sgx2());
    let perm = PermissionAttack::calibrate(&mut p, own);
    let scanner = UserSpaceScanner::new(perm);
    let first = truth.libraries.first().unwrap().base;
    let last = truth.libraries.last().unwrap();
    let span = last.base.as_u64() + last.signature.span() + 0x10_0000 - first.as_u64();
    let map = scanner.scan(&mut p, first, span / 4096);
    let matches = LibraryMatcher::new(ImageSignature::standard_set()).find_all(&map);
    for lib in &truth.libraries {
        assert!(
            matches
                .iter()
                .any(|m| m.name == lib.signature.name && m.base == lib.base),
            "{} not fingerprinted",
            lib.signature.name
        );
    }
}

#[test]
fn windows_region_and_kvas_breaks() {
    // 18-bit scan.
    let system = WindowsSystem::build(WindowsConfig {
        fixed_slot: Some(33_000),
        ..WindowsConfig::default()
    });
    let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 1);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);
    let scan = WindowsKaslrAttack::new(th).find_kernel_region(&mut p);
    assert_eq!(scan.base, Some(truth.kernel_base));

    // KVAS.
    let system = WindowsSystem::build(WindowsConfig {
        version: WindowsVersion::V1709,
        kvas: true,
        fixed_slot: Some(44_000),
        seed: 2,
    });
    let (machine, truth) = system.into_machine(CpuProfile::skylake_i7_6600u(), 2);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);
    let attack = WindowsKaslrAttack::new(th);
    let window = VirtAddr::new_truncate(truth.kernel_base.as_u64() - 256 * 4096);
    let shadow = attack
        .find_kvas_shadow(&mut p, window, 1024)
        .expect("shadow");
    assert_eq!(kernel_base_from_shadow(shadow), truth.kernel_base);
}

#[test]
fn all_cloud_scenarios_break() {
    for scenario in CloudScenario::all(4242) {
        let report = run_scenario(&scenario, 17);
        assert!(report.base_correct, "{report}");
    }
}

#[test]
fn table1_runtime_ordering_matches_paper() {
    // Desktop Alder Lake must be faster than mobile Ice Lake; AMD's
    // walk-only probing must be slower than Intel's desktop probing.
    let time_of = |profile: CpuProfile, seed: u64| -> f64 {
        let system = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (machine, truth) = system.into_machine(profile, seed);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let scan = KernelBaseFinder::new(th).scan(&mut p);
        scan.total_cycles as f64 / (avx_aslr::channel::Prober::clock_ghz(&p) * 1e9)
    };
    let alder = time_of(CpuProfile::alder_lake_i5_12400f(), 3);
    let ice = time_of(CpuProfile::ice_lake_i7_1065g7(), 3);
    assert!(alder < ice, "desktop {alder} < mobile {ice}");

    let system = LinuxSystem::build(LinuxConfig::seeded(3));
    let (machine, _) = system.into_machine(CpuProfile::zen3_ryzen5_5600x(), 3);
    let mut p = SimProber::new(machine);
    let before = avx_aslr::channel::Prober::total_cycles(&p);
    let _ = AmdKernelBaseFinder::for_default_kernel().scan(&mut p);
    let amd = (avx_aslr::channel::Prober::total_cycles(&p) - before) as f64 / (4.6 * 1e9);
    assert!(amd > alder, "AMD {amd} slower than Intel desktop {alder}");
}
