//! Statistical accuracy bounds under realistic noise — the Table I
//! claims at CI-friendly trial counts. (`repro` with `AVX_TRIALS=10000`
//! reproduces the paper-scale n.)

use avx_aslr::channel::attacks::modules::score;
use avx_aslr::channel::{
    AmdKernelBaseFinder, KernelBaseFinder, ModuleClassifier, ModuleScanner, SimProber, Threshold,
};
use avx_aslr::os::linux::{LinuxConfig, LinuxSystem};
use avx_aslr::os::modules::UBUNTU_18_04_MODULES;
use avx_aslr::uarch::CpuProfile;

const TRIALS: u64 = 40;

#[test]
fn intel_base_accuracy_is_high_but_imperfect_noise_model() {
    // The paper reports 99.60 % — i.e. *not* 100 %: interrupt spikes
    // occasionally flip the first kernel slot. Over enough trials both
    // "mostly right" and "sometimes wrong" must hold.
    let mut wins = 0;
    for seed in 0..TRIALS {
        let system = LinuxSystem::build(LinuxConfig::seeded(seed * 31 + 5));
        let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        if KernelBaseFinder::new(th).scan(&mut p).base == Some(truth.kernel_base) {
            wins += 1;
        }
    }
    assert!(
        wins * 100 >= TRIALS * 92,
        "accuracy too low: {wins}/{TRIALS}"
    );
}

#[test]
fn amd_base_accuracy() {
    let mut wins = 0;
    for seed in 0..TRIALS {
        let system = LinuxSystem::build(LinuxConfig::seeded(seed * 17 + 9));
        let (machine, truth) = system.into_machine(CpuProfile::zen3_ryzen5_5600x(), seed);
        let mut p = SimProber::new(machine);
        let scan = AmdKernelBaseFinder::for_default_kernel().scan(&mut p);
        if scan.base == Some(truth.kernel_base) {
            wins += 1;
        }
    }
    assert!(wins * 100 >= TRIALS * 92, "{wins}/{TRIALS}");
}

#[test]
fn module_detection_accuracy_across_trials() {
    let mut total = avx_aslr::channel::stats::Trials::new();
    for seed in 0..8u64 {
        let system = LinuxSystem::build(LinuxConfig::seeded(seed * 101 + 2));
        let (machine, truth) = system.into_machine(CpuProfile::ice_lake_i7_1065g7(), seed);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let scan = ModuleScanner::new(th).scan(&mut p);
        let ids = ModuleClassifier::new(&UBUNTU_18_04_MODULES).classify(&scan);
        let s = score(&scan, &ids, &truth.modules);
        total.successes += s.exact.successes;
        total.total += s.exact.total;
    }
    assert!(
        total.rate() > 0.97,
        "per-module exact detection {total} (paper: 99.72 %)"
    );
}

#[test]
fn calibration_is_stable_across_seeds() {
    // The calibrated value must stay within a few cycles of the
    // profile's kernel-mapped anchor across machines and noise seeds.
    let anchor = CpuProfile::alder_lake_i5_12400f().expect_kernel_mapped_load();
    for seed in 0..20u64 {
        let system = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        assert!(
            (th.value - anchor).abs() < 5.0,
            "seed {seed}: {} vs {anchor}",
            th.value
        );
    }
}
