//! Failure injection: the attacks under hostile measurement conditions
//! and against defense-hardened layouts.

use avx_aslr::channel::countermeasures::evaluate_flare;
use avx_aslr::channel::{KernelBaseFinder, ProbeStrategy, Prober, SimProber, Threshold};
use avx_aslr::os::linux::{LinuxConfig, LinuxSystem};
use avx_aslr::os::ExecutionContext;
use avx_aslr::uarch::{CpuProfile, NoiseModel};

/// A spike storm (two orders of magnitude above realistic interrupt
/// rates) degrades the single-shot attack but min-filtered probing
/// still recovers the base.
#[test]
fn spike_storm_defeated_by_min_filtering() {
    let system = LinuxSystem::build(LinuxConfig::seeded(60));
    let (mut machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 60);
    machine.set_noise(NoiseModel::new(1.0, 0.25, (200.0, 2000.0)));
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 64);
    let robust = KernelBaseFinder::new(th).with_strategy(ProbeStrategy::MinOf(6));
    let scan = robust.scan(&mut p);
    assert_eq!(
        scan.base,
        Some(truth.kernel_base),
        "min-of-6 survives 25% spikes"
    );
}

/// A wildly miscalibrated threshold fails closed: everything looks
/// unmapped (threshold too low) or the base lands on slot 0 (too high),
/// never a silent plausible-but-wrong result in between.
#[test]
fn miscalibrated_thresholds_fail_predictably() {
    let system = LinuxSystem::build(LinuxConfig::seeded(61));
    let (mut machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 61);
    machine.set_noise(NoiseModel::none());
    let mut p = SimProber::new(machine);

    // Too low: nothing classifies as mapped.
    let low = Threshold::new(20.0, 0.0);
    let scan = KernelBaseFinder::new(low).scan(&mut p);
    assert_eq!(scan.base, None);
    assert!(scan.mapped.iter().all(|&m| !m));

    // Too high: everything classifies as mapped → base = slot 0 ≠ truth
    // (unless the slide is literally 0).
    let high = Threshold::new(1_000.0, 0.0);
    let scan = KernelBaseFinder::new(high).scan(&mut p);
    assert!(scan.mapped.iter().all(|&m| m));
    if truth.slide_slots != 0 {
        assert_ne!(scan.base, Some(truth.kernel_base));
    }
}

/// The bimodal fallback calibration recovers a usable threshold from
/// one scan's raw samples when no calibration page exists (the
/// Windows-guest bootstrap). The EM re-fit replaced the historical
/// k-means split here; it additionally recovers the environment σ, so
/// the bootstrapped attack can feed an adaptive sampler too.
#[test]
fn bimodal_fallback_calibration_works() {
    let system = LinuxSystem::build(LinuxConfig::seeded(62));
    let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 62);
    let mut p = SimProber::new(machine);
    // First pass with an arbitrary threshold just to collect samples.
    let bootstrap = KernelBaseFinder::new(Threshold::new(0.0, 0.0)).scan(&mut p);
    let fit = Threshold::refit_bimodal(&bootstrap.samples).expect("bimodal");
    assert!(fit.sigma > 0.0, "EM re-fit measures the environment");
    let scan = KernelBaseFinder::new(fit.threshold).scan(&mut p);
    assert_eq!(scan.base, Some(truth.kernel_base));
}

/// FLARE blinds the page-table attack completely (the defended
/// direction must actually defend).
#[test]
fn flare_blinds_page_table_attack() {
    let eval = evaluate_flare(CpuProfile::alder_lake_i5_12400f(), 63);
    assert!(eval.page_table_defeated);
    assert!(eval.page_table_mapped_slots >= 500, "dummies everywhere");
    // And the documented bypass still works.
    assert!(eval.tlb_correct);
}

/// SGX1's degraded timer (4× noise) hurts but does not break the
/// coarse-grained mapped/unmapped classification.
#[test]
fn sgx1_degraded_timer_still_classifies() {
    let system = LinuxSystem::build(LinuxConfig::seeded(64));
    let (machine, truth) = system.into_machine(CpuProfile::ice_lake_i7_1065g7(), 64);
    let mut p = SimProber::with_context(machine, ExecutionContext::sgx1());
    assert!(!p.context().has_precise_timer());
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 64);
    let finder = KernelBaseFinder::new(th).with_strategy(ProbeStrategy::MinOf(8));
    let scan = finder.scan(&mut p);
    assert_eq!(scan.base, Some(truth.kernel_base));
}

/// Probing must never advance past the canonical hole into a panic:
/// scan helpers touch the full candidate ranges without crashing.
#[test]
fn scans_of_empty_systems_return_none_gracefully() {
    // A machine with no kernel at all (everything unmapped).
    let mut space = avx_aslr::mmu::AddressSpace::new();
    let calib = avx_aslr::mmu::VirtAddr::new_truncate(0x5555_5555_4000);
    space
        .map(
            calib,
            avx_aslr::mmu::PageSize::Size4K,
            avx_aslr::mmu::PteFlags::user_rw(),
        )
        .unwrap();
    let machine = avx_aslr::uarch::Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 1);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, calib, 16);
    let scan = KernelBaseFinder::new(th).scan(&mut p);
    assert_eq!(scan.base, None);
    assert_eq!(scan.samples.len(), 512);
    assert!(p.total_cycles() > 0);
}
