//! Statistical regression suite: golden Table I campaign rows.
//!
//! Every row of the generalized Table I is pinned to checked-in golden
//! values — accuracy within ±0.5 % and probes-per-address within a
//! recorded envelope — so a future change cannot silently trade signal
//! quality (or probe budget) away. The campaign engine is
//! deterministic for a fixed `CampaignConfig`, so these bounds are
//! tight in practice; the tolerances only absorb intentional,
//! re-goldened changes.
//!
//! The quick suite runs in tier-1 CI. The `#[ignore]`d tests are the
//! stat-heavy tier-2 grid (`cargo test --test accuracy_regression --
//! --include-ignored`): the adaptive and fixed-budget Table I variants
//! plus the kernel-base × noise-profile matrix.

use avx_aslr::channel::attacks::campaign::{table1, CampaignConfig, CampaignRow, Scenario};
use avx_aslr::channel::defense::{Defense, DefenseKind, DefenseRegion, Rerandomizing};
use avx_aslr::channel::schedule::ScheduleKind;
use avx_aslr::channel::{
    AdaptiveConfig, CalibratorKind, ConfirmConfig, KernelBaseFinder, Prober, RecalConfig, Sampling,
    SimProber, Threshold,
};
use avx_aslr::os::linux::{LinuxConfig, LinuxSystem};
use avx_aslr::uarch::{CpuProfile, NoiseProfile, ObservablesVersion};

/// The pinned campaign shape. Changing TRIALS or SEED0 invalidates
/// every golden below — regenerate them deliberately if you do.
const TRIALS: u64 = 10;
const SEED0: u64 = 0;

fn config() -> CampaignConfig {
    CampaignConfig::new(TRIALS, SEED0)
}

/// The one golden-cell fixture builder every acceptance suite shares:
/// the desktop profile, `SEED0` and adaptive sampling are the common
/// frame, and each suite layers its remaining knobs (noise, estimator,
/// recalibration, confirmation, defense, schedule) through `tune`.
/// Keeping one builder means a new campaign knob threads through every
/// golden suite by construction instead of by copy-paste.
fn adaptive_cell(
    scenario: Scenario,
    trials: u64,
    tune: impl FnOnce(CampaignConfig) -> CampaignConfig,
) -> CampaignRow {
    scenario.campaign(
        &CpuProfile::alder_lake_i5_12400f(),
        tune(CampaignConfig::new(trials, SEED0).with_sampling(Sampling::adaptive())),
    )
}

/// One golden Table I row.
struct Golden {
    cpu_contains: &'static str,
    target: &'static str,
    /// Expected accuracy, percent.
    accuracy_pct: f64,
    /// Allowed probes-per-address envelope `[lo, hi]`.
    ppa: (f64, f64),
}

/// Golden values for `table1(CampaignConfig::new(10, 0))`, recorded at
/// the introduction of the adaptive engine. At n = 10 the fixed-seed
/// trials are all clean (the paper's 99.3–99.8 % emerges at n = 10000).
const GOLDEN_TABLE1_FIXED: [Golden; 5] = [
    Golden {
        cpu_contains: "12400F",
        target: "Base",
        accuracy_pct: 100.0,
        ppa: (2.00, 2.07), // second-of-two + calibration overhead
    },
    Golden {
        cpu_contains: "12400F",
        target: "Modules",
        accuracy_pct: 100.0,
        ppa: (2.99, 3.02), // min-of-2 (3 raw probes per page)
    },
    Golden {
        cpu_contains: "1065G7",
        target: "Base",
        accuracy_pct: 100.0,
        ppa: (2.00, 2.07),
    },
    Golden {
        cpu_contains: "1065G7",
        target: "Modules",
        accuracy_pct: 100.0,
        ppa: (2.99, 3.02),
    },
    Golden {
        cpu_contains: "5600X",
        target: "Base",
        accuracy_pct: 100.0,
        ppa: (6.95, 7.05), // min-of-6 (7 raw probes per slot)
    },
];

/// Adaptive-engine goldens for the same rows: equal accuracy, bounded
/// probes-per-address (quiet host: the SPRT settles in 2 samples, so
/// ~3 probes per address including the warm-up).
const GOLDEN_TABLE1_ADAPTIVE: [Golden; 5] = [
    Golden {
        cpu_contains: "12400F",
        target: "Base",
        accuracy_pct: 100.0,
        ppa: (2.9, 3.2),
    },
    Golden {
        cpu_contains: "12400F",
        target: "Modules",
        accuracy_pct: 100.0,
        ppa: (2.9, 3.2),
    },
    Golden {
        cpu_contains: "1065G7",
        target: "Base",
        accuracy_pct: 100.0,
        ppa: (2.9, 3.2),
    },
    Golden {
        cpu_contains: "1065G7",
        target: "Modules",
        accuracy_pct: 100.0,
        ppa: (2.9, 3.2),
    },
    Golden {
        cpu_contains: "5600X",
        target: "Base",
        accuracy_pct: 100.0,
        ppa: (4.0, 5.0), // early-stopping min-filter: ~4 of max 9
    },
];

const ACCURACY_TOLERANCE_PCT: f64 = 0.5;

fn assert_rows_match(rows: &[CampaignRow], golden: &[Golden]) {
    assert_eq!(rows.len(), golden.len(), "row count drifted");
    for (row, gold) in rows.iter().zip(golden) {
        assert!(
            row.cpu.contains(gold.cpu_contains),
            "row order drifted: {} vs {}",
            row.cpu,
            gold.cpu_contains
        );
        assert_eq!(row.target, gold.target, "{}", row.cpu);
        let acc = row.accuracy.percent();
        assert!(
            (acc - gold.accuracy_pct).abs() <= ACCURACY_TOLERANCE_PCT,
            "{} {}: accuracy {acc:.3} % drifted from golden {:.3} % (±{ACCURACY_TOLERANCE_PCT})",
            row.cpu,
            row.target,
            gold.accuracy_pct
        );
        assert!(
            row.probes_per_address >= gold.ppa.0 && row.probes_per_address <= gold.ppa.1,
            "{} {}: probes/address {:.4} outside golden envelope [{}, {}]",
            row.cpu,
            row.target,
            row.probes_per_address,
            gold.ppa.0,
            gold.ppa.1
        );
        assert!(row.probes > 0);
        assert!(row.total_seconds >= row.probing_seconds);
    }
}

#[test]
fn table1_fixed_rows_match_goldens() {
    assert_rows_match(&table1(config()), &GOLDEN_TABLE1_FIXED);
}

#[test]
fn table1_fixed_rows_match_goldens_under_v2() {
    // The v2 observables regime draws a different (ziggurat) noise
    // stream but the same distribution, and the quiet-host fixed
    // schedule issues an identical probe count regardless of the noise
    // values — so the v2 rows satisfy the *same* goldens as v1. Any
    // divergence here means the regimes stopped being
    // distribution-equivalent, not that a re-golden is due.
    let rows = table1(config().with_observables(ObservablesVersion::V2));
    assert_rows_match(&rows, &GOLDEN_TABLE1_FIXED);
    for row in &rows {
        assert_eq!(row.observables, "v2", "{} {}", row.cpu, row.target);
    }
}

#[test]
fn adaptive_base_attack_matches_robust_budget_accuracy_at_half_the_probes() {
    // The acceptance claim of the adaptive engine, pinned as a quick
    // regression on the cheapest sweep: on the quiet profile the
    // adaptive path reaches the accuracy of the noise-robust
    // fixed-repetition path with ≥2x fewer total probes.
    let profile = CpuProfile::alder_lake_i5_12400f();
    let fixed =
        Scenario::KernelBase.campaign(&profile, config().with_sampling(Sampling::fixed_budget()));
    let adaptive =
        Scenario::KernelBase.campaign(&profile, config().with_sampling(Sampling::adaptive()));
    assert!(
        (adaptive.accuracy.percent() - fixed.accuracy.percent()).abs() <= ACCURACY_TOLERANCE_PCT,
        "accuracy parity lost: adaptive {:.3} % vs fixed-budget {:.3} %",
        adaptive.accuracy.percent(),
        fixed.accuracy.percent()
    );
    assert!(
        adaptive.probes * 2 <= fixed.probes,
        "probe economy lost: adaptive {} vs fixed-budget {}",
        adaptive.probes,
        fixed.probes
    );
}

/// PR 4 acceptance row: the laptop-DVFS kernel-base cell, adaptive
/// sampling, n = 20 — where the ROADMAP recorded that calibration (not
/// sampling) was the accuracy bottleneck. Golden values recorded at the
/// introduction of the calibration subsystem.
const LAPTOP_TRIALS: u64 = 20;
/// Legacy min-pulled floor: the SPRT hypotheses sit ≈ 8 cycles low, so
/// extra evidence buys nothing.
const LAPTOP_LEGACY_ACCURACY_PCT: f64 = 30.0;
/// NoiseAware (→ trimmed/MAD) floor under the identical probe budget.
const LAPTOP_NOISE_AWARE_ACCURACY_PCT: f64 = 85.0;

fn laptop_cell(calibrator: CalibratorKind) -> CampaignRow {
    adaptive_cell(Scenario::KernelBase, LAPTOP_TRIALS, |c| {
        c.with_noise(NoiseProfile::LaptopDvfs)
            .with_calibrator(calibrator)
    })
}

#[test]
fn laptop_row_noise_aware_calibration_closes_the_gap() {
    // Both cells run the same adaptive engine with the same hard
    // per-address budget; only the threshold estimator differs.
    let legacy = laptop_cell(CalibratorKind::Legacy);
    let robust = laptop_cell(CalibratorKind::NoiseAware);
    assert_eq!(legacy.sampling, "adaptive");
    assert_eq!(legacy.calibrator, "legacy");
    assert_eq!(robust.calibrator, "noise-aware");
    for row in [&legacy, &robust] {
        assert!(
            row.probes_per_address <= 9.1,
            "budget cap violated: {:.3}",
            row.probes_per_address
        );
    }

    // The acceptance claim: ≥ 10 percentage points at equal budget.
    assert!(
        robust.accuracy.percent() >= legacy.accuracy.percent() + 10.0,
        "calibration gap reopened: noise-aware {:.1} % vs legacy {:.1} %",
        robust.accuracy.percent(),
        legacy.accuracy.percent()
    );

    // Pinned goldens so neither side drifts silently.
    assert!(
        (legacy.accuracy.percent() - LAPTOP_LEGACY_ACCURACY_PCT).abs() <= ACCURACY_TOLERANCE_PCT,
        "legacy laptop row drifted: {:.3} %",
        legacy.accuracy.percent()
    );
    assert!(
        (robust.accuracy.percent() - LAPTOP_NOISE_AWARE_ACCURACY_PCT).abs()
            <= ACCURACY_TOLERANCE_PCT,
        "noise-aware laptop row drifted: {:.3} %",
        robust.accuracy.percent()
    );
}

/// The ROADMAP's "unexplored lever", closed: raising the adaptive
/// budget from 8 to 16 probes buys back most of the residual laptop
/// gap (85 % → 95 % at n = 20). Golden values recorded at the
/// introduction of the recalibration engine.
const LAPTOP_MAX_PROBES_16_ACCURACY_PCT: f64 = 95.0;

#[test]
fn laptop_row_max_probes_16_closes_most_of_the_residual_gap() {
    let row = adaptive_cell(Scenario::KernelBase, LAPTOP_TRIALS, |c| {
        c.with_noise(NoiseProfile::LaptopDvfs)
            .with_sampling(Sampling::Adaptive(AdaptiveConfig::with_max_probes(16)))
            .with_calibrator(CalibratorKind::NoiseAware)
    });
    assert!(
        (row.accuracy.percent() - LAPTOP_MAX_PROBES_16_ACCURACY_PCT).abs()
            <= ACCURACY_TOLERANCE_PCT,
        "max_probes = 16 laptop row drifted: {:.3} %",
        row.accuracy.percent()
    );
    // The doubled budget must beat the pinned 8-probe row...
    assert!(
        row.accuracy.percent() >= LAPTOP_NOISE_AWARE_ACCURACY_PCT + 5.0,
        "doubling the budget must buy accuracy: {:.3} %",
        row.accuracy.percent()
    );
    // ...without spending anywhere near the full width (the SPRT keeps
    // economizing; the budget is a cap, not a schedule).
    assert!(
        row.probes_per_address < 9.0,
        "budget cap ≠ budget spend: {:.3} probes/address",
        row.probes_per_address
    );
}

/// The drifting-noise acceptance row (recalibration tentpole): under a
/// quiet→laptop ramp that starts after the calibration phase, one-shot
/// calibration degrades (the SPRT trusts the stale quiet σ) while the
/// closed-loop recalibrating scan recovers at least the laptop
/// acceptance accuracy. Golden values recorded at the introduction of
/// the recalibration engine; the one-shot row pins the *degraded*
/// behaviour so the comparison cannot silently rot.
const DRIFT_ONE_SHOT_ACCURACY_PCT: f64 = 85.0;
const DRIFT_CLOSED_LOOP_ACCURACY_PCT: f64 = 100.0;

fn drift_cell(recalibrate: bool) -> CampaignRow {
    adaptive_cell(Scenario::KernelBase, LAPTOP_TRIALS, |c| {
        let c = c
            .with_noise(NoiseProfile::drift_quiet_to_laptop())
            .with_calibrator(CalibratorKind::NoiseAware);
        if recalibrate {
            c.with_recalibration(RecalConfig::default())
        } else {
            c
        }
    })
}

#[test]
fn drift_row_closed_loop_recovers_what_one_shot_calibration_loses() {
    let one_shot = drift_cell(false);
    let closed = drift_cell(true);

    // The acceptance claim: the closed loop reaches at least the
    // laptop-acceptance accuracy while the one-shot attacker trails it.
    assert!(
        closed.accuracy.percent() >= LAPTOP_NOISE_AWARE_ACCURACY_PCT,
        "closed loop below laptop acceptance: {:.3} %",
        closed.accuracy.percent()
    );
    assert!(
        closed.accuracy.percent() >= one_shot.accuracy.percent() + 10.0,
        "recalibration gap collapsed: closed {:.3} % vs one-shot {:.3} %",
        closed.accuracy.percent(),
        one_shot.accuracy.percent()
    );

    // Pinned goldens so neither side drifts silently.
    assert!(
        (one_shot.accuracy.percent() - DRIFT_ONE_SHOT_ACCURACY_PCT).abs() <= ACCURACY_TOLERANCE_PCT,
        "one-shot drift row drifted: {:.3} %",
        one_shot.accuracy.percent()
    );
    assert!(
        (closed.accuracy.percent() - DRIFT_CLOSED_LOOP_ACCURACY_PCT).abs()
            <= ACCURACY_TOLERANCE_PCT,
        "closed-loop drift row drifted: {:.3} %",
        closed.accuracy.percent()
    );

    // The one-shot attacker *underspends* (it still believes the quiet
    // σ); the closed loop pays for the evidence the drift demands, and
    // both stay under the hard cap + rescan allowance.
    assert!(
        closed.probes_per_address > one_shot.probes_per_address,
        "closed loop must buy more evidence: {:.3} vs {:.3}",
        closed.probes_per_address,
        one_shot.probes_per_address
    );
    assert!(one_shot.probes_per_address < 4.0);
    assert!(closed.probes_per_address < 9.1);
    assert_eq!(closed.noise.name(), "drift");
}

/// The confirmation acceptance row (decision-layer tentpole): the KPTI
/// trampoline cell under laptop DVFS, where the 0xc00000-offset needle
/// sits in a 512-slot haystack and laptop jitter sprays false-positive
/// slots below it. The legacy first-mapped-slot-wins rule latches onto
/// the first false positive and caps the cell at 60 %; re-testing every
/// candidate through the confirmation layer lifts it to 95 % for < 1 %
/// more probes. Golden values recorded at the introduction of the
/// decision layer; the first-wins row pins the *degraded* behaviour so
/// the comparison cannot silently rot.
const KPTI_FIRST_WINS_ACCURACY_PCT: f64 = 60.0;
const KPTI_CONFIRMED_ACCURACY_PCT: f64 = 95.0;

fn kpti_laptop_cell(confirm: bool) -> CampaignRow {
    adaptive_cell(Scenario::Kpti, LAPTOP_TRIALS, |c| {
        let c = c
            .with_noise(NoiseProfile::LaptopDvfs)
            .with_calibrator(CalibratorKind::NoiseAware);
        if confirm {
            c.with_confirmation(ConfirmConfig::default())
        } else {
            c
        }
    })
}

#[test]
fn kpti_row_confirmation_retires_the_first_wins_ceiling() {
    let first_wins = kpti_laptop_cell(false);
    let confirmed = kpti_laptop_cell(true);

    // The acceptance claim: ≥ 90 % once candidates are re-tested, vs
    // the ~60 % first-wins ceiling the ROADMAP recorded.
    assert!(
        confirmed.accuracy.percent() >= 90.0,
        "confirmed KPTI row below acceptance: {:.3} %",
        confirmed.accuracy.percent()
    );
    assert!(
        confirmed.accuracy.percent() >= first_wins.accuracy.percent() + 30.0,
        "confirmation gap collapsed: confirmed {:.3} % vs first-wins {:.3} %",
        confirmed.accuracy.percent(),
        first_wins.accuracy.percent()
    );

    // Pinned goldens so neither side drifts silently.
    assert!(
        (first_wins.accuracy.percent() - KPTI_FIRST_WINS_ACCURACY_PCT).abs()
            <= ACCURACY_TOLERANCE_PCT,
        "first-wins KPTI row drifted: {:.3} %",
        first_wins.accuracy.percent()
    );
    assert!(
        (confirmed.accuracy.percent() - KPTI_CONFIRMED_ACCURACY_PCT).abs()
            <= ACCURACY_TOLERANCE_PCT,
        "confirmed KPTI row drifted: {:.3} %",
        confirmed.accuracy.percent()
    );

    // The re-tests are nearly free: the sweep dominates, the handful of
    // candidate re-visits adds well under 10 % to the probe bill.
    assert!(
        confirmed.probes > first_wins.probes,
        "re-tests must be accounted: {} vs {}",
        confirmed.probes,
        first_wins.probes
    );
    assert!(
        (confirmed.probes as f64) < first_wins.probes as f64 * 1.10,
        "confirmation overspent: {} vs {} probes",
        confirmed.probes,
        first_wins.probes
    );
}

#[test]
fn default_config_calibrates_legacy_and_quiet_rows_are_bit_identical() {
    // The default estimator is Legacy, and the quiet-host golden rows
    // must not move when NoiseAware is selected instead: its dispersion
    // gate routes quiet calibrations to the same Legacy arithmetic, so
    // accuracy, probe counts and runtimes agree to the bit.
    assert_eq!(CampaignConfig::default().calibrator, CalibratorKind::Legacy);
    let profile = CpuProfile::alder_lake_i5_12400f();
    let default_row = Scenario::KernelBase.campaign(&profile, config());
    let noise_aware = Scenario::KernelBase.campaign(
        &profile,
        config().with_calibrator(CalibratorKind::NoiseAware),
    );
    assert_eq!(default_row.accuracy, noise_aware.accuracy);
    assert_eq!(default_row.probes, noise_aware.probes);
    assert_eq!(
        default_row.probing_seconds.to_bits(),
        noise_aware.probing_seconds.to_bits()
    );
    assert_eq!(
        default_row.total_seconds.to_bits(),
        noise_aware.total_seconds.to_bits()
    );
}

#[test]
#[ignore = "tier-2: stat-heavy full-table regression"]
fn table1_adaptive_rows_match_goldens() {
    let rows = table1(config().with_sampling(Sampling::adaptive()));
    assert_rows_match(&rows, &GOLDEN_TABLE1_ADAPTIVE);

    // Whole-table probe economy vs the noise-robust budget.
    let robust = table1(config().with_sampling(Sampling::fixed_budget()));
    let adaptive_total: u64 = rows.iter().map(|r| r.probes).sum();
    let robust_total: u64 = robust.iter().map(|r| r.probes).sum();
    assert!(
        adaptive_total * 2 <= robust_total,
        "adaptive {adaptive_total} vs fixed-budget {robust_total}"
    );
    for (a, f) in rows.iter().zip(&robust) {
        assert!(
            (a.accuracy.percent() - f.accuracy.percent()).abs() <= ACCURACY_TOLERANCE_PCT,
            "{} {}: adaptive {:.3} % vs fixed-budget {:.3} %",
            a.cpu,
            a.target,
            a.accuracy.percent(),
            f.accuracy.percent()
        );
    }
}

#[test]
#[ignore = "tier-2: stat-heavy full-table regression"]
fn table1_adaptive_rows_match_goldens_under_v2() {
    // Same golden envelopes as the v1 adaptive table: the SPRT reacts
    // to the concrete noise draws, so v2 probe counts differ in detail,
    // but a distribution-equivalent stream must keep every row inside
    // the recorded accuracy tolerance and probes-per-address envelope.
    let rows = table1(
        config()
            .with_sampling(Sampling::adaptive())
            .with_observables(ObservablesVersion::V2),
    );
    assert_rows_match(&rows, &GOLDEN_TABLE1_ADAPTIVE);

    // Row-by-row cross-regime accuracy parity on the quiet host.
    let v1 = table1(config().with_sampling(Sampling::adaptive()));
    for (a, b) in v1.iter().zip(&rows) {
        assert_eq!(a.observables, "v1");
        assert_eq!(b.observables, "v2");
        assert!(
            (a.accuracy.percent() - b.accuracy.percent()).abs() <= ACCURACY_TOLERANCE_PCT,
            "{} {}: v1 {:.3} % vs v2 {:.3} %",
            a.cpu,
            a.target,
            a.accuracy.percent(),
            b.accuracy.percent()
        );
    }
}

#[test]
#[ignore = "tier-2: stat-heavy noise-grid regression"]
fn noise_grid_adaptive_dominates_fixed_and_scales_its_budget() {
    // The kernel-base cell across every noise preset: the adaptive
    // engine must (a) never be less accurate than the paper's fixed
    // schedule under the same noise, (b) spend more probes per address
    // as the noise grows, and (c) stay within its hard budget.
    let profile = CpuProfile::alder_lake_i5_12400f();
    let cell = |noise: NoiseProfile, sampling: Sampling| {
        Scenario::KernelBase.campaign(
            &profile,
            CampaignConfig::new(8, 0)
                .with_noise(noise)
                .with_sampling(sampling),
        )
    };

    // Iterate in effective-σ order (quiet 1×, smt 3×, cloud 4×,
    // laptop 6×) so the budget-growth check follows the noise level,
    // not the declaration order.
    let by_sigma = [
        NoiseProfile::Quiet,
        NoiseProfile::SmtSibling,
        NoiseProfile::NoisyNeighbor,
        NoiseProfile::LaptopDvfs,
    ];
    let mut last_ppa = 0.0;
    for noise in by_sigma {
        let fixed = cell(noise, Sampling::Fixed);
        let adaptive = cell(noise, Sampling::adaptive());
        assert!(
            adaptive.accuracy.rate() + 1e-9 >= fixed.accuracy.rate(),
            "{noise}: adaptive {:.3} % must not trail fixed {:.3} %",
            adaptive.accuracy.percent(),
            fixed.accuracy.percent()
        );
        assert!(
            adaptive.probes_per_address <= 9.1,
            "{noise}: budget cap violated ({:.3})",
            adaptive.probes_per_address
        );
        if noise == NoiseProfile::Quiet {
            assert!(
                adaptive.accuracy.percent() >= 99.5,
                "quiet adaptive accuracy regressed: {:.3} %",
                adaptive.accuracy.percent()
            );
        }
        assert!(
            adaptive.probes_per_address > last_ppa - 0.35,
            "{noise}: probe budget should broadly grow with noise \
             ({:.3} after {last_ppa:.3})",
            adaptive.probes_per_address
        );
        last_ppa = adaptive.probes_per_address;
    }

    // Endpoints of the scaling claim, pinned hard: the noisiest preset
    // demands strictly more evidence than the quiet host.
    let quiet = cell(NoiseProfile::Quiet, Sampling::adaptive());
    let laptop = cell(NoiseProfile::LaptopDvfs, Sampling::adaptive());
    assert!(
        laptop.probes_per_address > quiet.probes_per_address + 0.5,
        "laptop {:.3} vs quiet {:.3}",
        laptop.probes_per_address,
        quiet.probes_per_address
    );
}

#[test]
#[ignore = "tier-2: stat-heavy full-campaign smoke"]
fn full_campaign_grid_runs_with_probe_reporting_on_every_row() {
    use avx_aslr::channel::attacks::campaign::Campaign;
    let campaign =
        Campaign::noise_grid(CampaignConfig::new(1, 5).with_sampling(Sampling::adaptive()));
    let rows = campaign.run();
    // 14 rows per noise preset (6 Intel scenarios × 2 profiles + AMD +
    // cloud), times the 4 presets.
    assert_eq!(rows.len(), 14 * NoiseProfile::ALL.len());
    for row in &rows {
        assert!(row.accuracy.total > 0, "{}: empty row", row.target);
        assert!(row.probes > 0, "{}: no probes recorded", row.target);
        assert!(
            row.probes_per_address > 0.0,
            "{} [{}]: no probes-per-address",
            row.target,
            row.noise
        );
        // Sweep-shaped scenarios honor the campaign policy; the TLB
        // spy's schedule is protocol-fixed and must say so.
        if row.target == "Behaviour" {
            assert_eq!(row.sampling, "fixed");
        } else {
            assert_eq!(row.sampling, "adaptive");
        }
    }
}

// ---------------------------------------------------------------------
// Defense-efficacy goldens (defense-axis tentpole). One golden per
// kernel-base × defense × noise cell, drift/KPTI row style: the
// undefended row pins the baseline, the defended rows pin the *degraded
// attacker* so a regression in either direction is loud — a defense
// that stops working and an attack that silently weakens both trip
// these.

/// One defense-efficacy golden cell.
struct DefenseGolden {
    defense: DefenseKind,
    accuracy_pct: f64,
    ppa: (f64, f64),
}

fn defense_cell(
    noise: NoiseProfile,
    trials: u64,
    cal: CalibratorKind,
    row: &DefenseGolden,
) -> CampaignRow {
    adaptive_cell(Scenario::KernelBase, trials, |c| {
        c.with_noise(noise)
            .with_calibrator(cal)
            .with_defense(row.defense)
    })
}

fn assert_defense_cells(
    noise: NoiseProfile,
    trials: u64,
    cal: CalibratorKind,
    golden: &[DefenseGolden],
) {
    let rows: Vec<CampaignRow> = golden
        .iter()
        .map(|g| defense_cell(noise, trials, cal, g))
        .collect();
    for (row, gold) in rows.iter().zip(golden) {
        assert_eq!(row.defense, gold.defense.name());
        let acc = row.accuracy.percent();
        assert!(
            (acc - gold.accuracy_pct).abs() <= ACCURACY_TOLERANCE_PCT,
            "{noise} {}: accuracy {acc:.3} % drifted from golden {:.3} %",
            gold.defense,
            gold.accuracy_pct
        );
        assert!(
            row.probes_per_address >= gold.ppa.0 && row.probes_per_address <= gold.ppa.1,
            "{noise} {}: probes/address {:.4} outside [{}, {}]",
            gold.defense,
            row.probes_per_address,
            gold.ppa.0,
            gold.ppa.1
        );
    }
    // The efficacy ordering itself is part of the contract: masked
    // translation fully decorrelates the walk signal (strongest),
    // re-randomization leaves a window per trigger period (partial),
    // and an undefended victim is an open book.
    let by = |kind: DefenseKind| {
        rows.iter()
            .find(|r| r.defense == kind.name())
            .expect("cell present")
            .accuracy
            .rate()
    };
    assert!(
        by(DefenseKind::None) > by(DefenseKind::Rerandomizing),
        "{noise}: re-randomization stopped costing the attacker"
    );
    assert!(
        by(DefenseKind::Rerandomizing) > by(DefenseKind::MaskedTranslation),
        "{noise}: masked translation fell behind re-randomization"
    );
}

/// Quiet host, kernel base, adaptive sampling, n = 10: the undefended
/// scan is perfect; masked translation zeroes it; live re-randomization
/// (default 384-op trigger ⇒ several re-slides per sweep) leaves the
/// attacker winning only the trials where the base survives long
/// enough. Probe spend is defense-independent to within noise — all
/// three cells pay the same sweep, which is exactly the point: the
/// victim, not the attacker, changes.
const DEFENSE_GOLDEN_QUIET: [DefenseGolden; 3] = [
    DefenseGolden {
        defense: DefenseKind::None,
        accuracy_pct: 100.0,
        ppa: (3.0, 3.1),
    },
    DefenseGolden {
        defense: DefenseKind::MaskedTranslation,
        accuracy_pct: 0.0,
        ppa: (3.0, 3.1),
    },
    DefenseGolden {
        defense: DefenseKind::Rerandomizing,
        accuracy_pct: 40.0,
        ppa: (3.0, 3.1),
    },
];

/// Laptop-DVFS host, n = 20, noise-aware calibration: the undefended
/// cell reproduces the PR 4 laptop acceptance row (85 %); the defended
/// cells degrade from there.
const DEFENSE_GOLDEN_LAPTOP: [DefenseGolden; 3] = [
    DefenseGolden {
        defense: DefenseKind::None,
        accuracy_pct: 85.0,
        ppa: (5.0, 5.2),
    },
    DefenseGolden {
        defense: DefenseKind::MaskedTranslation,
        accuracy_pct: 0.0,
        ppa: (5.0, 5.2),
    },
    DefenseGolden {
        defense: DefenseKind::Rerandomizing,
        accuracy_pct: 20.0,
        ppa: (5.0, 5.2),
    },
];

#[test]
fn defense_rows_quiet_match_goldens() {
    assert_defense_cells(
        NoiseProfile::Quiet,
        TRIALS,
        CalibratorKind::Legacy,
        &DEFENSE_GOLDEN_QUIET,
    );
}

#[test]
fn defense_rows_laptop_match_goldens() {
    assert_defense_cells(
        NoiseProfile::LaptopDvfs,
        LAPTOP_TRIALS,
        CalibratorKind::NoiseAware,
        &DEFENSE_GOLDEN_LAPTOP,
    );
}

/// The mid-scan re-randomization race, pinned as a single golden trial:
/// an aggressive 128-op trigger re-slides the kernel image eight times
/// inside one 512-slot sweep. The scan stays total (every slot
/// classified, fixed probe bill) but the picture it assembles is a
/// smear of eight layouts — phantom mapped slots appear and the
/// recovered base is wrong. Golden values recorded at the introduction
/// of the defense axis.
const RACE_SEED: u64 = 0;
const RACE_PERIOD: u64 = 128;
const RACE_RERANDOMIZATIONS: u64 = 8;
const RACE_MAPPED_SLOTS: usize = 7;
const RACE_PROBES: u64 = 1041;

#[test]
fn rerandomization_race_row_matches_golden() {
    let sys = LinuxSystem::build(LinuxConfig::seeded(RACE_SEED));
    let (mut machine, truth) = sys.machine(CpuProfile::alder_lake_i5_12400f(), RACE_SEED);
    Rerandomizing {
        period: RACE_PERIOD,
    }
    .install(
        &mut machine,
        &[DefenseRegion::linux_kernel_text()],
        RACE_SEED,
    );
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    let scan = KernelBaseFinder::new(th).scan(&mut p);

    assert_eq!(
        p.machine().rerandomizations(),
        RACE_RERANDOMIZATIONS,
        "trigger schedule drifted"
    );
    assert_ne!(scan.base, Some(truth.kernel_base), "race row: attacker won");
    assert_eq!(
        scan.mapped.iter().filter(|&&m| m).count(),
        RACE_MAPPED_SLOTS,
        "phantom-slot smear drifted"
    );
    assert_eq!(p.probes_issued(), RACE_PROBES, "probe bill drifted");
}

#[test]
#[ignore = "tier-2: stat-heavy full defense-grid smoke"]
fn full_defense_grid_runs_and_none_rows_are_the_noise_grid() {
    use avx_aslr::channel::attacks::campaign::Campaign;
    let config = CampaignConfig::new(1, 5).with_sampling(Sampling::adaptive());
    let rows = Campaign::defense_grid(config).run();
    // 14 scenario rows × 4 noise presets × 3 defenses.
    assert_eq!(
        rows.len(),
        14 * NoiseProfile::ALL.len() * DefenseKind::ALL.len()
    );
    for row in &rows {
        assert!(
            row.accuracy.total > 0,
            "{} [{}]: empty row",
            row.target,
            row.defense
        );
        assert!(
            row.probes > 0,
            "{} [{}]: no probes",
            row.target,
            row.defense
        );
    }
    // The defense axis never perturbs the undefended cells: the
    // defense-grid rows with defense == none are bit-identical to a
    // plain noise-grid run (invariant 12 at grid scale).
    let baseline = Campaign::noise_grid(config).run();
    let none_rows: Vec<&CampaignRow> = rows.iter().filter(|r| r.defense == "none").collect();
    assert_eq!(none_rows.len(), baseline.len());
    for (a, b) in none_rows.iter().zip(&baseline) {
        assert_eq!(a.target, b.target);
        assert_eq!(a.noise, b.noise);
        assert_eq!(a.probes, b.probes, "{} [{}]", a.target, a.noise);
        assert_eq!(a.accuracy, b.accuracy, "{} [{}]", a.target, a.noise);
        assert_eq!(
            a.probing_seconds.to_bits(),
            b.probing_seconds.to_bits(),
            "{} [{}]",
            a.target,
            a.noise
        );
    }
}

// ---------------------------------------------------------------------
// Schedule-axis goldens (event-driven-victim tentpole). The square-wave
// DVFS schedule is the drift rows' shape — "the world moved after
// calibration" — rebuilt on the victim's wall clock: the environment
// swaps quiet↔laptop on its own 768-op period, not per attacker probe.
// One-shot calibration degrades; the closed loop recovers through
// `DriftMonitor::check` alone (no new trigger sites).

fn schedule_cell(schedule: ScheduleKind, recalibrate: bool) -> CampaignRow {
    adaptive_cell(Scenario::KernelBase, LAPTOP_TRIALS, |c| {
        let c = c
            .with_calibrator(CalibratorKind::NoiseAware)
            .with_schedule(schedule);
        if recalibrate {
            c.with_recalibration(RecalConfig::default())
        } else {
            c
        }
    })
}

/// One-shot golden: the attacker calibrates in a quiet phase, then the
/// square wave spends half of every period at laptop σ — the stale
/// quiet threshold loses trials it would win under honest laptop
/// calibration. The pinned *degraded* value keeps the comparison from
/// silently rotting.
const DVFS_ONE_SHOT_ACCURACY_PCT: f64 = 90.0;
const DVFS_CLOSED_LOOP_ACCURACY_PCT: f64 = 100.0;

#[test]
fn dvfs_square_row_closed_loop_recovers_what_one_shot_calibration_loses() {
    let one_shot = schedule_cell(ScheduleKind::DvfsSquare, false);
    let closed = schedule_cell(ScheduleKind::DvfsSquare, true);
    assert_eq!(one_shot.schedule, "dvfs-square");
    assert_eq!(closed.schedule, "dvfs-square");

    // The acceptance claim: ≥ 10 percentage points back through
    // `DriftMonitor::check` alone.
    assert!(
        closed.accuracy.percent() >= one_shot.accuracy.percent() + 10.0,
        "recalibration gap collapsed: closed {:.3} % vs one-shot {:.3} %",
        closed.accuracy.percent(),
        one_shot.accuracy.percent()
    );

    // Pinned goldens so neither side drifts silently.
    assert!(
        (one_shot.accuracy.percent() - DVFS_ONE_SHOT_ACCURACY_PCT).abs() <= ACCURACY_TOLERANCE_PCT,
        "one-shot DVFS row drifted: {:.3} %",
        one_shot.accuracy.percent()
    );
    assert!(
        (closed.accuracy.percent() - DVFS_CLOSED_LOOP_ACCURACY_PCT).abs() <= ACCURACY_TOLERANCE_PCT,
        "closed-loop DVFS row drifted: {:.3} %",
        closed.accuracy.percent()
    );

    // The closed loop pays for its refits; both stay under the hard
    // cap + rescan allowance.
    assert!(
        closed.probes_per_address > one_shot.probes_per_address,
        "closed loop must buy more evidence: {:.3} vs {:.3}",
        closed.probes_per_address,
        one_shot.probes_per_address
    );
    assert!(one_shot.probes_per_address < 4.0);
    assert!(closed.probes_per_address < 9.1);
}

/// The co-tenant burst row: arrival/departure events scale the noise
/// additively (multiplier 1 → 3 → 5 → 3 → 1 across the period), but
/// the adaptive engine rides the bursts — full accuracy for a modestly
/// larger evidence bill than the quiet host.
const COTENANT_ACCURACY_PCT: f64 = 100.0;

#[test]
fn cotenant_burst_row_matches_golden() {
    let burst = schedule_cell(ScheduleKind::CoTenantBurst, false);
    let plain = adaptive_cell(Scenario::KernelBase, LAPTOP_TRIALS, |c| {
        c.with_calibrator(CalibratorKind::NoiseAware)
    });
    assert_eq!(burst.schedule, "cotenant-burst");
    assert!(
        (burst.accuracy.percent() - COTENANT_ACCURACY_PCT).abs() <= ACCURACY_TOLERANCE_PCT,
        "co-tenant burst row drifted: {:.3} %",
        burst.accuracy.percent()
    );
    assert!(
        burst.probes_per_address > plain.probes_per_address,
        "bursts must cost evidence: {:.4} vs quiet {:.4}",
        burst.probes_per_address,
        plain.probes_per_address
    );
    assert!(
        burst.probes_per_address < 4.0,
        "burst evidence bill blew up: {:.4}",
        burst.probes_per_address
    );
}

#[test]
#[ignore = "tier-2: stat-heavy full schedule-grid smoke"]
fn full_schedule_grid_runs_and_none_rows_are_the_noise_grid() {
    use avx_aslr::channel::attacks::campaign::Campaign;
    let config = CampaignConfig::new(1, 5).with_sampling(Sampling::adaptive());
    let rows = Campaign::schedule_grid(config).run();
    // 14 scenario rows × 4 noise presets × 4 schedules.
    assert_eq!(
        rows.len(),
        14 * NoiseProfile::ALL.len() * ScheduleKind::ALL.len()
    );
    for row in &rows {
        assert!(
            row.accuracy.total > 0,
            "{} [{}]: empty row",
            row.target,
            row.schedule
        );
        assert!(
            row.probes > 0,
            "{} [{}]: no probes",
            row.target,
            row.schedule
        );
    }
    // The schedule axis never perturbs the unscheduled cells: the
    // schedule-grid rows with schedule == none are bit-identical to a
    // plain noise-grid run (invariant 13 at grid scale).
    let baseline = Campaign::noise_grid(config).run();
    let none_rows: Vec<&CampaignRow> = rows.iter().filter(|r| r.schedule == "none").collect();
    assert_eq!(none_rows.len(), baseline.len());
    for (a, b) in none_rows.iter().zip(&baseline) {
        assert_eq!(a.target, b.target);
        assert_eq!(a.noise, b.noise);
        assert_eq!(a.probes, b.probes, "{} [{}]", a.target, a.noise);
        assert_eq!(a.accuracy, b.accuracy, "{} [{}]", a.target, a.noise);
        assert_eq!(
            a.probing_seconds.to_bits(),
            b.probing_seconds.to_bits(),
            "{} [{}]",
            a.target,
            a.noise
        );
    }
}
