//! End-to-end campaign throughput measurement.
//!
//! The paper's headline numbers are wall-clock (Table I, Fig. 4/5
//! sweeps), so *simulator* throughput — probes per second and trials per
//! second of the full attack × CPU × noise grid — is what gates scaling
//! the campaign matrix. This module is the standardized measurement the
//! `campaign_throughput` bench, the `repro --bench-json` flag and the CI
//! throughput smoke all share, so every recorded number is comparable
//! across PRs.

use std::time::Instant;

use avx_channel::attacks::campaign::{Campaign, CampaignConfig, Scenario};
use avx_channel::fleet::{Fleet, FleetConfig};
use avx_channel::{
    CalibratorKind, KernelBaseFinder, Prober, RecalConfig, Sampling, ScheduleKind, Threshold,
};
use avx_uarch::{CpuProfile, NoiseProfile, ObservablesVersion};

/// One end-to-end measurement of the full noise-grid campaign.
#[derive(Clone, Copy, Debug)]
pub struct CampaignThroughput {
    /// Observables regime the grid ran under.
    pub observables: ObservablesVersion,
    /// Requested trials per cell (heavyweight cells are capped by
    /// [`avx_channel::attacks::campaign::Scenario::max_trials`]).
    pub trials_per_cell: u64,
    /// Wall-clock seconds of the whole grid run.
    pub wall_seconds: f64,
    /// Campaign rows produced.
    pub rows: usize,
    /// Raw simulated probes issued across all rows.
    pub probes: u64,
    /// Trials executed across all rows (success records of the base
    /// scenarios; per-module/sample records count their trial once).
    pub trials: u64,
    /// Probes per wall-clock second — the headline throughput metric.
    pub probes_per_sec: f64,
    /// Trials per wall-clock second.
    pub trials_per_sec: f64,
}

/// Runs the full attack × CPU × noise grid once under the default
/// (v1, bit-exact) observables regime and reports throughput.
#[must_use]
pub fn measure_noise_grid(trials: u64) -> CampaignThroughput {
    measure_noise_grid_with(trials, ObservablesVersion::V1)
}

/// [`measure_noise_grid`] under an explicit observables regime — the
/// v2 measurement is the perf target the batched ziggurat kernel is
/// accountable to.
#[must_use]
pub fn measure_noise_grid_with(trials: u64, observables: ObservablesVersion) -> CampaignThroughput {
    let campaign =
        Campaign::noise_grid(CampaignConfig::new(trials, 0).with_observables(observables));
    let start = Instant::now();
    let rows = campaign.run();
    let wall_seconds = start.elapsed().as_secs_f64();
    let probes: u64 = rows.iter().map(|r| r.probes).sum();
    // The rows report their own trial counts, so the metric can never
    // drift from the engine's cell-selection/clamping rules.
    let trials_total: u64 = rows.iter().map(|r| r.trials).sum();
    CampaignThroughput {
        observables,
        trials_per_cell: trials,
        wall_seconds,
        rows: rows.len(),
        probes,
        trials: trials_total,
        probes_per_sec: probes as f64 / wall_seconds.max(1e-9),
        trials_per_sec: trials_total as f64 / wall_seconds.max(1e-9),
    }
}

/// One measurement of the quiet-profile Fig. 4 sweep (the paper's
/// 512 × 2 MiB kernel scan), repeated until ~`min_probes` probes ran.
#[derive(Clone, Copy, Debug)]
pub struct SweepThroughput {
    /// Observables regime the sweep ran under.
    pub observables: ObservablesVersion,
    /// Raw probes issued.
    pub probes: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Probes per wall-clock second.
    pub probes_per_sec: f64,
}

/// Measures the quiet-profile Fig. 4 sweep throughput: one fresh system,
/// then repeated full 512-slot scans until at least `min_probes` raw
/// probes have been issued.
#[must_use]
pub fn measure_fig4_sweep(min_probes: u64) -> SweepThroughput {
    measure_fig4_sweep_with(min_probes, ObservablesVersion::V1)
}

/// [`measure_fig4_sweep`] under an explicit observables regime. The
/// sweep runs noise-free either way (quiet prober), so this isolates
/// the batched block plumbing's overhead from the sampler speedup.
#[must_use]
pub fn measure_fig4_sweep_with(
    min_probes: u64,
    observables: ObservablesVersion,
) -> SweepThroughput {
    let (mut p, truth) = crate::quiet_linux_prober(CpuProfile::alder_lake_i5_12400f(), 4);
    p.machine_mut().set_observables(observables);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    let finder = KernelBaseFinder::new(th);
    let start = Instant::now();
    let before = p.probes_issued();
    let mut scans = 0u64;
    while p.probes_issued() - before < min_probes {
        let scan = finder.scan(&mut p);
        assert_eq!(
            scan.base,
            Some(truth.kernel_base),
            "sweep must stay correct"
        );
        scans += 1;
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let probes = p.probes_issued() - before;
    let _ = scans;
    SweepThroughput {
        observables,
        probes,
        wall_seconds,
        probes_per_sec: probes as f64 / wall_seconds.max(1e-9),
    }
}

/// One measurement of the drifting-noise recalibration row: the
/// kernel-base campaign under the quiet→laptop ramp with the
/// closed-loop driver on — the tentpole scenario of the recalibration
/// engine, recorded so its cost (the loop re-probes its drift window
/// after a refit) stays on the perf trajectory.
#[derive(Clone, Copy, Debug)]
pub struct DriftRowThroughput {
    /// Observables regime the row ran under.
    pub observables: ObservablesVersion,
    /// Trials the row ran.
    pub trials: u64,
    /// Raw probes issued (calibration + rescans included).
    pub probes: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Probes per wall-clock second.
    pub probes_per_sec: f64,
    /// Accuracy of the closed-loop row, percent.
    pub accuracy_pct: f64,
}

/// Measures the closed-loop drift row (`repro --noise drift --adaptive
/// --calibrator noise-aware --recalibrate` as a campaign cell).
#[must_use]
pub fn measure_drift_row(trials: u64) -> DriftRowThroughput {
    measure_drift_row_with(trials, ObservablesVersion::V1)
}

/// [`measure_drift_row`] under an explicit observables regime. The
/// drift ramp is resolved per probe index in both regimes (v2 blocks
/// never quantize the ramp), so accuracy is comparable across them.
#[must_use]
pub fn measure_drift_row_with(trials: u64, observables: ObservablesVersion) -> DriftRowThroughput {
    let config = CampaignConfig::new(trials, 0)
        .with_noise(NoiseProfile::drift_quiet_to_laptop())
        .with_sampling(Sampling::adaptive())
        .with_calibrator(CalibratorKind::NoiseAware)
        .with_recalibration(RecalConfig::default())
        .with_observables(observables);
    let start = Instant::now();
    let row = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
    let wall_seconds = start.elapsed().as_secs_f64();
    DriftRowThroughput {
        observables,
        trials,
        probes: row.probes,
        wall_seconds,
        probes_per_sec: row.probes as f64 / wall_seconds.max(1e-9),
        accuracy_pct: row.accuracy.percent(),
    }
}

/// One measurement of the event-driven-victim row: the kernel-base
/// campaign against the square-wave DVFS victim with the closed-loop
/// driver on — the tentpole scenario of the schedule axis, recorded so
/// the cost of re-fitting against a victim that swaps noise presets on
/// its own wall clock stays on the perf trajectory.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleRowThroughput {
    /// Observables regime the row ran under.
    pub observables: ObservablesVersion,
    /// Victim schedule the row ran against.
    pub schedule: &'static str,
    /// Trials the row ran.
    pub trials: u64,
    /// Raw probes issued (calibration + rescans included).
    pub probes: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Probes per wall-clock second.
    pub probes_per_sec: f64,
    /// Accuracy of the closed-loop row, percent.
    pub accuracy_pct: f64,
}

/// Measures the closed-loop schedule row (`repro --schedule dvfs-square
/// --adaptive --calibrator noise-aware --recalibrate` as a campaign
/// cell).
#[must_use]
pub fn measure_schedule_row(trials: u64) -> ScheduleRowThroughput {
    measure_schedule_row_with(trials, ObservablesVersion::V1)
}

/// [`measure_schedule_row`] under an explicit observables regime. The
/// schedule's virtual clock ticks per victim-observed op in both
/// regimes, so accuracy is comparable across them.
#[must_use]
pub fn measure_schedule_row_with(
    trials: u64,
    observables: ObservablesVersion,
) -> ScheduleRowThroughput {
    let config = CampaignConfig::new(trials, 0)
        .with_schedule(ScheduleKind::DvfsSquare)
        .with_sampling(Sampling::adaptive())
        .with_calibrator(CalibratorKind::NoiseAware)
        .with_recalibration(RecalConfig::default())
        .with_observables(observables);
    let start = Instant::now();
    let row = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
    let wall_seconds = start.elapsed().as_secs_f64();
    ScheduleRowThroughput {
        observables,
        schedule: row.schedule,
        trials,
        probes: row.probes,
        wall_seconds,
        probes_per_sec: row.probes as f64 / wall_seconds.max(1e-9),
        accuracy_pct: row.accuracy.percent(),
    }
}

/// One measurement of the streaming fleet engine at population scale:
/// kernel-base victims under the default quiet/fixed/legacy/v1 config,
/// swept by [`avx_channel::fleet::Fleet`] with default sharding — the
/// scale-out row the defense-arena populations will be judged on.
#[derive(Clone, Copy, Debug)]
pub struct FleetThroughput {
    /// Observables regime the fleet ran under.
    pub observables: ObservablesVersion,
    /// Victims swept.
    pub victims: u64,
    /// Shards the population partitioned into.
    pub shards: u64,
    /// Raw probes issued across the population.
    pub probes: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Victims per wall-clock second — the fleet's headline metric.
    pub victims_per_sec: f64,
    /// Probes per wall-clock second.
    pub probes_per_sec: f64,
    /// Population accuracy, percent.
    pub accuracy_pct: f64,
}

/// Measures the streaming fleet at `victims` population size
/// (`repro --fleet N` as a standardized measurement; the recorded
/// trajectory row uses N = 10⁵).
#[must_use]
pub fn measure_fleet(victims: u64) -> FleetThroughput {
    let fleet = Fleet::new(
        Scenario::KernelBase,
        CpuProfile::alder_lake_i5_12400f(),
        CampaignConfig::default(),
        FleetConfig::new(victims),
    );
    let report = fleet.run().expect("checkpoint-free fleet run");
    FleetThroughput {
        observables: ObservablesVersion::V1,
        victims: report.aggregate.victims,
        shards: report.shards,
        probes: report.aggregate.probes,
        wall_seconds: report.wall_seconds,
        victims_per_sec: report.victims_per_sec(),
        probes_per_sec: report.probes_per_sec(),
        accuracy_pct: report.aggregate.accuracy().percent(),
    }
}

/// The full standardized measurement set: every workload under both
/// observables regimes. The v1 entries are what every pre-v3 record
/// held; the v2 entries are the batched-ziggurat counterparts.
#[derive(Clone, Copy, Debug)]
pub struct BenchMeasurements {
    /// Noise-grid campaign, v1 regime.
    pub grid: CampaignThroughput,
    /// Fig. 4 sweep, v1 regime.
    pub sweep: SweepThroughput,
    /// Closed-loop drift row, v1 regime.
    pub drift: DriftRowThroughput,
    /// Noise-grid campaign, v2 regime.
    pub grid_v2: CampaignThroughput,
    /// Fig. 4 sweep, v2 regime.
    pub sweep_v2: SweepThroughput,
    /// Closed-loop drift row, v2 regime.
    pub drift_v2: DriftRowThroughput,
    /// Streaming fleet at N = 10⁵ victims, v1 regime.
    pub fleet: FleetThroughput,
    /// Closed-loop square-wave-DVFS schedule row, v1 regime.
    pub schedule_row: ScheduleRowThroughput,
}

fn grid_json(grid: &CampaignThroughput) -> String {
    format!(
        "{{\n    \"observables\": \"{}\",\n    \"trials_per_cell\": {},\n    \
         \"rows\": {},\n    \"trials\": {},\n    \"probes\": {},\n    \
         \"wall_seconds\": {:.6},\n    \"probes_per_sec\": {:.1},\n    \
         \"trials_per_sec\": {:.3}\n  }}",
        grid.observables,
        grid.trials_per_cell,
        grid.rows,
        grid.trials,
        grid.probes,
        grid.wall_seconds,
        grid.probes_per_sec,
        grid.trials_per_sec,
    )
}

fn sweep_json(sweep: &SweepThroughput) -> String {
    format!(
        "{{\n    \"observables\": \"{}\",\n    \"probes\": {},\n    \
         \"wall_seconds\": {:.6},\n    \"probes_per_sec\": {:.1}\n  }}",
        sweep.observables, sweep.probes, sweep.wall_seconds, sweep.probes_per_sec,
    )
}

fn drift_json(drift: &DriftRowThroughput) -> String {
    format!(
        "{{\n    \"observables\": \"{}\",\n    \"trials\": {},\n    \
         \"probes\": {},\n    \"wall_seconds\": {:.6},\n    \
         \"probes_per_sec\": {:.1},\n    \"accuracy_pct\": {:.2}\n  }}",
        drift.observables,
        drift.trials,
        drift.probes,
        drift.wall_seconds,
        drift.probes_per_sec,
        drift.accuracy_pct,
    )
}

fn fleet_json(fleet: &FleetThroughput) -> String {
    format!(
        "{{\n    \"observables\": \"{}\",\n    \"victims\": {},\n    \
         \"shards\": {},\n    \"probes\": {},\n    \"wall_seconds\": {:.6},\n    \
         \"victims_per_sec\": {:.1},\n    \"probes_per_sec\": {:.1},\n    \
         \"accuracy_pct\": {:.2}\n  }}",
        fleet.observables,
        fleet.victims,
        fleet.shards,
        fleet.probes,
        fleet.wall_seconds,
        fleet.victims_per_sec,
        fleet.probes_per_sec,
        fleet.accuracy_pct,
    )
}

fn schedule_json(row: &ScheduleRowThroughput) -> String {
    format!(
        "{{\n    \"observables\": \"{}\",\n    \"schedule\": \"{}\",\n    \
         \"trials\": {},\n    \"probes\": {},\n    \"wall_seconds\": {:.6},\n    \
         \"probes_per_sec\": {:.1},\n    \"accuracy_pct\": {:.2}\n  }}",
        row.observables,
        row.schedule,
        row.trials,
        row.probes,
        row.wall_seconds,
        row.probes_per_sec,
        row.accuracy_pct,
    )
}

/// Serializes the measurements as the machine-readable
/// `BENCH_campaign.json` record (hand-rolled JSON; the build is
/// air-gapped, so no serde). Schema v5: every entry carries its
/// observables tag, the historical `grid`/`fig4_sweep`/`drift_row`
/// keys stay the v1 regime, the `*_v2` keys hold the batched ziggurat
/// counterparts, `fleet_row` records the streaming fleet at N = 10⁵
/// victims, and `schedule_row` the closed-loop campaign against the
/// square-wave-DVFS event-driven victim.
#[must_use]
pub fn bench_json(m: &BenchMeasurements) -> String {
    format!(
        "{{\n  \"schema\": \"avx-aslr/campaign-throughput/v5\",\n  \
         \"grid\": {},\n  \"fig4_sweep\": {},\n  \"drift_row\": {},\n  \
         \"grid_v2\": {},\n  \"fig4_sweep_v2\": {},\n  \"drift_row_v2\": {},\n  \
         \"fleet_row\": {},\n  \"schedule_row\": {}\n}}\n",
        grid_json(&m.grid),
        sweep_json(&m.sweep),
        drift_json(&m.drift),
        grid_json(&m.grid_v2),
        sweep_json(&m.sweep_v2),
        drift_json(&m.drift_v2),
        fleet_json(&m.fleet),
        schedule_json(&m.schedule_row),
    )
}

/// `--bench-json <path>` (or `--bench-json=<path>`) on the command
/// line: where the machine-readable throughput record should go.
#[must_use]
pub fn bench_json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--bench-json" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(value) = arg.strip_prefix("--bench-json=") {
            return Some(std::path::PathBuf::from(value));
        }
    }
    None
}

/// Runs the standardized throughput measurement and writes the JSON
/// record to `path` (the `repro --bench-json` entry point). Returns the
/// measurements for console reporting.
pub fn run_bench_json(path: &std::path::Path) -> std::io::Result<BenchMeasurements> {
    let m = BenchMeasurements {
        grid: measure_noise_grid(2),
        sweep: measure_fig4_sweep(64 * 1024),
        drift: measure_drift_row(8),
        grid_v2: measure_noise_grid_with(2, ObservablesVersion::V2),
        sweep_v2: measure_fig4_sweep_with(64 * 1024, ObservablesVersion::V2),
        drift_v2: measure_drift_row_with(8, ObservablesVersion::V2),
        fleet: measure_fleet(100_000),
        schedule_row: measure_schedule_row(8),
    };
    std::fs::write(path, bench_json(&m))?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measurement_reports_positive_throughput() {
        let sweep = measure_fig4_sweep(1024);
        assert!(sweep.probes >= 1024);
        assert!(sweep.probes_per_sec > 0.0);
    }

    fn fake_measurements() -> BenchMeasurements {
        let grid = CampaignThroughput {
            observables: ObservablesVersion::V1,
            trials_per_cell: 2,
            wall_seconds: 1.5,
            rows: 56,
            probes: 1_000_000,
            trials: 100,
            probes_per_sec: 666_666.7,
            trials_per_sec: 66.7,
        };
        let sweep = SweepThroughput {
            observables: ObservablesVersion::V1,
            probes: 2048,
            wall_seconds: 0.01,
            probes_per_sec: 204_800.0,
        };
        let drift = DriftRowThroughput {
            observables: ObservablesVersion::V1,
            trials: 8,
            probes: 20_000,
            wall_seconds: 0.02,
            probes_per_sec: 1_000_000.0,
            accuracy_pct: 100.0,
        };
        BenchMeasurements {
            grid,
            sweep,
            drift,
            grid_v2: CampaignThroughput {
                observables: ObservablesVersion::V2,
                ..grid
            },
            sweep_v2: SweepThroughput {
                observables: ObservablesVersion::V2,
                ..sweep
            },
            drift_v2: DriftRowThroughput {
                observables: ObservablesVersion::V2,
                ..drift
            },
            fleet: FleetThroughput {
                observables: ObservablesVersion::V1,
                victims: 100_000,
                shards: 98,
                probes: 104_100_000,
                wall_seconds: 12.0,
                victims_per_sec: 8_333.3,
                probes_per_sec: 8_675_000.0,
                accuracy_pct: 99.8,
            },
            schedule_row: ScheduleRowThroughput {
                observables: ObservablesVersion::V1,
                schedule: "dvfs-square",
                trials: 8,
                probes: 25_000,
                wall_seconds: 0.02,
                probes_per_sec: 1_250_000.0,
                accuracy_pct: 100.0,
            },
        }
    }

    #[test]
    fn bench_json_is_well_formed() {
        let json = bench_json(&fake_measurements());
        assert!(json.contains("\"probes_per_sec\""));
        assert!(json.contains("campaign-throughput/v5"));
        assert!(json.contains("\"drift_row\""));
        assert!(json.contains("\"accuracy_pct\""));
        // Both regimes appear, each tagged with its observables name.
        assert!(json.contains("\"grid_v2\""));
        assert!(json.contains("\"fig4_sweep_v2\""));
        assert!(json.contains("\"drift_row_v2\""));
        assert!(json.contains("\"observables\": \"v1\""));
        assert!(json.contains("\"observables\": \"v2\""));
        // The fleet row carries the population-scale metrics.
        assert!(json.contains("\"fleet_row\""));
        assert!(json.contains("\"victims_per_sec\""));
        // The schedule row tags the victim schedule it ran against.
        assert!(json.contains("\"schedule_row\""));
        assert!(json.contains("\"schedule\": \"dvfs-square\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"observables\"").count(), 8);
    }

    #[test]
    fn fleet_measurement_reports_positive_throughput() {
        let fleet = measure_fleet(128);
        assert_eq!(fleet.victims, 128);
        assert_eq!(fleet.shards, 1);
        assert!(fleet.probes > 0);
        assert!(fleet.victims_per_sec > 0.0);
        assert!(fleet.probes_per_sec > 0.0);
        assert!(fleet.accuracy_pct >= 90.0, "{}", fleet.accuracy_pct);
    }

    #[test]
    fn v2_sweep_measurement_reports_positive_throughput() {
        let sweep = measure_fig4_sweep_with(1024, ObservablesVersion::V2);
        assert_eq!(sweep.observables, ObservablesVersion::V2);
        assert!(sweep.probes >= 1024);
        assert!(sweep.probes_per_sec > 0.0);
    }

    #[test]
    fn schedule_row_measurement_recovers_and_reports_throughput() {
        let row = measure_schedule_row(2);
        assert_eq!(row.trials, 2);
        assert_eq!(row.schedule, "dvfs-square");
        assert!(row.probes > 0);
        assert!(row.probes_per_sec > 0.0);
        assert!(row.accuracy_pct >= 50.0, "{}", row.accuracy_pct);
    }

    #[test]
    fn drift_row_measurement_recovers_and_reports_throughput() {
        let drift = measure_drift_row(2);
        assert_eq!(drift.trials, 2);
        assert!(drift.probes > 0);
        assert!(drift.probes_per_sec > 0.0);
        assert!(drift.accuracy_pct >= 50.0, "{}", drift.accuracy_pct);
    }
}
