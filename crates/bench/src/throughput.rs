//! End-to-end campaign throughput measurement.
//!
//! The paper's headline numbers are wall-clock (Table I, Fig. 4/5
//! sweeps), so *simulator* throughput — probes per second and trials per
//! second of the full attack × CPU × noise grid — is what gates scaling
//! the campaign matrix. This module is the standardized measurement the
//! `campaign_throughput` bench, the `repro --bench-json` flag and the CI
//! throughput smoke all share, so every recorded number is comparable
//! across PRs.

use std::time::Instant;

use avx_channel::attacks::campaign::{Campaign, CampaignConfig, Scenario};
use avx_channel::{CalibratorKind, KernelBaseFinder, Prober, RecalConfig, Sampling, Threshold};
use avx_uarch::{CpuProfile, NoiseProfile};

/// One end-to-end measurement of the full noise-grid campaign.
#[derive(Clone, Copy, Debug)]
pub struct CampaignThroughput {
    /// Requested trials per cell (heavyweight cells are capped by
    /// [`avx_channel::attacks::campaign::Scenario::max_trials`]).
    pub trials_per_cell: u64,
    /// Wall-clock seconds of the whole grid run.
    pub wall_seconds: f64,
    /// Campaign rows produced.
    pub rows: usize,
    /// Raw simulated probes issued across all rows.
    pub probes: u64,
    /// Trials executed across all rows (success records of the base
    /// scenarios; per-module/sample records count their trial once).
    pub trials: u64,
    /// Probes per wall-clock second — the headline throughput metric.
    pub probes_per_sec: f64,
    /// Trials per wall-clock second.
    pub trials_per_sec: f64,
}

/// Runs the full attack × CPU × noise grid once and reports throughput.
#[must_use]
pub fn measure_noise_grid(trials: u64) -> CampaignThroughput {
    let campaign = Campaign::noise_grid(CampaignConfig::new(trials, 0));
    let start = Instant::now();
    let rows = campaign.run();
    let wall_seconds = start.elapsed().as_secs_f64();
    let probes: u64 = rows.iter().map(|r| r.probes).sum();
    // The rows report their own trial counts, so the metric can never
    // drift from the engine's cell-selection/clamping rules.
    let trials_total: u64 = rows.iter().map(|r| r.trials).sum();
    CampaignThroughput {
        trials_per_cell: trials,
        wall_seconds,
        rows: rows.len(),
        probes,
        trials: trials_total,
        probes_per_sec: probes as f64 / wall_seconds.max(1e-9),
        trials_per_sec: trials_total as f64 / wall_seconds.max(1e-9),
    }
}

/// One measurement of the quiet-profile Fig. 4 sweep (the paper's
/// 512 × 2 MiB kernel scan), repeated until ~`min_probes` probes ran.
#[derive(Clone, Copy, Debug)]
pub struct SweepThroughput {
    /// Raw probes issued.
    pub probes: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Probes per wall-clock second.
    pub probes_per_sec: f64,
}

/// Measures the quiet-profile Fig. 4 sweep throughput: one fresh system,
/// then repeated full 512-slot scans until at least `min_probes` raw
/// probes have been issued.
#[must_use]
pub fn measure_fig4_sweep(min_probes: u64) -> SweepThroughput {
    let (mut p, truth) = crate::quiet_linux_prober(CpuProfile::alder_lake_i5_12400f(), 4);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    let finder = KernelBaseFinder::new(th);
    let start = Instant::now();
    let before = p.probes_issued();
    let mut scans = 0u64;
    while p.probes_issued() - before < min_probes {
        let scan = finder.scan(&mut p);
        assert_eq!(
            scan.base,
            Some(truth.kernel_base),
            "sweep must stay correct"
        );
        scans += 1;
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let probes = p.probes_issued() - before;
    let _ = scans;
    SweepThroughput {
        probes,
        wall_seconds,
        probes_per_sec: probes as f64 / wall_seconds.max(1e-9),
    }
}

/// One measurement of the drifting-noise recalibration row: the
/// kernel-base campaign under the quiet→laptop ramp with the
/// closed-loop driver on — the tentpole scenario of the recalibration
/// engine, recorded so its cost (the loop re-probes its drift window
/// after a refit) stays on the perf trajectory.
#[derive(Clone, Copy, Debug)]
pub struct DriftRowThroughput {
    /// Trials the row ran.
    pub trials: u64,
    /// Raw probes issued (calibration + rescans included).
    pub probes: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Probes per wall-clock second.
    pub probes_per_sec: f64,
    /// Accuracy of the closed-loop row, percent.
    pub accuracy_pct: f64,
}

/// Measures the closed-loop drift row (`repro --noise drift --adaptive
/// --calibrator noise-aware --recalibrate` as a campaign cell).
#[must_use]
pub fn measure_drift_row(trials: u64) -> DriftRowThroughput {
    let config = CampaignConfig::new(trials, 0)
        .with_noise(NoiseProfile::drift_quiet_to_laptop())
        .with_sampling(Sampling::adaptive())
        .with_calibrator(CalibratorKind::NoiseAware)
        .with_recalibration(RecalConfig::default());
    let start = Instant::now();
    let row = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
    let wall_seconds = start.elapsed().as_secs_f64();
    DriftRowThroughput {
        trials,
        probes: row.probes,
        wall_seconds,
        probes_per_sec: row.probes as f64 / wall_seconds.max(1e-9),
        accuracy_pct: row.accuracy.percent(),
    }
}

/// Serializes the two measurements as the machine-readable
/// `BENCH_campaign.json` record (hand-rolled JSON; the build is
/// air-gapped, so no serde).
#[must_use]
pub fn bench_json(
    grid: &CampaignThroughput,
    sweep: &SweepThroughput,
    drift: &DriftRowThroughput,
) -> String {
    format!(
        "{{\n  \"schema\": \"avx-aslr/campaign-throughput/v2\",\n  \
         \"grid\": {{\n    \"trials_per_cell\": {},\n    \"rows\": {},\n    \
         \"trials\": {},\n    \"probes\": {},\n    \"wall_seconds\": {:.6},\n    \
         \"probes_per_sec\": {:.1},\n    \"trials_per_sec\": {:.3}\n  }},\n  \
         \"fig4_sweep\": {{\n    \"probes\": {},\n    \"wall_seconds\": {:.6},\n    \
         \"probes_per_sec\": {:.1}\n  }},\n  \
         \"drift_row\": {{\n    \"trials\": {},\n    \"probes\": {},\n    \
         \"wall_seconds\": {:.6},\n    \"probes_per_sec\": {:.1},\n    \
         \"accuracy_pct\": {:.2}\n  }}\n}}\n",
        grid.trials_per_cell,
        grid.rows,
        grid.trials,
        grid.probes,
        grid.wall_seconds,
        grid.probes_per_sec,
        grid.trials_per_sec,
        sweep.probes,
        sweep.wall_seconds,
        sweep.probes_per_sec,
        drift.trials,
        drift.probes,
        drift.wall_seconds,
        drift.probes_per_sec,
        drift.accuracy_pct,
    )
}

/// `--bench-json <path>` (or `--bench-json=<path>`) on the command
/// line: where the machine-readable throughput record should go.
#[must_use]
pub fn bench_json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--bench-json" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(value) = arg.strip_prefix("--bench-json=") {
            return Some(std::path::PathBuf::from(value));
        }
    }
    None
}

/// Runs the standardized throughput measurement and writes the JSON
/// record to `path` (the `repro --bench-json` entry point). Returns the
/// measurements for console reporting.
pub fn run_bench_json(
    path: &std::path::Path,
) -> std::io::Result<(CampaignThroughput, SweepThroughput, DriftRowThroughput)> {
    let grid = measure_noise_grid(2);
    let sweep = measure_fig4_sweep(64 * 1024);
    let drift = measure_drift_row(8);
    std::fs::write(path, bench_json(&grid, &sweep, &drift))?;
    Ok((grid, sweep, drift))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measurement_reports_positive_throughput() {
        let sweep = measure_fig4_sweep(1024);
        assert!(sweep.probes >= 1024);
        assert!(sweep.probes_per_sec > 0.0);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let grid = CampaignThroughput {
            trials_per_cell: 2,
            wall_seconds: 1.5,
            rows: 56,
            probes: 1_000_000,
            trials: 100,
            probes_per_sec: 666_666.7,
            trials_per_sec: 66.7,
        };
        let sweep = SweepThroughput {
            probes: 2048,
            wall_seconds: 0.01,
            probes_per_sec: 204_800.0,
        };
        let drift = DriftRowThroughput {
            trials: 8,
            probes: 20_000,
            wall_seconds: 0.02,
            probes_per_sec: 1_000_000.0,
            accuracy_pct: 100.0,
        };
        let json = bench_json(&grid, &sweep, &drift);
        assert!(json.contains("\"probes_per_sec\""));
        assert!(json.contains("campaign-throughput/v2"));
        assert!(json.contains("\"drift_row\""));
        assert!(json.contains("\"accuracy_pct\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn drift_row_measurement_recovers_and_reports_throughput() {
        let drift = measure_drift_row(2);
        assert_eq!(drift.trials, 2);
        assert!(drift.probes > 0);
        assert!(drift.probes_per_sec > 0.0);
        assert!(drift.accuracy_pct >= 50.0, "{}", drift.accuracy_pct);
    }
}
