//! # avx-bench — the reproduction harness
//!
//! Shared machinery for the Criterion benches (one per table/figure of
//! the paper) and the `repro` binary that regenerates every number in
//! `EXPERIMENTS.md`.
//!
//! The `paper` module records the published values so every bench can
//! print a paper-vs-measured comparison next to its timing output.

pub mod throughput;

use avx_channel::{
    CalibratorKind, ConfirmConfig, DefenseKind, RecalConfig, Sampling, ScheduleKind, SimProber,
    Threshold,
};
use avx_os::linux::{LinuxConfig, LinuxSystem, LinuxTruth};
use avx_uarch::{CpuProfile, NoiseModel, NoiseProfile, ObservablesVersion};

/// The paper's published numbers, used for side-by-side reporting.
pub mod paper {
    /// Fig. 2 masked-load means on the i7-1065G7 (cycles):
    /// USER-M, USER-U, KERNEL-M, KERNEL-U.
    pub const FIG2_MEANS: [f64; 4] = [13.0, 110.0, 93.0, 107.0];
    /// Fig. 2 `ASSISTS.ANY` per probe.
    pub const FIG2_ASSISTS: [u64; 4] = [0, 1, 1, 1];
    /// Fig. 2 completed walks per probe.
    pub const FIG2_WALKS: [u64; 4] = [0, 2, 0, 2];
    /// Fig. 3 masked-load means (r--, r-x, rw-, ---).
    pub const FIG3_LOAD: [f64; 4] = [16.0, 16.0, 16.0, 115.0];
    /// Fig. 3 masked-store means (r--, r-x, rw-, ---).
    pub const FIG3_STORE: [f64; 4] = [82.0, 82.0, 16.0, 96.0];
    /// §III-B P4 on the i9-9900: (TLB hit, TLB miss) cycles.
    pub const P4_HIT_MISS: (f64, f64) = (147.0, 381.0);
    /// §III-B P6 on the i7-1065G7: (masked load, masked store) cycles
    /// on a kernel-mapped page.
    pub const P6_LOAD_STORE: (f64, f64) = (92.0, 76.0);
    /// Fig. 4 bands on the i5-12400F: (mapped, unmapped) cycles.
    pub const FIG4_BANDS: (f64, f64) = (93.0, 107.0);
    /// Table I rows: (cpu, target, probing, total, accuracy %).
    pub const TABLE1: [(&str, &str, &str, &str, f64); 5] = [
        ("Intel Core i5-12400F", "Base", "67 µs", "0.28 ms", 99.60),
        (
            "Intel Core i5-12400F",
            "Modules",
            "2.43 ms",
            "2.62 ms",
            99.84,
        ),
        ("Intel Core i7-1065G7", "Base", "0.26 ms", "0.57 ms", 99.29),
        (
            "Intel Core i7-1065G7",
            "Modules",
            "8.42 ms",
            "8.64 ms",
            99.72,
        ),
        ("AMD Ryzen 5 5600X", "Base", "1.91 ms", "2.90 ms", 99.48),
    ];
    /// §IV-C: loaded modules / unique sizes / accuracy %.
    pub const MODULES: (usize, usize, f64) = (125, 19, 99.72);
    /// §IV-D trampoline offset observed on Ubuntu.
    pub const KPTI_TRAMPOLINE: u64 = 0xc0_0000;
    /// §IV-F runtimes: (masked-load scan, masked-store scan) seconds.
    pub const SGX_SCAN_SECONDS: (f64, f64) = (51.0, 44.0);
    /// §IV-G: Windows region scan ≈ 60 ms; KVAS scan 8 s at 100 %.
    pub const WINDOWS_REGION_MS: f64 = 60.0;
    /// §IV-H cloud runtimes (seconds): EC2 base, EC2 modules, GCE base,
    /// GCE modules, Azure 18-bit scan.
    pub const CLOUD_SECONDS: [f64; 5] = [0.03e-3, 1.14e-3, 0.08e-3, 2.7e-3, 2.06];
    /// §V-B survey: 6 of 4104 executables contain masked ops.
    pub const SURVEY: (usize, usize) = (6, 4104);
}

/// Builds a Linux machine + prober on `profile`, with realistic noise.
#[must_use]
pub fn linux_prober(profile: CpuProfile, seed: u64) -> (SimProber, LinuxTruth) {
    let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (machine, truth) = sys.into_machine(profile, seed.wrapping_add(0x9e37_79b9));
    (SimProber::new(machine), truth)
}

/// Builds a Linux machine + prober with custom config.
#[must_use]
pub fn linux_prober_with(
    config: LinuxConfig,
    profile: CpuProfile,
    seed: u64,
) -> (SimProber, LinuxTruth) {
    let sys = LinuxSystem::build(config);
    let (machine, truth) = sys.into_machine(profile, seed.wrapping_add(0x9e37_79b9));
    (SimProber::new(machine), truth)
}

/// Same, with timing noise disabled (deterministic mean extraction).
#[must_use]
pub fn quiet_linux_prober(profile: CpuProfile, seed: u64) -> (SimProber, LinuxTruth) {
    let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (mut machine, truth) = sys.into_machine(profile, seed.wrapping_add(0x9e37_79b9));
    machine.set_noise(NoiseModel::none());
    (SimProber::new(machine), truth)
}

/// Calibrates the §IV-B threshold on a fresh prober.
pub fn calibrate(p: &mut SimProber, truth: &LinuxTruth) -> Threshold {
    Threshold::calibrate(p, truth.user.calibration, 16)
}

/// Gaussian-jitter-only noise for the §III characterization benches:
/// the paper measures those distributions on a quiescent machine where
/// interrupt spikes are rare enough to be filtered, hence σ ≈ 1 cycle.
/// The end-to-end attack benches keep the full noise model.
#[must_use]
pub fn sigma_only_noise(profile: &CpuProfile) -> NoiseModel {
    NoiseModel::new(profile.timing.noise_sigma, 0.0, (0.0, 0.0))
}

/// Number of trials for accuracy sweeps; override with the
/// `AVX_TRIALS` environment variable (the paper uses n = 10000, which
/// is minutes of simulation — the default keeps `cargo bench` snappy).
#[must_use]
pub fn accuracy_trials() -> u64 {
    std::env::var("AVX_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Noise environment for the campaign sections: `--noise <name>` (or
/// `--noise=<name>`) on the command line, else the `AVX_NOISE`
/// environment variable, else the quiet host. Unknown names fall back
/// to quiet rather than aborting a long repro run.
#[must_use]
pub fn noise_profile() -> NoiseProfile {
    let mut args = std::env::args();
    let mut from_args = None;
    while let Some(arg) = args.next() {
        if arg == "--noise" {
            from_args = args.next();
            break;
        }
        if let Some(value) = arg.strip_prefix("--noise=") {
            from_args = Some(value.to_string());
            break;
        }
    }
    from_args
        .or_else(|| std::env::var("AVX_NOISE").ok())
        .and_then(|v| NoiseProfile::parse(&v))
        .unwrap_or(NoiseProfile::Quiet)
}

/// Threshold estimator for the campaign sections:
/// `--calibrator legacy|trimmed|bimodal|noise-aware` (or
/// `--calibrator=<name>`) on the command line, else the
/// `AVX_CALIBRATOR` environment variable, else the historical
/// [`CalibratorKind::Legacy`] min-pulled floor. Unknown names fall
/// back to legacy rather than aborting a long repro run.
#[must_use]
pub fn calibrator_kind() -> CalibratorKind {
    let mut args = std::env::args();
    let mut from_args = None;
    while let Some(arg) = args.next() {
        if arg == "--calibrator" {
            from_args = args.next();
            break;
        }
        if let Some(value) = arg.strip_prefix("--calibrator=") {
            from_args = Some(value.to_string());
            break;
        }
    }
    from_args
        .or_else(|| std::env::var("AVX_CALIBRATOR").ok())
        .and_then(|v| CalibratorKind::parse(&v))
        .unwrap_or(CalibratorKind::Legacy)
}

/// Closed-loop recalibration for the campaign sections: `--recalibrate`
/// (or `AVX_RECALIBRATE=1`) runs every sweep attack under the
/// [`avx_channel::recal::Recalibrating`] driver with the pinned default
/// [`RecalConfig`]. Off by default — the paper's one-shot calibration.
#[must_use]
pub fn recal_config() -> Option<RecalConfig> {
    let from_args = std::env::args().any(|a| a == "--recalibrate");
    let from_env = std::env::var("AVX_RECALIBRATE")
        .map(|v| !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")))
        .unwrap_or(false);
    (from_args || from_env).then(RecalConfig::default)
}

/// Confirmation decision layer for the campaign sections: `--confirm`
/// (or `AVX_CONFIRM=1`) re-tests every needle-in-haystack candidate
/// through [`avx_channel::decision`] with the pinned default
/// [`ConfirmConfig`]. Off by default — the historical first-mapped-wins
/// detection rules.
#[must_use]
pub fn confirm_config() -> Option<ConfirmConfig> {
    let from_args = std::env::args().any(|a| a == "--confirm");
    let from_env = std::env::var("AVX_CONFIRM")
        .map(|v| !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")))
        .unwrap_or(false);
    (from_args || from_env).then(ConfirmConfig::default)
}

/// Observables regime for the campaign sections:
/// `--observables v1|v2` (or `--observables=<name>`) on the command
/// line, else the `AVX_OBSERVABLES` environment variable, else the
/// bit-exact [`ObservablesVersion::V1`] stream. Unknown names fall back
/// to v1 rather than aborting a long repro run.
#[must_use]
pub fn observables_version() -> ObservablesVersion {
    let mut args = std::env::args();
    let mut from_args = None;
    while let Some(arg) = args.next() {
        if arg == "--observables" {
            from_args = args.next();
            break;
        }
        if let Some(value) = arg.strip_prefix("--observables=") {
            from_args = Some(value.to_string());
            break;
        }
    }
    from_args
        .or_else(|| std::env::var("AVX_OBSERVABLES").ok())
        .and_then(|v| ObservablesVersion::parse(&v))
        .unwrap_or(ObservablesVersion::V1)
}

/// Victim-side defense for the campaign sections:
/// `--defense none|masked|rerandomizing` (or `--defense=<name>`) on the
/// command line, else the `AVX_DEFENSE` environment variable, else the
/// undefended [`DefenseKind::None`] victim — which is architecturally
/// silent, so the default repro output is bit-exact. Unknown names fall
/// back to none rather than aborting a long repro run.
#[must_use]
pub fn defense_kind() -> DefenseKind {
    arg_value("defense")
        .or_else(|| std::env::var("AVX_DEFENSE").ok())
        .and_then(|v| DefenseKind::parse(&v))
        .unwrap_or(DefenseKind::None)
}

/// Raw victim-schedule selector for the campaign sections:
/// `--schedule <name|trace-file>` (or `--schedule=<value>`) on the
/// command line, else the `AVX_SCHEDULE` environment variable. The
/// repro binary treats values that are not preset names as trace-file
/// paths (see `docs/VICTIMS.md` for the grammar).
#[must_use]
pub fn schedule_spec() -> Option<String> {
    arg_value("schedule").or_else(|| std::env::var("AVX_SCHEDULE").ok())
}

/// Victim event schedule for the campaign sections, resolved to a
/// preset: `--schedule none|dvfs-square|cotenant-burst|module-churn`
/// (or `AVX_SCHEDULE=<name>`), else the event-free
/// [`ScheduleKind::None`] victim — which installs nothing, so the
/// default repro output is bit-exact. Non-preset values (trace-file
/// paths, typos) fall back to none here; the repro binary's schedule
/// section separately demonstrates trace files.
#[must_use]
pub fn schedule_kind() -> ScheduleKind {
    schedule_spec()
        .and_then(|v| ScheduleKind::parse(&v))
        .unwrap_or(ScheduleKind::None)
}

/// Value of `--<name> <value>` or `--<name>=<value>` on the command
/// line. Exact-name match: `--fleet` never swallows `--fleet-shards`.
fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let prefixed = format!("--{name}=");
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == flag {
            return args.next();
        }
        if let Some(value) = arg.strip_prefix(&prefixed) {
            return Some(value.to_string());
        }
    }
    None
}

/// Fleet population size: `--fleet N` (or `AVX_FLEET=N`) switches the
/// repro binary into the streaming population-sweep mode of
/// [`avx_channel::fleet`]. `None` — the default — runs the classic
/// figure/table repro.
#[must_use]
pub fn fleet_victims() -> Option<u64> {
    arg_value("fleet")
        .or_else(|| std::env::var("AVX_FLEET").ok())
        .and_then(|v| v.parse().ok())
}

/// Fleet shard count: `--fleet-shards K` (or `AVX_FLEET_SHARDS=K`)
/// partitions the population into K contiguous shards instead of the
/// default ~1024-victim shard size.
#[must_use]
pub fn fleet_shards() -> Option<u64> {
    arg_value("fleet-shards")
        .or_else(|| std::env::var("AVX_FLEET_SHARDS").ok())
        .and_then(|v| v.parse().ok())
}

/// Fleet checkpoint file: `--fleet-checkpoint <path>` (or
/// `AVX_FLEET_CHECKPOINT=<path>`) enables shard-granular
/// checkpoint/resume.
#[must_use]
pub fn fleet_checkpoint() -> Option<std::path::PathBuf> {
    arg_value("fleet-checkpoint")
        .or_else(|| std::env::var("AVX_FLEET_CHECKPOINT").ok())
        .map(std::path::PathBuf::from)
}

/// Fleet per-run shard cap: `--fleet-max-shards M` (or
/// `AVX_FLEET_MAX_SHARDS=M`) executes at most M pending shards before
/// returning — the kill-and-resume lever the CI resume smoke uses.
#[must_use]
pub fn fleet_max_shards() -> Option<u64> {
    arg_value("fleet-max-shards")
        .or_else(|| std::env::var("AVX_FLEET_MAX_SHARDS").ok())
        .and_then(|v| v.parse().ok())
}

/// Probe-budget policy for the campaign sections: `--adaptive` (or
/// `AVX_ADAPTIVE=1`) switches from the paper's fixed schedule to the
/// SPRT engine; `--fixed-budget` selects the noise-robust fixed
/// comparator.
#[must_use]
pub fn sampling_policy() -> Sampling {
    let args: Vec<String> = std::env::args().collect();
    let env_adaptive = std::env::var("AVX_ADAPTIVE")
        .map(|v| !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")))
        .unwrap_or(false);
    if args.iter().any(|a| a == "--adaptive") || env_adaptive {
        Sampling::adaptive()
    } else if args.iter().any(|a| a == "--fixed-budget") {
        Sampling::fixed_budget()
    } else {
        Sampling::Fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avx_channel::KernelBaseFinder;

    #[test]
    fn helpers_compose_into_a_working_attack() {
        let (mut p, truth) = quiet_linux_prober(CpuProfile::alder_lake_i5_12400f(), 3);
        let th = calibrate(&mut p, &truth);
        let scan = KernelBaseFinder::new(th).scan(&mut p);
        assert_eq!(scan.base, Some(truth.kernel_base));
    }

    #[test]
    fn trials_default_and_override() {
        std::env::remove_var("AVX_TRIALS");
        assert_eq!(accuracy_trials(), 60);
    }

    #[test]
    fn noise_and_sampling_defaults_are_the_paper_setup() {
        std::env::remove_var("AVX_NOISE");
        std::env::remove_var("AVX_ADAPTIVE");
        assert_eq!(noise_profile(), NoiseProfile::Quiet);
        assert_eq!(sampling_policy(), Sampling::Fixed);
        // Explicitly-off values of the env knob stay off.
        for off in ["0", "", "false", "FALSE"] {
            std::env::set_var("AVX_ADAPTIVE", off);
            assert_eq!(sampling_policy(), Sampling::Fixed, "AVX_ADAPTIVE={off:?}");
        }
        std::env::set_var("AVX_ADAPTIVE", "1");
        assert_eq!(sampling_policy(), Sampling::adaptive());
        std::env::remove_var("AVX_ADAPTIVE");
    }

    #[test]
    fn recalibration_defaults_off_and_honors_the_env_knob() {
        std::env::remove_var("AVX_RECALIBRATE");
        assert_eq!(recal_config(), None);
        std::env::set_var("AVX_RECALIBRATE", "1");
        assert_eq!(recal_config(), Some(RecalConfig::default()));
        std::env::set_var("AVX_RECALIBRATE", "0");
        assert_eq!(recal_config(), None);
        std::env::remove_var("AVX_RECALIBRATE");
    }

    #[test]
    fn confirmation_defaults_off_and_honors_the_env_knob() {
        std::env::remove_var("AVX_CONFIRM");
        assert_eq!(confirm_config(), None);
        std::env::set_var("AVX_CONFIRM", "1");
        assert_eq!(confirm_config(), Some(ConfirmConfig::default()));
        std::env::set_var("AVX_CONFIRM", "false");
        assert_eq!(confirm_config(), None);
        std::env::remove_var("AVX_CONFIRM");
    }

    #[test]
    fn observables_default_to_v1_and_honor_the_env_knob() {
        std::env::remove_var("AVX_OBSERVABLES");
        assert_eq!(observables_version(), ObservablesVersion::V1);
        std::env::set_var("AVX_OBSERVABLES", "v2");
        assert_eq!(observables_version(), ObservablesVersion::V2);
        // Unknown names fall back instead of aborting a long repro run.
        std::env::set_var("AVX_OBSERVABLES", "v9");
        assert_eq!(observables_version(), ObservablesVersion::V1);
        std::env::remove_var("AVX_OBSERVABLES");
    }

    #[test]
    fn fleet_flags_default_off_and_honor_the_env_knobs() {
        for var in [
            "AVX_FLEET",
            "AVX_FLEET_SHARDS",
            "AVX_FLEET_CHECKPOINT",
            "AVX_FLEET_MAX_SHARDS",
        ] {
            std::env::remove_var(var);
        }
        assert_eq!(fleet_victims(), None);
        assert_eq!(fleet_shards(), None);
        assert_eq!(fleet_checkpoint(), None);
        assert_eq!(fleet_max_shards(), None);
        std::env::set_var("AVX_FLEET", "100000");
        assert_eq!(fleet_victims(), Some(100_000));
        std::env::set_var("AVX_FLEET_SHARDS", "4");
        assert_eq!(fleet_shards(), Some(4));
        std::env::set_var("AVX_FLEET_CHECKPOINT", "/tmp/ck.json");
        assert_eq!(
            fleet_checkpoint(),
            Some(std::path::PathBuf::from("/tmp/ck.json"))
        );
        std::env::set_var("AVX_FLEET_MAX_SHARDS", "1");
        assert_eq!(fleet_max_shards(), Some(1));
        // Unparseable numbers fall back instead of aborting.
        std::env::set_var("AVX_FLEET", "lots");
        assert_eq!(fleet_victims(), None);
        for var in [
            "AVX_FLEET",
            "AVX_FLEET_SHARDS",
            "AVX_FLEET_CHECKPOINT",
            "AVX_FLEET_MAX_SHARDS",
        ] {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn defense_defaults_to_none_and_honors_the_env_knob() {
        std::env::remove_var("AVX_DEFENSE");
        assert_eq!(defense_kind(), DefenseKind::None);
        std::env::set_var("AVX_DEFENSE", "masked");
        assert_eq!(defense_kind(), DefenseKind::MaskedTranslation);
        std::env::set_var("AVX_DEFENSE", "rerandomizing");
        assert_eq!(defense_kind(), DefenseKind::Rerandomizing);
        // Unknown names fall back instead of aborting a long repro run.
        std::env::set_var("AVX_DEFENSE", "bogus");
        assert_eq!(defense_kind(), DefenseKind::None);
        std::env::remove_var("AVX_DEFENSE");
    }

    #[test]
    fn schedule_defaults_to_none_and_honors_the_env_knob() {
        std::env::remove_var("AVX_SCHEDULE");
        assert_eq!(schedule_kind(), ScheduleKind::None);
        assert_eq!(schedule_spec(), None);
        std::env::set_var("AVX_SCHEDULE", "dvfs-square");
        assert_eq!(schedule_kind(), ScheduleKind::DvfsSquare);
        std::env::set_var("AVX_SCHEDULE", "cotenant-burst");
        assert_eq!(schedule_kind(), ScheduleKind::CoTenantBurst);
        // Non-preset values (trace-file paths) resolve to none at the
        // preset layer but stay visible through the raw spec.
        std::env::set_var("AVX_SCHEDULE", "/tmp/victim.trace");
        assert_eq!(schedule_kind(), ScheduleKind::None);
        assert_eq!(schedule_spec(), Some("/tmp/victim.trace".to_string()));
        std::env::remove_var("AVX_SCHEDULE");
    }

    #[test]
    fn calibrator_defaults_to_legacy_and_honors_the_env_knob() {
        std::env::remove_var("AVX_CALIBRATOR");
        assert_eq!(calibrator_kind(), CalibratorKind::Legacy);
        std::env::set_var("AVX_CALIBRATOR", "noise-aware");
        assert_eq!(calibrator_kind(), CalibratorKind::NoiseAware);
        // Unknown names fall back instead of aborting a long repro run.
        std::env::set_var("AVX_CALIBRATOR", "bogus");
        assert_eq!(calibrator_kind(), CalibratorKind::Legacy);
        std::env::remove_var("AVX_CALIBRATOR");
    }
}
