//! Regenerates every table and figure of the paper in one run.
//!
//! ```text
//! cargo run -p avx-bench --release --bin repro            # default trials
//! AVX_TRIALS=10000 cargo run -p avx-bench --release --bin repro   # paper-scale n
//! cargo run -p avx-bench --release --bin repro -- --noise smt --adaptive
//! ```
//!
//! `--noise quiet|smt|laptop|cloud|drift` selects the victim's noise
//! environment for the campaign sections (`drift` is the quiet→laptop
//! mid-scan ramp), `--adaptive` / `--fixed-budget` select the
//! probe-budget policy, `--recalibrate` runs every sweep attack
//! under the closed-loop recalibration driver, `--confirm` layers the
//! confirmation decision policy over every needle-in-haystack scan,
//! `--observables v1|v2` selects the noise-observables regime (v1
//! is the bit-exact paper stream, v2 the batched ziggurat kernel),
//! `--defense none|masked|rerandomizing` runs the campaign sections
//! against a defended victim (see `docs/DEFENSES.md`), and
//! `--schedule none|dvfs-square|cotenant-burst|module-churn` runs them
//! against an event-driven victim whose environment changes on a
//! virtual wall clock mid-scan — a non-preset `--schedule` value is
//! read as a trace file in the grammar of `docs/VICTIMS.md` — together
//! they reproduce the probes-per-address numbers of the noise-scenario
//! matrix and the drifting-noise recovery row. The output of this
//! binary is what `EXPERIMENTS.md` records.

use avx_bench::{
    accuracy_trials, calibrate, calibrator_kind, confirm_config, defense_kind, linux_prober,
    linux_prober_with, noise_profile, observables_version, paper, recal_config, sampling_policy,
    schedule_kind, schedule_spec,
};
use avx_channel::attacks::behavior::{SpyConfig, TlbSpy};
use avx_channel::attacks::cloud::run_scenario;
use avx_channel::attacks::modules::score;
use avx_channel::attacks::userspace::{LibraryMatcher, UserSpaceScanner};
use avx_channel::attacks::windows::kernel_base_from_shadow;
use avx_channel::countermeasures::MaskedOpSurvey;
use avx_channel::defense::{evaluate_fgkaslr, evaluate_flare};
use avx_channel::report::{ascii_plot_clamped, fmt_seconds, Series, Table};
use avx_channel::stats::Summary;
use avx_channel::{
    KernelBaseFinder, KptiAttack, ModuleClassifier, ModuleScanner, PermissionAttack, ProbeStrategy,
    Prober, SimProber, Threshold, TlbAttack,
};
use avx_hw::scan::{survey_corpus, synthetic_corpus};
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_os::activity::{apply_activity, ActivityTimeline};
use avx_os::cloud::CloudScenario;
use avx_os::linux::{LinuxConfig, KPTI_TRAMPOLINE_OFFSET};
use avx_os::modules::{unique_sized, UBUNTU_18_04_MODULES};
use avx_os::process::{build_process, ImageSignature};
use avx_os::windows::{WindowsConfig, WindowsSystem, WindowsVersion};
use avx_os::ExecutionContext;
use avx_uarch::{CpuProfile, Event, Machine, MaskedOp, NoiseModel, OpKind, VictimSchedule};

fn heading(text: &str) {
    println!("\n## {text}\n");
}

fn main() {
    // `repro --bench-json <path>`: standardized end-to-end throughput
    // measurement only (probes/sec + trials/sec of the full noise grid,
    // plus the Fig. 4 sweep), written as machine-readable JSON so the
    // perf trajectory is tracked across PRs in `BENCH_campaign.json`.
    if let Some(path) = avx_bench::throughput::bench_json_path() {
        let m = avx_bench::throughput::run_bench_json(&path).expect("write bench json");
        println!(
            "campaign throughput: {:.0} probes/s, {:.1} trials/s over {} rows in {:.2} s; \
             fig4 sweep {:.0} probes/s; drift row {:.0} probes/s at {:.1} % → {}",
            m.grid.probes_per_sec,
            m.grid.trials_per_sec,
            m.grid.rows,
            m.grid.wall_seconds,
            m.sweep.probes_per_sec,
            m.drift.probes_per_sec,
            m.drift.accuracy_pct,
            path.display()
        );
        println!(
            "observables v2: grid {:.0} probes/s in {:.2} s; fig4 sweep {:.0} probes/s; \
             drift row {:.0} probes/s at {:.1} %",
            m.grid_v2.probes_per_sec,
            m.grid_v2.wall_seconds,
            m.sweep_v2.probes_per_sec,
            m.drift_v2.probes_per_sec,
            m.drift_v2.accuracy_pct,
        );
        return;
    }

    // `repro --fleet N [--fleet-shards K] [--fleet-checkpoint <path>]`:
    // streaming population sweep via the fleet engine — constant-memory
    // sharded reducers with checkpoint/resume instead of the figure
    // sections.
    if let Some(victims) = avx_bench::fleet_victims() {
        fleet(victims);
        return;
    }

    println!("# AVX timing side-channel reproduction — full experiment run");
    println!("(simulated substrate; see DESIGN.md for the substitution statement)");

    fig1();
    fig2();
    fig3();
    prop3();
    prop4();
    prop6();
    fig4();
    table1();
    fig5();
    kpti();
    fig6();
    fig7();
    windows();
    cloud();
    countermeasures();
    survey();
    adaptive_economy();
    calibration_menu();
    recalibration();
    confirmation();
    defense_arena();
    schedules();
    full_campaign();
    println!("\ndone.");
}

/// `--fleet N`: the streaming kernel-base population sweep
/// ([`avx_channel::fleet`]) under the campaign flags — sharded
/// constant-memory reducers, optional checkpoint/resume. Prints the
/// canonical `fleet aggregate:` line (bit-identical across shardings
/// and kill-and-resume boundaries; CI diffs it) and a `victims/sec`
/// throughput line.
fn fleet(victims: u64) {
    use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
    use avx_channel::fleet::{Fleet, FleetConfig};

    heading("Fleet campaign — kernel-base population sweep");
    let campaign = CampaignConfig {
        noise: noise_profile(),
        sampling: sampling_policy(),
        calibrator: calibrator_kind(),
        recal: recal_config(),
        confirm: confirm_config(),
        observables: observables_version(),
        defense: defense_kind(),
        schedule: schedule_kind(),
        ..CampaignConfig::default()
    };
    let mut config = FleetConfig::new(victims);
    if let Some(shards) = avx_bench::fleet_shards() {
        config = config.with_shards(shards);
    }
    if let Some(path) = avx_bench::fleet_checkpoint() {
        config = config.with_checkpoint(path);
    }
    if let Some(max) = avx_bench::fleet_max_shards() {
        config = config.with_max_shards(max);
    }
    let fleet = Fleet::new(
        Scenario::KernelBase,
        CpuProfile::alder_lake_i5_12400f(),
        campaign,
        config,
    );
    println!(
        "fleet config: victims={} shards={} shard_size={} pool={} noise={} sampling={} \
         calibrator={} observables={} defense={} schedule={} confirm={} recal={} seed={}",
        fleet.config.victims,
        fleet.config.shard_count(),
        fleet.config.shard_size,
        fleet.config.pool_size(),
        fleet.campaign.noise,
        fleet.campaign.sampling.name(),
        fleet.campaign.calibrator.name(),
        fleet.campaign.observables.name(),
        fleet.campaign.defense.name(),
        fleet.campaign.schedule.name(),
        if fleet.campaign.confirm.is_some() {
            "on"
        } else {
            "off"
        },
        if fleet.campaign.recal.is_some() {
            "on"
        } else {
            "off"
        },
        fleet.config.campaign_seed,
    );
    let report = match fleet.run() {
        Ok(report) => report,
        Err(err) => {
            eprintln!("fleet error: {err}");
            std::process::exit(1);
        }
    };
    if report.shards_resumed > 0 {
        println!(
            "fleet resume: {} of {} shards restored from checkpoint",
            report.shards_resumed, report.shards
        );
    }
    println!("fleet aggregate: {}", report.aggregate);
    println!(
        "fleet throughput: {:.1} victims/sec, {:.0} probes/sec ({} victims over {} shards \
         in {:.2} s{})",
        report.victims_per_sec(),
        report.probes_per_sec(),
        report.victims_run,
        report.shards_run,
        report.wall_seconds,
        if report.complete {
            ""
        } else {
            "; population incomplete — rerun with the same checkpoint to resume"
        },
    );
}

/// The defense arena: the kernel-base cell against every entry of the
/// defense menu, quiet and laptop hosts — the per-row efficacy picture
/// `docs/DEFENSES.md` documents.
fn defense_arena() {
    use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
    use avx_channel::DefenseKind;
    use avx_uarch::NoiseProfile;
    let trials = accuracy_trials().min(12);
    heading(&format!(
        "Defense arena — kernel-base attack vs the defense menu (n={trials})"
    ));
    let profile = CpuProfile::alder_lake_i5_12400f();
    let mut table = Table::new(["Noise", "Defense", "p/addr", "Accuracy"]);
    for noise in [NoiseProfile::Quiet, NoiseProfile::LaptopDvfs] {
        for defense in DefenseKind::ALL {
            let row = Scenario::KernelBase.campaign(
                &profile,
                CampaignConfig::new(trials, 0)
                    .with_noise(noise)
                    .with_sampling(sampling_policy())
                    .with_calibrator(calibrator_kind())
                    .with_observables(observables_version())
                    .with_defense(defense),
            );
            table.row([
                noise.to_string(),
                row.defense.to_string(),
                format!("{:.2}", row.probes_per_address),
                format!("{:.2} %", row.accuracy.percent()),
            ]);
        }
    }
    println!("{table}");
    println!("  (select per run: repro --defense <none|masked|rerandomizing>)");
}

/// The event-driven-victim story: the kernel-base cell against every
/// entry of the schedule menu, one-shot vs closed-loop calibration.
/// The square-wave DVFS victim is the motivating pair: its mid-scan
/// noise-preset swaps go stale against a one-shot threshold, and the
/// closed loop recovers through `DriftMonitor::check` alone (see
/// `docs/VICTIMS.md` for the per-row helps-vs-hurts picture).
fn schedules() {
    use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
    use avx_channel::{CalibratorKind, RecalConfig, Sampling, ScheduleKind};
    let trials = accuracy_trials().min(12);
    heading(&format!(
        "Event-driven victims — schedule menu (n={trials}, adaptive sampling)"
    ));
    let profile = CpuProfile::alder_lake_i5_12400f();
    let base = CampaignConfig::new(trials, 0)
        .with_sampling(Sampling::adaptive())
        .with_calibrator(CalibratorKind::NoiseAware)
        .with_observables(observables_version());
    let mut table = Table::new(["Schedule", "Calibration", "p/addr", "Accuracy"]);
    for schedule in ScheduleKind::ALL {
        for (label, config) in [
            ("one-shot", base.with_schedule(schedule)),
            (
                "closed-loop",
                base.with_schedule(schedule)
                    .with_recalibration(RecalConfig::default()),
            ),
        ] {
            let row = Scenario::KernelBase.campaign(&profile, config);
            table.row([
                row.schedule.to_string(),
                label.to_string(),
                format!("{:.2}", row.probes_per_address),
                format!("{:.2} %", row.accuracy.percent()),
            ]);
        }
    }
    println!("{table}");
    println!(
        "  (select per run: repro --schedule <none|dvfs-square|cotenant-burst|module-churn> \
         or --schedule <trace-file>)"
    );
    trace_demo();
}

/// `--schedule <trace-file>`: one demonstration scan against a
/// user-authored victim schedule (the trace grammar of
/// `docs/VICTIMS.md`), reported alongside the preset menu.
fn trace_demo() {
    let Some(spec) = schedule_spec() else { return };
    if avx_channel::ScheduleKind::parse(&spec).is_some() {
        return;
    }
    let text = match std::fs::read_to_string(&spec) {
        Ok(text) => text,
        Err(err) => {
            println!("  trace schedule {spec:?}: unreadable ({err}); demo skipped");
            return;
        }
    };
    let sched = match VictimSchedule::from_trace(&text, 77) {
        Ok(sched) => sched,
        Err(err) => {
            println!("  trace schedule {spec:?}: {err}; demo skipped");
            return;
        }
    };
    use avx_channel::attacks::campaign::CampaignConfig;
    let profile = CpuProfile::alder_lake_i5_12400f();
    let (mut p, truth) = linux_prober(profile.clone(), 77);
    // Mirror the campaign install order and attacker tooling: the
    // victim's baseline noise environment is the trace's `base` preset
    // (the events perturb it), and the attacker runs under the session
    // knobs — sampling policy, calibrator, recalibration.
    let base = sched.profile();
    p.machine_mut().set_noise_profile(base);
    p.machine_mut().set_observables(observables_version());
    p.machine_mut().set_victim_schedule(Some(sched));
    let config = CampaignConfig::new(1, 77)
        .with_noise(base)
        .with_sampling(sampling_policy())
        .with_calibrator(calibrator_kind())
        .with_observables(observables_version());
    let fit = Threshold::calibrate_with(&mut p, truth.user.calibration, 16, config.calibrator);
    let mut finder = KernelBaseFinder::new(fit.threshold);
    if let Some(sampler) = config.sampler_for(&profile, &fit) {
        finder = finder.with_adaptive(sampler);
    }
    if let Some(strategy) = config.sampling.strategy_override() {
        finder = finder.with_strategy(strategy);
    }
    if let Some(recal) = recal_config() {
        finder = finder.with_recalibration(recal);
    }
    let scan = finder.scan(&mut p);
    let fired = p.machine().victim_schedule().map_or(0, |s| s.fired());
    println!(
        "  trace demo {spec:?}: base {} (truth {}, {}), {fired} events fired over {} probes",
        scan.base.map_or("-".into(), |b| b.to_string()),
        truth.kernel_base,
        if scan.base == Some(truth.kernel_base) {
            "recovered"
        } else {
            "missed — try --adaptive --calibrator noise-aware --recalibrate"
        },
        p.probes_issued(),
    );
}

/// The generalized Table I: every §IV attack scenario across the three
/// evaluated desktop/mobile parts, trials parallelized via rayon.
fn full_campaign() {
    use avx_channel::attacks::campaign::{Campaign, CampaignConfig};
    let trials = accuracy_trials().min(12);
    let noise = noise_profile();
    let sampling = sampling_policy();
    let calibrator = calibrator_kind();
    let recal = recal_config();
    let confirm = confirm_config();
    let observables = observables_version();
    let defense = defense_kind();
    let schedule = schedule_kind();
    heading(&format!(
        "Full campaign — all 8 attacks x 3 CPUs (n={trials}, noise={noise}, sampling={}, calibrator={calibrator}, recalibrate={}, confirm={}, observables={observables}, defense={defense}, schedule={schedule}, rayon-parallel)",
        sampling.name(),
        if recal.is_some() { "on" } else { "off" },
        if confirm.is_some() { "on" } else { "off" },
    ));
    let mut config = CampaignConfig::new(trials, 0)
        .with_noise(noise)
        .with_sampling(sampling)
        .with_calibrator(calibrator)
        .with_observables(observables)
        .with_defense(defense)
        .with_schedule(schedule);
    if let Some(recal) = recal {
        config = config.with_recalibration(recal);
    }
    if let Some(confirm) = confirm {
        config = config.with_confirmation(confirm);
    }
    let campaign = Campaign::full(config);
    let mut table = Table::new([
        "CPU", "Target", "Probing", "Total", "p/addr", "Accuracy", "Records",
    ]);
    for row in campaign.run() {
        table.row([
            row.cpu.clone(),
            row.target.to_string(),
            fmt_seconds(row.probing_seconds),
            fmt_seconds(row.total_seconds),
            format!("{:.2}", row.probes_per_address),
            format!("{:.2} %", row.accuracy.percent()),
            format!("{}", row.accuracy.total),
        ]);
    }
    println!("{table}");
}

/// The adaptive engine's probe economy: the kernel-base cell across
/// every noise preset, fixed vs fixed-budget vs adaptive.
fn adaptive_economy() {
    use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
    use avx_channel::Sampling;
    use avx_uarch::NoiseProfile;
    let trials = accuracy_trials().min(8);
    heading(&format!(
        "Adaptive vs fixed — probes/address x accuracy across the noise matrix (n={trials})"
    ));
    let profile = CpuProfile::alder_lake_i5_12400f();
    let mut table = Table::new(["Noise", "Sampling", "p/addr", "Accuracy"]);
    for noise in NoiseProfile::ALL {
        for sampling in [
            Sampling::Fixed,
            Sampling::fixed_budget(),
            Sampling::adaptive(),
        ] {
            let row = Scenario::KernelBase.campaign(
                &profile,
                CampaignConfig::new(trials, 0)
                    .with_noise(noise)
                    .with_sampling(sampling)
                    .with_calibrator(calibrator_kind())
                    .with_observables(observables_version()),
            );
            table.row([
                noise.to_string(),
                row.sampling.to_string(),
                format!("{:.2}", row.probes_per_address),
                format!("{:.2} %", row.accuracy.percent()),
            ]);
        }
    }
    println!("{table}");
    println!(
        "  (reproduce under any environment: repro --noise <quiet|smt|laptop|cloud> [--adaptive])"
    );
}

/// The calibration-estimator menu on the row that motivated it: the
/// laptop-DVFS kernel-base cell under adaptive sampling, where the
/// min-pulled legacy floor drifts ≈ 8 cycles low and caps accuracy
/// regardless of the probe budget. Quiet rows ride along to show the
/// robust estimators cost nothing when the host is quiet.
fn calibration_menu() {
    use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
    use avx_channel::{CalibratorKind, Sampling};
    use avx_uarch::NoiseProfile;
    let trials = accuracy_trials().min(12);
    heading(&format!(
        "Calibration estimators — noise-aware floor fitting (n={trials}, adaptive sampling)"
    ));
    let profile = CpuProfile::alder_lake_i5_12400f();
    let mut table = Table::new(["Noise", "Calibrator", "p/addr", "Accuracy"]);
    for noise in [NoiseProfile::Quiet, NoiseProfile::LaptopDvfs] {
        for calibrator in CalibratorKind::ALL {
            let row = Scenario::KernelBase.campaign(
                &profile,
                CampaignConfig::new(trials, 0)
                    .with_noise(noise)
                    .with_sampling(Sampling::adaptive())
                    .with_calibrator(calibrator)
                    .with_observables(observables_version()),
            );
            table.row([
                noise.to_string(),
                row.calibrator.to_string(),
                format!("{:.2}", row.probes_per_address),
                format!("{:.2} %", row.accuracy.percent()),
            ]);
        }
    }
    println!("{table}");
    println!("  (select per run: repro --calibrator <legacy|trimmed|bimodal|noise-aware>)");
}

/// The closed-loop story: the kernel-base cell under the quiet→laptop
/// drift ramp, one-shot calibration vs the self-recalibrating scan.
/// One-shot calibration goes stale mid-sweep (the SPRT keeps trusting
/// the quiet-phase σ); the closed loop detects the dispersion shift,
/// re-fits via the EM threshold re-fit and recovers.
fn recalibration() {
    use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
    use avx_channel::{CalibratorKind, RecalConfig, Sampling};
    use avx_uarch::NoiseProfile;
    let trials = accuracy_trials().min(12);
    heading(&format!(
        "Closed-loop recalibration — quiet→laptop drift mid-scan (n={trials}, adaptive sampling)"
    ));
    let profile = CpuProfile::alder_lake_i5_12400f();
    let base = CampaignConfig::new(trials, 0)
        .with_noise(NoiseProfile::drift_quiet_to_laptop())
        .with_sampling(Sampling::adaptive())
        .with_calibrator(CalibratorKind::NoiseAware)
        .with_observables(observables_version());
    let mut table = Table::new(["Calibration", "p/addr", "Accuracy"]);
    for (label, config) in [
        ("one-shot", base),
        (
            "closed-loop",
            base.with_recalibration(RecalConfig::default()),
        ),
    ] {
        let row = Scenario::KernelBase.campaign(&profile, config);
        table.row([
            label.to_string(),
            format!("{:.2}", row.probes_per_address),
            format!("{:.2} %", row.accuracy.percent()),
        ]);
    }
    println!("{table}");
    println!(
        "  (reproduce: repro --noise drift --adaptive --calibrator noise-aware [--recalibrate])"
    );
}

/// The confirmation-policy story: the KPTI trampoline cell under
/// laptop-DVFS noise, first-mapped-slot-wins vs confirmed decisions.
/// Laptop jitter sprays false-positive slots below the trampoline and
/// the legacy first-wins rule latches onto them; the confirmation
/// layer re-tests every candidate with an escalated budget and a
/// slot-level sequential test before committing.
fn confirmation() {
    use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
    use avx_channel::{CalibratorKind, ConfirmConfig, Sampling};
    use avx_uarch::NoiseProfile;
    let trials = accuracy_trials().min(12);
    heading(&format!(
        "Confirmation policy — KPTI trampoline under laptop DVFS (n={trials}, adaptive sampling)"
    ));
    let profile = CpuProfile::alder_lake_i5_12400f();
    let base = CampaignConfig::new(trials, 0)
        .with_noise(NoiseProfile::LaptopDvfs)
        .with_sampling(Sampling::adaptive())
        .with_calibrator(CalibratorKind::NoiseAware)
        .with_observables(observables_version());
    let mut table = Table::new(["Decision", "p/addr", "Accuracy"]);
    for (label, config) in [
        ("confirm=off (first-wins)", base),
        (
            "confirm=on (re-tested)",
            base.with_confirmation(ConfirmConfig::default()),
        ),
    ] {
        let row = Scenario::Kpti.campaign(&profile, config);
        table.row([
            label.to_string(),
            format!("{:.2}", row.probes_per_address),
            format!("{:.2} %", row.accuracy.percent()),
        ]);
    }
    println!("{table}");
    println!("  (reproduce: repro --noise laptop --adaptive --calibrator noise-aware [--confirm])");
}

fn quiet_machine(profile: CpuProfile, space: AddressSpace, seed: u64) -> Machine {
    let sigma = NoiseModel::new(profile.timing.noise_sigma, 0.0, (0.0, 0.0));
    let mut m = Machine::new(profile, space, seed);
    m.set_noise(sigma);
    m
}

fn fig1() {
    heading("Fig. 1 — fault suppression (A–D)");
    let mut space = AddressSpace::new();
    let mapped = VirtAddr::new_truncate(0x5555_5555_4000);
    space
        .map(mapped, PageSize::Size4K, PteFlags::user_rw())
        .unwrap();
    let mut m = quiet_machine(CpuProfile::ice_lake_i7_1065g7(), space, 1);
    let boundary = mapped.wrapping_add(0xff0);
    for (label, kind, bits) in [
        (
            "A load, invalid lane unmasked ",
            OpKind::Load,
            0b1111_0001u8,
        ),
        ("B load, invalid lanes masked  ", OpKind::Load, 0b0000_0111),
        ("C store, invalid lane unmasked", OpKind::Store, 0b1111_0001),
        ("D store, invalid lanes masked ", OpKind::Store, 0b0000_0111),
    ] {
        let op = avx_uarch::MaskedOp {
            kind,
            addr: boundary,
            mask: avx_uarch::Mask::new(bits, 8),
            width: avx_uarch::ElemWidth::Dword,
        };
        let out = m.execute(op);
        println!(
            "  {label}: {}",
            match out.fault {
                Some(f) => format!("#PF delivered ({f})"),
                None => format!("suppressed, assist={}, {} cycles", out.assist, out.cycles),
            }
        );
    }
}

fn fig2() {
    heading("Fig. 2 — latency + PMCs per page type (i7-1065G7)");
    let mut space = AddressSpace::new();
    let user_m = VirtAddr::new_truncate(0x5555_5555_4000);
    let user_u = VirtAddr::new_truncate(0x5555_5555_5000);
    let kernel_m = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
    let kernel_u = VirtAddr::new_truncate(0xffff_ffff_a1a0_0000);
    space
        .map(user_m, PageSize::Size4K, PteFlags::user_rw())
        .unwrap();
    space
        .map(user_u, PageSize::Size4K, PteFlags::user_rw())
        .unwrap();
    space
        .protect(user_u, PageSize::Size4K, PteFlags::none_guard())
        .unwrap();
    space
        .map(kernel_m, PageSize::Size2M, PteFlags::kernel_rx())
        .unwrap();
    let mut m = quiet_machine(CpuProfile::ice_lake_i7_1065g7(), space, 2);

    let mut table = Table::new(["page type", "measured", "paper", "assists", "walks"]);
    for (i, (label, addr)) in [
        ("USER-M", user_m),
        ("USER-U", user_u),
        ("KERNEL-M", kernel_m),
        ("KERNEL-U", kernel_u),
    ]
    .iter()
    .enumerate()
    {
        let probe = MaskedOp::probe_load(*addr);
        for _ in 0..4 {
            let _ = m.execute(probe);
        }
        let snap = m.pmc().snapshot();
        let samples: Vec<u64> = (0..1000).map(|_| m.execute(probe).cycles).collect();
        let d = m.pmc().delta(&snap);
        let s = Summary::of(&samples);
        table.row([
            label.to_string(),
            format!("{:.0}±{:.2}", s.mean, s.stddev),
            format!("{:.0}", paper::FIG2_MEANS[i]),
            format!("{}", d.get(Event::AssistsAny) / 1000),
            format!("{}", d.get(Event::DtlbLoadWalkCompleted) / 1000),
        ]);
    }
    println!("{table}");
}

fn fig3() {
    heading("Fig. 3 — latency by permission (generic desktop)");
    let mut space = AddressSpace::new();
    let ro = VirtAddr::new_truncate(0x7f00_0000_0000);
    let rx = VirtAddr::new_truncate(0x7f00_0000_1000);
    let rw = VirtAddr::new_truncate(0x7f00_0000_2000);
    let none = VirtAddr::new_truncate(0x7f00_0000_3000);
    space
        .map(ro, PageSize::Size4K, PteFlags::user_ro())
        .unwrap();
    space
        .map(rx, PageSize::Size4K, PteFlags::user_rx())
        .unwrap();
    space
        .map(rw, PageSize::Size4K, PteFlags::user_rw())
        .unwrap();
    space.mark_accessed(rw, true).unwrap();
    space
        .map(none, PageSize::Size4K, PteFlags::user_rw())
        .unwrap();
    space
        .protect(none, PageSize::Size4K, PteFlags::none_guard())
        .unwrap();
    let mut m = quiet_machine(CpuProfile::generic_desktop(), space, 3);

    let mut table = Table::new(["perm", "load", "paper", "store", "paper"]);
    for (i, (label, addr)) in [("r--", ro), ("r-x", rx), ("rw-", rw), ("---", none)]
        .iter()
        .enumerate()
    {
        let mut run = |kind: OpKind| {
            let op = match (kind, *addr == rw) {
                (OpKind::Store, true) => avx_uarch::MaskedOp {
                    kind,
                    addr: *addr,
                    mask: avx_uarch::Mask::all_set(8),
                    width: avx_uarch::ElemWidth::Dword,
                },
                (OpKind::Load, _) => MaskedOp::probe_load(*addr),
                (OpKind::Store, _) => MaskedOp::probe_store(*addr),
            };
            for _ in 0..4 {
                let _ = m.execute(op);
            }
            let samples: Vec<u64> = (0..500).map(|_| m.execute(op).cycles).collect();
            Summary::of(&samples).mean
        };
        let load = run(OpKind::Load);
        let store = run(OpKind::Store);
        table.row([
            label.to_string(),
            format!("{load:.0}"),
            format!("{:.0}", paper::FIG3_LOAD[i]),
            format!("{store:.0}"),
            format!("{:.0}", paper::FIG3_STORE[i]),
        ]);
    }
    println!("{table}");
}

fn prop3() {
    heading("§III-B P3 — walk-termination level (i9-9900, INVLPG methodology)");
    let mut space = AddressSpace::new();
    let pt = VirtAddr::new_truncate(0xffff_ffff_c012_3000);
    let pd = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
    let pdpt = VirtAddr::new_truncate(0xffff_c000_0000_0000);
    let pml4 = VirtAddr::new_truncate(0xffff_9000_0000_0000);
    space
        .map(pt, PageSize::Size4K, PteFlags::kernel_rx())
        .unwrap();
    space
        .map(pd, PageSize::Size2M, PteFlags::kernel_rx())
        .unwrap();
    space
        .map(pdpt, PageSize::Size1G, PteFlags::kernel_rw())
        .unwrap();
    let mut m = quiet_machine(CpuProfile::coffee_lake_i9_9900(), space, 4);
    for (label, addr) in [
        ("PD   (2 MiB)", pd),
        ("PDPT (1 GiB)", pdpt),
        ("PML4 (hole) ", pml4),
        ("PT   (4 KiB)", pt),
    ] {
        let probe = MaskedOp::probe_load(addr);
        let _ = m.execute(probe);
        let samples: Vec<u64> = (0..500)
            .map(|_| {
                m.invlpg(addr);
                m.execute(probe).cycles
            })
            .collect();
        println!("  {label}: {:.1} cycles", Summary::of(&samples).mean);
    }
    println!("  (paper: linear increase PD → PML4, PT above the line)");
}

fn prop4() {
    heading("§III-B P4 — TLB hit vs miss (i9-9900, n=1000)");
    let mut space = AddressSpace::new();
    let kernel = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
    space
        .map(kernel, PageSize::Size2M, PteFlags::kernel_rx())
        .unwrap();
    let mut m = quiet_machine(CpuProfile::coffee_lake_i9_9900(), space, 5);
    let probe = MaskedOp::probe_load(kernel);
    let _ = m.execute(probe);
    let mut miss = Vec::new();
    let mut hit = Vec::new();
    for _ in 0..1000 {
        m.evict_translation(kernel);
        miss.push(m.execute(probe).cycles);
        hit.push(m.execute(probe).cycles);
    }
    println!(
        "  miss: {:.0} cycles [paper {:.0}], hit: {:.0} cycles [paper {:.0}]",
        Summary::of(&miss).mean,
        paper::P4_HIT_MISS.1,
        Summary::of(&hit).mean,
        paper::P4_HIT_MISS.0
    );
}

fn prop6() {
    heading("§III-B P6 — masked store vs load on KERNEL-M (i7-1065G7)");
    let mut space = AddressSpace::new();
    let kernel = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
    space
        .map(kernel, PageSize::Size2M, PteFlags::kernel_rx())
        .unwrap();
    let mut m = quiet_machine(CpuProfile::ice_lake_i7_1065g7(), space, 6);
    let load = MaskedOp::probe_load(kernel);
    let store = MaskedOp::probe_store(kernel);
    for _ in 0..4 {
        let _ = m.execute(load);
        let _ = m.execute(store);
    }
    let loads: Vec<u64> = (0..1000).map(|_| m.execute(load).cycles).collect();
    let stores: Vec<u64> = (0..1000).map(|_| m.execute(store).cycles).collect();
    let (l, s) = (Summary::of(&loads).mean, Summary::of(&stores).mean);
    println!(
        "  load {l:.0} [paper {:.0}], store {s:.0} [paper {:.0}], delta {:.1}",
        paper::P6_LOAD_STORE.0,
        paper::P6_LOAD_STORE.1,
        l - s
    );
}

fn fig4() {
    heading("Fig. 4 — 512-offset kernel scan (i5-12400F, slide pinned to 271)");
    let (mut p, truth) = linux_prober_with(
        LinuxConfig {
            fixed_slide: Some(271),
            ..LinuxConfig::seeded(7)
        },
        CpuProfile::alder_lake_i5_12400f(),
        7,
    );
    let th = calibrate(&mut p, &truth);
    let scan = KernelBaseFinder::new(th).scan(&mut p);
    let series = Series::from_samples("cycles per 2 MiB offset", &scan.samples);
    println!("{}", ascii_plot_clamped(&series, 100, 12, 130.0));
    println!(
        "  base recovered: {} (truth {}); threshold {:.1}",
        scan.base.map_or("-".into(), |b| b.to_string()),
        truth.kernel_base,
        th.boundary()
    );
}

fn table1() {
    let trials = accuracy_trials();
    let noise = noise_profile();
    let sampling = sampling_policy();
    let calibrator = calibrator_kind();
    heading(&format!(
        "Table I — runtime and accuracy (n={trials}, noise={noise}, sampling={}, calibrator={calibrator})",
        sampling.name()
    ));
    let mut config = avx_channel::attacks::campaign::CampaignConfig::new(trials, 0)
        .with_noise(noise)
        .with_sampling(sampling)
        .with_calibrator(calibrator);
    if let Some(recal) = recal_config() {
        config = config.with_recalibration(recal);
    }
    if let Some(confirm) = confirm_config() {
        config = config.with_confirmation(confirm);
    }
    let rows = avx_channel::attacks::campaign::table1(config);
    let mut table = Table::new(["CPU", "Target", "Probing", "Total", "p/addr", "Accuracy"]);
    for row in &rows {
        table.row([
            row.cpu.clone(),
            row.target.to_string(),
            fmt_seconds(row.probing_seconds),
            fmt_seconds(row.total_seconds),
            format!("{:.2}", row.probes_per_address),
            format!("{:.2} %", row.accuracy.percent()),
        ]);
    }
    println!("{table}");
    println!("  paper rows:");
    for (cpu, target, probing, total, acc) in paper::TABLE1 {
        println!("    {cpu} {target}: {probing} / {total} / {acc:.2} %");
    }
}

fn fig5() {
    heading("Fig. 5 — module detection and identification (i7-1065G7)");
    let (mut p, truth) = linux_prober(CpuProfile::ice_lake_i7_1065g7(), 8);
    let th = calibrate(&mut p, &truth);
    let scan = ModuleScanner::new(th).scan(&mut p);
    let ids = ModuleClassifier::new(&UBUNTU_18_04_MODULES).classify(&scan);
    let s = score(&scan, &ids, &truth.modules);
    println!(
        "  modules loaded: {} ({} unique sizes); detected runs: {}",
        truth.modules.len(),
        unique_sized(&UBUNTU_18_04_MODULES).len(),
        scan.detected.len()
    );
    for name in ["autofs4", "x_tables", "video", "mac_hid", "pinctrl_icelake"] {
        let m = truth.module(name).unwrap();
        let id = ids.iter().find(|i| i.detected.base == m.base);
        println!(
            "    {name} (size {:#x}) → {}",
            m.spec.size,
            match id.and_then(|i| i.unique_name()) {
                Some(n) => format!("identified as {n}"),
                None => format!(
                    "ambiguous among {} same-size modules",
                    id.map_or(0, |i| i.candidates.len())
                ),
            }
        );
    }
    println!(
        "  exact detection {:.2} %, unique-size identification {:.2} % [paper accuracy {:.2} %]",
        s.exact.percent(),
        s.identified.percent(),
        paper::MODULES.2
    );
}

fn kpti() {
    heading("§IV-D — KASLR break with KPTI enabled");
    let (mut p, truth) = linux_prober_with(
        LinuxConfig {
            kpti: true,
            fixed_slide: Some(8),
            ..LinuxConfig::seeded(9)
        },
        CpuProfile::alder_lake_i5_12400f(),
        9,
    );
    let th = calibrate(&mut p, &truth);
    let scan = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
    println!(
        "  trampoline at {} [paper: 0xffffffff81c00000], base {} (truth {})",
        scan.trampoline.map_or("-".into(), |t| t.to_string()),
        scan.base.map_or("-".into(), |b| b.to_string()),
        truth.kernel_base
    );
}

fn fig6() {
    heading("Fig. 6 — behaviour inference (bluetooth / psmouse, 1 Hz, 100 s)");
    for (timeline, seed) in [
        (ActivityTimeline::bluetooth_session(), 10u64),
        (ActivityTimeline::mouse_session(), 11),
    ] {
        let (mut p, truth) = linux_prober(CpuProfile::ice_lake_i7_1065g7(), seed);
        let th = calibrate(&mut p, &truth);
        let module = truth.module(timeline.behaviour.module_name()).unwrap();
        let (base, pages) = (module.base, module.spec.pages());
        let tlb = TlbAttack::from_threshold(&th);
        let spy = TlbSpy::new(SpyConfig::default(), tlb);
        let trace = spy.monitor(&mut p, base, |p, t| {
            apply_activity(p.machine_mut(), &timeline, base, pages, t);
        });
        let series = Series {
            label: format!("{}", timeline.behaviour),
            points: trace
                .samples
                .iter()
                .map(|s| (s.t, s.cycles as f64))
                .collect(),
        };
        println!("{}", ascii_plot_clamped(&series, 100, 8, 500.0));
        println!(
            "  agreement with ground truth: {:.1} %\n",
            trace.score(&timeline, tlb.hit_boundary) * 100.0
        );
    }
}

fn fig7() {
    heading("§IV-F + Fig. 7 — user-space break inside SGX2");
    let mut space = AddressSpace::new();
    let truth = build_process(
        &mut space,
        &ImageSignature::fig7_app(),
        &ImageSignature::standard_set(),
        12,
    );
    let own = VirtAddr::new_truncate(0x5400_0000_0000);
    space
        .map(own, PageSize::Size4K, PteFlags::user_ro())
        .unwrap();
    let machine = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, 12);
    let mut p = SimProber::with_context(machine, ExecutionContext::sgx2());
    let perm = PermissionAttack::calibrate(&mut p, own);
    let scanner = UserSpaceScanner::new(perm);

    let libc = truth.library_base("libc.so.6").unwrap();
    let pages = (ImageSignature::libc().span() + 0x6000) / 4096;
    let before = p.probing_cycles();
    let map = scanner.scan(&mut p, libc, pages);
    let cycles = p.probing_cycles() - before;
    println!("  detected libc regions:");
    for r in &map.regions {
        println!("    {r}");
    }
    let matcher = LibraryMatcher::new(ImageSignature::standard_set());
    let first = truth.libraries.first().unwrap().base;
    let last = truth.libraries.last().unwrap();
    let span = last.base.as_u64() + last.signature.span() + 0x10_0000 - first.as_u64();
    let full = scanner.scan(&mut p, first, span / 4096);
    let found = matcher.find_all(&full);
    println!("  libraries identified: {}", found.len());
    for m in &found {
        println!(
            "    {} at {} ({})",
            m.name,
            m.base,
            if truth.library_base(m.name) == Some(m.base) {
                "correct"
            } else {
                "WRONG"
            }
        );
    }
    let per_page = cycles as f64 / pages as f64;
    println!(
        "  extrapolated full 2^28-page scan: {:.0} s [paper: {:.0} s load / {:.0} s store]",
        per_page * (1u64 << 28) as f64 / (p.clock_ghz() * 1e9),
        paper::SGX_SCAN_SECONDS.0,
        paper::SGX_SCAN_SECONDS.1
    );
}

fn windows() {
    heading("§IV-G — Windows 10 KASLR / KVAS");
    let sys = WindowsSystem::build(WindowsConfig::default());
    let (machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 13);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);
    let scan = avx_channel::WindowsKaslrAttack::new(th).find_kernel_region(&mut p);
    println!(
        "  18-bit region scan: base {} (truth {}), {} [paper ≈ {:.0} ms]",
        scan.base.map_or("-".into(), |b| b.to_string()),
        truth.kernel_base,
        fmt_seconds(scan.total_cycles as f64 / (p.clock_ghz() * 1e9)),
        paper::WINDOWS_REGION_MS
    );

    let sys = WindowsSystem::build(WindowsConfig {
        version: WindowsVersion::V1709,
        kvas: true,
        fixed_slot: None,
        seed: 14,
    });
    let (machine, truth) = sys.into_machine(CpuProfile::skylake_i7_6600u(), 14);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);
    let attack = avx_channel::WindowsKaslrAttack::new(th);
    let window = VirtAddr::new_truncate(truth.kernel_base.as_u64() - 2048 * 4096);
    if let Some(shadow) = attack.find_kvas_shadow(&mut p, window, 4096) {
        println!(
            "  KVAS: shadow at {shadow} → base {} (truth {}) [paper: 8 s full sweep, 100 %]",
            kernel_base_from_shadow(shadow),
            truth.kernel_base
        );
    } else {
        println!("  KVAS: shadow not found");
    }
}

fn cloud() {
    heading("§IV-H — cloud KASLR breaks");
    for scenario in CloudScenario::all(99) {
        let report = run_scenario(&scenario, 15);
        println!("  {report}");
    }
    println!(
        "  paper runtimes: EC2 {} base / {} modules; GCE {} / {}; Azure {}",
        fmt_seconds(paper::CLOUD_SECONDS[0]),
        fmt_seconds(paper::CLOUD_SECONDS[1]),
        fmt_seconds(paper::CLOUD_SECONDS[2]),
        fmt_seconds(paper::CLOUD_SECONDS[3]),
        fmt_seconds(paper::CLOUD_SECONDS[4])
    );
    println!("  note: our KPTI model hides the module area, so EC2 reports no modules.");
}

fn countermeasures() {
    heading("§V-A — FLARE and FGKASLR");
    println!(
        "  {}",
        evaluate_flare(CpuProfile::alder_lake_i5_12400f(), 16)
    );
    println!(
        "  {}",
        evaluate_fgkaslr(CpuProfile::alder_lake_i5_12400f(), 17, "commit_creds")
    );
}

fn survey() {
    heading("§V-B — masked-op usage survey");
    let corpus = synthetic_corpus(paper::SURVEY.1, paper::SURVEY.0, 16 * 1024, 18);
    let count = survey_corpus(&corpus);
    let s = MaskedOpSurvey {
        total: count.total,
        containing: count.containing,
    };
    println!(
        "  {s} [paper: 6 of 4104] — NOP replacement impact: {}",
        if s.low_impact() { "low" } else { "HIGH" }
    );
    let _ = ProbeStrategy::SecondOfTwo; // (referenced for doc purposes)
}
