//! §V-B survey tool: scan real binaries for AVX masked-op usage.
//!
//! The paper scans the 4104 executables of a default Ubuntu 20.04.3
//! install and finds 6 containing `VMASKMOV`/`VPMASKMOV` — the basis
//! for its claim that replacing all-zero-mask masked ops with NOPs
//! would barely affect real systems. This tool runs the same survey on
//! any directory:
//!
//! ```text
//! cargo run -p avx-bench --release --bin scan_binaries -- /usr/bin
//! cargo run -p avx-bench --release --bin scan_binaries -- /usr/bin --list
//! ```

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use avx_hw::scan::{scan_bytes, MaskedOpHit};

struct Args {
    dir: PathBuf,
    list_hits: bool,
    max_file_bytes: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut list_hits = false;
    let mut max_file_bytes = 64 * 1024 * 1024;
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--list" => list_hits = true,
            s if s.starts_with("--max-bytes=") => {
                max_file_bytes = s["--max-bytes=".len()..]
                    .parse()
                    .map_err(|e| format!("bad --max-bytes: {e}"))?;
            }
            s if s.starts_with("--") => return Err(format!("unknown flag {s}")),
            s => {
                if dir.replace(PathBuf::from(s)).is_some() {
                    return Err("exactly one directory expected".into());
                }
            }
        }
    }
    Ok(Args {
        dir: dir.ok_or("usage: scan_binaries <dir> [--list] [--max-bytes=N]")?,
        list_hits,
        max_file_bytes,
    })
}

fn scan_one(path: &Path, max_bytes: u64) -> Option<Vec<MaskedOpHit>> {
    let meta = fs::metadata(path).ok()?;
    if !meta.is_file() || meta.len() > max_bytes {
        return None;
    }
    let bytes = fs::read(path).ok()?;
    // Only bother with ELF objects; everything else is data.
    if bytes.len() < 4 || &bytes[..4] != b"\x7fELF" {
        return None;
    }
    Some(scan_bytes(&bytes))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let entries = match fs::read_dir(&args.dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.dir.display());
            return ExitCode::FAILURE;
        }
    };

    let mut scanned = 0usize;
    let mut containing = 0usize;
    let mut total_hits = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(hits) = scan_one(&path, args.max_file_bytes) else {
            continue;
        };
        scanned += 1;
        if !hits.is_empty() {
            containing += 1;
            total_hits += hits.len();
            if args.list_hits {
                println!("{}:", path.display());
                for hit in hits.iter().take(8) {
                    println!("  +{:#x}: {}", hit.offset, hit.mnemonic);
                }
                if hits.len() > 8 {
                    println!("  ... {} more", hits.len() - 8);
                }
            }
        }
    }

    println!(
        "{containing} of {scanned} ELF binaries in {} contain masked load/store \
         instructions ({total_hits} sites) [paper: 6 of 4104 on Ubuntu 20.04.3]",
        args.dir.display()
    );
    let fraction = if scanned == 0 {
        0.0
    } else {
        containing as f64 / scanned as f64
    };
    println!(
        "NOP-replacement mitigation impact: {:.2} % of binaries — {}",
        fraction * 100.0,
        if fraction < 0.01 {
            "low"
        } else {
            "substantial"
        }
    );
    ExitCode::SUCCESS
}
