//! Release-mode throughput smoke (tier-1 CI, `--include-ignored`).
//!
//! Guards the probe hot path against silent regressions: the
//! quiet-profile Fig. 4 sweep must stay above a conservative probes/sec
//! floor. Absolute throughput is machine-dependent, so the floor is set
//! well below the recording machine's numbers (`BENCH_campaign.json`:
//! ~13.5M probes/s; the pre-PR-3 pipeline did ~7.2M on the same box) to
//! tolerate slower shared CI runners — it therefore catches
//! *catastrophic* regressions (per-probe allocation storms, quadratic
//! cache scans, debug-mode benches), not a subtle partial revert; the
//! recorded trajectory in `BENCH_campaign.json` is the fine-grained
//! cross-PR signal.

use avx_bench::throughput::measure_fig4_sweep;

/// Conservative floor in probes per second (see module docs for what
/// this can and cannot catch).
const FLOOR_PROBES_PER_SEC: f64 = 3_000_000.0;

#[test]
#[ignore = "release-mode perf gate; debug builds are expected to be slower (CI runs with --release --include-ignored)"]
fn fig4_sweep_throughput_stays_above_floor() {
    // Two measurements; keep the better one to shrug off scheduler
    // hiccups on shared runners.
    let best = (0..2)
        .map(|_| measure_fig4_sweep(128 * 1024).probes_per_sec)
        .fold(0.0f64, f64::max);
    assert!(
        best >= FLOOR_PROBES_PER_SEC,
        "Fig. 4 sweep throughput regressed: {best:.0} probes/s < floor {FLOOR_PROBES_PER_SEC:.0}"
    );
}

#[test]
fn bench_json_flag_produces_valid_record() {
    // The measurement machinery behind `repro --bench-json` works end
    // to end (small n; runs in debug CI too).
    let sweep = measure_fig4_sweep(2048);
    assert!(sweep.probes >= 2048);
    assert!(sweep.wall_seconds > 0.0);
}
