//! Release-mode throughput smoke (tier-1 CI, `--include-ignored`).
//!
//! Guards the probe hot path against silent regressions: the
//! quiet-profile Fig. 4 sweep and the noise-grid campaign must stay
//! above conservative probes/sec floors, in both observables regimes.
//! Absolute throughput is machine-dependent, so the floors are set well
//! below the recording machine's numbers (`BENCH_campaign.json`: ~15M+
//! probes/s sweeps, ~10M+ grid; the pre-PR-3 pipeline did ~5.1M grid on
//! the same box) to tolerate slower shared CI runners — they therefore
//! catch *catastrophic* regressions (per-probe allocation storms,
//! quadratic cache scans, debug-mode benches), not a subtle partial
//! revert; the recorded trajectory in `BENCH_campaign.json` is the
//! fine-grained cross-PR signal. Run-to-run variance on one box spans
//! tens of percent (the recording machine's Fig. 4 sweep ranged
//! 12.4–18.5M probes/s across otherwise-identical runs), which is why
//! each gate keeps the better of two measurements and the floors sit at
//! a fraction of the recorded numbers.

use avx_bench::throughput::{
    measure_fig4_sweep_with, measure_noise_grid_with, CampaignThroughput, SweepThroughput,
};
use avx_uarch::ObservablesVersion;

/// Conservative sweep floor in probes per second (see module docs for
/// what this can and cannot catch).
const SWEEP_FLOOR_PROBES_PER_SEC: f64 = 3_000_000.0;

/// Conservative noise-grid floor. The grid exercises every attack ×
/// noise cell (calibration, adaptive sampling, heavy noise rows), so it
/// runs slower than the quiet sweep; the floor is scaled accordingly.
const GRID_FLOOR_PROBES_PER_SEC: f64 = 2_000_000.0;

fn best_sweep(observables: ObservablesVersion) -> SweepThroughput {
    // Two measurements; keep the better one to shrug off scheduler
    // hiccups on shared runners.
    let a = measure_fig4_sweep_with(128 * 1024, observables);
    let b = measure_fig4_sweep_with(128 * 1024, observables);
    if a.probes_per_sec >= b.probes_per_sec {
        a
    } else {
        b
    }
}

fn best_grid(observables: ObservablesVersion) -> CampaignThroughput {
    let a = measure_noise_grid_with(1, observables);
    let b = measure_noise_grid_with(1, observables);
    if a.probes_per_sec >= b.probes_per_sec {
        a
    } else {
        b
    }
}

#[test]
#[ignore = "release-mode perf gate; debug builds are expected to be slower (CI runs with --release --include-ignored)"]
fn fig4_sweep_throughput_stays_above_floor() {
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        let best = best_sweep(observables).probes_per_sec;
        assert!(
            best >= SWEEP_FLOOR_PROBES_PER_SEC,
            "Fig. 4 sweep ({observables}) throughput regressed: \
             {best:.0} probes/s < floor {SWEEP_FLOOR_PROBES_PER_SEC:.0}"
        );
    }
}

#[test]
#[ignore = "release-mode perf gate; debug builds are expected to be slower (CI runs with --release --include-ignored)"]
fn noise_grid_throughput_stays_above_floor() {
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        let best = best_grid(observables).probes_per_sec;
        assert!(
            best >= GRID_FLOOR_PROBES_PER_SEC,
            "noise-grid ({observables}) throughput regressed: \
             {best:.0} probes/s < floor {GRID_FLOOR_PROBES_PER_SEC:.0}"
        );
    }
}

#[test]
fn bench_json_flag_produces_valid_record() {
    // The measurement machinery behind `repro --bench-json` works end
    // to end (small n; runs in debug CI too).
    let sweep = measure_fig4_sweep_with(2048, ObservablesVersion::V1);
    assert!(sweep.probes >= 2048);
    assert!(sweep.wall_seconds > 0.0);
}

/// Absolute probe count of the n=2 noise grid under the bit-exact v1
/// regime — pinned at this value since PR 3 (`BENCH_campaign.json`).
/// Any drift means the default probe stream itself moved.
const GRID_PROBES_V1: u64 = 10_850_014;

/// Absolute probe count of the n=2 noise grid under the batched
/// ziggurat v2 regime, pinned since the regime was re-goldened (PR 6).
const GRID_PROBES_V2: u64 = 11_075_285;

#[test]
fn grid_measurement_pins_probe_counts_per_regime() {
    // The probe *count* of a fixed grid is deterministic per regime —
    // wall-clock varies, the simulated work does not. The absolute pins
    // double as the schedule axis's no-schedule canary: the default
    // grid carries `ScheduleKind::None`, so these counts moving would
    // mean the event scheduler leaked into the unscheduled path
    // (invariant 13).
    let v1 = measure_noise_grid_with(2, ObservablesVersion::V1);
    assert_eq!(v1.probes, GRID_PROBES_V1, "v1 grid probe count moved");
    let v2 = measure_noise_grid_with(2, ObservablesVersion::V2);
    assert_eq!(v2.probes, GRID_PROBES_V2, "v2 grid probe count moved");
    assert_eq!(v1.rows, v2.rows, "regimes run the same grid shape");
}
