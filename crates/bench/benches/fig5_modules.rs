//! Fig. 5 — kernel-module detection and identification (i7-1065G7).
//!
//! Paper: 125 loaded modules, 19 with a unique size; `video`, `mac_hid`
//! and `pinctrl_icelake` are identified by size while `autofs4` and
//! `x_tables` collide at 0xB000; accuracy 99.72 %.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::{calibrate, linux_prober, paper};
use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
use avx_channel::attacks::modules::score;
use avx_channel::report::Table;
use avx_channel::{ModuleClassifier, ModuleScanner};
use avx_os::modules::UBUNTU_18_04_MODULES;
use avx_uarch::CpuProfile;

fn print_fig5() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let (mut p, truth) = linux_prober(CpuProfile::ice_lake_i7_1065g7(), 6);
        let th = calibrate(&mut p, &truth);
        let scan = ModuleScanner::new(th).scan(&mut p);
        let classifier = ModuleClassifier::new(&UBUNTU_18_04_MODULES);
        let ids = classifier.classify(&scan);
        let s = score(&scan, &ids, &truth.modules);

        println!("\nFig. 5 — identified kernel modules (i7-1065G7):");
        let mut table = Table::new(["offset (4 KiB)", "size", "identified as"]);
        for name in ["autofs4", "x_tables", "video", "mac_hid", "pinctrl_icelake"] {
            let m = truth.module(name).expect("module loaded");
            let slot =
                (m.base.as_u64() - avx_os::linux::MODULE_REGION_START) / 0x1000;
            let id = ids.iter().find(|i| i.detected.base == m.base);
            let label = match id.and_then(|i| i.unique_name()) {
                Some(n) => n.to_string(),
                None => format!(
                    "ambiguous ({} candidates)",
                    id.map_or(0, |i| i.candidates.len())
                ),
            };
            table.row([
                slot.to_string(),
                format!("{:#x}", m.spec.size),
                label,
            ]);
        }
        println!("{table}");
        let (paper_total, paper_unique, paper_acc) = paper::MODULES;
        println!(
            "  detected {} runs of {} modules ({} unique sizes) — exact-detection {:.2} % [paper: {paper_total} modules, {paper_unique} unique, {paper_acc:.2} %]\n",
            scan.detected.len(),
            truth.modules.len(),
            avx_os::modules::unique_sized(&UBUNTU_18_04_MODULES).len(),
            s.exact.percent(),
        );
    });
}

fn bench(c: &mut Criterion) {
    print_fig5();
    let mut group = c.benchmark_group("fig5_modules");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("full_module_area_scan_16384_pages", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            let (mut p, truth) = linux_prober(CpuProfile::ice_lake_i7_1065g7(), seed);
            let th = calibrate(&mut p, &truth);
            ModuleScanner::new(th).scan(&mut p).detected.len()
        })
    });
    group.bench_function("modules_campaign_4_parallel_trials", |b| {
        let mut seed = 60_000u64;
        b.iter(|| {
            seed += 100;
            let row = Scenario::Modules.campaign(
                &CpuProfile::ice_lake_i7_1065g7(),
                CampaignConfig::new(4, seed),
            );
            assert_eq!(row.accuracy.total, 4 * 125);
            row.accuracy.successes
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
