//! §V-A — software countermeasures: FLARE and FGKASLR.
//!
//! Paper: FLARE's dummy mappings defeat the page-table attack but not
//! the TLB attack; FGKASLR still leaks the base, and TLB template
//! attacks locate function pages despite the shuffle.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_channel::countermeasures::{evaluate_fgkaslr, evaluate_flare};
use avx_uarch::CpuProfile;

fn print_countermeasures() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n§V-A — countermeasure evaluation:");
        let flare = evaluate_flare(CpuProfile::alder_lake_i5_12400f(), 5);
        println!("  {flare}");
        assert!(flare.page_table_defeated);
        assert!(flare.tlb_correct, "the paper's bypass must hold");

        let fg = evaluate_fgkaslr(CpuProfile::alder_lake_i5_12400f(), 6, "commit_creds");
        println!("  {fg}");
        assert!(fg.base_correct);
        assert!(fg.function_page_correct);
        println!();
    });
}

fn bench(c: &mut Criterion) {
    print_countermeasures();
    let mut group = c.benchmark_group("countermeasures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("flare_tlb_bypass", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            evaluate_flare(CpuProfile::alder_lake_i5_12400f(), seed).tlb_correct
        })
    });
    group.bench_function("fgkaslr_template_attack", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            evaluate_fgkaslr(CpuProfile::alder_lake_i5_12400f(), seed, "commit_creds")
                .function_page_correct
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
