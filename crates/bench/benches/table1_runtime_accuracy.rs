//! Table I — runtime and accuracy of base/module derandomization.
//!
//! Paper rows (probing / total / accuracy, n = 10000):
//!   i5-12400F base 67 µs / 0.28 ms / 99.60 %, modules 2.43 / 2.62 ms / 99.84 %
//!   i7-1065G7 base 0.26 / 0.57 ms / 99.29 %, modules 8.42 / 8.64 ms / 99.72 %
//!   Ryzen 5600X base 1.91 / 2.90 ms / 99.48 %
//!
//! Accuracy trials default to 60 per row for bench snappiness; set
//! `AVX_TRIALS` (e.g. 10000) to match the paper's n.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::{accuracy_trials, calibrate, linux_prober, paper};
use avx_channel::report::{fmt_seconds, Table};
use avx_channel::{AmdKernelBaseFinder, KernelBaseFinder};
use avx_uarch::CpuProfile;

fn print_table1() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let trials = accuracy_trials();
        let rows = avx_channel::attacks::campaign::table1(
            avx_channel::attacks::campaign::CampaignConfig::new(trials, 0),
        );
        let mut table = Table::new([
            "CPU",
            "Target",
            "Probing",
            "Total",
            "Accuracy",
            "Paper (prob/total/acc)",
        ]);
        for (row, paper_row) in rows.iter().zip(paper::TABLE1.iter()) {
            table.row([
                row.cpu.clone(),
                row.target.to_string(),
                fmt_seconds(row.probing_seconds),
                fmt_seconds(row.total_seconds),
                format!("{:.2} %", row.accuracy.percent()),
                format!("{} / {} / {:.2} %", paper_row.2, paper_row.3, paper_row.4),
            ]);
        }
        println!("\nTable I — derandomization runtime and accuracy (n={trials}):");
        println!("{table}");
    });
}

fn bench(c: &mut Criterion) {
    print_table1();
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("alder_lake_base_attack", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (mut p, truth) = linux_prober(CpuProfile::alder_lake_i5_12400f(), seed);
            let th = calibrate(&mut p, &truth);
            KernelBaseFinder::new(th).scan(&mut p).base
        })
    });
    group.bench_function("zen3_base_attack", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (mut p, _) = linux_prober(CpuProfile::zen3_ryzen5_5600x(), seed);
            AmdKernelBaseFinder::for_default_kernel().scan(&mut p).base
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
