//! Batched vs scalar sweep throughput.
//!
//! The sweep-shaped attacks (Fig. 4 kernel scan, Fig. 5 module scan)
//! time one masked op per candidate address. The batched probe pipeline
//! (`Prober::probe_batch` → `Machine::execute_batch`) amortizes the
//! per-op bookkeeping of the scalar path — no `MaskedOutcome`
//! materialization, no lane-buffer allocation — so the same sweep
//! measured through `ProbeStrategy::measure_batch` must beat the
//! per-address `ProbeStrategy::measure` loop while returning identical
//! cycle readings.

use std::sync::Once;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use avx_bench::quiet_linux_prober;
use avx_channel::{KernelBaseFinder, ModuleScanner, ProbeStrategy, Prober};
use avx_mmu::VirtAddr;
use avx_uarch::{CpuProfile, OpKind};

/// Scalar reference: the pre-batching hot loop, one strategy
/// measurement per candidate.
fn scalar_sweep<P: Prober + ?Sized>(p: &mut P, strategy: ProbeStrategy, addrs: &[VirtAddr]) -> u64 {
    addrs
        .iter()
        .map(|&a| strategy.measure(p, OpKind::Load, a))
        .sum()
}

/// Batched pipeline: same candidates, same strategy, whole tiles at a
/// time.
fn batched_sweep<P: Prober + ?Sized>(
    p: &mut P,
    strategy: ProbeStrategy,
    addrs: &[VirtAddr],
) -> u64 {
    strategy
        .measure_batch(p, OpKind::Load, addrs)
        .into_iter()
        .sum()
}

/// One-off printed comparison so the bench output leads with the
/// headline number.
fn print_throughput_comparison() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let addrs = KernelBaseFinder::candidate_range().to_vec();
        let strategy = ProbeStrategy::SecondOfTwo;
        let rounds = 200u32;

        let (mut p, _) = quiet_linux_prober(CpuProfile::alder_lake_i5_12400f(), 1);
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(scalar_sweep(&mut p, strategy, &addrs));
        }
        let scalar = start.elapsed();

        let (mut p, _) = quiet_linux_prober(CpuProfile::alder_lake_i5_12400f(), 1);
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(batched_sweep(&mut p, strategy, &addrs));
        }
        let batched = start.elapsed();

        println!(
            "\nFig. 4 sweep, {rounds} rounds of 512 slots: scalar {:.2} ms, \
             batched {:.2} ms — {:.2}x",
            scalar.as_secs_f64() * 1e3,
            batched.as_secs_f64() * 1e3,
            scalar.as_secs_f64() / batched.as_secs_f64()
        );
    });
}

fn bench(c: &mut Criterion) {
    print_throughput_comparison();
    let mut group = c.benchmark_group("batched_sweep");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let fig4_addrs = KernelBaseFinder::candidate_range().to_vec();
    group.bench_function("fig4_512_slots_scalar", |b| {
        let (mut p, _) = quiet_linux_prober(CpuProfile::alder_lake_i5_12400f(), 2);
        b.iter(|| scalar_sweep(&mut p, ProbeStrategy::SecondOfTwo, &fig4_addrs))
    });
    group.bench_function("fig4_512_slots_batched", |b| {
        let (mut p, _) = quiet_linux_prober(CpuProfile::alder_lake_i5_12400f(), 2);
        b.iter(|| batched_sweep(&mut p, ProbeStrategy::SecondOfTwo, &fig4_addrs))
    });

    let fig5_addrs = ModuleScanner::candidate_range().to_vec();
    group.bench_function("fig5_16384_pages_scalar", |b| {
        let (mut p, _) = quiet_linux_prober(CpuProfile::ice_lake_i7_1065g7(), 3);
        b.iter(|| scalar_sweep(&mut p, ProbeStrategy::MinOf(2), &fig5_addrs))
    });
    group.bench_function("fig5_16384_pages_batched", |b| {
        let (mut p, _) = quiet_linux_prober(CpuProfile::ice_lake_i7_1065g7(), 3);
        b.iter(|| batched_sweep(&mut p, ProbeStrategy::MinOf(2), &fig5_addrs))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
