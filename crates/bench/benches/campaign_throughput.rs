//! End-to-end campaign throughput: probes/sec and trials/sec over the
//! full attack × CPU × noise grid, plus the quiet Fig. 4 sweep.
//!
//! This is the perf-trajectory bench: the same measurements back the
//! `repro --bench-json` flag, which records them in
//! `BENCH_campaign.json` so regressions across PRs are visible.

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::throughput::{measure_fig4_sweep, measure_noise_grid};

fn noise_grid_throughput(c: &mut Criterion) {
    // One up-front standardized measurement with the headline metrics.
    let grid = measure_noise_grid(2);
    println!(
        "campaign_throughput/noise_grid(n=2): {} rows, {} probes, {:.2} s \
         → {:.0} probes/s, {:.1} trials/s",
        grid.rows, grid.probes, grid.wall_seconds, grid.probes_per_sec, grid.trials_per_sec
    );

    let mut group = c.benchmark_group("campaign_throughput");
    group
        .sample_size(3)
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("noise_grid_n2", |b| b.iter(|| measure_noise_grid(2)));
    group.finish();
}

fn fig4_sweep_throughput(c: &mut Criterion) {
    let sweep = measure_fig4_sweep(64 * 1024);
    println!(
        "campaign_throughput/fig4_sweep: {} probes in {:.3} s → {:.0} probes/s",
        sweep.probes, sweep.wall_seconds, sweep.probes_per_sec
    );

    let mut group = c.benchmark_group("campaign_throughput");
    group
        .sample_size(5)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("fig4_sweep_64k_probes", |b| {
        b.iter(|| measure_fig4_sweep(64 * 1024))
    });
    group.finish();
}

criterion_group!(benches, noise_grid_throughput, fig4_sweep_throughput);
criterion_main!(benches);
