//! §III-B property 3 — walk-termination-level timing (Coffee Lake).
//!
//! Paper: with the TLB flushed (INVLPG from a kernel module), the
//! masked-load time "increases linearly from the lowest level (PDT) to
//! the highest level (PML4T) except for PT" — PT walks are slower than
//! huge-page walks because the paging-structure caches never hold PTEs.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_channel::report::Table;
use avx_channel::stats::Summary;
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, Machine, MaskedOp};

const PT_PAGE: u64 = 0xffff_ffff_c012_3000; // 4 KiB → walk ends at PT
const PD_PAGE: u64 = 0xffff_ffff_a1e0_0000; // 2 MiB → PD
const PDPT_PAGE: u64 = 0xffff_c000_0000_0000; // 1 GiB → PDPT
const PML4_HOLE: u64 = 0xffff_9000_0000_0000; // nothing → PML4

fn machine(seed: u64) -> Machine {
    let mut space = AddressSpace::new();
    space
        .map(
            VirtAddr::new_truncate(PT_PAGE),
            PageSize::Size4K,
            PteFlags::kernel_rx(),
        )
        .unwrap();
    space
        .map(
            VirtAddr::new_truncate(PD_PAGE),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
    space
        .map(
            VirtAddr::new_truncate(PDPT_PAGE),
            PageSize::Size1G,
            PteFlags::kernel_rw(),
        )
        .unwrap();
    let profile = CpuProfile::coffee_lake_i9_9900();
    let noise = avx_bench::sigma_only_noise(&profile);
    let mut m = Machine::new(profile, space, seed);
    m.set_noise(noise);
    m
}

/// One paper-methodology measurement: warm the PTE lines, then INVLPG
/// (flushes TLB + PSC for the address, data caches untouched) before
/// every timed probe.
fn measure_level(m: &mut Machine, addr: u64, n: usize) -> Summary {
    let va = VirtAddr::new_truncate(addr);
    let probe = MaskedOp::probe_load(va);
    let _ = m.execute(probe);
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        m.invlpg(va);
        samples.push(m.execute(probe).cycles);
    }
    Summary::of(&samples)
}

fn print_levels() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut m = machine(1);
        let mut table = Table::new(["terminal level", "cycles (mean)"]);
        let mut means = Vec::new();
        for (label, addr) in [
            ("PD   (2 MiB page)", PD_PAGE),
            ("PDPT (1 GiB page)", PDPT_PAGE),
            ("PML4 (unmapped)  ", PML4_HOLE),
            ("PT   (4 KiB page)", PT_PAGE),
        ] {
            let s = measure_level(&mut m, addr, 500);
            means.push(s.mean);
            table.row([label.to_string(), format!("{:.1}", s.mean)]);
        }
        println!(
            "\n§III-B P3 — walk-termination-level timing (i9-9900, INVLPG before each probe):"
        );
        println!("{table}");
        assert!(means[0] < means[1], "PD < PDPT");
        assert!(means[1] < means[2], "PDPT < PML4");
        assert!(means[3] > means[0], "PT off the line (no PSC for PTEs)");
        println!(
            "  ordering reproduced: PD {:.0} < PDPT {:.0} < PML4 {:.0}; PT {:.0} above PD\n",
            means[0], means[1], means[2], means[3]
        );
    });
}

fn bench(c: &mut Criterion) {
    print_levels();
    let mut group = c.benchmark_group("prop3_walk_levels");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (label, addr) in [
        ("pd_terminal", PD_PAGE),
        ("pt_terminal", PT_PAGE),
        ("pml4_terminal", PML4_HOLE),
    ] {
        let mut m = machine(5);
        let va = VirtAddr::new_truncate(addr);
        let probe = MaskedOp::probe_load(va);
        group.bench_function(label, |b| {
            b.iter(|| {
                m.invlpg(va);
                m.execute(probe).cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
