//! Fig. 1 — fault suppression of the AVX masked load/store.
//!
//! Reproduces the four boundary cases (A–D): an 8-lane access
//! straddling a mapped/unmapped page boundary either faults (a lane on
//! the invalid page is unmasked) or completes with the fault
//! suppressed (all lanes on the invalid page are masked out).

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, ElemWidth, Machine, Mask, MaskedOp, OpKind};

const MAPPED: u64 = 0x5555_5555_4000;

fn machine(seed: u64) -> Machine {
    let mut space = AddressSpace::new();
    space
        .map(
            VirtAddr::new_truncate(MAPPED),
            PageSize::Size4K,
            PteFlags::user_rw(),
        )
        .unwrap();
    // The adjacent page stays unmapped.
    let profile = CpuProfile::ice_lake_i7_1065g7();
    let noise = avx_bench::sigma_only_noise(&profile);
    let mut m = Machine::new(profile, space, seed);
    m.set_noise(noise);
    m
}

fn case(kind: OpKind, mask_bits: u8) -> MaskedOp {
    MaskedOp {
        kind,
        addr: VirtAddr::new_truncate(MAPPED + 0xff0), // last 16 bytes
        mask: Mask::new(mask_bits, 8),
        width: ElemWidth::Dword,
    }
}

fn print_case_table() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut m = machine(1);
        println!("\nFig. 1 — fault suppression cases (lanes 4..7 on the unmapped page):");
        for (label, kind, bits, expect_fault) in [
            (
                "A masked load, lane on invalid page unmasked ",
                OpKind::Load,
                0b1111_0001u8,
                true,
            ),
            (
                "B masked load, invalid page fully masked     ",
                OpKind::Load,
                0b0000_0111,
                false,
            ),
            (
                "C masked store, lane on invalid page unmasked",
                OpKind::Store,
                0b1111_0001,
                true,
            ),
            (
                "D masked store, invalid page fully masked    ",
                OpKind::Store,
                0b0000_0111,
                false,
            ),
        ] {
            let out = m.execute(case(kind, bits));
            let result = match out.fault {
                Some(f) => format!("FAULT ({f})"),
                None => format!("suppressed (assist={}, {} cycles)", out.assist, out.cycles),
            };
            println!("  {label}: {result}");
            assert_eq!(out.fault.is_some(), expect_fault, "paper Fig. 1 semantics");
        }
        println!();
    });
}

fn bench(c: &mut Criterion) {
    print_case_table();
    let mut group = c.benchmark_group("fig1_fault_suppression");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let mut m = machine(2);
    group.bench_function("suppressed_masked_load", |b| {
        b.iter(|| m.execute(case(OpKind::Load, 0b0000_0111)).cycles)
    });
    let mut m = machine(3);
    group.bench_function("faulting_masked_load", |b| {
        b.iter(|| m.execute(case(OpKind::Load, 0b1111_0001)).cycles)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
