//! §III-B property 6 — masked store vs masked load under assist.
//!
//! Paper (i7-1065G7, KERNEL-M page): load 92 cycles, store 76 — the
//! store is 16–18 cycles cheaper, which the attack can use to speed up
//! probing.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::paper;
use avx_channel::stats::Summary;
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, Machine, MaskedOp};

const KERNEL_M: u64 = 0xffff_ffff_a1e0_0000;

fn machine(seed: u64) -> Machine {
    let mut space = AddressSpace::new();
    space
        .map(
            VirtAddr::new_truncate(KERNEL_M),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
    let profile = CpuProfile::ice_lake_i7_1065g7();
    let noise = avx_bench::sigma_only_noise(&profile);
    let mut m = Machine::new(profile, space, seed);
    m.set_noise(noise);
    m
}

fn print_p6() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut m = machine(1);
        let va = VirtAddr::new_truncate(KERNEL_M);
        let load = MaskedOp::probe_load(va);
        let store = MaskedOp::probe_store(va);
        for _ in 0..4 {
            let _ = m.execute(load);
            let _ = m.execute(store);
        }
        let loads: Vec<u64> = (0..1000).map(|_| m.execute(load).cycles).collect();
        let stores: Vec<u64> = (0..1000).map(|_| m.execute(store).cycles).collect();
        let (paper_load, paper_store) = paper::P6_LOAD_STORE;
        let l = Summary::of(&loads);
        let s = Summary::of(&stores);
        println!("\n§III-B P6 — load vs store on KERNEL-M (i7-1065G7, n=1000):");
        println!("  masked load:  {l}   [paper: {paper_load:.0}]");
        println!("  masked store: {s}   [paper: {paper_store:.0}]");
        println!("  delta: {:.1} cycles (paper: 16-18)\n", l.mean - s.mean);
    });
}

fn bench(c: &mut Criterion) {
    print_p6();
    let mut group = c.benchmark_group("prop6_load_vs_store");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let va = VirtAddr::new_truncate(KERNEL_M);
    let mut m = machine(2);
    let op = MaskedOp::probe_load(va);
    group.bench_function("masked_load_kernel_page", |b| {
        b.iter(|| m.execute(op).cycles)
    });
    let mut m = machine(3);
    let op = MaskedOp::probe_store(va);
    group.bench_function("masked_store_kernel_page", |b| {
        b.iter(|| m.execute(op).cycles)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
