//! Fig. 2 — masked-load latency and PMCs per page type (Ice Lake).
//!
//! Paper: USER-M 13±1.02, USER-U 110±0.91, KERNEL-M 93±1.64,
//! KERNEL-U 107±1.04 cycles; ASSISTS.ANY 0/1/1/1; completed walks
//! 0/2/0/2.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::paper;
use avx_channel::report::Table;
use avx_channel::stats::Summary;
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, Event, Machine, MaskedOp};

const USER_M: u64 = 0x5555_5555_4000;
const USER_U: u64 = 0x5555_5555_5000;
const KERNEL_M: u64 = 0xffff_ffff_a1e0_0000;
const KERNEL_U: u64 = 0xffff_ffff_a1a0_0000;

fn machine(seed: u64) -> Machine {
    let mut space = AddressSpace::new();
    space
        .map(
            VirtAddr::new_truncate(USER_M),
            PageSize::Size4K,
            PteFlags::user_rw(),
        )
        .unwrap();
    space
        .map(
            VirtAddr::new_truncate(USER_U),
            PageSize::Size4K,
            PteFlags::user_rw(),
        )
        .unwrap();
    space
        .protect(
            VirtAddr::new_truncate(USER_U),
            PageSize::Size4K,
            PteFlags::none_guard(),
        )
        .unwrap();
    space
        .map(
            VirtAddr::new_truncate(KERNEL_M),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
    let profile = CpuProfile::ice_lake_i7_1065g7();
    let noise = avx_bench::sigma_only_noise(&profile);
    let mut m = Machine::new(profile, space, seed);
    m.set_noise(noise);
    m
}

fn measure_page(m: &mut Machine, addr: u64, n: usize) -> (Summary, u64, u64) {
    let probe = MaskedOp::probe_load(VirtAddr::new_truncate(addr));
    // Warm-up, then measure steady state (paper methodology).
    for _ in 0..4 {
        let _ = m.execute(probe);
    }
    let mut samples = Vec::with_capacity(n);
    let snap = m.pmc().snapshot();
    for _ in 0..n {
        samples.push(m.execute(probe).cycles);
    }
    let delta = m.pmc().delta(&snap);
    let per_probe = n as u64;
    (
        Summary::of(&samples),
        delta.get(Event::AssistsAny) / per_probe,
        delta.get(Event::DtlbLoadWalkCompleted) / per_probe,
    )
}

fn print_fig2() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut m = machine(1);
        let mut table = Table::new([
            "page type",
            "measured",
            "paper mean",
            "assists",
            "paper",
            "walks",
            "paper",
        ]);
        for (i, (label, addr)) in [
            ("USER-M", USER_M),
            ("USER-U", USER_U),
            ("KERNEL-M", KERNEL_M),
            ("KERNEL-U", KERNEL_U),
        ]
        .iter()
        .enumerate()
        {
            let (s, assists, walks) = measure_page(&mut m, *addr, 1000);
            table.row([
                label.to_string(),
                format!("{:.0}±{:.2}", s.mean, s.stddev),
                format!("{:.0}", paper::FIG2_MEANS[i]),
                assists.to_string(),
                paper::FIG2_ASSISTS[i].to_string(),
                walks.to_string(),
                paper::FIG2_WALKS[i].to_string(),
            ]);
        }
        println!("\nFig. 2 — masked-load latency per page type (i7-1065G7, n=1000):");
        println!("{table}");
    });
}

fn bench(c: &mut Criterion) {
    print_fig2();
    let mut group = c.benchmark_group("fig2_page_types");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (label, addr) in [
        ("user_mapped", USER_M),
        ("user_unmapped", USER_U),
        ("kernel_mapped", KERNEL_M),
        ("kernel_unmapped", KERNEL_U),
    ] {
        let mut m = machine(7);
        let probe = MaskedOp::probe_load(VirtAddr::new_truncate(addr));
        group.bench_function(label, |b| b.iter(|| m.execute(probe).cycles));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
