//! §V-B — masked-op usage survey and NOP-replacement impact.
//!
//! Paper: only 6 of 4104 executables in a default Ubuntu 20.04.3
//! install contain `VMASKMOV`/`VPMASKMOV`, so replacing all-zero-mask
//! masked ops with NOPs would have little system impact. The bench
//! reproduces the survey over a synthetic corpus with exact ground
//! truth and times the scanner.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::paper;
use avx_channel::countermeasures::MaskedOpSurvey;
use avx_hw::scan::{survey_corpus, synthetic_corpus};

fn print_survey() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let (paper_with, paper_total) = paper::SURVEY;
        let corpus = synthetic_corpus(paper_total, paper_with, 16 * 1024, 42);
        let count = survey_corpus(&corpus);
        let survey = MaskedOpSurvey {
            total: count.total,
            containing: count.containing,
        };
        println!("\n§V-B — masked-op usage survey (synthetic corpus, exact ground truth):");
        println!("  {survey} [paper: 6 of 4104]");
        println!(
            "  NOP-replacement impact: {} (affected fraction {:.4} %)\n",
            if survey.low_impact() { "low" } else { "HIGH" },
            survey.affected_fraction() * 100.0
        );
        assert_eq!(count.containing, paper_with);
        assert_eq!(count.total, paper_total);
    });
}

fn bench(c: &mut Criterion) {
    print_survey();
    let mut group = c.benchmark_group("maskedop_survey");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let corpus = synthetic_corpus(256, 4, 16 * 1024, 1);
    group.bench_function("scan_256_binaries_16k", |b| {
        b.iter(|| survey_corpus(&corpus).containing)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
