//! Ablation studies of the attack's design choices (DESIGN.md §5/§6).
//!
//! Not a paper figure — these sweeps justify the knobs the paper fixes
//! implicitly:
//!
//! 1. **probe strategy** — single-shot vs probe-twice vs min-of-k:
//!    why the paper's "execute twice, measure the second" works, and
//!    what min-filtering buys under interrupt noise;
//! 2. **threshold margin** — sensitivity of the mapped/unmapped
//!    classifier around the calibrated value (the 14-cycle band gap);
//! 3. **spike probability** — attack accuracy as the machine gets
//!    noisier, showing where the paper's 99.x % regime lives;
//! 4. **eviction necessity** — the behaviour spy with and without TLB
//!    eviction (the paper: "we use this attack primitive in
//!    combination with a TLB eviction to reduce noise").

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::{calibrate, linux_prober};
use avx_channel::report::Table;
use avx_channel::stats::Trials;
use avx_channel::{KernelBaseFinder, ProbeStrategy, Prober, SimProber, Threshold, TlbAttack};
use avx_os::activity::{apply_activity, ActivityTimeline};
use avx_os::linux::{LinuxConfig, LinuxSystem};
use avx_uarch::{CpuProfile, NoiseModel};

const TRIALS: u64 = 40;

fn base_accuracy(strategy: ProbeStrategy, spike_prob: Option<f64>, margin: Option<f64>) -> f64 {
    let mut acc = Trials::new();
    for seed in 0..TRIALS {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed * 23 + 7));
        let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        if let Some(p) = spike_prob {
            let t = machine.profile().timing;
            machine.set_noise(NoiseModel::new(t.noise_sigma, p, t.spike_range));
        }
        let mut prober = SimProber::new(machine);
        let mut th = Threshold::calibrate(&mut prober, truth.user.calibration, 16);
        if let Some(m) = margin {
            th.margin = m;
        }
        let finder = KernelBaseFinder::new(th).with_strategy(strategy);
        acc.record(finder.scan(&mut prober).base == Some(truth.kernel_base));
    }
    acc.percent()
}

fn print_ablations() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\nAblation 1 — probe strategy vs accuracy (n={TRIALS}, profile noise):");
        let mut t = Table::new(["strategy", "probes/slot", "accuracy"]);
        for (label, s) in [
            ("single-shot", ProbeStrategy::Single),
            ("second-of-two (paper)", ProbeStrategy::SecondOfTwo),
            ("min-of-4", ProbeStrategy::MinOf(4)),
        ] {
            t.row([
                label.to_string(),
                s.probes_per_measurement().to_string(),
                format!("{:.1} %", base_accuracy(s, None, None)),
            ]);
        }
        println!("{t}");

        println!("Ablation 2 — threshold margin vs accuracy (gap is 14 cycles):");
        let mut t = Table::new(["margin (cycles)", "accuracy"]);
        for margin in [0.0, 3.0, 7.0, 11.0, 14.0, 20.0] {
            t.row([
                format!("{margin:.0}"),
                format!(
                    "{:.1} %",
                    base_accuracy(ProbeStrategy::SecondOfTwo, None, Some(margin))
                ),
            ]);
        }
        println!("{t}");

        println!("Ablation 3 — interrupt-spike probability vs accuracy:");
        let mut t = Table::new(["spike prob", "second-of-two", "min-of-4"]);
        for p in [0.0, 0.002, 0.01, 0.05, 0.2] {
            t.row([
                format!("{p}"),
                format!(
                    "{:.1} %",
                    base_accuracy(ProbeStrategy::SecondOfTwo, Some(p), None)
                ),
                format!(
                    "{:.1} %",
                    base_accuracy(ProbeStrategy::MinOf(4), Some(p), None)
                ),
            ]);
        }
        println!("{t}");

        println!("Ablation 4 — behaviour spy with vs without eviction:");
        let timeline = ActivityTimeline::bluetooth_session();
        let (mut p, truth) = linux_prober(CpuProfile::ice_lake_i7_1065g7(), 9);
        let th = calibrate(&mut p, &truth);
        let module = truth.module("bluetooth").unwrap();
        let (base, pages) = (module.base, module.spec.pages());
        let tlb = TlbAttack::from_threshold(&th);

        // With eviction (the paper's procedure).
        let spy = avx_channel::attacks::behavior::TlbSpy::new(Default::default(), tlb);
        let trace = spy.monitor(&mut p, base, |p, t| {
            apply_activity(p.machine_mut(), &timeline, base, pages, t);
        });
        let with_eviction = trace.score(&timeline, tlb.hit_boundary);

        // Without eviction: probe directly each second. The first probe
        // caches the translation itself, so idle samples also hit.
        let mut without_hits = 0usize;
        let mut samples = 0usize;
        for step in 0..100u64 {
            let t = step as f64;
            apply_activity(p.machine_mut(), &timeline, base, pages, t);
            let cycles = p.probe(avx_uarch::OpKind::Load, base);
            let detected = (cycles as f64) <= tlb.hit_boundary;
            if detected == timeline.active_at(t) {
                without_hits += 1;
            }
            samples += 1;
        }
        let without_eviction = without_hits as f64 / samples as f64;
        println!(
            "  with eviction: {:.1} % agreement; without: {:.1} % (self-pollution)\n",
            with_eviction * 100.0,
            without_eviction * 100.0
        );
    });
}

fn bench(c: &mut Criterion) {
    print_ablations();
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, strategy) in [
        ("scan_single", ProbeStrategy::Single),
        ("scan_second_of_two", ProbeStrategy::SecondOfTwo),
        ("scan_min_of_4", ProbeStrategy::MinOf(4)),
    ] {
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let (mut p, truth) = linux_prober(CpuProfile::alder_lake_i5_12400f(), seed);
                let th = calibrate(&mut p, &truth);
                KernelBaseFinder::new(th)
                    .with_strategy(strategy)
                    .scan(&mut p)
                    .base
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
