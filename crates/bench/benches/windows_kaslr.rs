//! §IV-G — Windows 10 KASLR and KVAS breaks.
//!
//! Paper: the five-2 MiB-page kernel region is found among 262144
//! candidates (18 bits) in ~60 ms on an i5-12400F; on KVAS-enabled
//! Windows 10 1709 (i7-6600U) the three shadow pages are found by a
//! 4 KiB scan in 8 s with 100 % accuracy and base = shadow − 0x298000.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::paper;
use avx_channel::attacks::windows::kernel_base_from_shadow;
use avx_channel::report::fmt_seconds;
use avx_channel::{Prober, SimProber, Threshold, WindowsKaslrAttack};
use avx_mmu::VirtAddr;
use avx_os::windows::{WindowsConfig, WindowsSystem, WindowsVersion};
use avx_uarch::CpuProfile;

fn prober(
    config: WindowsConfig,
    profile: CpuProfile,
    seed: u64,
) -> (SimProber, avx_os::WindowsTruth) {
    let sys = WindowsSystem::build(config);
    let (machine, truth) = sys.into_machine(profile, seed);
    (SimProber::new(machine), truth)
}

fn print_windows() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // 18-bit region scan on Alder Lake.
        let (mut p, truth) = prober(
            WindowsConfig::default(),
            CpuProfile::alder_lake_i5_12400f(),
            1,
        );
        let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);
        let scan = WindowsKaslrAttack::new(th).find_kernel_region(&mut p);
        let seconds = scan.total_cycles as f64 / (p.clock_ghz() * 1e9);
        println!("\n§IV-G — Windows 10 KASLR:");
        println!(
            "  kernel region: {} (truth {}), {} [paper: ~{:.0} ms for the full sweep]",
            scan.base.map_or("-".into(), |b| b.to_string()),
            truth.kernel_base,
            fmt_seconds(seconds),
            paper::WINDOWS_REGION_MS
        );
        assert_eq!(scan.base, Some(truth.kernel_base));

        // KVAS on Skylake (1709).
        let (mut p, truth) = prober(
            WindowsConfig {
                version: WindowsVersion::V1709,
                kvas: true,
                fixed_slot: None,
                seed: 2,
            },
            CpuProfile::skylake_i7_6600u(),
            2,
        );
        let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);
        let attack = WindowsKaslrAttack::new(th);
        // Windowed 4 KiB sweep around the (unknown to the attacker)
        // target; the full 512 GiB sweep is the same loop — the paper
        // reports 8 s for it on hardware.
        let window = VirtAddr::new_truncate(truth.kernel_base.as_u64() - 2048 * 4096);
        let shadow = attack
            .find_kvas_shadow(&mut p, window, 4096)
            .expect("shadow found");
        let base = kernel_base_from_shadow(shadow);
        println!(
            "  KVAS shadow at {} → base {} (truth {}) [paper: 3×4 KiB pages, offset 0x298000]\n",
            shadow, base, truth.kernel_base
        );
        assert_eq!(base, truth.kernel_base);
    });
}

fn bench(c: &mut Criterion) {
    print_windows();
    let mut group = c.benchmark_group("windows_kaslr");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("region_scan_until_found", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (mut p, _) = prober(
                WindowsConfig {
                    seed,
                    ..WindowsConfig::default()
                },
                CpuProfile::alder_lake_i5_12400f(),
                seed,
            );
            let th = Threshold::new(93.0, 7.0);
            WindowsKaslrAttack::new(th).find_kernel_region(&mut p).base
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
