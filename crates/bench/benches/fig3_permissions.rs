//! Fig. 3 — execution time by page permission.
//!
//! Paper (masked load): r-- 16, r-x 16, rw- 16, --- 115 cycles.
//! Paper (masked store): r-- 82, r-x 82, rw- 16, --- 96 cycles.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::paper;
use avx_channel::report::Table;
use avx_channel::stats::Summary;
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, ElemWidth, Machine, Mask, MaskedOp, OpKind};

const RO: u64 = 0x7f00_0000_0000;
const RX: u64 = 0x7f00_0000_1000;
const RW: u64 = 0x7f00_0000_2000;
const NONE: u64 = 0x7f00_0000_3000;

fn machine(seed: u64) -> Machine {
    let mut space = AddressSpace::new();
    space
        .map(
            VirtAddr::new_truncate(RO),
            PageSize::Size4K,
            PteFlags::user_ro(),
        )
        .unwrap();
    space
        .map(
            VirtAddr::new_truncate(RX),
            PageSize::Size4K,
            PteFlags::user_rx(),
        )
        .unwrap();
    space
        .map(
            VirtAddr::new_truncate(RW),
            PageSize::Size4K,
            PteFlags::user_rw(),
        )
        .unwrap();
    space
        .map(
            VirtAddr::new_truncate(NONE),
            PageSize::Size4K,
            PteFlags::user_rw(),
        )
        .unwrap();
    space
        .protect(
            VirtAddr::new_truncate(NONE),
            PageSize::Size4K,
            PteFlags::none_guard(),
        )
        .unwrap();
    let profile = CpuProfile::generic_desktop();
    let noise = avx_bench::sigma_only_noise(&profile);
    let mut m = Machine::new(profile, space, seed);
    m.set_noise(noise);
    // The rw- page is in use by the process: write once to set D (the
    // Fig. 3 measurements are steady-state).
    let dirty = MaskedOp {
        kind: OpKind::Store,
        addr: VirtAddr::new_truncate(RW),
        mask: Mask::all_set(8),
        width: ElemWidth::Dword,
    };
    let _ = m.execute(dirty);
    m
}

fn measure(m: &mut Machine, kind: OpKind, addr: u64, n: usize) -> Summary {
    let op = match kind {
        OpKind::Load => MaskedOp::probe_load(VirtAddr::new_truncate(addr)),
        OpKind::Store => MaskedOp {
            kind: OpKind::Store,
            addr: VirtAddr::new_truncate(addr),
            mask: if addr == RW {
                Mask::all_set(8) // real store to own data page
            } else {
                Mask::all_zero(8) // probes elsewhere
            },
            width: ElemWidth::Dword,
        },
    };
    for _ in 0..4 {
        let _ = m.execute(op);
    }
    let samples: Vec<u64> = (0..n).map(|_| m.execute(op).cycles).collect();
    Summary::of(&samples)
}

fn print_fig3() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut m = machine(1);
        let mut table = Table::new(["permission", "load", "paper", "store", "paper"]);
        for (i, (label, addr)) in [("r--", RO), ("r-x", RX), ("rw-", RW), ("---", NONE)]
            .iter()
            .enumerate()
        {
            let load = measure(&mut m, OpKind::Load, *addr, 500);
            let store = measure(&mut m, OpKind::Store, *addr, 500);
            table.row([
                label.to_string(),
                format!("{:.0}", load.mean),
                format!("{:.0}", paper::FIG3_LOAD[i]),
                format!("{:.0}", store.mean),
                format!("{:.0}", paper::FIG3_STORE[i]),
            ]);
        }
        println!("\nFig. 3 — latency by page permission (n=500):");
        println!("{table}");
    });
}

fn bench(c: &mut Criterion) {
    print_fig3();
    let mut group = c.benchmark_group("fig3_permissions");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (label, kind, addr) in [
        ("load_readonly", OpKind::Load, RO),
        ("load_none", OpKind::Load, NONE),
        ("store_readonly", OpKind::Store, RO),
        ("store_none", OpKind::Store, NONE),
    ] {
        let mut m = machine(9);
        let op = match kind {
            OpKind::Load => MaskedOp::probe_load(VirtAddr::new_truncate(addr)),
            OpKind::Store => MaskedOp::probe_store(VirtAddr::new_truncate(addr)),
        };
        group.bench_function(label, |b| b.iter(|| m.execute(op).cycles));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
