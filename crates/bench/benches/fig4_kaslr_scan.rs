//! Fig. 4 — probing all 512 kernel offsets on the i5-12400F.
//!
//! Paper: kernel-mapped slots average 93 cycles, unmapped 107; the
//! mapped band starts at the slide (offset 271 in the paper's run,
//! base 0xffffffffa1e00000).

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::{calibrate, linux_prober_with, paper};
use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
use avx_channel::report::{ascii_plot_clamped, Series};
use avx_channel::KernelBaseFinder;
use avx_os::linux::LinuxConfig;
use avx_uarch::CpuProfile;

fn print_fig4() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // Fix the slide at slot 271 to reproduce the paper's exact run.
        let (mut p, truth) = linux_prober_with(
            LinuxConfig {
                fixed_slide: Some(271),
                ..LinuxConfig::seeded(4)
            },
            CpuProfile::alder_lake_i5_12400f(),
            4,
        );
        let th = calibrate(&mut p, &truth);
        let scan = KernelBaseFinder::new(th).scan(&mut p);
        let series = Series::from_samples("Fig. 4: cycles per 2 MiB offset", &scan.samples);
        println!("\n{}", ascii_plot_clamped(&series, 100, 12, 130.0));
        let mapped: Vec<u64> = scan
            .samples
            .iter()
            .zip(&scan.mapped)
            .filter(|(_, &m)| m)
            .map(|(&s, _)| s)
            .collect();
        let unmapped: Vec<u64> = scan
            .samples
            .iter()
            .zip(&scan.mapped)
            .filter(|(_, &m)| !m)
            .map(|(&s, _)| s)
            .collect();
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        let (paper_mapped, paper_unmapped) = paper::FIG4_BANDS;
        println!(
            "  mapped band:   {:.1} cycles over {} slots [paper: {paper_mapped:.0}]",
            mean(&mapped),
            mapped.len()
        );
        println!(
            "  unmapped band: {:.1} cycles over {} slots [paper: {paper_unmapped:.0}]",
            mean(&unmapped),
            unmapped.len()
        );
        println!(
            "  recovered base: {} (slide slot {:?}; truth {})",
            scan.base.map_or("-".into(), |b| b.to_string()),
            scan.slide_slots(),
            truth.kernel_base
        );
        assert_eq!(scan.base, Some(truth.kernel_base));
        println!();
    });
}

fn bench(c: &mut Criterion) {
    print_fig4();
    let mut group = c.benchmark_group("fig4_kaslr_scan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("full_512_slot_scan", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (mut p, truth) = avx_bench::linux_prober(CpuProfile::alder_lake_i5_12400f(), seed);
            let th = calibrate(&mut p, &truth);
            let scan = KernelBaseFinder::new(th).scan(&mut p);
            assert!(scan.base.is_some());
            scan.total_cycles
        })
    });
    group.bench_function("base_campaign_8_parallel_trials", |b| {
        let mut seed = 50_000u64;
        b.iter(|| {
            seed += 100;
            let row = Scenario::KernelBase.campaign(
                &CpuProfile::alder_lake_i5_12400f(),
                CampaignConfig::new(8, seed),
            );
            assert_eq!(row.accuracy.total, 8);
            row.accuracy.successes
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
