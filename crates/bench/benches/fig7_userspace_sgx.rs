//! §IV-F + Fig. 7 — fine-grained user-space ASLR break (incl. SGX).
//!
//! Paper: the whole 28-bit user window is probed at 4 KiB granularity
//! (51 s with masked loads, 44 s with stores inside an SGX2 enclave);
//! the detected region map matches `/proc/PID/maps` and reveals two
//! additional allocator pages; libraries are identified via their
//! section-size signatures.
//!
//! The bench exercises a reduced-entropy window and reports the
//! cycle-count extrapolation to the paper's full 2^28 scan.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::paper;
use avx_channel::attacks::campaign::Scenario;
use avx_channel::attacks::userspace::{LibraryMatcher, UserSpaceScanner};
use avx_channel::{PermissionAttack, Prober, SimProber};
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_os::process::{build_process, ImageSignature};
use avx_os::ExecutionContext;
use avx_uarch::{CpuProfile, Machine};

const OWN_PAGE: u64 = 0x5400_0000_0000;

fn setup(seed: u64, ctx: ExecutionContext) -> (SimProber, avx_os::ProcessTruth) {
    let mut space = AddressSpace::new();
    let truth = build_process(
        &mut space,
        &ImageSignature::fig7_app(),
        &ImageSignature::standard_set(),
        seed,
    );
    space
        .map(
            VirtAddr::new_truncate(OWN_PAGE),
            PageSize::Size4K,
            PteFlags::user_ro(),
        )
        .unwrap();
    let machine = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, seed);
    (SimProber::with_context(machine, ctx), truth)
}

fn print_fig7() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let (mut p, truth) = setup(7, ExecutionContext::sgx2());
        let perm = PermissionAttack::calibrate(&mut p, VirtAddr::new_truncate(OWN_PAGE));
        let scanner = UserSpaceScanner::new(perm);

        // Fig. 7: scan the window around libc and print maps vs detected.
        let libc_base = truth.library_base("libc.so.6").unwrap();
        let pages = (ImageSignature::libc().span() + 0x6000) / 4096;
        let before = p.probing_cycles();
        let map = scanner.scan(&mut p, libc_base, pages);
        let window_cycles = p.probing_cycles() - before;

        println!("\nFig. 7 — detected regions vs maps file (libc.so, inside SGX2):");
        println!("  /proc/PID/maps (ground truth)          | masked load + store (detected)");
        let maps: Vec<String> = truth
            .maps
            .iter()
            .filter(|e| e.image == "libc.so.6")
            .map(|e| e.to_string())
            .collect();
        for i in 0..map.regions.len().max(maps.len()) {
            let left = maps.get(i).cloned().unwrap_or_default();
            let right = map
                .regions
                .get(i)
                .map(|r| r.to_string())
                .unwrap_or_default();
            println!("  {left:<40} | {right}");
        }

        // Library fingerprinting across the full library window.
        let first = truth.libraries.first().unwrap().base;
        let last = truth.libraries.last().unwrap();
        let span = last.base.as_u64() + last.signature.span() + 0x10_0000 - first.as_u64();
        let full_map = scanner.scan(&mut p, first, span / 4096);
        let matcher = LibraryMatcher::new(ImageSignature::standard_set());
        let matches = matcher.find_all(&full_map);
        println!("\n  identified libraries by section-size signature:");
        for m in &matches {
            let ok = truth.library_base(m.name) == Some(m.base);
            println!(
                "    {} at {} ({})",
                m.name,
                m.base,
                if ok { "correct" } else { "WRONG" }
            );
        }

        // Extrapolate the full 2^28-page scan runtime from the window.
        let per_page = window_cycles as f64 / pages as f64;
        let full_seconds = per_page * (1u64 << 28) as f64 / (p.clock_ghz() * 1e9);
        let (paper_load, paper_store) = paper::SGX_SCAN_SECONDS;
        println!(
            "\n  extrapolated full 2^28-page scan: {full_seconds:.0} s \
             [paper: {paper_load:.0} s load / {paper_store:.0} s store]\n"
        );
    });
}

fn bench(c: &mut Criterion) {
    print_fig7();
    let mut group = c.benchmark_group("fig7_userspace");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("scan_2048_pages_native", |b| {
        let (mut p, truth) = setup(8, ExecutionContext::native());
        let perm = PermissionAttack::calibrate(&mut p, VirtAddr::new_truncate(OWN_PAGE));
        let scanner = UserSpaceScanner::new(perm);
        let start = truth.library_base("libc.so.6").unwrap();
        b.iter(|| scanner.scan(&mut p, start, 2048).regions.len())
    });
    group.bench_function("find_code_base_window", |b| {
        let (mut p, truth) = setup(9, ExecutionContext::sgx2());
        let perm = PermissionAttack::calibrate(&mut p, VirtAddr::new_truncate(OWN_PAGE));
        let scanner = UserSpaceScanner::new(perm);
        let window = VirtAddr::new_truncate(truth.app.base.as_u64() - 512 * 4096);
        b.iter(|| scanner.find_first_mapped(&mut p, window, 1024))
    });
    group.bench_function("userspace_campaign_trial", |b| {
        let mut seed = 70_000u64;
        b.iter(|| {
            seed += 1;
            let outcome = Scenario::UserSpace.run_trial(
                &CpuProfile::ice_lake_i7_1065g7(),
                seed,
                avx_channel::attacks::campaign::CampaignConfig::default(),
            );
            assert!(outcome.accuracy.total > 0);
            outcome.accuracy.successes
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
