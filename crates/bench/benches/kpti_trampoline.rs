//! §IV-D — breaking KASLR with KPTI enabled.
//!
//! Paper setup: base pinned to 0xffffffff81000000 (`nokaslr`); the
//! page-table attack finds fast execution only at 0xffffffff81c00000 —
//! the KPTI trampoline at its known build offset 0xc00000 — from which
//! the base follows.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::{calibrate, linux_prober_with, paper};
use avx_channel::KptiAttack;
use avx_os::linux::{LinuxConfig, KPTI_TRAMPOLINE_OFFSET};
use avx_uarch::CpuProfile;

fn kpti_config(seed: u64, fixed: Option<u64>) -> LinuxConfig {
    LinuxConfig {
        kpti: true,
        fixed_slide: fixed,
        ..LinuxConfig::seeded(seed)
    }
}

fn print_kpti() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        assert_eq!(paper::KPTI_TRAMPOLINE, KPTI_TRAMPOLINE_OFFSET);
        // The paper's fixed-base verification run.
        let (mut p, truth) = linux_prober_with(
            kpti_config(1, Some(8)),
            CpuProfile::alder_lake_i5_12400f(),
            1,
        );
        let th = calibrate(&mut p, &truth);
        let scan = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
        println!("\n§IV-D — KASLR break on a KPTI kernel:");
        println!(
            "  fixed base 0xffffffff81000000: trampoline found at {} [paper: 0xffffffff81c00000]",
            scan.trampoline.map_or("-".into(), |t| t.to_string())
        );
        println!(
            "  derived base: {} (truth {})",
            scan.base.map_or("-".into(), |b| b.to_string()),
            truth.kernel_base
        );
        assert_eq!(scan.base, Some(truth.kernel_base));

        // And randomized runs.
        let mut correct = 0;
        for seed in 10..20u64 {
            let (mut p, truth) = linux_prober_with(
                kpti_config(seed, None),
                CpuProfile::alder_lake_i5_12400f(),
                seed,
            );
            let th = calibrate(&mut p, &truth);
            let scan = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
            if scan.base == Some(truth.kernel_base) {
                correct += 1;
            }
        }
        println!("  randomized KPTI kernels derandomized: {correct}/10\n");
    });
}

fn bench(c: &mut Criterion) {
    print_kpti();
    let mut group = c.benchmark_group("kpti_trampoline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("kpti_scan_512_slots", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (mut p, truth) = linux_prober_with(
                kpti_config(seed, None),
                CpuProfile::alder_lake_i5_12400f(),
                seed,
            );
            let th = calibrate(&mut p, &truth);
            KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET)
                .scan(&mut p)
                .base
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
