//! Fig. 6 — user-behaviour detection via module TLB states.
//!
//! Paper: a spy samples the `bluetooth` / `psmouse` modules at 1 Hz for
//! 100 s; execution times drop into the TLB-hit band whenever the user
//! streams audio or moves the mouse.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::{calibrate, linux_prober};
use avx_channel::attacks::behavior::{SpyConfig, TlbSpy};
use avx_channel::report::{ascii_plot_clamped, Series};
use avx_channel::TlbAttack;
use avx_os::activity::{apply_activity, ActivityTimeline};
use avx_uarch::CpuProfile;

fn run_trace(timeline: &ActivityTimeline, seed: u64) -> (Series, f64) {
    let (mut p, truth) = linux_prober(CpuProfile::ice_lake_i7_1065g7(), seed);
    let th = calibrate(&mut p, &truth);
    let module = truth
        .module(timeline.behaviour.module_name())
        .expect("module loaded");
    let (base, pages) = (module.base, module.spec.pages());
    let tlb = TlbAttack::from_threshold(&th);
    let spy = TlbSpy::new(SpyConfig::default(), tlb);
    let trace = spy.monitor(&mut p, base, |p, t| {
        apply_activity(p.machine_mut(), timeline, base, pages, t);
    });
    let score = trace.score(timeline, tlb.hit_boundary);
    let series = Series {
        label: format!("{} — access time over 100 s", timeline.behaviour),
        points: trace
            .samples
            .iter()
            .map(|s| (s.t, s.cycles as f64))
            .collect(),
    };
    (series, score)
}

fn print_fig6() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\nFig. 6 — user-behaviour detection (i7-1065G7, 1 Hz spy):");
        for (timeline, seed) in [
            (ActivityTimeline::bluetooth_session(), 11u64),
            (ActivityTimeline::mouse_session(), 12),
        ] {
            let (series, score) = run_trace(&timeline, seed);
            println!("{}", ascii_plot_clamped(&series, 100, 10, 500.0));
            println!(
                "  detection agreement with ground truth: {:.1} %\n",
                score * 100.0
            );
        }
    });
}

fn bench(c: &mut Criterion) {
    print_fig6();
    let mut group = c.benchmark_group("fig6_behavior");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("spy_100_samples_bluetooth", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let timeline = ActivityTimeline::bluetooth_session();
            run_trace(&timeline, seed).1
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
