//! §IV-H — KASLR breaks in cloud computing systems.
//!
//! Paper: EC2 base via the aws-kernel trampoline (offset 0xe00000) in
//! 0.03 ms (+1.14 ms modules); GCE base in 0.08 ms (+2.7 ms modules);
//! Azure (Windows) 18 bits in 2.06 s.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::paper;
use avx_channel::attacks::cloud::run_scenario;
use avx_channel::report::{fmt_seconds, Table};
use avx_os::cloud::CloudScenario;

fn print_cloud() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n§IV-H — cloud KASLR breaks:");
        let mut table = Table::new(["provider", "method", "base", "runtime", "paper"]);
        let paper_base = [
            paper::CLOUD_SECONDS[0],
            paper::CLOUD_SECONDS[2],
            paper::CLOUD_SECONDS[4],
        ];
        for (i, scenario) in CloudScenario::all(77).iter().enumerate() {
            let report = run_scenario(scenario, 7 + i as u64);
            assert!(report.base_correct, "{report}");
            table.row([
                report.provider.to_string(),
                report.method.to_string(),
                report.base.map_or("-".into(), |b| format!("{b}")),
                fmt_seconds(report.base_seconds),
                fmt_seconds(paper_base[i]),
            ]);
            if let (Some(n), Some(s)) = (report.modules_detected, report.modules_seconds) {
                println!("  ({}: {n} modules in {})", report.provider, fmt_seconds(s));
            }
        }
        println!("{table}");
    });
}

fn bench(c: &mut Criterion) {
    print_cloud();
    let mut group = c.benchmark_group("cloud_kaslr");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("ec2_trampoline_break", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_scenario(&CloudScenario::amazon_ec2(seed), seed).base_correct
        })
    });
    group.bench_function("gce_direct_break", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_scenario(&CloudScenario::google_gce(seed), seed).base_correct
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
