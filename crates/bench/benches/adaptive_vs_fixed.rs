//! Adaptive sequential sampling vs the fixed repetition budget.
//!
//! The adaptive engine's claim (ISSUE 2 acceptance): on the quiet
//! profile it reaches the same campaign accuracy as the noise-robust
//! fixed-repetition path with ≥2x fewer total probes — and under the
//! noisy presets it keeps accuracy the cheap fixed schedule loses.
//! This bench prints the probes-per-address × accuracy grid and then
//! measures the wall-clock of the three policies on the Fig. 4 kernel
//! sweep.

use std::sync::Once;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use avx_bench::quiet_linux_prober;
use avx_channel::adaptive::AdaptiveSampler;
use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
use avx_channel::{calibrate::Threshold, KernelBaseFinder, ProbeStrategy, Sampling};
use avx_uarch::{CpuProfile, NoiseProfile};

/// One-off printed comparison so the bench output leads with the
/// headline numbers: probes/address and accuracy per policy × noise.
fn print_probe_economy_grid() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let profile = CpuProfile::alder_lake_i5_12400f();
        let trials = 8u64;
        println!("kernel-base cell, {trials} trials per entry (i5-12400F):");
        println!(
            "  {:<8} {:<13} {:>12} {:>10}",
            "noise", "sampling", "probes/addr", "accuracy"
        );
        let mut quiet_adaptive = 0u64;
        let mut quiet_robust = 0u64;
        for noise in NoiseProfile::ALL {
            for sampling in [
                Sampling::Fixed,
                Sampling::fixed_budget(),
                Sampling::adaptive(),
            ] {
                let row = Scenario::KernelBase.campaign(
                    &profile,
                    CampaignConfig::new(trials, 0)
                        .with_noise(noise)
                        .with_sampling(sampling),
                );
                if noise == NoiseProfile::Quiet {
                    match sampling {
                        Sampling::Adaptive(_) => quiet_adaptive = row.probes,
                        Sampling::FixedBudget(_) => quiet_robust = row.probes,
                        Sampling::Fixed => {}
                    }
                }
                println!(
                    "  {:<8} {:<13} {:>12.2} {:>9.2} %",
                    row.noise,
                    row.sampling,
                    row.probes_per_address,
                    row.accuracy.percent()
                );
            }
        }
        assert!(
            quiet_adaptive * 2 <= quiet_robust,
            "headline claim lost: adaptive {quiet_adaptive} vs fixed-budget {quiet_robust}"
        );
        println!(
            "  => quiet-profile probe economy vs the robust budget: {:.2}x fewer\n",
            quiet_robust as f64 / quiet_adaptive as f64
        );
    });
}

fn bench(c: &mut Criterion) {
    print_probe_economy_grid();

    let mut group = c.benchmark_group("adaptive_vs_fixed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let profile = CpuProfile::alder_lake_i5_12400f();

    group.bench_function("fixed_second_of_two_sweep", |b| {
        let (mut p, truth) = quiet_linux_prober(profile.clone(), 1);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let finder = KernelBaseFinder::new(th);
        b.iter(|| black_box(finder.scan(&mut p).probes))
    });

    group.bench_function("fixed_budget_min_of_8_sweep", |b| {
        let (mut p, truth) = quiet_linux_prober(profile.clone(), 1);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let finder = KernelBaseFinder::new(th).with_strategy(ProbeStrategy::MinOf(8));
        b.iter(|| black_box(finder.scan(&mut p).probes))
    });

    group.bench_function("adaptive_sprt_sweep", |b| {
        let (mut p, truth) = quiet_linux_prober(profile.clone(), 1);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let finder =
            KernelBaseFinder::new(th).with_adaptive(AdaptiveSampler::from_threshold(&th, 1.0));
        b.iter(|| black_box(finder.scan(&mut p).probes))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
