//! §III-B property 4 — TLB hit vs miss (Coffee Lake, n = 1000).
//!
//! Paper: first access after eviction 381 cycles, second access 147.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use avx_bench::paper;
use avx_channel::stats::Summary;
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, Machine, MaskedOp};

const KERNEL_M: u64 = 0xffff_ffff_a1e0_0000;

fn machine(seed: u64) -> Machine {
    let mut space = AddressSpace::new();
    space
        .map(
            VirtAddr::new_truncate(KERNEL_M),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
    let profile = CpuProfile::coffee_lake_i9_9900();
    let noise = avx_bench::sigma_only_noise(&profile);
    let mut m = Machine::new(profile, space, seed);
    m.set_noise(noise);
    m
}

fn print_hit_miss() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut m = machine(1);
        let va = VirtAddr::new_truncate(KERNEL_M);
        let probe = MaskedOp::probe_load(va);
        let _ = m.execute(probe);
        let mut misses = Vec::with_capacity(1000);
        let mut hits = Vec::with_capacity(1000);
        for _ in 0..1000 {
            m.evict_translation(va);
            misses.push(m.execute(probe).cycles); // first → miss
            hits.push(m.execute(probe).cycles); // second → hit
        }
        let (paper_hit, paper_miss) = paper::P4_HIT_MISS;
        println!("\n§III-B P4 — TLB state (i9-9900, n=1000):");
        println!(
            "  miss (first access):  {}   [paper: {paper_miss:.0}]",
            Summary::of(&misses)
        );
        println!(
            "  hit  (second access): {}   [paper: {paper_hit:.0}]\n",
            Summary::of(&hits)
        );
    });
}

fn bench(c: &mut Criterion) {
    print_hit_miss();
    let mut group = c.benchmark_group("prop4_tlb_state");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let va = VirtAddr::new_truncate(KERNEL_M);
    let probe = MaskedOp::probe_load(va);

    let mut m = machine(2);
    group.bench_function("tlb_miss_probe", |b| {
        b.iter(|| {
            m.evict_translation(va);
            m.execute(probe).cycles
        })
    });
    let mut m = machine(3);
    let _ = m.execute(probe);
    group.bench_function("tlb_hit_probe", |b| b.iter(|| m.execute(probe).cycles));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
