//! The four-level page-table address space.

use core::fmt;
use std::sync::Arc;

use crate::addr::{PhysAddr, VirtAddr};
use crate::error::MmuError;
use crate::flags::PteFlags;
use crate::pte::Pte;
use crate::table::{FrameId, Level, PageTable};

/// Supported architectural page sizes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PageSize {
    /// 4 KiB page mapped by a PT entry.
    Size4K,
    /// 2 MiB page mapped by a PD entry with PS set.
    Size2M,
    /// 1 GiB page mapped by a PDPT entry with PS set.
    Size1G,
}

impl PageSize {
    /// Size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4 * 1024,
            PageSize::Size2M => 2 * 1024 * 1024,
            PageSize::Size1G => 1024 * 1024 * 1024,
        }
    }

    /// log2 of the size in bytes.
    #[must_use]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// The paging-structure level whose entry maps a leaf of this size.
    #[must_use]
    pub const fn leaf_level(self) -> Level {
        match self {
            PageSize::Size4K => Level::Pt,
            PageSize::Size2M => Level::Pd,
            PageSize::Size1G => Level::Pdpt,
        }
    }

    /// The page size mapped by a leaf at `level`, if leaves are legal there.
    #[must_use]
    pub const fn from_leaf_level(level: Level) -> Option<Self> {
        match level {
            Level::Pt => Some(PageSize::Size4K),
            Level::Pd => Some(PageSize::Size2M),
            Level::Pdpt => Some(PageSize::Size1G),
            Level::Pml4 => None,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PageSize::Size4K => "4KiB",
            PageSize::Size2M => "2MiB",
            PageSize::Size1G => "1GiB",
        };
        write!(f, "{name}")
    }
}

/// One leaf mapping, as yielded by [`AddressSpace::iter_regions`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MappedRegion {
    /// First virtual address of the page.
    pub start: VirtAddr,
    /// Page size of the leaf entry.
    pub size: PageSize,
    /// Leaf entry flags.
    pub flags: PteFlags,
    /// Backing physical address.
    pub phys: PhysAddr,
}

impl MappedRegion {
    /// One past the last byte of the page.
    #[must_use]
    pub fn end(&self) -> VirtAddr {
        self.start.wrapping_add(self.size.bytes())
    }
}

/// A simulated x86-64 address space: a PML4 root plus the paging
/// structures hanging off it, with auto-allocated backing frames.
///
/// Mapping semantics follow the architecture: a leaf may live at PT
/// (4 KiB), PD (2 MiB, PS=1) or PDPT (1 GiB, PS=1); intermediate entries
/// carry the union of the permissions required below them (as OS kernels
/// configure them in practice).
///
/// ```
/// use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
/// # fn main() -> Result<(), avx_mmu::MmuError> {
/// let mut space = AddressSpace::new();
/// let text = VirtAddr::new(0xffff_ffff_a1e0_0000)?;
/// space.map(text, PageSize::Size2M, PteFlags::kernel_rx() | PteFlags::HUGE)?;
/// assert!(space.lookup(text).is_some());
/// # Ok(())
/// # }
/// ```
///
/// # Snapshots and copy-on-write
///
/// The paging-structure arena is reference-counted per table:
/// [`Clone`]ing an `AddressSpace` is a cheap snapshot (one `Arc` bump
/// per table, no page data copied), and the first write to any table in
/// a clone copies just that 4 KiB structure. Campaign engines exploit
/// this to build a randomized layout once and hand every trial its own
/// isolated O(1) copy.
///
/// # Mutation epoch
///
/// Every *effective* PTE change (map, unmap, protect, A/D-bit update
/// that actually flips bits) bumps [`AddressSpace::epoch`]. Derived
/// structures — notably the shadow translation index the execution
/// engine keeps — use the epoch to invalidate themselves; rewriting an
/// entry with its current value is a no-op and leaves the epoch alone.
#[derive(Clone)]
pub struct AddressSpace {
    tables: Vec<Arc<PageTable>>,
    root: FrameId,
    /// Next simulated physical frame number handed to data pages.
    next_data_frame: u64,
    mapped_pages: usize,
    epoch: u64,
    shape_epoch: u64,
}

/// Data-page physical frames are handed out from this base so they never
/// collide with the paging-structure arena (which uses small indices).
const DATA_FRAME_BASE: u64 = 0x10_0000;

impl AddressSpace {
    /// Creates an empty address space with a zeroed PML4.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tables: vec![Arc::new(PageTable::new())],
            root: FrameId(0),
            next_data_frame: DATA_FRAME_BASE,
            mapped_pages: 0,
            epoch: 0,
            shape_epoch: 0,
        }
    }

    /// Monotonic mutation counter: bumped exactly when some PTE's raw
    /// value actually changed (or a new paging structure was allocated).
    /// Rewriting an entry with its current value is a no-op.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Monotonic *walk-shape* counter: bumped only by mutations that can
    /// change where a walk goes or terminates — entry zero↔non-zero
    /// transitions, Present flips, huge-leaf flips, and new paging
    /// structures. Flags-only rewrites (Accessed/Dirty settling, `USER`
    /// upgrades, `mprotect` permission changes that keep Present) leave
    /// it alone, so shape-derived caches like
    /// [`crate::ShadowIndex`] survive the A/D-bit churn of steady-state
    /// probing.
    #[must_use]
    pub fn shape_epoch(&self) -> u64 {
        self.shape_epoch
    }

    /// Number of paging structures physically shared with `other`
    /// (diagnostics for the copy-on-write snapshot tests).
    #[must_use]
    pub fn shared_tables_with(&self, other: &Self) -> usize {
        self.tables
            .iter()
            .zip(other.tables.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Writes `pte` into slot `idx` of table `id`, copy-on-write,
    /// skipping the write (and the epoch bumps) when the slot already
    /// holds exactly that raw value.
    fn write_entry(&mut self, id: FrameId, idx: usize, pte: Pte) {
        let old = self.tables[id.index()].entry(idx);
        if old.raw() == pte.raw() {
            return;
        }
        self.epoch += 1;
        if (old.raw() == 0) != (pte.raw() == 0)
            || old.is_present() != pte.is_present()
            || old.is_huge_leaf() != pte.is_huge_leaf()
        {
            self.shape_epoch += 1;
        }
        Arc::make_mut(&mut self.tables[id.index()]).set_entry(idx, pte);
    }

    /// The root (PML4) table id.
    #[must_use]
    pub fn root(&self) -> FrameId {
        self.root
    }

    /// Read access to a paging structure.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name an allocated table.
    #[must_use]
    pub fn table(&self, id: FrameId) -> &PageTable {
        &self.tables[id.index()]
    }

    /// Number of live leaf mappings.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.mapped_pages
    }

    /// Number of allocated paging structures (incl. the PML4).
    #[must_use]
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    fn alloc_table(&mut self) -> Result<FrameId, MmuError> {
        let id = u32::try_from(self.tables.len()).map_err(|_| MmuError::OutOfFrames)?;
        self.tables.push(Arc::new(PageTable::new()));
        self.epoch += 1;
        self.shape_epoch += 1;
        Ok(FrameId(id))
    }

    fn alloc_data_frame(&mut self, size: PageSize) -> PhysAddr {
        let frames = size.bytes() >> 12;
        // Align the allocation cursor to the page size.
        let align = frames;
        self.next_data_frame = (self.next_data_frame + align - 1) & !(align - 1);
        let frame = self.next_data_frame;
        self.next_data_frame += frames;
        PhysAddr::from_frame_number(frame)
    }

    /// Maps one page of `size` at `va`, auto-allocating a backing frame.
    ///
    /// The `HUGE` flag is set automatically for 2 MiB / 1 GiB sizes and
    /// must not be set for 4 KiB pages. Returns the backing physical
    /// address.
    ///
    /// # Errors
    ///
    /// * [`MmuError::Misaligned`] — `va` not aligned to `size`,
    /// * [`MmuError::AlreadyMapped`] — a leaf already exists at `va`,
    /// * [`MmuError::HugePageConflict`] — a huge leaf covers `va` at a
    ///   higher level, or a lower-level table is already populated where a
    ///   huge leaf should go.
    pub fn map(
        &mut self,
        va: VirtAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<PhysAddr, MmuError> {
        let pa = self.alloc_data_frame(size);
        self.map_at(va, pa, size, flags)?;
        Ok(pa)
    }

    /// Maps `va` → `pa` with the given size and flags.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::map`]; additionally the physical address must be
    /// aligned to `size`.
    pub fn map_at(
        &mut self,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), MmuError> {
        if !va.is_aligned(size.bytes()) {
            return Err(MmuError::Misaligned {
                addr: va.as_u64(),
                size,
            });
        }
        if pa.as_u64() & (size.bytes() - 1) != 0 {
            return Err(MmuError::Misaligned {
                addr: pa.as_u64(),
                size,
            });
        }

        let leaf_level = size.leaf_level();
        let mut table_id = self.root;
        for level in Level::WALK_ORDER {
            let idx = va.index_for(level);
            if level == leaf_level {
                let existing = self.tables[table_id.index()].entry(idx);
                if existing.raw() != 0 {
                    return Err(if existing.is_huge_leaf() || level == Level::Pt {
                        MmuError::AlreadyMapped { addr: va.as_u64() }
                    } else {
                        // A next-level table hangs here; cannot place a huge
                        // leaf over it.
                        MmuError::HugePageConflict { addr: va.as_u64() }
                    });
                }
                let mut leaf_flags = flags;
                if size != PageSize::Size4K {
                    leaf_flags |= PteFlags::HUGE;
                } else if leaf_flags.is_huge() {
                    // On PT entries bit 7 is PAT, not PS; reject to avoid
                    // silently mapping something surprising.
                    return Err(MmuError::HugePageConflict { addr: va.as_u64() });
                }
                self.write_entry(table_id, idx, Pte::new(pa, leaf_flags));
                self.mapped_pages += 1;
                return Ok(());
            }

            // Descend, allocating or validating the intermediate entry.
            let entry = self.tables[table_id.index()].entry(idx);
            if entry.is_huge_leaf() || (entry.raw() != 0 && !entry.is_present()) {
                // A present huge leaf — or a non-present guard left by
                // mprotect(PROT_NONE) on a huge page, which keeps PS but
                // clears Present and must not be dereferenced as a
                // table pointer (its address is a data frame).
                return Err(MmuError::HugePageConflict { addr: va.as_u64() });
            }
            let next_id = if entry.raw() == 0 {
                let new_id = self.alloc_table()?;
                let mut inter = PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::ACCESSED;
                if flags.is_user() {
                    inter |= PteFlags::USER;
                }
                self.write_entry(
                    table_id,
                    idx,
                    Pte::new(PhysAddr::from_frame_number(new_id.0 as u64), inter),
                );
                new_id
            } else {
                // Upgrade intermediate permissions if this mapping needs them.
                if flags.is_user() && !entry.flags().is_user() {
                    self.write_entry(table_id, idx, entry.with_flags_set(PteFlags::USER));
                }
                FrameId(u32::try_from(entry.addr().frame_number()).expect("table frame id"))
            };
            table_id = next_id;
        }
        unreachable!("leaf level is always reached in WALK_ORDER");
    }

    /// Maps `count` consecutive pages of `size` starting at `va`.
    ///
    /// # Errors
    ///
    /// Fails fast on the first page that cannot be mapped (earlier pages
    /// stay mapped).
    pub fn map_range(
        &mut self,
        va: VirtAddr,
        count: u64,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), MmuError> {
        for i in 0..count {
            self.map(va.wrapping_add(i * size.bytes()), size, flags)?;
        }
        Ok(())
    }

    /// Unmaps `count` consecutive pages of `size` starting at `va`.
    ///
    /// # Errors
    ///
    /// Fails fast on the first page that cannot be unmapped (earlier
    /// pages stay unmapped).
    pub fn unmap_range(
        &mut self,
        va: VirtAddr,
        count: u64,
        size: PageSize,
    ) -> Result<(), MmuError> {
        for i in 0..count {
            self.unmap(va.wrapping_add(i * size.bytes()), size)?;
        }
        Ok(())
    }

    /// Re-protects `count` consecutive pages of `size` starting at `va`
    /// (an `mprotect` over a whole VMA).
    ///
    /// # Errors
    ///
    /// Fails fast on the first page that cannot be re-protected.
    pub fn protect_range(
        &mut self,
        va: VirtAddr,
        count: u64,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), MmuError> {
        for i in 0..count {
            self.protect(va.wrapping_add(i * size.bytes()), size, flags)?;
        }
        Ok(())
    }

    /// Removes the leaf mapping of `size` at `va`.
    ///
    /// # Errors
    ///
    /// * [`MmuError::Misaligned`] — `va` not aligned to `size`,
    /// * [`MmuError::NotMapped`] — nothing mapped there,
    /// * [`MmuError::SizeMismatch`] — mapped with a different page size.
    pub fn unmap(&mut self, va: VirtAddr, size: PageSize) -> Result<(), MmuError> {
        if !va.is_aligned(size.bytes()) {
            return Err(MmuError::Misaligned {
                addr: va.as_u64(),
                size,
            });
        }
        let (table_id, idx) = self.locate_leaf_slot(va, size)?;
        self.write_entry(table_id, idx, Pte::zero());
        self.mapped_pages -= 1;
        // Free empty paging structures, as OS kernels do on munmap —
        // otherwise a stale empty PT/PD would block a later huge-page
        // mapping of the same range.
        self.prune_empty_tables(va);
        Ok(())
    }

    /// Clears pointers to now-empty child tables along the walk path of
    /// `va`, bottom-up. (Arena slots are not recycled; correctness only
    /// needs the links gone.)
    fn prune_empty_tables(&mut self, va: VirtAddr) {
        let mut path: Vec<(FrameId, usize)> = Vec::with_capacity(3);
        let mut table_id = self.root;
        for level in Level::WALK_ORDER {
            let idx = va.index_for(level);
            let entry = self.tables[table_id.index()].entry(idx);
            // Stop at anything that is not a present intermediate — a
            // non-present guard leaf carries a data-frame address that
            // must not be followed as a table link.
            if entry.raw() == 0 || !entry.is_present() || entry.is_huge_leaf() || level == Level::Pt
            {
                break;
            }
            path.push((table_id, idx));
            table_id = FrameId(u32::try_from(entry.addr().frame_number()).expect("table frame id"));
        }
        for (parent, idx) in path.into_iter().rev() {
            let entry = self.tables[parent.index()].entry(idx);
            let child =
                FrameId(u32::try_from(entry.addr().frame_number()).expect("table frame id"));
            if self.tables[child.index()].is_empty() {
                self.write_entry(parent, idx, Pte::zero());
            } else {
                break;
            }
        }
    }

    /// Replaces the flags of the existing leaf at `va` (e.g. `mprotect`).
    ///
    /// The `HUGE` bit is managed automatically and the physical target is
    /// preserved. As with [`AddressSpace::map`], granting `USER` upgrades
    /// the intermediate entries on the path so the *effective* permission
    /// (the AND across levels) actually becomes user-accessible.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::unmap`].
    pub fn protect(
        &mut self,
        va: VirtAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), MmuError> {
        let (table_id, idx) = self.locate_leaf_slot(va, size)?;
        let entry = self.tables[table_id.index()].entry(idx);
        let mut new_flags = flags;
        if size != PageSize::Size4K {
            new_flags |= PteFlags::HUGE;
        }
        self.write_entry(table_id, idx, entry.with_flags(new_flags));
        if flags.is_user() {
            self.upgrade_intermediates_to_user(va);
        }
        Ok(())
    }

    /// Sets `USER` on every present intermediate entry on the walk path
    /// of `va` (leaf excluded).
    fn upgrade_intermediates_to_user(&mut self, va: VirtAddr) {
        let mut table_id = self.root;
        for level in Level::WALK_ORDER {
            let idx = va.index_for(level);
            let entry = self.tables[table_id.index()].entry(idx);
            if level == Level::Pt || entry.is_huge_leaf() || !entry.is_present() {
                return;
            }
            if !entry.flags().is_user() {
                self.write_entry(table_id, idx, entry.with_flags_set(PteFlags::USER));
            }
            table_id = FrameId(u32::try_from(entry.addr().frame_number()).expect("table frame"));
        }
    }

    /// Sets the Accessed (and optionally Dirty) bit on the leaf at `va`,
    /// as the MMU does on a successful translation.
    ///
    /// Returns the previous flags so callers (the timing engine) can see
    /// whether a dirty-bit microcode assist was required.
    ///
    /// # Errors
    ///
    /// [`MmuError::NotMapped`] if no present leaf covers `va`.
    pub fn mark_accessed(&mut self, va: VirtAddr, write: bool) -> Result<PteFlags, MmuError> {
        let (table_id, idx) = self
            .locate_any_leaf(va)
            .ok_or(MmuError::NotMapped { addr: va.as_u64() })?;
        let entry = self.tables[table_id.index()].entry(idx);
        if !entry.is_present() {
            return Err(MmuError::NotMapped { addr: va.as_u64() });
        }
        let old = entry.flags();
        let mut set = PteFlags::ACCESSED;
        if write {
            set |= PteFlags::DIRTY;
        }
        // Steady-state probes re-set already-set bits; `write_entry`
        // recognizes the no-op and leaves the epoch untouched.
        self.write_entry(table_id, idx, entry.with_flags_set(set));
        Ok(old)
    }

    /// Clears Accessed/Dirty on the leaf covering `va` (used by tests and
    /// by OS-model page reclaim).
    ///
    /// # Errors
    ///
    /// [`MmuError::NotMapped`] if no leaf covers `va`.
    pub fn clear_accessed_dirty(&mut self, va: VirtAddr) -> Result<(), MmuError> {
        let (table_id, idx) = self
            .locate_any_leaf(va)
            .ok_or(MmuError::NotMapped { addr: va.as_u64() })?;
        let entry = self.tables[table_id.index()].entry(idx);
        self.write_entry(
            table_id,
            idx,
            entry.with_flags_cleared(PteFlags::ACCESSED | PteFlags::DIRTY),
        );
        Ok(())
    }

    /// Returns the leaf mapping covering `va`, if one is present.
    #[must_use]
    pub fn lookup(&self, va: VirtAddr) -> Option<MappedRegion> {
        let (table_id, idx) = self.locate_any_leaf(va)?;
        let entry = self.tables[table_id.index()].entry(idx);
        if !entry.is_present() {
            return None;
        }
        let level = self.level_of_slot(va, table_id)?;
        let size = PageSize::from_leaf_level(level)?;
        Some(MappedRegion {
            start: va.align_down(size.bytes()),
            size,
            flags: entry.flags(),
            phys: entry.addr(),
        })
    }

    /// Iterates every leaf mapping in ascending virtual-address order.
    pub fn iter_regions(&self) -> Vec<MappedRegion> {
        let mut out = Vec::with_capacity(self.mapped_pages);
        self.collect_regions(self.root, Level::Pml4, 0, &mut out);
        out.sort_by_key(|r| r.start);
        out
    }

    fn collect_regions(
        &self,
        table_id: FrameId,
        level: Level,
        va_prefix: u64,
        out: &mut Vec<MappedRegion>,
    ) {
        for (idx, entry) in self.tables[table_id.index()].iter_live() {
            let va = VirtAddr::new_truncate(va_prefix | ((idx as u64) << level_shift(level)));
            let is_leaf = match level {
                Level::Pt => true,
                Level::Pml4 => false,
                _ => entry.is_huge_leaf(),
            };
            if is_leaf {
                if entry.is_present() {
                    if let Some(size) = PageSize::from_leaf_level(level) {
                        out.push(MappedRegion {
                            start: va,
                            size,
                            flags: entry.flags(),
                            phys: entry.addr(),
                        });
                    }
                }
            } else if let Some(next) = level.next() {
                let next_id =
                    FrameId(u32::try_from(entry.addr().frame_number()).expect("table frame id"));
                self.collect_regions(next_id, next, va.as_u64(), out);
            }
        }
    }

    /// Finds the table and index of the leaf slot for (`va`, `size`),
    /// verifying the mapping exists with exactly that size.
    fn locate_leaf_slot(&self, va: VirtAddr, size: PageSize) -> Result<(FrameId, usize), MmuError> {
        let (table_id, idx) = self
            .locate_any_leaf(va)
            .ok_or(MmuError::NotMapped { addr: va.as_u64() })?;
        let level = self
            .level_of_slot(va, table_id)
            .ok_or(MmuError::NotMapped { addr: va.as_u64() })?;
        let found =
            PageSize::from_leaf_level(level).ok_or(MmuError::NotMapped { addr: va.as_u64() })?;
        if found != size {
            return Err(MmuError::SizeMismatch {
                addr: va.as_u64(),
                found,
                expected: size,
            });
        }
        Ok((table_id, idx))
    }

    /// Descends to the slot that terminates the walk for `va`: either a
    /// leaf entry (possibly non-present) or `None` when an intermediate
    /// entry is missing entirely.
    fn locate_any_leaf(&self, va: VirtAddr) -> Option<(FrameId, usize)> {
        let mut table_id = self.root;
        for level in Level::WALK_ORDER {
            let idx = va.index_for(level);
            let entry = self.tables[table_id.index()].entry(idx);
            if level == Level::Pt {
                if entry.raw() == 0 {
                    return None;
                }
                return Some((table_id, idx));
            }
            if entry.is_huge_leaf() {
                return Some((table_id, idx));
            }
            if entry.raw() == 0 || !entry.is_present() {
                return None;
            }
            table_id = FrameId(u32::try_from(entry.addr().frame_number()).ok()?);
        }
        None
    }

    /// Determines which level `table_id` sits at for address `va`.
    fn level_of_slot(&self, va: VirtAddr, needle: FrameId) -> Option<Level> {
        let mut table_id = self.root;
        for level in Level::WALK_ORDER {
            if table_id == needle {
                return Some(level);
            }
            let entry = self.tables[table_id.index()].entry(va.index_for(level));
            if entry.raw() == 0 || entry.is_huge_leaf() {
                return None;
            }
            table_id = FrameId(u32::try_from(entry.addr().frame_number()).ok()?);
        }
        None
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AddressSpace({} pages, {} tables)",
            self.mapped_pages,
            self.tables.len()
        )
    }
}

const fn level_shift(level: Level) -> u32 {
    match level {
        Level::Pml4 => 39,
        Level::Pdpt => 30,
        Level::Pd => 21,
        Level::Pt => 12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new_truncate(raw)
    }

    #[test]
    fn map_and_lookup_4k() {
        let mut s = AddressSpace::new();
        let a = va(0x5555_5555_4000);
        let pa = s.map(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        let m = s.lookup(a).unwrap();
        assert_eq!(m.start, a);
        assert_eq!(m.size, PageSize::Size4K);
        assert_eq!(m.phys, pa);
        assert!(m.flags.is_user());
        assert_eq!(s.mapped_pages(), 1);
    }

    #[test]
    fn map_and_lookup_2m_huge() {
        let mut s = AddressSpace::new();
        let a = va(0xffff_ffff_a1e0_0000);
        s.map(a, PageSize::Size2M, PteFlags::kernel_rx()).unwrap();
        let m = s.lookup(a).unwrap();
        assert_eq!(m.size, PageSize::Size2M);
        assert!(m.flags.is_huge());
        // Interior addresses resolve to the same page.
        let inner = va(0xffff_ffff_a1e1_2345);
        let mi = s.lookup(inner).unwrap();
        assert_eq!(mi.start, a);
    }

    #[test]
    fn map_1g_page() {
        let mut s = AddressSpace::new();
        let a = va(0xffff_c000_0000_0000);
        s.map(a, PageSize::Size1G, PteFlags::kernel_rw()).unwrap();
        let m = s.lookup(va(0xffff_c000_3fff_f000)).unwrap();
        assert_eq!(m.size, PageSize::Size1G);
        assert_eq!(m.start, a);
    }

    #[test]
    fn misaligned_map_rejected() {
        let mut s = AddressSpace::new();
        assert_eq!(
            s.map(va(0x1000), PageSize::Size2M, PteFlags::user_rw()),
            Err(MmuError::Misaligned {
                addr: 0x1000,
                size: PageSize::Size2M
            })
        );
    }

    #[test]
    fn double_map_rejected() {
        let mut s = AddressSpace::new();
        let a = va(0x7f00_0000_0000);
        s.map(a, PageSize::Size4K, PteFlags::user_ro()).unwrap();
        assert_eq!(
            s.map(a, PageSize::Size4K, PteFlags::user_ro()),
            Err(MmuError::AlreadyMapped { addr: a.as_u64() })
        );
    }

    #[test]
    fn huge_leaf_blocks_4k_below_it() {
        let mut s = AddressSpace::new();
        let big = va(0xffff_ffff_8000_0000);
        s.map(big, PageSize::Size2M, PteFlags::kernel_rx()).unwrap();
        let small = va(0xffff_ffff_8000_3000);
        assert_eq!(
            s.map(small, PageSize::Size4K, PteFlags::kernel_rx()),
            Err(MmuError::HugePageConflict {
                addr: small.as_u64()
            })
        );
    }

    #[test]
    fn populated_pt_blocks_huge_leaf_above_it() {
        let mut s = AddressSpace::new();
        let small = va(0xffff_ffff_8000_3000);
        s.map(small, PageSize::Size4K, PteFlags::kernel_rx())
            .unwrap();
        let big = va(0xffff_ffff_8000_0000);
        assert_eq!(
            s.map(big, PageSize::Size2M, PteFlags::kernel_rx()),
            Err(MmuError::HugePageConflict { addr: big.as_u64() })
        );
    }

    #[test]
    fn explicit_huge_flag_on_4k_rejected() {
        let mut s = AddressSpace::new();
        assert!(s
            .map(
                va(0x1000),
                PageSize::Size4K,
                PteFlags::user_rw() | PteFlags::HUGE
            )
            .is_err());
    }

    #[test]
    fn unmap_then_lookup_none() {
        let mut s = AddressSpace::new();
        let a = va(0x4000_0000);
        s.map(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        s.unmap(a, PageSize::Size4K).unwrap();
        assert!(s.lookup(a).is_none());
        assert_eq!(s.mapped_pages(), 0);
    }

    #[test]
    fn unmap_wrong_size_reports_mismatch() {
        let mut s = AddressSpace::new();
        let a = va(0x4000_0000);
        s.map(a, PageSize::Size2M, PteFlags::user_rw()).unwrap();
        assert_eq!(
            s.unmap(a, PageSize::Size4K),
            Err(MmuError::SizeMismatch {
                addr: a.as_u64(),
                found: PageSize::Size2M,
                expected: PageSize::Size4K
            })
        );
    }

    #[test]
    fn unmap_not_mapped_errors() {
        let mut s = AddressSpace::new();
        assert_eq!(
            s.unmap(va(0x9000), PageSize::Size4K),
            Err(MmuError::NotMapped { addr: 0x9000 })
        );
    }

    #[test]
    fn protect_changes_flags_keeps_phys() {
        let mut s = AddressSpace::new();
        let a = va(0x7f12_3456_7000);
        let pa = s.map(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        s.protect(a, PageSize::Size4K, PteFlags::user_ro()).unwrap();
        let m = s.lookup(a).unwrap();
        assert_eq!(m.phys, pa);
        assert!(!m.flags.is_writable());
    }

    #[test]
    fn protect_to_non_present_makes_lookup_fail() {
        let mut s = AddressSpace::new();
        let a = va(0x7f12_3456_7000);
        s.map(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        s.protect(a, PageSize::Size4K, PteFlags::none_guard())
            .unwrap();
        // Entry exists but is non-present: lookup (present leaf) fails...
        assert!(s.lookup(a).is_none());
        // ...yet re-protecting back to present works (VMA semantics).
        s.protect(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        assert!(s.lookup(a).is_some());
    }

    #[test]
    fn protect_to_user_upgrades_intermediates() {
        // Map as supervisor-only, then mprotect to user: the effective
        // permission (AND across levels) must become user-accessible.
        let mut s = AddressSpace::new();
        let a = va(0x6000_0000_0000);
        s.map(a, PageSize::Size4K, PteFlags::PRESENT).unwrap();
        s.protect(a, PageSize::Size4K, PteFlags::user_ro()).unwrap();
        let walk = crate::walk::Walker::new().walk(&s, a);
        assert!(walk.is_mapped());
        assert!(walk.perms.user, "intermediates upgraded");
    }

    #[test]
    fn mark_accessed_sets_a_and_d_bits() {
        let mut s = AddressSpace::new();
        let a = va(0x6000_0000);
        s.map(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        let before = s.mark_accessed(a, true).unwrap();
        assert!(!before.is_dirty());
        let m = s.lookup(a).unwrap();
        assert!(m.flags.contains(PteFlags::ACCESSED | PteFlags::DIRTY));
        // Second write reports the dirty state from the first.
        let before2 = s.mark_accessed(a, true).unwrap();
        assert!(before2.is_dirty());
    }

    #[test]
    fn clear_accessed_dirty_resets() {
        let mut s = AddressSpace::new();
        let a = va(0x6000_0000);
        s.map(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        s.mark_accessed(a, true).unwrap();
        s.clear_accessed_dirty(a).unwrap();
        let m = s.lookup(a).unwrap();
        assert!(!m.flags.is_dirty());
        assert!(!m.flags.contains(PteFlags::ACCESSED));
    }

    #[test]
    fn map_range_maps_consecutive_pages() {
        let mut s = AddressSpace::new();
        let a = va(0xffff_ffff_c000_0000);
        s.map_range(a, 5, PageSize::Size4K, PteFlags::kernel_rx())
            .unwrap();
        for i in 0..5 {
            assert!(s.lookup(a.wrapping_add(i * 4096)).is_some(), "page {i}");
        }
        assert!(s.lookup(a.wrapping_add(5 * 4096)).is_none());
    }

    #[test]
    fn unmap_range_clears_all_pages() {
        let mut s = AddressSpace::new();
        let a = va(0xffff_ffff_c000_0000);
        s.map_range(a, 8, PageSize::Size4K, PteFlags::kernel_rx())
            .unwrap();
        s.unmap_range(a, 8, PageSize::Size4K).unwrap();
        for i in 0..8 {
            assert!(s.lookup(a.wrapping_add(i * 4096)).is_none(), "page {i}");
        }
        assert_eq!(s.mapped_pages(), 0);
    }

    #[test]
    fn guarded_huge_page_is_not_mistaken_for_a_table() {
        // mprotect(PROT_NONE) on a 2 MiB page keeps the PS bit but
        // clears Present; a later 4 KiB map (or unmap-driven prune)
        // below it must treat the slot as a conflict, not follow its
        // data-frame address as a paging-structure pointer.
        let mut s = AddressSpace::new();
        let big = va(0x6000_0000_0000);
        s.map(big, PageSize::Size2M, PteFlags::user_rw()).unwrap();
        s.protect(big, PageSize::Size2M, PteFlags::none_guard())
            .unwrap();
        let small = va(0x6000_0000_3000);
        assert_eq!(
            s.map(small, PageSize::Size4K, PteFlags::user_rw()),
            Err(MmuError::HugePageConflict {
                addr: small.as_u64()
            })
        );
        // Prune paths triggered by a sibling unmap stay on the tables.
        let sibling = va(0x6000_0020_0000);
        s.map(sibling, PageSize::Size2M, PteFlags::user_rw())
            .unwrap();
        s.unmap(sibling, PageSize::Size2M).unwrap();
        assert!(s.lookup(big).is_none(), "guard stays non-present");
    }

    #[test]
    fn unmap_prunes_empty_tables_for_later_huge_maps() {
        // 2 MiB map + unmap leaves an empty PD behind; a subsequent
        // 1 GiB map over the same range must succeed (OS kernels free
        // empty tables on munmap).
        let mut s = AddressSpace::new();
        let a = va(0x6000_0000_0000);
        s.map(a, PageSize::Size2M, PteFlags::user_rw()).unwrap();
        s.unmap(a, PageSize::Size2M).unwrap();
        s.map(a, PageSize::Size1G, PteFlags::user_rw()).unwrap();
        assert_eq!(s.lookup(a).unwrap().size, PageSize::Size1G);
        // And the other direction: 4 KiB after an unmapped 2 MiB works
        // because the huge leaf is really gone.
        let b = va(0x6080_0000_0000);
        s.map(b, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        s.unmap(b, PageSize::Size4K).unwrap();
        s.map(b, PageSize::Size2M, PteFlags::user_rw()).unwrap();
    }

    #[test]
    fn prune_stops_at_non_empty_tables() {
        let mut s = AddressSpace::new();
        let a = va(0x6000_0000_0000);
        let sibling = va(0x6000_0020_0000); // same PD, next 2 MiB slot
        s.map(a, PageSize::Size2M, PteFlags::user_rw()).unwrap();
        s.map(sibling, PageSize::Size2M, PteFlags::user_rw())
            .unwrap();
        s.unmap(a, PageSize::Size2M).unwrap();
        // Sibling must survive the prune.
        assert!(s.lookup(sibling).is_some());
        // And a 1 GiB map over the range is still (correctly) blocked.
        assert!(s
            .map(a.align_down(1 << 30), PageSize::Size1G, PteFlags::user_rw())
            .is_err());
    }

    #[test]
    fn unmap_range_fails_fast_on_hole() {
        let mut s = AddressSpace::new();
        let a = va(0x4000_0000);
        s.map(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        // Second page missing: range unmap of 2 fails after the first.
        assert!(s.unmap_range(a, 2, PageSize::Size4K).is_err());
        assert!(s.lookup(a).is_none(), "first page already unmapped");
    }

    #[test]
    fn protect_range_rewrites_flags() {
        let mut s = AddressSpace::new();
        let a = va(0x7f00_0000_0000);
        s.map_range(a, 4, PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        s.protect_range(a, 4, PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        for i in 0..4 {
            let m = s.lookup(a.wrapping_add(i * 4096)).unwrap();
            assert!(!m.flags.is_writable(), "page {i}");
        }
    }

    #[test]
    fn iter_regions_sorted_and_complete() {
        let mut s = AddressSpace::new();
        s.map(
            va(0xffff_ffff_a000_0000),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
        s.map(va(0x5555_5555_4000), PageSize::Size4K, PteFlags::user_rx())
            .unwrap();
        s.map(va(0x7fff_f7a0_0000), PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        let regions = s.iter_regions();
        assert_eq!(regions.len(), 3);
        assert!(regions.windows(2).all(|w| w[0].start < w[1].start));
        assert_eq!(regions[0].start, va(0x5555_5555_4000));
        assert_eq!(regions[2].size, PageSize::Size2M);
    }

    #[test]
    fn iter_regions_skips_non_present_guards() {
        let mut s = AddressSpace::new();
        let a = va(0x7f00_0000_0000);
        s.map(a, PageSize::Size4K, PteFlags::user_rw()).unwrap();
        s.protect(a, PageSize::Size4K, PteFlags::none_guard())
            .unwrap();
        assert!(s.iter_regions().is_empty());
    }

    #[test]
    fn user_and_kernel_mappings_coexist() {
        let mut s = AddressSpace::new();
        s.map(va(0x5555_5555_4000), PageSize::Size4K, PteFlags::user_rx())
            .unwrap();
        s.map(
            va(0xffff_ffff_a1e0_0000),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
        assert_eq!(s.mapped_pages(), 2);
        assert!(s.lookup(va(0x5555_5555_4000)).unwrap().flags.is_user());
        assert!(!s.lookup(va(0xffff_ffff_a1e0_0000)).unwrap().flags.is_user());
    }

    #[test]
    fn data_frames_do_not_collide_across_sizes() {
        let mut s = AddressSpace::new();
        let p1 = s
            .map(va(0x1000), PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        let p2 = s
            .map(va(0x20_0000), PageSize::Size2M, PteFlags::user_rw())
            .unwrap();
        let p3 = s
            .map(va(0x2000), PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        assert!(p2.as_u64() >= p1.as_u64() + 4096);
        assert!(p3.as_u64() >= p2.as_u64() + PageSize::Size2M.bytes());
        assert_eq!(p2.as_u64() % PageSize::Size2M.bytes(), 0);
    }
}
