//! Virtual and physical address newtypes.
//!
//! x86-64 virtual addresses are 64 bits wide but only 48 bits are
//! translated (4-level paging); bits 63..48 must be a sign extension of
//! bit 47 ("canonical form"). The kernel half of the address space
//! therefore starts at `0xffff_8000_0000_0000`.

use core::fmt;

use crate::error::MmuError;
use crate::table::Level;

/// Mask of the bits that participate in 4-level translation.
const VADDR_BITS: u64 = 48;
/// Bits 63..47 of a canonical address are all equal.
const CANONICAL_MASK: u64 = !((1u64 << (VADDR_BITS - 1)) - 1);

/// A canonical 48-bit x86-64 virtual address.
///
/// The type guarantees canonicality: every constructed value satisfies
/// the sign-extension rule, so downstream code never has to re-validate.
///
/// ```
/// use avx_mmu::VirtAddr;
/// let va = VirtAddr::new(0xffff_ffff_8000_0000).unwrap();
/// assert!(va.is_kernel_half());
/// assert_eq!(va.pml4_index(), 511);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address, checking canonical form.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::NonCanonical`] if bits 63..48 are not the sign
    /// extension of bit 47.
    pub fn new(raw: u64) -> Result<Self, MmuError> {
        let truncated = Self::new_truncate(raw);
        if truncated.0 == raw {
            Ok(truncated)
        } else {
            Err(MmuError::NonCanonical { addr: raw })
        }
    }

    /// Creates a virtual address by sign-extending bit 47, discarding the
    /// upper bits of `raw`.
    #[must_use]
    pub const fn new_truncate(raw: u64) -> Self {
        // Shift left then arithmetic-shift right to sign-extend bit 47.
        Self(((raw << 16) as i64 >> 16) as u64)
    }

    /// Creates a virtual address from a value already known canonical.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `raw` is not canonical.
    #[must_use]
    pub const fn new_unchecked(raw: u64) -> Self {
        debug_assert!(Self::new_truncate(raw).0 == raw);
        Self(raw)
    }

    /// The zero address.
    #[must_use]
    pub const fn zero() -> Self {
        Self(0)
    }

    /// Raw 64-bit value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// `true` if the address lies in the upper (kernel) half.
    #[must_use]
    pub const fn is_kernel_half(self) -> bool {
        self.0 & CANONICAL_MASK == CANONICAL_MASK
    }

    /// Index into the PML4 (bits 47..39).
    #[must_use]
    pub const fn pml4_index(self) -> usize {
        ((self.0 >> 39) & 0x1ff) as usize
    }

    /// Index into the page-directory-pointer table (bits 38..30).
    #[must_use]
    pub const fn pdpt_index(self) -> usize {
        ((self.0 >> 30) & 0x1ff) as usize
    }

    /// Index into the page directory (bits 29..21).
    #[must_use]
    pub const fn pd_index(self) -> usize {
        ((self.0 >> 21) & 0x1ff) as usize
    }

    /// Index into the page table (bits 20..12).
    #[must_use]
    pub const fn pt_index(self) -> usize {
        ((self.0 >> 12) & 0x1ff) as usize
    }

    /// Paging-structure index for `level`.
    #[must_use]
    pub const fn index_for(self, level: Level) -> usize {
        match level {
            Level::Pml4 => self.pml4_index(),
            Level::Pdpt => self.pdpt_index(),
            Level::Pd => self.pd_index(),
            Level::Pt => self.pt_index(),
        }
    }

    /// Offset within a 4 KiB page (bits 11..0).
    #[must_use]
    pub const fn page_offset(self) -> u64 {
        self.0 & 0xfff
    }

    /// The 4 KiB virtual page number (address >> 12).
    #[must_use]
    pub const fn vpn(self) -> u64 {
        self.0 >> 12
    }

    /// Rounds down to the given power-of-two alignment.
    #[must_use]
    pub const fn align_down(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two());
        Self::new_truncate(self.0 & !(align - 1))
    }

    /// `true` if aligned to the given power-of-two alignment.
    #[must_use]
    pub const fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Adds a byte offset, canonicalizing the result.
    ///
    /// Canonical arithmetic wraps through the non-canonical hole exactly
    /// like hardware sign extension would; callers probing linear ranges
    /// stay inside one half as long as they do not cross it.
    #[must_use]
    pub const fn wrapping_add(self, offset: u64) -> Self {
        Self::new_truncate(self.0.wrapping_add(offset))
    }

    /// Checked addition that fails when the result is non-canonical.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::NonCanonical`] when the sum leaves canonical space.
    pub fn checked_add(self, offset: u64) -> Result<Self, MmuError> {
        Self::new(self.0.wrapping_add(offset))
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#018x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<VirtAddr> for u64 {
    fn from(va: VirtAddr) -> u64 {
        va.as_u64()
    }
}

/// A physical address (up to 52 bits on x86-64).
///
/// ```
/// use avx_mmu::PhysAddr;
/// let pa = PhysAddr::new(0x1000);
/// assert_eq!(pa.frame_number(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// Maximum supported physical address bits.
pub const PHYS_ADDR_BITS: u64 = 52;

impl PhysAddr {
    /// Creates a physical address.
    ///
    /// # Panics
    ///
    /// Panics if bits above [`PHYS_ADDR_BITS`] are set.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        assert!(raw < (1u64 << PHYS_ADDR_BITS), "physical address too wide");
        Self(raw)
    }

    /// The zero physical address.
    #[must_use]
    pub const fn zero() -> Self {
        Self(0)
    }

    /// Raw value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The 4 KiB physical frame number.
    #[must_use]
    pub const fn frame_number(self) -> u64 {
        self.0 >> 12
    }

    /// Physical address of the given 4 KiB frame.
    #[must_use]
    pub const fn from_frame_number(frame: u64) -> Self {
        Self::new(frame << 12)
    }

    /// Adds a byte offset.
    #[must_use]
    pub const fn wrapping_add(self, offset: u64) -> Self {
        Self(self.0.wrapping_add(offset) & ((1u64 << PHYS_ADDR_BITS) - 1))
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#014x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<PhysAddr> for u64 {
    fn from(pa: PhysAddr) -> u64 {
        pa.as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_low_half_accepted() {
        assert!(VirtAddr::new(0).is_ok());
        assert!(VirtAddr::new(0x7fff_ffff_ffff).is_ok());
    }

    #[test]
    fn canonical_high_half_accepted() {
        assert!(VirtAddr::new(0xffff_8000_0000_0000).is_ok());
        assert!(VirtAddr::new(0xffff_ffff_ffff_ffff).is_ok());
    }

    #[test]
    fn non_canonical_rejected() {
        assert!(VirtAddr::new(0x8000_0000_0000).is_err());
        assert!(VirtAddr::new(0x1234_0000_0000_0000).is_err());
        assert!(VirtAddr::new(0xfffe_8000_0000_0000).is_err());
    }

    #[test]
    fn truncate_sign_extends_bit_47() {
        let va = VirtAddr::new_truncate(0x0000_8000_0000_0000);
        assert_eq!(va.as_u64(), 0xffff_8000_0000_0000);
        let va = VirtAddr::new_truncate(0x0000_7fff_ffff_ffff);
        assert_eq!(va.as_u64(), 0x0000_7fff_ffff_ffff);
    }

    #[test]
    fn kernel_half_detection() {
        assert!(VirtAddr::new_truncate(0xffff_ffff_8000_0000).is_kernel_half());
        assert!(!VirtAddr::new_truncate(0x5555_5555_4000).is_kernel_half());
    }

    #[test]
    fn index_extraction_matches_manual_decomposition() {
        // 0xffff_ffff_8000_0000 is the canonical Linux kernel text start:
        // PML4 511, PDPT 510, PD 0, PT 0.
        let va = VirtAddr::new_truncate(0xffff_ffff_8000_0000);
        assert_eq!(va.pml4_index(), 511);
        assert_eq!(va.pdpt_index(), 510);
        assert_eq!(va.pd_index(), 0);
        assert_eq!(va.pt_index(), 0);
        assert_eq!(va.page_offset(), 0);
    }

    #[test]
    fn index_for_matches_specific_accessors() {
        let va = VirtAddr::new_truncate(0xffff_ffff_c123_4567);
        assert_eq!(va.index_for(Level::Pml4), va.pml4_index());
        assert_eq!(va.index_for(Level::Pdpt), va.pdpt_index());
        assert_eq!(va.index_for(Level::Pd), va.pd_index());
        assert_eq!(va.index_for(Level::Pt), va.pt_index());
    }

    #[test]
    fn alignment_helpers() {
        let va = VirtAddr::new_truncate(0x1234_5678);
        assert_eq!(va.align_down(0x1000).as_u64(), 0x1234_5000);
        assert!(va.align_down(0x20_0000).is_aligned(0x20_0000));
        assert!(!va.is_aligned(0x1000));
    }

    #[test]
    fn wrapping_add_stays_canonical() {
        let va = VirtAddr::new_truncate(0x7fff_ffff_f000);
        let bumped = va.wrapping_add(0x2000);
        assert_eq!(bumped, VirtAddr::new_truncate(va.as_u64() + 0x2000));
        // Crossing into the non-canonical hole sign-extends.
        let edge = VirtAddr::new_truncate(0x0000_7fff_ffff_f000);
        let wrapped = edge.wrapping_add(0x10000);
        assert!(VirtAddr::new(wrapped.as_u64()).is_ok());
    }

    #[test]
    fn checked_add_rejects_hole() {
        let edge = VirtAddr::new_truncate(0x0000_7fff_ffff_f000);
        assert!(edge.checked_add(0x10000).is_err());
        let fine = VirtAddr::new_truncate(0x1000);
        assert_eq!(fine.checked_add(0x1000).unwrap().as_u64(), 0x2000);
    }

    #[test]
    fn phys_frame_round_trip() {
        let pa = PhysAddr::from_frame_number(0xabcde);
        assert_eq!(pa.frame_number(), 0xabcde);
        assert_eq!(pa.as_u64(), 0xabcde << 12);
    }

    #[test]
    #[should_panic(expected = "physical address too wide")]
    fn phys_too_wide_panics() {
        let _ = PhysAddr::new(1u64 << 53);
    }

    #[test]
    fn display_formats_hex() {
        let va = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
        assert_eq!(format!("{va}"), "0xffffffffa1e00000");
        assert_eq!(format!("{va:x}"), "ffffffffa1e00000");
    }

    #[test]
    fn vpn_is_shifted_address() {
        let va = VirtAddr::new_truncate(0xffff_ffff_a1e0_3123);
        assert_eq!(va.vpn(), 0xffff_ffff_a1e0_3123u64 >> 12);
    }
}
