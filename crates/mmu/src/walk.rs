//! The page-table walker.
//!
//! The walker reproduces the two observable quantities the AVX timing
//! channel extracts from a translation:
//!
//! 1. **where the walk terminates** — the level at which a non-present
//!    entry (or a leaf) is found (paper primitives P2/P3), and
//! 2. **how many paging-structure accesses were performed** — fewer when
//!    the paging-structure cache can resume the walk below the PML4.

use core::fmt;

use crate::addr::VirtAddr;
use crate::flags::PteFlags;
use crate::psc::{PagingStructureCache, PscEntry};
use crate::pte::Pte;
use crate::space::{AddressSpace, MappedRegion, PageSize};
use crate::table::{FrameId, Level};

/// Permissions accumulated across all levels of a walk.
///
/// x86 computes the effective permission of a translation as the AND of
/// the U/S and R/W bits along the walk, and the OR of the XD bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EffectivePerms {
    /// User-mode accesses allowed (all levels had U/S = 1).
    pub user: bool,
    /// Writes allowed (all levels had R/W = 1).
    pub writable: bool,
    /// Instruction fetch forbidden (any level had XD = 1).
    pub no_execute: bool,
    /// Leaf was marked global.
    pub global: bool,
    /// Leaf dirty bit at walk time.
    pub dirty: bool,
}

impl EffectivePerms {
    /// The identity element for permission accumulation.
    #[must_use]
    pub const fn most_permissive() -> Self {
        Self {
            user: true,
            writable: true,
            no_execute: false,
            global: false,
            dirty: false,
        }
    }

    /// Typical kernel-text permissions (supervisor, read-only, executable).
    #[must_use]
    pub const fn kernel_default() -> Self {
        Self {
            user: false,
            writable: false,
            no_execute: false,
            global: true,
            dirty: false,
        }
    }

    /// Accumulates one level's entry flags.
    #[must_use]
    pub fn and_level(self, flags: PteFlags) -> Self {
        Self {
            user: self.user && flags.is_user(),
            writable: self.writable && flags.is_writable(),
            no_execute: self.no_execute || flags.is_no_execute(),
            global: flags.is_global(), // leaf overwrite; meaningful on leaves only
            dirty: flags.is_dirty(),
        }
    }
}

/// The ordered list of paging-structure entries a walk read, at most one
/// per level. Used by timing models to decide which accesses were
/// cache-hot.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalkAccessList {
    items: [(FrameId, u16); 4],
    len: u8,
}

impl WalkAccessList {
    pub(crate) fn push(&mut self, table: FrameId, index: usize) {
        debug_assert!(self.len < 4, "a 4-level walk reads at most 4 entries");
        self.items[self.len as usize] = (table, index as u16);
        self.len += 1;
    }

    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no accesses were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(table, entry_index)` pairs in walk order.
    pub fn iter(&self) -> impl Iterator<Item = (FrameId, usize)> + '_ {
        self.items[..self.len as usize]
            .iter()
            .map(|&(t, i)| (t, i as usize))
    }
}

/// Result of walking the page tables for one address.
#[derive(Clone, Copy, Debug)]
pub struct WalkOutcome {
    /// The address that was translated.
    pub va: VirtAddr,
    /// Level of the structure whose entry terminated the walk: a leaf
    /// (present) or the first non-present entry.
    pub terminal_level: Level,
    /// Number of paging-structure memory accesses performed (1..=4;
    /// lower when the PSC skipped upper levels).
    pub structures_accessed: u8,
    /// Which `(table, entry)` slots were read, in order.
    pub accesses: WalkAccessList,
    /// Deepest PSC level that provided a cached entry, if any.
    pub psc_resume_level: Option<Level>,
    /// The terminating entry (zero / non-present when unmapped).
    pub entry: Pte,
    /// The mapped page, when the walk found a present leaf.
    pub mapping: Option<MappedRegion>,
    /// Accumulated permissions (meaningful when `mapping.is_some()`).
    pub perms: EffectivePerms,
}

impl WalkOutcome {
    /// `true` when a present leaf was found.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.mapping.is_some()
    }

    /// Page size of the found mapping, if mapped.
    #[must_use]
    pub fn page_size(&self) -> Option<PageSize> {
        self.mapping.map(|m| m.size)
    }

    /// `true` when the translation exists and user mode may read it.
    #[must_use]
    pub fn user_readable(&self) -> bool {
        self.is_mapped() && self.perms.user
    }

    /// `true` when the translation exists and user mode may write it.
    #[must_use]
    pub fn user_writable(&self) -> bool {
        self.is_mapped() && self.perms.user && self.perms.writable
    }
}

impl fmt::Display for WalkOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_mapped() {
            write!(
                f,
                "{} mapped at {} ({} accesses)",
                self.va, self.terminal_level, self.structures_accessed
            )
        } else {
            write!(
                f,
                "{} unmapped (walk ended at {}, {} accesses)",
                self.va, self.terminal_level, self.structures_accessed
            )
        }
    }
}

/// Page-table walker.
///
/// Stateless apart from configuration; the translation caches are passed
/// in explicitly so one walker can serve many cores.
#[derive(Clone, Copy, Debug, Default)]
pub struct Walker {
    _private: (),
}

impl Walker {
    /// Creates a walker.
    #[must_use]
    pub fn new() -> Self {
        Self { _private: () }
    }

    /// Walks `va` starting from the PML4 (no paging-structure cache).
    #[must_use]
    pub fn walk(&self, space: &AddressSpace, va: VirtAddr) -> WalkOutcome {
        self.walk_inner(space, va, None)
    }

    /// Walks `va`, resuming from and filling the paging-structure cache.
    #[must_use]
    pub fn walk_with_psc(
        &self,
        space: &AddressSpace,
        va: VirtAddr,
        psc: &mut PagingStructureCache,
    ) -> WalkOutcome {
        self.walk_inner(space, va, Some(psc))
    }

    fn walk_inner(
        &self,
        space: &AddressSpace,
        va: VirtAddr,
        mut psc: Option<&mut PagingStructureCache>,
    ) -> WalkOutcome {
        // Resume from the deepest cached partial translation, if any.
        let mut start_level = Level::Pml4;
        let mut table_id = space.root();
        let mut perms = EffectivePerms::most_permissive();
        let mut psc_resume_level = None;

        if let Some(psc) = psc.as_deref_mut() {
            if let Some((cached_level, entry)) = psc.lookup_deepest(va) {
                psc_resume_level = Some(cached_level);
                perms = entry.perms;
                table_id = entry.next_table;
                start_level = cached_level
                    .next()
                    .expect("PSC never caches PT entries, so next() exists");
            }
        }

        self.walk_from(
            space,
            va,
            start_level,
            table_id,
            perms,
            psc_resume_level,
            psc,
        )
    }

    /// The walk continuation: descends from (`start_level`, `table_id`)
    /// with `perms` already accumulated. This is the single source of
    /// truth for walk semantics — the PSC-resume path above and the
    /// shadow index's stale-PSC fallback both funnel through it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn walk_from(
        &self,
        space: &AddressSpace,
        va: VirtAddr,
        start_level: Level,
        start_table: FrameId,
        start_perms: EffectivePerms,
        psc_resume_level: Option<Level>,
        mut psc: Option<&mut PagingStructureCache>,
    ) -> WalkOutcome {
        let mut table_id = start_table;
        let mut perms = start_perms;
        let mut accesses = 0u8;
        let mut access_list = WalkAccessList::default();
        let mut level = start_level;
        loop {
            accesses += 1;
            let idx = va.index_for(level);
            access_list.push(table_id, idx);
            let entry = space.table(table_id).entry(idx);

            let is_leaf = match level {
                Level::Pt => true,
                Level::Pml4 => false,
                _ => entry.is_huge_leaf(),
            };

            if !entry.is_present() {
                return WalkOutcome {
                    va,
                    terminal_level: level,
                    structures_accessed: accesses,
                    accesses: access_list,
                    psc_resume_level,
                    entry,
                    mapping: None,
                    perms,
                };
            }

            perms = perms.and_level(entry.flags());

            if is_leaf {
                let size = PageSize::from_leaf_level(level)
                    .expect("leaf levels always map to a page size");
                let mapping = MappedRegion {
                    start: va.align_down(size.bytes()),
                    size,
                    flags: entry.flags(),
                    phys: entry.addr(),
                };
                return WalkOutcome {
                    va,
                    terminal_level: level,
                    structures_accessed: accesses,
                    accesses: access_list,
                    psc_resume_level,
                    entry,
                    mapping: Some(mapping),
                    perms,
                };
            }

            // Present intermediate entry: cache it and descend.
            let next_id = FrameId(
                u32::try_from(entry.addr().frame_number()).expect("table frame id fits u32"),
            );
            if let Some(psc) = psc.as_deref_mut() {
                psc.insert(
                    level,
                    va,
                    PscEntry {
                        next_table: next_id,
                        perms,
                    },
                );
            }
            table_id = next_id;
            level = level.next().expect("non-leaf level always has a next");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psc::PscConfig;

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new_truncate(raw)
    }

    fn kernel_space() -> AddressSpace {
        let mut s = AddressSpace::new();
        s.map(
            va(0xffff_ffff_a1e0_0000),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
        s.map(
            va(0xffff_ffff_c012_3000),
            PageSize::Size4K,
            PteFlags::kernel_rx(),
        )
        .unwrap();
        s.map(va(0x5555_5555_4000), PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        s
    }

    #[test]
    fn walk_mapped_2m_terminates_at_pd() {
        let s = kernel_space();
        let w = Walker::new().walk(&s, va(0xffff_ffff_a1e0_0000));
        assert!(w.is_mapped());
        assert_eq!(w.terminal_level, Level::Pd);
        assert_eq!(w.structures_accessed, 3);
        assert_eq!(w.page_size(), Some(PageSize::Size2M));
    }

    #[test]
    fn walk_mapped_4k_terminates_at_pt() {
        let s = kernel_space();
        let w = Walker::new().walk(&s, va(0xffff_ffff_c012_3000));
        assert!(w.is_mapped());
        assert_eq!(w.terminal_level, Level::Pt);
        assert_eq!(w.structures_accessed, 4);
    }

    #[test]
    fn walk_unmapped_terminates_early() {
        let s = kernel_space();
        // Nothing mapped in this PML4 slot → one access.
        let w = Walker::new().walk(&s, va(0x1234_5678_9000));
        assert!(!w.is_mapped());
        assert_eq!(w.terminal_level, Level::Pml4);
        assert_eq!(w.structures_accessed, 1);
    }

    #[test]
    fn walk_unmapped_sibling_reaches_deeper() {
        let s = kernel_space();
        // Same PML4/PDPT as the 2 MiB kernel page but a different PD slot.
        let w = Walker::new().walk(&s, va(0xffff_ffff_a000_0000));
        assert!(!w.is_mapped());
        assert_eq!(w.terminal_level, Level::Pd);
        assert_eq!(w.structures_accessed, 3);
    }

    #[test]
    fn perms_accumulate_user_and_writable() {
        let s = kernel_space();
        let user = Walker::new().walk(&s, va(0x5555_5555_4000));
        assert!(user.user_readable());
        assert!(user.user_writable());
        let kern = Walker::new().walk(&s, va(0xffff_ffff_a1e0_0000));
        assert!(kern.is_mapped());
        assert!(!kern.user_readable());
    }

    #[test]
    fn non_present_leaf_is_unmapped_at_pt() {
        let mut s = kernel_space();
        let a = va(0x5555_5555_4000);
        s.protect(a, PageSize::Size4K, PteFlags::none_guard())
            .unwrap();
        let w = Walker::new().walk(&s, a);
        assert!(!w.is_mapped());
        assert_eq!(w.terminal_level, Level::Pt);
        assert_eq!(w.structures_accessed, 4);
    }

    #[test]
    fn psc_reduces_accesses_on_second_walk() {
        let s = kernel_space();
        let mut psc = PagingStructureCache::new(PscConfig::default());
        let a = va(0xffff_ffff_c012_3000);
        let first = Walker::new().walk_with_psc(&s, a, &mut psc);
        assert_eq!(first.structures_accessed, 4);
        assert_eq!(first.psc_resume_level, None);
        let second = Walker::new().walk_with_psc(&s, a, &mut psc);
        // PDE cached → only the PT access remains.
        assert_eq!(second.structures_accessed, 1);
        assert_eq!(second.psc_resume_level, Some(Level::Pd));
    }

    #[test]
    fn psc_helps_neighbouring_addresses() {
        let s = kernel_space();
        let mut psc = PagingStructureCache::new(PscConfig::default());
        let a = va(0xffff_ffff_a1e0_0000);
        let _ = Walker::new().walk_with_psc(&s, a, &mut psc);
        // A different 2 MiB slot under the same PDPT: PDPTE is cached,
        // so only the PD access happens.
        let sibling = va(0xffff_ffff_a000_0000);
        let w = Walker::new().walk_with_psc(&s, sibling, &mut psc);
        assert_eq!(w.structures_accessed, 1);
        assert_eq!(w.psc_resume_level, Some(Level::Pdpt));
    }

    #[test]
    fn psc_never_caches_pt_so_4k_pays_one_access_minimum() {
        let s = kernel_space();
        let mut psc = PagingStructureCache::new(PscConfig::default());
        let a = va(0xffff_ffff_c012_3000);
        for _ in 0..3 {
            let w = Walker::new().walk_with_psc(&s, a, &mut psc);
            assert!(w.structures_accessed >= 1);
        }
        let w = Walker::new().walk_with_psc(&s, a, &mut psc);
        assert_eq!(w.structures_accessed, 1, "PDE cached, PT never cached");
        assert_eq!(w.terminal_level, Level::Pt);
    }

    #[test]
    fn access_list_matches_structures_accessed() {
        let s = kernel_space();
        let w = Walker::new().walk(&s, va(0xffff_ffff_c012_3000));
        assert_eq!(w.accesses.len(), w.structures_accessed as usize);
        assert_eq!(w.accesses.len(), 4);
        // First access is always the root for a PSC-less walk.
        let first = w.accesses.iter().next().unwrap();
        assert_eq!(first.0, s.root());
        assert_eq!(first.1, va(0xffff_ffff_c012_3000).pml4_index());
    }

    #[test]
    fn access_list_shrinks_with_psc_resume() {
        let s = kernel_space();
        let mut psc = PagingStructureCache::new(PscConfig::default());
        let a = va(0xffff_ffff_c012_3000);
        let _ = Walker::new().walk_with_psc(&s, a, &mut psc);
        let second = Walker::new().walk_with_psc(&s, a, &mut psc);
        assert_eq!(second.accesses.len(), 1);
        assert!(!second.accesses.is_empty());
    }

    #[test]
    fn walk_outcome_display() {
        let s = kernel_space();
        let w = Walker::new().walk(&s, va(0xffff_ffff_a1e0_0000));
        let text = w.to_string();
        assert!(text.contains("mapped at PD"));
    }

    #[test]
    fn effective_perms_and_level() {
        let p = EffectivePerms::most_permissive()
            .and_level(PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::USER)
            .and_level(PteFlags::PRESENT | PteFlags::USER | PteFlags::NO_EXECUTE);
        assert!(p.user);
        assert!(!p.writable, "second level lacked R/W");
        assert!(p.no_execute, "NX ORs in");
    }
}
