//! Intel-style paging-structure caches (PSC).
//!
//! On a TLB miss the walker does not necessarily start at the PML4: the
//! processor keeps small caches of *partial* translations — PML4E, PDPTE
//! and PDE entries — so the walk can resume at the deepest cached level.
//! Crucially, **PTE entries are not cached** (they go straight into the
//! TLB), which is why a walk that terminates at PT (a 4 KiB page) always
//! pays at least one uncached paging-structure access. The paper's §III-B
//! uses exactly this asymmetry ("walking page tables takes longer when
//! translating a virtual address mapped on a 4 KiB page").

use core::fmt;

use crate::addr::VirtAddr;
use crate::table::{FrameId, Level};
use crate::walk::EffectivePerms;

/// Geometry of the three paging-structure caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PscConfig {
    /// Entries in the PML4E cache.
    pub pml4e_entries: usize,
    /// Entries in the PDPTE cache.
    pub pdpte_entries: usize,
    /// Entries in the PDE cache.
    pub pde_entries: usize,
}

impl Default for PscConfig {
    /// Sizes in the ballpark of recent Intel cores (exact values are not
    /// architecturally documented; only their existence matters here).
    fn default() -> Self {
        Self {
            pml4e_entries: 16,
            pdpte_entries: 16,
            pde_entries: 64,
        }
    }
}

/// A cached partial translation: "the entry at `level` for this address
/// range points at `next_table` with these accumulated permissions".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PscEntry {
    /// Paging structure the cached entry points to.
    pub next_table: FrameId,
    /// Permissions accumulated from the root down to this entry.
    pub perms: EffectivePerms,
}

/// One fully-associative PSC array.
///
/// The array sits inside every simulated walk, and region-scan attacks
/// miss it on nearly every probe, so membership is answered by a small
/// open-addressed hash index (tag → slot) instead of a linear scan.
/// Replacement semantics are identical to the reference
/// scan-and-min-stamp LRU: strictly increasing stamps, minimum-stamp
/// (unique ⇒ least-recently-used) victim.
#[derive(Clone, Debug)]
struct AssocArray {
    capacity: usize,
    tags: Vec<u64>,
    entries: Vec<PscEntry>,
    stamps: Vec<u64>,
    clock: u64,
    index: crate::tagidx::TagIndex,
    /// Slot of the most recent hit. Region scans re-hit the same PDPTE
    /// tag for 512 consecutive 2 MiB probes, so one verified compare
    /// usually answers the lookup without touching the hash index. The
    /// value needs no invalidation hooks: tags are unique, so
    /// `tags[mru] == tag` alone proves `mru` is `tag`'s slot, and any
    /// stale value simply fails the compare and falls through.
    mru: usize,
}

impl AssocArray {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tags: Vec::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            clock: 0,
            index: crate::tagidx::TagIndex::with_capacity(capacity),
            mru: usize::MAX,
        }
    }

    fn position(&mut self, tag: u64) -> Option<usize> {
        if self.tags.get(self.mru) == Some(&tag) {
            return Some(self.mru);
        }
        let pos = self.index.find(tag);
        if let Some(i) = pos {
            self.mru = i;
        }
        pos
    }

    fn lookup(&mut self, tag: u64) -> Option<PscEntry> {
        // The clock advances only when a stamp is assigned (hit here,
        // or insert): stamps stay strictly increasing and their
        // *relative order* — the only thing min-stamp LRU eviction can
        // observe — is identical to a clock that also ticked on misses.
        // Region scans miss on nearly every probe, so not touching the
        // clock on the miss path keeps it out of the hot loop entirely.
        if let Some(i) = self.position(tag) {
            self.clock += 1;
            self.stamps[i] = self.clock;
            return Some(self.entries[i]);
        }
        None
    }

    fn insert(&mut self, tag: u64, entry: PscEntry) {
        self.clock += 1;
        if let Some(i) = self.position(tag) {
            self.entries[i] = entry;
            self.stamps[i] = self.clock;
            return;
        }
        if self.tags.len() < self.capacity {
            self.tags.push(tag);
            self.entries.push(entry);
            self.stamps.push(self.clock);
            self.index.insert(tag, self.tags.len() - 1);
        } else if let Some(victim) = (0..self.stamps.len()).min_by_key(|&i| self.stamps[i]) {
            self.tags[victim] = tag;
            self.entries[victim] = entry;
            self.stamps[victim] = self.clock;
            self.index.rebuild(&self.tags);
        }
    }

    fn invalidate_tag(&mut self, tag: u64) {
        // Tags are unique (insert dedups), so at most one slot matches;
        // `remove` keeps slot order identical to the reference retain.
        if let Some(i) = self.position(tag) {
            self.tags.remove(i);
            self.entries.remove(i);
            self.stamps.remove(i);
            self.index.rebuild(&self.tags);
        }
    }

    fn clear(&mut self) {
        self.tags.clear();
        self.entries.clear();
        self.stamps.clear();
        self.index.clear();
    }

    fn len(&self) -> usize {
        self.tags.len()
    }
}

/// The three-level paging-structure cache.
///
/// ```
/// use avx_mmu::{PagingStructureCache, PscConfig};
/// let psc = PagingStructureCache::new(PscConfig::default());
/// assert_eq!(psc.len(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct PagingStructureCache {
    pml4e: AssocArray,
    pdpte: AssocArray,
    pde: AssocArray,
    hits: u64,
    misses: u64,
}

impl PagingStructureCache {
    /// Creates an empty PSC with the given geometry.
    #[must_use]
    pub fn new(config: PscConfig) -> Self {
        Self {
            pml4e: AssocArray::new(config.pml4e_entries),
            pdpte: AssocArray::new(config.pdpte_entries),
            pde: AssocArray::new(config.pde_entries),
            hits: 0,
            misses: 0,
        }
    }

    fn array_for(&mut self, level: Level) -> Option<&mut AssocArray> {
        match level {
            Level::Pml4 => Some(&mut self.pml4e),
            Level::Pdpt => Some(&mut self.pdpte),
            Level::Pd => Some(&mut self.pde),
            Level::Pt => None, // PTEs are never cached in the PSC.
        }
    }

    fn tag_for(va: VirtAddr, level: Level) -> u64 {
        match level {
            Level::Pml4 => va.as_u64() >> 39,
            Level::Pdpt => va.as_u64() >> 30,
            Level::Pd => va.as_u64() >> 21,
            Level::Pt => unreachable!("PT entries are not PSC-cached"),
        }
    }

    /// Finds the deepest cached partial translation for `va`.
    ///
    /// Returns the level of the cached entry (the entry *at* that level is
    /// known, so the walk resumes at the next level down).
    pub fn lookup_deepest(&mut self, va: VirtAddr) -> Option<(Level, PscEntry)> {
        // Straight-lined deepest-first probe sequence (PDE → PDPTE →
        // PML4E); semantics identical to iterating `array_for` over the
        // cacheable levels.
        let v = va.as_u64();
        if let Some(entry) = self.pde.lookup(v >> 21) {
            self.hits += 1;
            return Some((Level::Pd, entry));
        }
        if let Some(entry) = self.pdpte.lookup(v >> 30) {
            self.hits += 1;
            return Some((Level::Pdpt, entry));
        }
        if let Some(entry) = self.pml4e.lookup(v >> 39) {
            self.hits += 1;
            return Some((Level::Pml4, entry));
        }
        self.misses += 1;
        None
    }

    /// Caches the entry observed at `level` during a walk of `va`.
    ///
    /// PT-level insertions are ignored (architecture: PTEs go to the TLB
    /// only).
    pub fn insert(&mut self, level: Level, va: VirtAddr, entry: PscEntry) {
        if level == Level::Pt {
            return;
        }
        let tag = Self::tag_for(va, level);
        if let Some(array) = self.array_for(level) {
            array.insert(tag, entry);
        }
    }

    /// `true` when entries at `level` can actually be cached (non-zero
    /// array capacity; always `false` for PT). The shadow index's
    /// analytic-retry shortcut requires the deepest intermediate of a
    /// walk to be cacheable.
    #[must_use]
    pub fn can_cache(&self, level: Level) -> bool {
        match level {
            Level::Pml4 => self.pml4e.capacity > 0,
            Level::Pdpt => self.pdpte.capacity > 0,
            Level::Pd => self.pde.capacity > 0,
            Level::Pt => false,
        }
    }

    /// Invalidates all cached entries covering `va` (part of `INVLPG`).
    pub fn invlpg(&mut self, va: VirtAddr) {
        self.pml4e.invalidate_tag(va.as_u64() >> 39);
        self.pdpte.invalidate_tag(va.as_u64() >> 30);
        self.pde.invalidate_tag(va.as_u64() >> 21);
    }

    /// Drops every cached entry (CR3 write without PCID).
    pub fn flush_all(&mut self) {
        self.pml4e.clear();
        self.pdpte.clear();
        self.pde.clear();
    }

    /// Total number of live entries across the three arrays.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pml4e.len() + self.pdpte.len() + self.pde.len()
    }

    /// `true` when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hit count (for diagnostics and tests).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl Default for PagingStructureCache {
    fn default() -> Self {
        Self::new(PscConfig::default())
    }
}

impl fmt::Display for PagingStructureCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PSC(pml4e={}, pdpte={}, pde={}, hits={}, misses={})",
            self.pml4e.len(),
            self.pdpte.len(),
            self.pde.len(),
            self.hits,
            self.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32) -> PscEntry {
        PscEntry {
            next_table: FrameId(id),
            perms: EffectivePerms::kernel_default(),
        }
    }

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new_truncate(raw)
    }

    #[test]
    fn empty_psc_misses() {
        let mut psc = PagingStructureCache::default();
        assert!(psc.lookup_deepest(va(0xffff_ffff_8000_0000)).is_none());
        assert_eq!(psc.misses(), 1);
    }

    #[test]
    fn deepest_level_wins() {
        let mut psc = PagingStructureCache::default();
        let a = va(0xffff_ffff_8012_3000);
        psc.insert(Level::Pml4, a, entry(1));
        psc.insert(Level::Pd, a, entry(3));
        let (level, e) = psc.lookup_deepest(a).unwrap();
        assert_eq!(level, Level::Pd);
        assert_eq!(e.next_table, FrameId(3));
    }

    #[test]
    fn pt_insert_is_ignored() {
        let mut psc = PagingStructureCache::default();
        psc.insert(Level::Pt, va(0x1000), entry(9));
        assert!(psc.is_empty());
    }

    #[test]
    fn tags_distinguish_ranges() {
        let mut psc = PagingStructureCache::default();
        let a = va(0xffff_ffff_8000_0000);
        let b = va(0xffff_ffff_8020_0000); // different 2 MiB range, same PDPT
        psc.insert(Level::Pd, a, entry(7));
        assert!(psc.lookup_deepest(b).is_none());
        let (level, _) = psc.lookup_deepest(a).unwrap();
        assert_eq!(level, Level::Pd);
    }

    #[test]
    fn same_pml4e_shared_across_512_gib() {
        let mut psc = PagingStructureCache::default();
        let a = va(0xffff_ffff_8000_0000);
        let b = va(0xffff_ffff_c000_0000); // same PML4 slot 511
        psc.insert(Level::Pml4, a, entry(1));
        let (level, _) = psc.lookup_deepest(b).unwrap();
        assert_eq!(level, Level::Pml4);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut psc = PagingStructureCache::new(PscConfig {
            pml4e_entries: 2,
            pdpte_entries: 2,
            pde_entries: 2,
        });
        let a = va(0x0000_0000_0000);
        let b = va(0x0000_0020_0000);
        let c = va(0x0000_0040_0000);
        psc.insert(Level::Pd, a, entry(1));
        psc.insert(Level::Pd, b, entry(2));
        // Touch a so b becomes LRU.
        psc.lookup_deepest(a);
        psc.insert(Level::Pd, c, entry(3));
        assert!(psc.lookup_deepest(b).is_none(), "b should be evicted");
        assert!(psc.lookup_deepest(a).is_some());
        assert!(psc.lookup_deepest(c).is_some());
    }

    #[test]
    fn invlpg_removes_covering_entries_only() {
        let mut psc = PagingStructureCache::default();
        let a = va(0xffff_ffff_8000_0000);
        let other = va(0xffff_ffff_8020_0000);
        psc.insert(Level::Pd, a, entry(1));
        psc.insert(Level::Pd, other, entry(2));
        psc.invlpg(a);
        assert!(psc.lookup_deepest(a).is_none());
        assert!(psc.lookup_deepest(other).is_some());
    }

    #[test]
    fn flush_all_empties() {
        let mut psc = PagingStructureCache::default();
        psc.insert(Level::Pd, va(0x20_0000), entry(1));
        psc.insert(Level::Pdpt, va(0x4000_0000), entry(2));
        psc.flush_all();
        assert!(psc.is_empty());
    }

    #[test]
    fn insert_updates_existing_tag() {
        let mut psc = PagingStructureCache::default();
        let a = va(0x20_0000);
        psc.insert(Level::Pd, a, entry(1));
        psc.insert(Level::Pd, a, entry(5));
        let (_, e) = psc.lookup_deepest(a).unwrap();
        assert_eq!(e.next_table, FrameId(5));
        assert_eq!(psc.len(), 1);
    }
}
