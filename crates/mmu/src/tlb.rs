//! Translation look-aside buffer model.
//!
//! Two-level structure mirroring recent Intel cores: a small
//! set-associative first-level D-TLB for 4 KiB translations plus a
//! fully-associative array for huge pages, backed by a large unified
//! second-level STLB. Only present translations are cached — a walk that
//! ends at a non-present entry inserts nothing, which is the
//! architectural root of the paper's mapped/unmapped timing signal (P2)
//! and of the TLB attack (P4).

use core::fmt;

use crate::addr::VirtAddr;
use crate::space::PageSize;
use crate::walk::EffectivePerms;

/// TLB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Sets in the first-level 4 KiB D-TLB.
    pub dtlb_sets: usize,
    /// Ways per set in the first-level 4 KiB D-TLB.
    pub dtlb_ways: usize,
    /// Entries in the fully-associative huge-page (2 MiB/1 GiB) array.
    pub huge_entries: usize,
    /// Sets in the unified second-level STLB.
    pub stlb_sets: usize,
    /// Ways per set in the unified second-level STLB.
    pub stlb_ways: usize,
}

impl Default for TlbConfig {
    /// Ice-Lake-like geometry (64-entry DTLB, 32-entry huge array,
    /// 1536-entry 12-way STLB).
    fn default() -> Self {
        Self {
            dtlb_sets: 16,
            dtlb_ways: 4,
            huge_entries: 32,
            stlb_sets: 128,
            stlb_ways: 12,
        }
    }
}

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (address >> page shift).
    pub vpn: u64,
    /// Page size of the translation.
    pub size: PageSize,
    /// Physical frame number of the mapped page.
    pub pfn: u64,
    /// Effective permissions incl. dirty state at fill time.
    pub perms: EffectivePerms,
}

impl TlbEntry {
    /// `true` if this entry translates `va`.
    #[must_use]
    pub fn covers(&self, va: VirtAddr) -> bool {
        va.as_u64() >> self.size.shift() == self.vpn
    }
}

/// Which level of the TLB hierarchy produced a hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLookup {
    /// First-level hit (D-TLB or huge array).
    L1,
    /// Second-level (STLB) hit; the entry is promoted to L1.
    L2,
}

#[derive(Clone, Debug)]
struct SetAssoc {
    sets: usize,
    ways: usize,
    /// slots[set * ways + way] = (entry, lru stamp); stamp 0 = invalid.
    slots: Vec<Option<(TlbEntry, u64)>>,
    clock: u64,
}

impl SetAssoc {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets,
            ways,
            slots: vec![None; sets * ways],
            clock: 0,
        }
    }

    fn set_index(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.sets - 1)
    }

    fn lookup(&mut self, va: VirtAddr, size_shift: u32) -> Option<TlbEntry> {
        self.clock += 1;
        let clock = self.clock;
        let vpn = va.as_u64() >> size_shift;
        let set = self.set_index(vpn);
        for way in 0..self.ways {
            let slot = &mut self.slots[set * self.ways + way];
            if let Some((entry, stamp)) = slot {
                if entry.vpn == vpn && entry.size.shift() == size_shift {
                    *stamp = clock;
                    return Some(*entry);
                }
            }
        }
        None
    }

    fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        self.clock += 1;
        let set = self.set_index(entry.vpn);
        let base = set * self.ways;
        // Update in place if present.
        for way in 0..self.ways {
            if let Some((existing, stamp)) = &mut self.slots[base + way] {
                if existing.vpn == entry.vpn && existing.size == entry.size {
                    *existing = entry;
                    *stamp = self.clock;
                    return None;
                }
            }
        }
        // Free way?
        for way in 0..self.ways {
            if self.slots[base + way].is_none() {
                self.slots[base + way] = Some((entry, self.clock));
                return None;
            }
        }
        // Evict LRU.
        let victim_way = (0..self.ways)
            .min_by_key(|&w| self.slots[base + w].map_or(0, |(_, s)| s))
            .expect("ways > 0");
        let evicted = self.slots[base + victim_way].take().map(|(e, _)| e);
        self.slots[base + victim_way] = Some((entry, self.clock));
        evicted
    }

    fn invalidate(&mut self, va: VirtAddr) {
        for slot in &mut self.slots {
            if let Some((entry, _)) = slot {
                if entry.covers(va) {
                    *slot = None;
                }
            }
        }
    }

    fn flush(&mut self, keep_global: bool) {
        for slot in &mut self.slots {
            let keep = keep_global && slot.is_some_and(|(e, _)| e.perms.global);
            if !keep {
                *slot = None;
            }
        }
    }

    fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[derive(Clone, Debug)]
struct FullyAssoc {
    capacity: usize,
    slots: Vec<(TlbEntry, u64)>,
    clock: u64,
}

impl FullyAssoc {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slots: Vec::with_capacity(capacity),
            clock: 0,
        }
    }

    fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        self.clock += 1;
        let clock = self.clock;
        for (entry, stamp) in &mut self.slots {
            if entry.covers(va) {
                *stamp = clock;
                return Some(*entry);
            }
        }
        None
    }

    fn insert(&mut self, entry: TlbEntry) {
        self.clock += 1;
        if let Some((existing, stamp)) = self
            .slots
            .iter_mut()
            .find(|(e, _)| e.vpn == entry.vpn && e.size == entry.size)
        {
            *existing = entry;
            *stamp = self.clock;
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push((entry, self.clock));
        } else if let Some(victim) = self.slots.iter_mut().min_by_key(|(_, s)| *s) {
            *victim = (entry, self.clock);
        }
    }

    fn invalidate(&mut self, va: VirtAddr) {
        self.slots.retain(|(e, _)| !e.covers(va));
    }

    fn flush(&mut self, keep_global: bool) {
        if keep_global {
            self.slots.retain(|(e, _)| e.perms.global);
        } else {
            self.slots.clear();
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// The two-level TLB.
///
/// ```
/// use avx_mmu::{Tlb, TlbConfig, TlbEntry, PageSize};
/// use avx_mmu::walk::EffectivePerms;
/// use avx_mmu::VirtAddr;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// let va = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
/// tlb.insert(TlbEntry {
///     vpn: va.as_u64() >> 21,
///     size: PageSize::Size2M,
///     pfn: 0x1000,
///     perms: EffectivePerms::kernel_default(),
/// });
/// assert!(tlb.lookup(va).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    dtlb: SetAssoc,
    huge: FullyAssoc,
    stlb: SetAssoc,
    config: TlbConfig,
    hits_l1: u64,
    hits_l2: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics unless set counts are powers of two and ways are non-zero.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.dtlb_sets.is_power_of_two(), "dtlb_sets must be 2^n");
        assert!(config.stlb_sets.is_power_of_two(), "stlb_sets must be 2^n");
        assert!(config.dtlb_ways > 0 && config.stlb_ways > 0, "ways > 0");
        Self {
            dtlb: SetAssoc::new(config.dtlb_sets, config.dtlb_ways),
            huge: FullyAssoc::new(config.huge_entries),
            stlb: SetAssoc::new(config.stlb_sets, config.stlb_ways),
            config,
            hits_l1: 0,
            hits_l2: 0,
            misses: 0,
        }
    }

    /// The geometry this TLB was built with.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up a translation for `va`, updating replacement state.
    ///
    /// An STLB hit is promoted into the first level, as hardware does.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<(TlbEntry, TlbLookup)> {
        if let Some(e) = self.dtlb.lookup(va, PageSize::Size4K.shift()) {
            self.hits_l1 += 1;
            return Some((e, TlbLookup::L1));
        }
        if let Some(e) = self.huge.lookup(va) {
            self.hits_l1 += 1;
            return Some((e, TlbLookup::L1));
        }
        // Unified STLB holds all page sizes.
        for shift in [
            PageSize::Size4K.shift(),
            PageSize::Size2M.shift(),
            PageSize::Size1G.shift(),
        ] {
            if let Some(e) = self.stlb.lookup(va, shift) {
                self.hits_l2 += 1;
                self.promote(e);
                return Some((e, TlbLookup::L2));
            }
        }
        self.misses += 1;
        None
    }

    /// Peeks without touching replacement state or counters.
    #[must_use]
    pub fn contains(&self, va: VirtAddr) -> bool {
        let in_dtlb = self.dtlb.slots.iter().flatten().any(|(e, _)| e.covers(va));
        let in_huge = self.huge.slots.iter().any(|(e, _)| e.covers(va));
        let in_stlb = self.stlb.slots.iter().flatten().any(|(e, _)| e.covers(va));
        in_dtlb || in_huge || in_stlb
    }

    fn promote(&mut self, entry: TlbEntry) {
        match entry.size {
            PageSize::Size4K => {
                let _ = self.dtlb.insert(entry);
            }
            _ => self.huge.insert(entry),
        }
    }

    /// Inserts a translation into both levels (walk completion).
    pub fn insert(&mut self, entry: TlbEntry) {
        self.promote(entry);
        let _ = self.stlb.insert(entry);
    }

    /// Updates the cached dirty state for `va`, if cached (store fills).
    pub fn set_dirty(&mut self, va: VirtAddr) {
        for slot in self.dtlb.slots.iter_mut().flatten() {
            if slot.0.covers(va) {
                slot.0.perms.dirty = true;
            }
        }
        for slot in self.huge.slots.iter_mut() {
            if slot.0.covers(va) {
                slot.0.perms.dirty = true;
            }
        }
        for slot in self.stlb.slots.iter_mut().flatten() {
            if slot.0.covers(va) {
                slot.0.perms.dirty = true;
            }
        }
    }

    /// Invalidates any translation covering `va` (the `INVLPG` part that
    /// touches the TLB proper; the PSC has its own `invlpg`).
    pub fn invlpg(&mut self, va: VirtAddr) {
        self.dtlb.invalidate(va);
        self.huge.invalidate(va);
        self.stlb.invalidate(va);
    }

    /// Flushes everything (CR3 write). Global entries survive unless
    /// `keep_global` is false (CR4.PGE toggle).
    pub fn flush(&mut self, keep_global: bool) {
        self.dtlb.flush(keep_global);
        self.huge.flush(keep_global);
        self.stlb.flush(keep_global);
    }

    /// Simulates the user-level eviction pattern of Gras et al.: fills the
    /// D-TLB and STLB sets that `va` maps to with attacker translations,
    /// evicting the victim entry without `INVLPG`.
    ///
    /// Returns how many filler translations were inserted.
    pub fn evict_address(&mut self, va: VirtAddr) -> usize {
        let vpn = va.vpn();
        let mut inserted = 0;
        // Enough fillers to exhaust both the D-TLB set and the STLB set:
        // filler vpns congruent modulo both set counts.
        let stride = (self.config.dtlb_sets * self.config.stlb_sets) as u64;
        let fillers = self.config.dtlb_ways + self.config.stlb_ways;
        for i in 1..=fillers {
            // Attacker-controlled user addresses; top bits cleared so they
            // never alias kernel translations.
            let filler_vpn = (vpn & (stride - 1)) + stride * i as u64 + (1 << 30);
            let entry = TlbEntry {
                vpn: filler_vpn,
                size: PageSize::Size4K,
                pfn: filler_vpn,
                perms: EffectivePerms {
                    user: true,
                    writable: true,
                    no_execute: true,
                    global: false,
                    dirty: true,
                },
            };
            self.insert(entry);
            inserted += 1;
        }
        // Huge-page victims sit in the fully-associative array and in
        // STLB sets the 4 KiB fillers do not index; the attacker's real
        // eviction loop also touches huge-page buffers, modelled here as
        // a direct invalidation.
        self.huge.invalidate(va);
        self.stlb.invalidate(va);
        inserted
    }

    /// Number of live entries across all arrays (L1 + L2, duplicates
    /// counted once per array).
    #[must_use]
    pub fn len(&self) -> usize {
        self.dtlb.len() + self.huge.len() + self.stlb.len()
    }

    /// `true` when completely empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (L1 hits, L2 hits, misses) counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits_l1, self.hits_l2, self.misses)
    }

    /// First-level D-TLB associativity (used by eviction-pressure tests).
    #[must_use]
    pub fn dtlb_ways(&self) -> usize {
        self.config.dtlb_ways
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(TlbConfig::default())
    }
}

impl fmt::Display for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (h1, h2, m) = self.stats();
        write!(
            f,
            "TLB(dtlb={}, huge={}, stlb={}, hits={}+{}, misses={})",
            self.dtlb.len(),
            self.huge.len(),
            self.stlb.len(),
            h1,
            h2,
            m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_4k(vpn: u64) -> TlbEntry {
        TlbEntry {
            vpn,
            size: PageSize::Size4K,
            pfn: vpn ^ 0xaaaa,
            perms: EffectivePerms {
                user: true,
                writable: true,
                no_execute: true,
                global: false,
                dirty: false,
            },
        }
    }

    fn entry_2m(vpn: u64, global: bool) -> TlbEntry {
        TlbEntry {
            vpn,
            size: PageSize::Size2M,
            pfn: vpn,
            perms: EffectivePerms {
                user: false,
                writable: false,
                no_execute: false,
                global,
                dirty: false,
            },
        }
    }

    fn va_of_4k(vpn: u64) -> VirtAddr {
        VirtAddr::new_truncate(vpn << 12)
    }

    #[test]
    fn insert_then_hit_l1() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x1234));
        let (e, lvl) = tlb.lookup(va_of_4k(0x1234)).unwrap();
        assert_eq!(e.vpn, 0x1234);
        assert_eq!(lvl, TlbLookup::L1);
    }

    #[test]
    fn miss_on_empty() {
        let mut tlb = Tlb::default();
        assert!(tlb.lookup(va_of_4k(0x42)).is_none());
        assert_eq!(tlb.stats().2, 1);
    }

    #[test]
    fn huge_entry_covers_interior_addresses() {
        let mut tlb = Tlb::default();
        let base = 0xffff_ffff_a1e0_0000u64;
        tlb.insert(entry_2m(base >> 21, true));
        let inner = VirtAddr::new_truncate(base + 0x12_3456);
        assert!(tlb.lookup(inner).is_some());
    }

    #[test]
    fn dtlb_eviction_falls_back_to_stlb() {
        let mut tlb = Tlb::default();
        let cfg = tlb.config();
        let victim_vpn = 0x7000;
        tlb.insert(entry_4k(victim_vpn));
        // Fill the victim's D-TLB set with congruent vpns (same low bits).
        for i in 1..=cfg.dtlb_ways as u64 {
            tlb.insert(entry_4k(victim_vpn + i * cfg.dtlb_sets as u64));
        }
        // The victim was evicted from L1 but still hits in the STLB.
        let (_, lvl) = tlb.lookup(va_of_4k(victim_vpn)).unwrap();
        assert_eq!(lvl, TlbLookup::L2);
        // And the hit promoted it back to L1.
        let (_, lvl) = tlb.lookup(va_of_4k(victim_vpn)).unwrap();
        assert_eq!(lvl, TlbLookup::L1);
    }

    #[test]
    fn evict_address_forces_full_miss() {
        let mut tlb = Tlb::default();
        let vpn = 0xffff_ffff_a1e0_0000u64 >> 12;
        tlb.insert(entry_4k(vpn));
        assert!(tlb.contains(va_of_4k(vpn)));
        tlb.evict_address(va_of_4k(vpn));
        assert!(
            tlb.lookup(va_of_4k(vpn)).is_none(),
            "victim must be evicted from both levels"
        );
    }

    #[test]
    fn invlpg_removes_entry_everywhere() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x99));
        tlb.invlpg(va_of_4k(0x99));
        assert!(!tlb.contains(va_of_4k(0x99)));
        assert!(tlb.lookup(va_of_4k(0x99)).is_none());
    }

    #[test]
    fn flush_keeps_global_when_asked() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x11)); // non-global
        tlb.insert(entry_2m(0xffff_ffff_a1e0_0000u64 >> 21, true)); // global
        tlb.flush(true);
        assert!(!tlb.contains(va_of_4k(0x11)));
        assert!(tlb.contains(VirtAddr::new_truncate(0xffff_ffff_a1e0_0000)));
        tlb.flush(false);
        assert!(tlb.is_empty());
    }

    #[test]
    fn set_dirty_updates_cached_perms() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x55));
        tlb.set_dirty(va_of_4k(0x55));
        let (e, _) = tlb.lookup(va_of_4k(0x55)).unwrap();
        assert!(e.perms.dirty);
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x77));
        let mut updated = entry_4k(0x77);
        updated.perms.dirty = true;
        tlb.insert(updated);
        let (e, _) = tlb.lookup(va_of_4k(0x77)).unwrap();
        assert!(e.perms.dirty);
        // No duplicate entries accumulated in the STLB.
        assert!(tlb.len() <= 2 * 2);
    }

    #[test]
    fn lookup_promotes_and_counts() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x31));
        let _ = tlb.lookup(va_of_4k(0x31));
        let (h1, h2, m) = tlb.stats();
        assert_eq!((h1, h2, m), (1, 0, 0));
        let _ = tlb.lookup(va_of_4k(0x32));
        assert_eq!(tlb.stats().2, 1);
    }

    #[test]
    #[should_panic(expected = "dtlb_sets must be 2^n")]
    fn non_power_of_two_sets_rejected() {
        let _ = Tlb::new(TlbConfig {
            dtlb_sets: 3,
            ..TlbConfig::default()
        });
    }
}
