//! Translation look-aside buffer model.
//!
//! Two-level structure mirroring recent Intel cores: a small
//! set-associative first-level D-TLB for 4 KiB translations plus a
//! fully-associative array for huge pages, backed by a large unified
//! second-level STLB. Only present translations are cached — a walk that
//! ends at a non-present entry inserts nothing, which is the
//! architectural root of the paper's mapped/unmapped timing signal (P2)
//! and of the TLB attack (P4).

use core::fmt;

use crate::addr::VirtAddr;
use crate::space::PageSize;
use crate::walk::EffectivePerms;

/// TLB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Sets in the first-level 4 KiB D-TLB.
    pub dtlb_sets: usize,
    /// Ways per set in the first-level 4 KiB D-TLB.
    pub dtlb_ways: usize,
    /// Entries in the fully-associative huge-page (2 MiB/1 GiB) array.
    pub huge_entries: usize,
    /// Sets in the unified second-level STLB.
    pub stlb_sets: usize,
    /// Ways per set in the unified second-level STLB.
    pub stlb_ways: usize,
}

impl Default for TlbConfig {
    /// Ice-Lake-like geometry (64-entry DTLB, 32-entry huge array,
    /// 1536-entry 12-way STLB).
    fn default() -> Self {
        Self {
            dtlb_sets: 16,
            dtlb_ways: 4,
            huge_entries: 32,
            stlb_sets: 128,
            stlb_ways: 12,
        }
    }
}

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (address >> page shift).
    pub vpn: u64,
    /// Page size of the translation.
    pub size: PageSize,
    /// Physical frame number of the mapped page.
    pub pfn: u64,
    /// Effective permissions incl. dirty state at fill time.
    pub perms: EffectivePerms,
}

impl TlbEntry {
    /// `true` if this entry translates `va`.
    #[must_use]
    pub fn covers(&self, va: VirtAddr) -> bool {
        va.as_u64() >> self.size.shift() == self.vpn
    }
}

/// Which level of the TLB hierarchy produced a hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLookup {
    /// First-level hit (D-TLB or huge array).
    L1,
    /// Second-level (STLB) hit; the entry is promoted to L1.
    L2,
}

/// Packed lookup key: VPN in the high bits, a 2-bit page-size code in
/// the low bits, so a way-scan is one dense `u64` compare per way.
fn tlb_key(vpn: u64, size: PageSize) -> u64 {
    let code = match size {
        PageSize::Size4K => 0u64,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    };
    (vpn << 2) | code
}

/// 2-bit size code shared by [`tlb_key`] and the per-size occupancy
/// counters.
fn size_code_for_shift(size_shift: u32) -> usize {
    match size_shift {
        12 => 0,
        21 => 1,
        30 => 2,
        _ => unreachable!("architectural page shifts only"),
    }
}

fn tlb_key_for_shift(va: VirtAddr, size_shift: u32) -> u64 {
    ((va.as_u64() >> size_shift) << 2) | size_code_for_shift(size_shift) as u64
}

/// A placeholder for invalid slots (parallel-array layout needs a value
/// there; `stamp == 0` marks it dead and it is never read as an entry).
const DEAD_ENTRY: TlbEntry = TlbEntry {
    vpn: 0,
    size: PageSize::Size4K,
    pfn: 0,
    perms: EffectivePerms {
        user: false,
        writable: false,
        no_execute: false,
        global: false,
        dirty: false,
    },
};

/// Set-associative array in a struct-of-arrays layout: the hot way-scan
/// touches a dense stamp/key slice (the tuple-of-`Option` layout made
/// every probe walk ~56 bytes per way). Replacement semantics are
/// unchanged: strictly increasing stamps, minimum-stamp LRU victim.
#[derive(Clone, Debug)]
struct SetAssoc {
    sets: usize,
    ways: usize,
    /// stamps[set * ways + way]; 0 = invalid.
    stamps: Vec<u64>,
    keys: Vec<u64>,
    entries: Vec<TlbEntry>,
    /// Live entries per set: region sweeps miss on almost every probe,
    /// and most sets are empty, so the way-scan is skipped outright.
    live: Vec<u16>,
    /// Live entries per page-size code. A lookup for a size with no
    /// cached translations is a guaranteed miss, and — since the miss
    /// path touches no replacement state — skipping it outright is
    /// unobservable. The unified STLB is probed once per page size on
    /// every translation, so this prunes whole probes from the scan
    /// loop (e.g. no 1 GiB mappings ⇒ the 1 GiB probe never runs).
    live_by_size: [u32; 3],
    /// Per-set key signature: one hash bit per live key. A clear bit is
    /// a guaranteed miss (no false negatives by construction), letting
    /// the lookup skip the whole way-scan — the dominant cost once sets
    /// fill up, since a sweep probes a fresh key almost every time.
    /// Rebuilt from the live ways whenever a key leaves a set.
    sig: Vec<u64>,
    clock: u64,
}

/// One hash bit per key for the per-set signatures (Fibonacci hash,
/// top bits — the low key bits are the set index and carry no entropy
/// within a set).
fn sig_bit(key: u64) -> u64 {
    1u64 << (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 58)
}

impl SetAssoc {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets,
            ways,
            stamps: vec![0; sets * ways],
            keys: vec![0; sets * ways],
            entries: vec![DEAD_ENTRY; sets * ways],
            live: vec![0; sets],
            live_by_size: [0; 3],
            sig: vec![0; sets],
            clock: 0,
        }
    }

    fn set_index(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.sets - 1)
    }

    /// Recomputes one set's key signature from its live ways (cold
    /// paths only: eviction, invalidation, flush).
    fn rebuild_sig(&mut self, set: usize) {
        let base = set * self.ways;
        let mut sig = 0u64;
        for slot in base..base + self.ways {
            if self.stamps[slot] != 0 {
                sig |= sig_bit(self.keys[slot]);
            }
        }
        self.sig[set] = sig;
    }

    fn lookup(&mut self, va: VirtAddr, size_shift: u32) -> Option<TlbEntry> {
        if self.live_by_size[size_code_for_shift(size_shift)] == 0 {
            return None;
        }
        let vpn = va.as_u64() >> size_shift;
        let set = self.set_index(vpn);
        if self.live[set] == 0 {
            return None;
        }
        let key = tlb_key_for_shift(va, size_shift);
        if self.sig[set] & sig_bit(key) == 0 {
            return None;
        }
        let base = set * self.ways;
        for slot in base..base + self.ways {
            if self.stamps[slot] != 0 && self.keys[slot] == key {
                // The clock ticks only when a stamp is assigned: the
                // min-stamp victim choice depends on stamp *order*
                // alone, and that order is unchanged by skipping the
                // (frequent) miss-path increments.
                self.clock += 1;
                self.stamps[slot] = self.clock;
                return Some(self.entries[slot]);
            }
        }
        None
    }

    fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        self.clock += 1;
        let key = tlb_key(entry.vpn, entry.size);
        let set = self.set_index(entry.vpn);
        let base = set * self.ways;
        // Update in place if present.
        for slot in base..base + self.ways {
            if self.stamps[slot] != 0 && self.keys[slot] == key {
                self.entries[slot] = entry;
                self.stamps[slot] = self.clock;
                return None;
            }
        }
        // Free way?
        for slot in base..base + self.ways {
            if self.stamps[slot] == 0 {
                self.stamps[slot] = self.clock;
                self.keys[slot] = key;
                self.entries[slot] = entry;
                self.live[set] += 1;
                self.live_by_size[(key & 3) as usize] += 1;
                self.sig[set] |= sig_bit(key);
                return None;
            }
        }
        // Evict LRU (stamps are unique and non-zero here).
        let victim = (base..base + self.ways)
            .min_by_key(|&slot| self.stamps[slot])
            .expect("ways > 0");
        let evicted = self.entries[victim];
        self.live_by_size[(self.keys[victim] & 3) as usize] -= 1;
        self.live_by_size[(key & 3) as usize] += 1;
        self.stamps[victim] = self.clock;
        self.keys[victim] = key;
        self.entries[victim] = entry;
        self.rebuild_sig(set);
        Some(evicted)
    }

    fn invalidate(&mut self, va: VirtAddr) {
        for slot in 0..self.stamps.len() {
            if self.stamps[slot] != 0 && self.entries[slot].covers(va) {
                self.stamps[slot] = 0;
                self.live[slot / self.ways] -= 1;
                self.live_by_size[(self.keys[slot] & 3) as usize] -= 1;
                self.rebuild_sig(slot / self.ways);
            }
        }
    }

    fn flush(&mut self, keep_global: bool) {
        for slot in 0..self.stamps.len() {
            let keep = keep_global && self.stamps[slot] != 0 && self.entries[slot].perms.global;
            if !keep {
                if self.stamps[slot] != 0 {
                    self.live[slot / self.ways] -= 1;
                    self.live_by_size[(self.keys[slot] & 3) as usize] -= 1;
                }
                self.stamps[slot] = 0;
            }
        }
        for set in 0..self.sets {
            self.rebuild_sig(set);
        }
    }

    fn contains(&self, va: VirtAddr) -> bool {
        (0..self.stamps.len()).any(|s| self.stamps[s] != 0 && self.entries[s].covers(va))
    }

    fn set_dirty(&mut self, va: VirtAddr) {
        for slot in 0..self.stamps.len() {
            if self.stamps[slot] != 0 && self.entries[slot].covers(va) {
                self.entries[slot].perms.dirty = true;
            }
        }
    }

    fn len(&self) -> usize {
        self.stamps.iter().filter(|&&s| s != 0).count()
    }
}

/// Fully-associative array with an open-addressed key index: probes
/// miss it on nearly every sweep candidate, so membership must not cost
/// a scan. Hit order (first matching slot) and LRU replacement are
/// identical to the reference tuple-vector implementation — the index
/// stores slot positions, and the (at most three) per-size candidates
/// are resolved to the lowest position, which is exactly the first
/// match of a slot-order scan.
#[derive(Clone, Debug)]
struct FullyAssoc {
    capacity: usize,
    keys: Vec<u64>,
    entries: Vec<TlbEntry>,
    stamps: Vec<u64>,
    clock: u64,
    index: crate::tagidx::TagIndex,
    /// Live entries per page-size code (see [`SetAssoc::live_by_size`]):
    /// lets `covering_position` skip the hash probe for a size with no
    /// cached translations — a guaranteed miss with no observable state.
    live_by_size: [u32; 3],
}

impl FullyAssoc {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            keys: Vec::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            clock: 0,
            index: crate::tagidx::TagIndex::with_capacity(capacity),
            live_by_size: [0; 3],
        }
    }

    /// Slot holding exactly `key`, via the shared tag index (keys are
    /// unique: insert dedups by (vpn, size)).
    fn key_position(&self, key: u64) -> Option<usize> {
        self.index.find(key)
    }

    /// First slot whose entry covers `va` (scan order = slot order, as
    /// in the reference implementation). An entry covers `va` iff its
    /// packed key equals the key derived from `va` at the entry's page
    /// size; distinct sizes may both cover `va` (stale entries), so the
    /// lowest slot position wins — the first match of a linear scan.
    fn covering_position(&self, va: VirtAddr) -> Option<usize> {
        // Only 2 MiB / 1 GiB translations ever land here ([`Tlb`] routes
        // 4 KiB entries to the D-TLB), so two candidate keys suffice —
        // and a size with zero live entries needs no probe at all.
        let mut best: Option<usize> = None;
        for shift in [21u32, 30] {
            if self.live_by_size[size_code_for_shift(shift)] == 0 {
                continue;
            }
            if let Some(pos) = self.key_position(tlb_key_for_shift(va, shift)) {
                best = Some(best.map_or(pos, |b: usize| b.min(pos)));
            }
        }
        best
    }

    fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        if let Some(i) = self.covering_position(va) {
            // Clock ticks only on stamp assignment — see
            // `SetAssoc::lookup` for why this preserves LRU order.
            self.clock += 1;
            self.stamps[i] = self.clock;
            return Some(self.entries[i]);
        }
        None
    }

    fn insert(&mut self, entry: TlbEntry) {
        self.clock += 1;
        let key = tlb_key(entry.vpn, entry.size);
        if let Some(i) = self.key_position(key) {
            self.entries[i] = entry;
            self.stamps[i] = self.clock;
            return;
        }
        if self.keys.len() < self.capacity {
            self.keys.push(key);
            self.entries.push(entry);
            self.stamps.push(self.clock);
            self.live_by_size[(key & 3) as usize] += 1;
            self.index.insert(key, self.keys.len() - 1);
        } else if let Some(victim) = (0..self.stamps.len()).min_by_key(|&i| self.stamps[i]) {
            self.live_by_size[(self.keys[victim] & 3) as usize] -= 1;
            self.live_by_size[(key & 3) as usize] += 1;
            self.keys[victim] = key;
            self.entries[victim] = entry;
            self.stamps[victim] = self.clock;
            self.index.rebuild(&self.keys);
        }
    }

    fn invalidate(&mut self, va: VirtAddr) {
        while let Some(i) = self.covering_position(va) {
            self.live_by_size[(self.keys[i] & 3) as usize] -= 1;
            self.keys.remove(i);
            self.entries.remove(i);
            self.stamps.remove(i);
            // Positions shifted; rebuild before re-probing.
            self.index.rebuild(&self.keys);
        }
    }

    fn flush(&mut self, keep_global: bool) {
        if keep_global {
            let mut i = 0;
            while i < self.keys.len() {
                if self.entries[i].perms.global {
                    i += 1;
                } else {
                    self.live_by_size[(self.keys[i] & 3) as usize] -= 1;
                    self.keys.remove(i);
                    self.entries.remove(i);
                    self.stamps.remove(i);
                }
            }
            self.index.rebuild(&self.keys);
        } else {
            self.keys.clear();
            self.entries.clear();
            self.stamps.clear();
            self.index.clear();
            self.live_by_size = [0; 3];
        }
    }

    fn contains(&self, va: VirtAddr) -> bool {
        self.covering_position(va).is_some()
    }

    fn set_dirty(&mut self, va: VirtAddr) {
        for i in 0..self.keys.len() {
            if self.entries[i].covers(va) {
                self.entries[i].perms.dirty = true;
            }
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// The two-level TLB.
///
/// ```
/// use avx_mmu::{Tlb, TlbConfig, TlbEntry, PageSize};
/// use avx_mmu::walk::EffectivePerms;
/// use avx_mmu::VirtAddr;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// let va = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
/// tlb.insert(TlbEntry {
///     vpn: va.as_u64() >> 21,
///     size: PageSize::Size2M,
///     pfn: 0x1000,
///     perms: EffectivePerms::kernel_default(),
/// });
/// assert!(tlb.lookup(va).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    dtlb: SetAssoc,
    huge: FullyAssoc,
    stlb: SetAssoc,
    config: TlbConfig,
    hits_l1: u64,
    hits_l2: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics unless set counts are powers of two and ways are non-zero.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.dtlb_sets.is_power_of_two(), "dtlb_sets must be 2^n");
        assert!(config.stlb_sets.is_power_of_two(), "stlb_sets must be 2^n");
        assert!(config.dtlb_ways > 0 && config.stlb_ways > 0, "ways > 0");
        Self {
            dtlb: SetAssoc::new(config.dtlb_sets, config.dtlb_ways),
            huge: FullyAssoc::new(config.huge_entries),
            stlb: SetAssoc::new(config.stlb_sets, config.stlb_ways),
            config,
            hits_l1: 0,
            hits_l2: 0,
            misses: 0,
        }
    }

    /// The geometry this TLB was built with.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up a translation for `va`, updating replacement state.
    ///
    /// An STLB hit is promoted into the first level, as hardware does.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<(TlbEntry, TlbLookup)> {
        if let Some(e) = self.dtlb.lookup(va, PageSize::Size4K.shift()) {
            self.hits_l1 += 1;
            return Some((e, TlbLookup::L1));
        }
        if let Some(e) = self.huge.lookup(va) {
            self.hits_l1 += 1;
            return Some((e, TlbLookup::L1));
        }
        // Unified STLB holds all page sizes.
        for shift in [
            PageSize::Size4K.shift(),
            PageSize::Size2M.shift(),
            PageSize::Size1G.shift(),
        ] {
            if let Some(e) = self.stlb.lookup(va, shift) {
                self.hits_l2 += 1;
                self.promote(e);
                return Some((e, TlbLookup::L2));
            }
        }
        self.misses += 1;
        None
    }

    /// Peeks without touching replacement state or counters.
    #[must_use]
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.dtlb.contains(va) || self.huge.contains(va) || self.stlb.contains(va)
    }

    fn promote(&mut self, entry: TlbEntry) {
        match entry.size {
            PageSize::Size4K => {
                let _ = self.dtlb.insert(entry);
            }
            _ => self.huge.insert(entry),
        }
    }

    /// Inserts a translation into both levels (walk completion).
    pub fn insert(&mut self, entry: TlbEntry) {
        self.promote(entry);
        let _ = self.stlb.insert(entry);
    }

    /// Updates the cached dirty state for `va`, if cached (store fills).
    pub fn set_dirty(&mut self, va: VirtAddr) {
        self.dtlb.set_dirty(va);
        self.huge.set_dirty(va);
        self.stlb.set_dirty(va);
    }

    /// Invalidates any translation covering `va` (the `INVLPG` part that
    /// touches the TLB proper; the PSC has its own `invlpg`).
    pub fn invlpg(&mut self, va: VirtAddr) {
        self.dtlb.invalidate(va);
        self.huge.invalidate(va);
        self.stlb.invalidate(va);
    }

    /// Flushes everything (CR3 write). Global entries survive unless
    /// `keep_global` is false (CR4.PGE toggle).
    pub fn flush(&mut self, keep_global: bool) {
        self.dtlb.flush(keep_global);
        self.huge.flush(keep_global);
        self.stlb.flush(keep_global);
    }

    /// Simulates the user-level eviction pattern of Gras et al.: fills the
    /// D-TLB and STLB sets that `va` maps to with attacker translations,
    /// evicting the victim entry without `INVLPG`.
    ///
    /// Returns how many filler translations were inserted.
    pub fn evict_address(&mut self, va: VirtAddr) -> usize {
        let vpn = va.vpn();
        let mut inserted = 0;
        // Enough fillers to exhaust both the D-TLB set and the STLB set:
        // filler vpns congruent modulo both set counts.
        let stride = (self.config.dtlb_sets * self.config.stlb_sets) as u64;
        let fillers = self.config.dtlb_ways + self.config.stlb_ways;
        for i in 1..=fillers {
            // Attacker-controlled user addresses; top bits cleared so they
            // never alias kernel translations.
            let filler_vpn = (vpn & (stride - 1)) + stride * i as u64 + (1 << 30);
            let entry = TlbEntry {
                vpn: filler_vpn,
                size: PageSize::Size4K,
                pfn: filler_vpn,
                perms: EffectivePerms {
                    user: true,
                    writable: true,
                    no_execute: true,
                    global: false,
                    dirty: true,
                },
            };
            self.insert(entry);
            inserted += 1;
        }
        // Huge-page victims sit in the fully-associative array and in
        // STLB sets the 4 KiB fillers do not index; the attacker's real
        // eviction loop also touches huge-page buffers, modelled here as
        // a direct invalidation.
        self.huge.invalidate(va);
        self.stlb.invalidate(va);
        inserted
    }

    /// Number of live entries across all arrays (L1 + L2, duplicates
    /// counted once per array).
    #[must_use]
    pub fn len(&self) -> usize {
        self.dtlb.len() + self.huge.len() + self.stlb.len()
    }

    /// `true` when completely empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (L1 hits, L2 hits, misses) counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits_l1, self.hits_l2, self.misses)
    }

    /// First-level D-TLB associativity (used by eviction-pressure tests).
    #[must_use]
    pub fn dtlb_ways(&self) -> usize {
        self.config.dtlb_ways
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(TlbConfig::default())
    }
}

impl fmt::Display for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (h1, h2, m) = self.stats();
        write!(
            f,
            "TLB(dtlb={}, huge={}, stlb={}, hits={}+{}, misses={})",
            self.dtlb.len(),
            self.huge.len(),
            self.stlb.len(),
            h1,
            h2,
            m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_4k(vpn: u64) -> TlbEntry {
        TlbEntry {
            vpn,
            size: PageSize::Size4K,
            pfn: vpn ^ 0xaaaa,
            perms: EffectivePerms {
                user: true,
                writable: true,
                no_execute: true,
                global: false,
                dirty: false,
            },
        }
    }

    fn entry_2m(vpn: u64, global: bool) -> TlbEntry {
        TlbEntry {
            vpn,
            size: PageSize::Size2M,
            pfn: vpn,
            perms: EffectivePerms {
                user: false,
                writable: false,
                no_execute: false,
                global,
                dirty: false,
            },
        }
    }

    fn va_of_4k(vpn: u64) -> VirtAddr {
        VirtAddr::new_truncate(vpn << 12)
    }

    #[test]
    fn insert_then_hit_l1() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x1234));
        let (e, lvl) = tlb.lookup(va_of_4k(0x1234)).unwrap();
        assert_eq!(e.vpn, 0x1234);
        assert_eq!(lvl, TlbLookup::L1);
    }

    #[test]
    fn miss_on_empty() {
        let mut tlb = Tlb::default();
        assert!(tlb.lookup(va_of_4k(0x42)).is_none());
        assert_eq!(tlb.stats().2, 1);
    }

    #[test]
    fn huge_entry_covers_interior_addresses() {
        let mut tlb = Tlb::default();
        let base = 0xffff_ffff_a1e0_0000u64;
        tlb.insert(entry_2m(base >> 21, true));
        let inner = VirtAddr::new_truncate(base + 0x12_3456);
        assert!(tlb.lookup(inner).is_some());
    }

    #[test]
    fn dtlb_eviction_falls_back_to_stlb() {
        let mut tlb = Tlb::default();
        let cfg = tlb.config();
        let victim_vpn = 0x7000;
        tlb.insert(entry_4k(victim_vpn));
        // Fill the victim's D-TLB set with congruent vpns (same low bits).
        for i in 1..=cfg.dtlb_ways as u64 {
            tlb.insert(entry_4k(victim_vpn + i * cfg.dtlb_sets as u64));
        }
        // The victim was evicted from L1 but still hits in the STLB.
        let (_, lvl) = tlb.lookup(va_of_4k(victim_vpn)).unwrap();
        assert_eq!(lvl, TlbLookup::L2);
        // And the hit promoted it back to L1.
        let (_, lvl) = tlb.lookup(va_of_4k(victim_vpn)).unwrap();
        assert_eq!(lvl, TlbLookup::L1);
    }

    #[test]
    fn evict_address_forces_full_miss() {
        let mut tlb = Tlb::default();
        let vpn = 0xffff_ffff_a1e0_0000u64 >> 12;
        tlb.insert(entry_4k(vpn));
        assert!(tlb.contains(va_of_4k(vpn)));
        tlb.evict_address(va_of_4k(vpn));
        assert!(
            tlb.lookup(va_of_4k(vpn)).is_none(),
            "victim must be evicted from both levels"
        );
    }

    #[test]
    fn invlpg_removes_entry_everywhere() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x99));
        tlb.invlpg(va_of_4k(0x99));
        assert!(!tlb.contains(va_of_4k(0x99)));
        assert!(tlb.lookup(va_of_4k(0x99)).is_none());
    }

    #[test]
    fn flush_keeps_global_when_asked() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x11)); // non-global
        tlb.insert(entry_2m(0xffff_ffff_a1e0_0000u64 >> 21, true)); // global
        tlb.flush(true);
        assert!(!tlb.contains(va_of_4k(0x11)));
        assert!(tlb.contains(VirtAddr::new_truncate(0xffff_ffff_a1e0_0000)));
        tlb.flush(false);
        assert!(tlb.is_empty());
    }

    #[test]
    fn set_dirty_updates_cached_perms() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x55));
        tlb.set_dirty(va_of_4k(0x55));
        let (e, _) = tlb.lookup(va_of_4k(0x55)).unwrap();
        assert!(e.perms.dirty);
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x77));
        let mut updated = entry_4k(0x77);
        updated.perms.dirty = true;
        tlb.insert(updated);
        let (e, _) = tlb.lookup(va_of_4k(0x77)).unwrap();
        assert!(e.perms.dirty);
        // No duplicate entries accumulated in the STLB.
        assert!(tlb.len() <= 2 * 2);
    }

    #[test]
    fn lookup_promotes_and_counts() {
        let mut tlb = Tlb::default();
        tlb.insert(entry_4k(0x31));
        let _ = tlb.lookup(va_of_4k(0x31));
        let (h1, h2, m) = tlb.stats();
        assert_eq!((h1, h2, m), (1, 0, 0));
        let _ = tlb.lookup(va_of_4k(0x32));
        assert_eq!(tlb.stats().2, 1);
    }

    #[test]
    #[should_panic(expected = "dtlb_sets must be 2^n")]
    fn non_power_of_two_sets_rejected() {
        let _ = Tlb::new(TlbConfig {
            dtlb_sets: 3,
            ..TlbConfig::default()
        });
    }
}
