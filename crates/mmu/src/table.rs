//! Paging-structure tables and levels.

use core::fmt;
use core::ops::{Index, IndexMut};

use crate::pte::Pte;

/// Number of entries in every paging structure (512 × 8 bytes = 4 KiB).
pub const ENTRIES_PER_TABLE: usize = 512;

/// Identifier of a simulated physical frame holding a paging structure.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FrameId(pub(crate) u32);

impl FrameId {
    /// Creates a frame id from a raw arena index (useful for tests and
    /// for timing models that key caches by frame).
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Raw index value.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// The four levels of 4-level paging, ordered from root to leaf.
///
/// The numeric value equals the conventional level number used in the
/// paper and in Intel documentation (PML4 = 4 … PT = 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Level {
    /// Page-map level 4 (root), bits 47..39.
    Pml4,
    /// Page-directory-pointer table, bits 38..30. 1 GiB leaves live here.
    Pdpt,
    /// Page directory, bits 29..21. 2 MiB leaves live here.
    Pd,
    /// Page table, bits 20..12. 4 KiB leaves live here.
    Pt,
}

impl Level {
    /// All levels in walk order (root → leaf).
    pub const WALK_ORDER: [Level; 4] = [Level::Pml4, Level::Pdpt, Level::Pd, Level::Pt];

    /// Conventional numeric level (PML4 = 4, PDPT = 3, PD = 2, PT = 1).
    #[must_use]
    pub const fn number(self) -> u8 {
        match self {
            Level::Pml4 => 4,
            Level::Pdpt => 3,
            Level::Pd => 2,
            Level::Pt => 1,
        }
    }

    /// The next level towards the leaf, if any.
    #[must_use]
    pub const fn next(self) -> Option<Level> {
        match self {
            Level::Pml4 => Some(Level::Pdpt),
            Level::Pdpt => Some(Level::Pd),
            Level::Pd => Some(Level::Pt),
            Level::Pt => None,
        }
    }

    /// Number of paging-structure accesses a full walk down to (and
    /// including) this level performs: PML4 → 1 … PT → 4.
    #[must_use]
    pub const fn accesses_from_root(self) -> u8 {
        5 - self.number()
    }

    /// Size of the region one entry at this level spans.
    #[must_use]
    pub const fn entry_span(self) -> u64 {
        match self {
            Level::Pml4 => 1 << 39,
            Level::Pdpt => 1 << 30,
            Level::Pd => 1 << 21,
            Level::Pt => 1 << 12,
        }
    }

    /// `true` if a leaf mapping may terminate at this level.
    #[must_use]
    pub const fn supports_leaf(self) -> bool {
        !matches!(self, Level::Pml4)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Level::Pml4 => "PML4",
            Level::Pdpt => "PDPT",
            Level::Pd => "PD",
            Level::Pt => "PT",
        };
        write!(f, "{name}")
    }
}

/// One 4 KiB paging structure: 512 raw entries.
#[derive(Clone)]
pub struct PageTable {
    entries: Box<[Pte; ENTRIES_PER_TABLE]>,
    live_entries: u16,
}

impl PageTable {
    /// An empty (all zero) table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Box::new([Pte::zero(); ENTRIES_PER_TABLE]),
            live_entries: 0,
        }
    }

    /// The entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 512`.
    #[must_use]
    pub fn entry(&self, index: usize) -> Pte {
        self.entries[index]
    }

    /// Overwrites the entry at `index`, maintaining the live-entry count.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 512`.
    pub fn set_entry(&mut self, index: usize, pte: Pte) {
        let was = self.entries[index].raw() != 0;
        let is = pte.raw() != 0;
        match (was, is) {
            (false, true) => self.live_entries += 1,
            (true, false) => self.live_entries -= 1,
            _ => {}
        }
        self.entries[index] = pte;
    }

    /// Number of non-zero entries; an empty table can be reclaimed.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.live_entries as usize
    }

    /// `true` if every entry is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_entries == 0
    }

    /// Iterates over `(index, entry)` pairs of non-zero entries.
    pub fn iter_live(&self) -> impl Iterator<Item = (usize, Pte)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.raw() != 0)
            .map(|(i, e)| (i, *e))
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Index<usize> for PageTable {
    type Output = Pte;
    fn index(&self, index: usize) -> &Pte {
        &self.entries[index]
    }
}

impl IndexMut<usize> for PageTable {
    /// Direct mutable access bypasses live-entry accounting; use
    /// [`PageTable::set_entry`] unless the zero-ness cannot change.
    fn index_mut(&mut self, index: usize) -> &mut Pte {
        &mut self.entries[index]
    }
}

impl fmt::Debug for PageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageTable({} live entries)", self.live_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::flags::PteFlags;

    #[test]
    fn level_numbers_match_convention() {
        assert_eq!(Level::Pml4.number(), 4);
        assert_eq!(Level::Pdpt.number(), 3);
        assert_eq!(Level::Pd.number(), 2);
        assert_eq!(Level::Pt.number(), 1);
    }

    #[test]
    fn walk_order_is_root_to_leaf() {
        assert_eq!(
            Level::WALK_ORDER,
            [Level::Pml4, Level::Pdpt, Level::Pd, Level::Pt]
        );
        assert_eq!(Level::Pml4.next(), Some(Level::Pdpt));
        assert_eq!(Level::Pt.next(), None);
    }

    #[test]
    fn accesses_from_root_counts_structures() {
        assert_eq!(Level::Pml4.accesses_from_root(), 1);
        assert_eq!(Level::Pdpt.accesses_from_root(), 2);
        assert_eq!(Level::Pd.accesses_from_root(), 3);
        assert_eq!(Level::Pt.accesses_from_root(), 4);
    }

    #[test]
    fn entry_spans() {
        assert_eq!(Level::Pt.entry_span(), 4096);
        assert_eq!(Level::Pd.entry_span(), 2 * 1024 * 1024);
        assert_eq!(Level::Pdpt.entry_span(), 1024 * 1024 * 1024);
        assert_eq!(Level::Pml4.entry_span(), 512u64 << 30);
    }

    #[test]
    fn leaf_support() {
        assert!(!Level::Pml4.supports_leaf());
        assert!(Level::Pdpt.supports_leaf());
        assert!(Level::Pd.supports_leaf());
        assert!(Level::Pt.supports_leaf());
    }

    #[test]
    fn table_live_entry_accounting() {
        let mut t = PageTable::new();
        assert!(t.is_empty());
        let pte = Pte::new(PhysAddr::new(0x1000), PteFlags::PRESENT);
        t.set_entry(3, pte);
        t.set_entry(7, pte);
        assert_eq!(t.live_entries(), 2);
        t.set_entry(3, pte); // overwrite with non-zero: count unchanged
        assert_eq!(t.live_entries(), 2);
        t.set_entry(3, Pte::zero());
        assert_eq!(t.live_entries(), 1);
        t.set_entry(7, Pte::zero());
        assert!(t.is_empty());
    }

    #[test]
    fn iter_live_yields_only_nonzero() {
        let mut t = PageTable::new();
        let pte = Pte::new(PhysAddr::new(0x2000), PteFlags::PRESENT);
        t.set_entry(511, pte);
        let collected: Vec<_> = t.iter_live().collect();
        assert_eq!(collected, vec![(511, pte)]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Level::Pml4.to_string(), "PML4");
        assert_eq!(Level::Pt.to_string(), "PT");
    }
}
