//! The shadow translation index: an epoch-cached interval map over an
//! [`AddressSpace`].
//!
//! Sweep-shaped attacks walk millions of candidate addresses through
//! page-table regions that are overwhelmingly static: tables only change
//! at setup time and (once) while Accessed/Dirty bits settle. Yet every
//! probe re-walked up to four `Vec`-backed structures, re-deriving the
//! same table chain each time. The shadow index derives, once per
//! [`AddressSpace::shape_epoch`], a sorted interval map in which every
//! canonical address belongs to exactly one interval whose *walk shape*
//! — the chain of paging structures visited and the level at which the
//! walk terminates — is constant. A walk becomes an O(log n) interval
//! lookup (O(1) for the sequential-sweep common case, via a caller-held
//! hint) plus a replay of the stored chain that reads the live PTE at
//! each level.
//!
//! Reading entry *values* live is what keeps the index valid across the
//! flags-only churn of steady-state probing: the first access to a user
//! page sets its Accessed bit, which changes the PTE value but not the
//! walk shape, so only [`AddressSpace::shape_epoch`] (structural
//! mutations: map/unmap/alloc/Present flips) invalidates the index.
//!
//! # Bit-exactness contract
//!
//! [`ShadowIndex::walk_hinted`] must be observably identical to
//! [`Walker::walk_with_psc`] / [`Walker::walk`] in every respect the
//! timing engine can see: the returned [`WalkOutcome`] (terminal level,
//! access list, access count, resume level, entry, mapping, perms) and
//! the PSC lookup/insert sequence, including LRU clock advancement on
//! misses. Two details make this subtle:
//!
//! * The PSC is consulted **exactly once** per walk — its replacement
//!   clocks advance on lookup, so the index may not "peek and retry".
//! * A stale PSC entry (inserted before a later mutation, never
//!   invalidated — exactly like hardware without `INVLPG`) may resume
//!   the walk somewhere the current tables do not reach. When the
//!   cached resume point disagrees with the stored chain, the index
//!   falls back to `Walker::walk_from` *continuing from the PSC state
//!   already obtained*, which is precisely what the slow walker does.
//!
//! The property suite in `tests/shadow_props.rs` pins this equivalence
//! under randomized map/unmap/protect/A-D-bit/probe interleavings.

use crate::addr::VirtAddr;
use crate::psc::{PagingStructureCache, PscEntry};
use crate::space::{AddressSpace, MappedRegion, PageSize};
use crate::table::{FrameId, Level, ENTRIES_PER_TABLE};
use crate::walk::{EffectivePerms, WalkAccessList, WalkOutcome, Walker};

/// One interval of the index: a maximal canonical address range whose
/// walk shape (table chain + terminal level) is constant.
#[derive(Clone, Copy, Debug)]
struct ShadowInterval {
    /// First covered address.
    start: u64,
    /// Last covered address (inclusive; avoids overflow at the top of
    /// the kernel half).
    last: u64,
    /// Paging structures visited, walk order; `tables[0]` is the root.
    tables: [FrameId; 4],
    /// Number of levels visited (1..=4). The entry the walk reads at
    /// `WALK_ORDER[depth - 1]` terminates it: a leaf, a non-present
    /// guard, or zero.
    depth: u8,
}

impl ShadowInterval {
    fn covers(&self, va: u64) -> bool {
        self.start <= va && va <= self.last
    }
}

/// The epoch-cached shadow translation index over one address space.
#[derive(Clone, Debug)]
pub struct ShadowIndex {
    shape_epoch: u64,
    intervals: Vec<ShadowInterval>,
}

/// Lean walk verdict for the execution engine's hot path: everything a
/// timing model needs from a walk, with no access-list or
/// [`WalkOutcome`] materialization. Structure accesses are streamed to
/// the caller through the `on_access` callback of
/// [`ShadowIndex::walk_costed`] in walk order instead.
#[derive(Clone, Copy, Debug)]
pub struct ShadowWalk {
    /// Level whose entry terminated the walk.
    pub terminal_level: Level,
    /// Number of paging-structure accesses performed.
    pub structures_accessed: u8,
    /// `true` when the walk resumed from a PSC entry (level extras do
    /// not apply, exactly as for `WalkOutcome::psc_resume_level`).
    pub resumed: bool,
    /// `true` when a present leaf was found.
    pub present_leaf: bool,
    /// Accumulated permissions (meaningful when `present_leaf`).
    pub perms: EffectivePerms,
    /// Leaf page size (meaningful when `present_leaf`).
    pub page_size: PageSize,
    /// Leaf physical frame number (meaningful when `present_leaf`).
    pub frame_number: u64,
    /// `true` when this walk ran through the pure shadow replay with
    /// the PSC engaged and **no** stale-PSC fallback. For such a walk,
    /// an immediately repeated walk of the same address (the engine's
    /// non-present retry) is fully determined: it resumes from the
    /// deepest intermediate this walk left in the PSC (or the root for
    /// a PML4-terminated walk), reads exactly the terminal entry again,
    /// and finds its line warm — so the engine may charge it
    /// analytically. See `Machine::translate_page` in `avx-uarch`.
    pub clean_replay: bool,
}

/// Outcome of the O(log n) point query ([`ShadowIndex::lookup`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowLookup {
    /// Level whose entry terminates the walk for this address.
    pub terminal_level: Level,
    /// The present leaf covering the address, if any.
    pub mapping: Option<MappedRegion>,
    /// Permissions accumulated over a root walk (meaningful when
    /// `mapping.is_some()`).
    pub perms: EffectivePerms,
}

impl ShadowIndex {
    /// Derives the index from the current state of `space`.
    #[must_use]
    pub fn build(space: &AddressSpace) -> Self {
        let mut intervals = Vec::with_capacity(64);
        let mut chain = [FrameId::default(); 4];
        build_table(space, space.root(), 0, 0, &mut chain, &mut intervals);
        debug_assert!(intervals.windows(2).all(|w| w[0].last < w[1].start));
        Self {
            shape_epoch: space.shape_epoch(),
            intervals,
        }
    }

    /// The [`AddressSpace::shape_epoch`] this index was derived at.
    #[must_use]
    pub fn shape_epoch(&self) -> u64 {
        self.shape_epoch
    }

    /// `true` while `space`'s walk shape has not changed since the
    /// index was built (flags-only PTE rewrites keep it current).
    #[must_use]
    pub fn is_current(&self, space: &AddressSpace) -> bool {
        self.shape_epoch == space.shape_epoch()
    }

    /// Number of intervals in the index.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// `true` for an index with no intervals (cannot happen for a real
    /// space: even an empty one yields a whole-space interval).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// O(log n) point query: where does the walk for `va` terminate, and
    /// what does it find? Pure — no translation-cache state is touched.
    #[must_use]
    pub fn lookup(&self, space: &AddressSpace, va: VirtAddr) -> ShadowLookup {
        let iv = &self.intervals[self.find(va.as_u64(), &mut 0)];
        let depth = iv.depth as usize;
        let mut perms = EffectivePerms::most_permissive();
        for i in 0..depth - 1 {
            let entry = space
                .table(iv.tables[i])
                .entry(va.index_for(Level::WALK_ORDER[i]));
            perms = perms.and_level(entry.flags());
        }
        let (mapping, perms) = resolve_terminal(space, iv, va, perms);
        ShadowLookup {
            terminal_level: Level::WALK_ORDER[depth - 1],
            mapping,
            perms,
        }
    }

    /// Bit-exact replacement for [`Walker::walk`] /
    /// [`Walker::walk_with_psc`].
    ///
    /// `hint` is a caller-held cursor into the interval list; sequential
    /// sweeps hit the same or the next interval almost every time, which
    /// turns the lookup O(1). Any `usize` value is safe.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the index is current for `space`; a stale
    /// index would silently replay outdated translations.
    #[must_use]
    pub fn walk_hinted(
        &self,
        space: &AddressSpace,
        va: VirtAddr,
        mut psc: Option<&mut PagingStructureCache>,
        hint: &mut usize,
    ) -> WalkOutcome {
        debug_assert!(self.is_current(space), "stale shadow index");
        let iv = &self.intervals[self.find(va.as_u64(), hint)];
        let depth = iv.depth as usize;

        let (start_idx, mut perms, psc_resume_level) =
            match resume_from_psc(iv, space, va, psc.as_deref_mut()) {
                Ok(resume) => resume,
                Err(fallback) => return fallback,
            };

        let mut accesses = WalkAccessList::default();
        for i in start_idx..depth {
            accesses.push(iv.tables[i], va.index_for(Level::WALK_ORDER[i]));
        }

        // Intermediate levels: accumulate perms and refill the PSC with
        // the same entries the slow walker would insert. Entry values
        // are read live — only the *shape* is cached.
        for i in start_idx..depth - 1 {
            let entry = space
                .table(iv.tables[i])
                .entry(va.index_for(Level::WALK_ORDER[i]));
            perms = perms.and_level(entry.flags());
            if let Some(psc) = psc.as_deref_mut() {
                psc.insert(
                    Level::WALK_ORDER[i],
                    va,
                    PscEntry {
                        next_table: iv.tables[i + 1],
                        perms,
                    },
                );
            }
        }

        let terminal = space
            .table(iv.tables[depth - 1])
            .entry(va.index_for(Level::WALK_ORDER[depth - 1]));
        let (mapping, perms) = resolve_terminal(space, iv, va, perms);
        WalkOutcome {
            va,
            terminal_level: Level::WALK_ORDER[depth - 1],
            structures_accessed: (depth - start_idx) as u8,
            accesses,
            psc_resume_level,
            entry: terminal,
            mapping,
            perms,
        }
    }

    /// Fused variant of [`ShadowIndex::walk_hinted`] for the timing
    /// engine: identical translation semantics and PSC evolution, but
    /// structure accesses are streamed to `on_access` (in walk order —
    /// the engine charges line-cache costs there) and the result is the
    /// lean [`ShadowWalk`] instead of a full [`WalkOutcome`].
    pub fn walk_costed<F: FnMut(FrameId, usize)>(
        &self,
        space: &AddressSpace,
        va: VirtAddr,
        mut psc: Option<&mut PagingStructureCache>,
        hint: &mut usize,
        on_access: &mut F,
    ) -> ShadowWalk {
        debug_assert!(self.is_current(space), "stale shadow index");
        let iv = &self.intervals[self.find(va.as_u64(), hint)];
        let depth = iv.depth as usize;

        let (start_idx, mut perms, resume_level) =
            match resume_from_psc(iv, space, va, psc.as_deref_mut()) {
                Ok(resume) => resume,
                Err(fallback) => {
                    for (table, idx) in fallback.accesses.iter() {
                        on_access(table, idx);
                    }
                    return ShadowWalk::from(&fallback);
                }
            };
        let resumed = resume_level.is_some();

        for i in start_idx..depth - 1 {
            let idx = va.index_for(Level::WALK_ORDER[i]);
            on_access(iv.tables[i], idx);
            let entry = space.table(iv.tables[i]).entry(idx);
            perms = perms.and_level(entry.flags());
            if let Some(psc) = psc.as_deref_mut() {
                psc.insert(
                    Level::WALK_ORDER[i],
                    va,
                    PscEntry {
                        next_table: iv.tables[i + 1],
                        perms,
                    },
                );
            }
        }

        let level = Level::WALK_ORDER[depth - 1];
        let terminal_idx = va.index_for(level);
        on_access(iv.tables[depth - 1], terminal_idx);
        let terminal = space.table(iv.tables[depth - 1]).entry(terminal_idx);

        // An immediate re-walk is analytically determined only when the
        // deepest intermediate of this walk is guaranteed to sit in the
        // PSC afterwards: either there is no intermediate (PML4
        // termination) or its level is actually cacheable.
        let clean_replay = match &psc {
            Some(psc) => depth == 1 || psc.can_cache(Level::WALK_ORDER[depth - 2]),
            None => false,
        };
        let mut walk = ShadowWalk {
            terminal_level: level,
            structures_accessed: (depth - start_idx) as u8,
            resumed,
            present_leaf: false,
            perms,
            page_size: PageSize::Size4K,
            frame_number: 0,
            clean_replay,
        };
        if terminal.is_present() {
            let is_leaf = match level {
                Level::Pt => true,
                Level::Pml4 => false,
                _ => terminal.is_huge_leaf(),
            };
            if is_leaf {
                walk.present_leaf = true;
                walk.perms = perms.and_level(terminal.flags());
                walk.page_size =
                    PageSize::from_leaf_level(level).expect("leaf levels map to a page size");
                walk.frame_number = terminal.addr().frame_number();
            }
        }
        walk
    }

    /// The (table, entry index) slot whose entry terminates the walk
    /// for `va` — the leaf slot when `va` is mapped. Pure; `hint` as in
    /// [`ShadowIndex::walk_hinted`]. The engine uses this to test
    /// Accessed/Dirty bits without re-walking.
    #[must_use]
    pub fn terminal_slot(&self, va: VirtAddr, hint: &mut usize) -> (FrameId, usize) {
        let iv = &self.intervals[self.find(va.as_u64(), hint)];
        let level = Level::WALK_ORDER[iv.depth as usize - 1];
        (iv.tables[iv.depth as usize - 1], va.index_for(level))
    }

    /// Locates the interval covering `va`, preferring the hint and its
    /// successor before falling back to binary search.
    fn find(&self, va: u64, hint: &mut usize) -> usize {
        if let Some(iv) = self.intervals.get(*hint) {
            if iv.covers(va) {
                return *hint;
            }
        }
        if let Some(iv) = self.intervals.get(*hint + 1) {
            if iv.covers(va) {
                *hint += 1;
                return *hint;
            }
        }
        let idx = match self.intervals.partition_point(|iv| iv.start <= va) {
            0 => 0,
            n => n - 1,
        };
        debug_assert!(
            self.intervals[idx].covers(va),
            "index covers every canonical address"
        );
        *hint = idx;
        idx
    }
}

impl From<&WalkOutcome> for ShadowWalk {
    /// Lean view of a full [`WalkOutcome`] (the stale-PSC fallback and
    /// the reference-walker path produce outcomes; the timing engine
    /// consumes this form).
    fn from(outcome: &WalkOutcome) -> Self {
        ShadowWalk {
            terminal_level: outcome.terminal_level,
            structures_accessed: outcome.structures_accessed,
            resumed: outcome.psc_resume_level.is_some(),
            present_leaf: outcome.mapping.is_some(),
            perms: outcome.perms,
            page_size: outcome.mapping.map_or(PageSize::Size4K, |m| m.size),
            frame_number: outcome.mapping.map_or(0, |m| m.phys.frame_number()),
            clean_replay: false,
        }
    }
}

/// Consults the PSC for `va` — exactly once, as in the slow walker (the
/// lookup advances replacement clocks even on a miss) — and validates
/// the resume point against the interval's chain.
///
/// `Ok((start_idx, perms, resume_level))` resumes the replay at
/// `start_idx` with the cached perms; a stale resume point (mutation
/// since the entry was cached, never `INVLPG`ed — exactly like
/// hardware) yields `Err` with the completed live walk, continued from
/// the already-obtained PSC state via `Walker::walk_from`.
fn resume_from_psc(
    iv: &ShadowInterval,
    space: &AddressSpace,
    va: VirtAddr,
    psc: Option<&mut PagingStructureCache>,
) -> Result<(usize, EffectivePerms, Option<Level>), WalkOutcome> {
    let Some(psc) = psc else {
        return Ok((0, EffectivePerms::most_permissive(), None));
    };
    let Some((cached_level, entry)) = psc.lookup_deepest(va) else {
        return Ok((0, EffectivePerms::most_permissive(), None));
    };
    let resume_idx = cached_level as usize + 1;
    if resume_idx >= iv.depth as usize || entry.next_table != iv.tables[resume_idx] {
        return Err(Walker::new().walk_from(
            space,
            va,
            cached_level
                .next()
                .expect("PSC never caches PT entries, so next() exists"),
            entry.next_table,
            entry.perms,
            Some(cached_level),
            Some(psc),
        ));
    }
    Ok((resume_idx, entry.perms, Some(cached_level)))
}

/// Reads and applies the terminal entry of `iv` for `va`: present leaf →
/// mapping + final perms accumulation, otherwise no mapping.
fn resolve_terminal(
    space: &AddressSpace,
    iv: &ShadowInterval,
    va: VirtAddr,
    mut perms: EffectivePerms,
) -> (Option<MappedRegion>, EffectivePerms) {
    let depth = iv.depth as usize;
    let level = Level::WALK_ORDER[depth - 1];
    let terminal = space.table(iv.tables[depth - 1]).entry(va.index_for(level));
    if !terminal.is_present() {
        return (None, perms);
    }
    let is_leaf = match level {
        Level::Pt => true,
        Level::Pml4 => false,
        _ => terminal.is_huge_leaf(),
    };
    if !is_leaf {
        // Unreachable while the index is current (a present intermediate
        // would have recursed at build time, and turning a terminal slot
        // into an intermediate bumps the shape epoch), but mirror the
        // walker's semantics defensively.
        return (None, perms);
    }
    perms = perms.and_level(terminal.flags());
    let size = PageSize::from_leaf_level(level).expect("leaf levels always map to a page size");
    (
        Some(MappedRegion {
            start: va.align_down(size.bytes()),
            size,
            flags: terminal.flags(),
            phys: terminal.addr(),
        }),
        perms,
    )
}

const fn level_shift(level: Level) -> u32 {
    match level {
        Level::Pml4 => 39,
        Level::Pdpt => 30,
        Level::Pd => 21,
        Level::Pt => 12,
    }
}

/// Emits intervals for every slot of `table_id`, recursing into present
/// intermediates. Consecutive slots that terminate the walk at this
/// level — zero, guard, or leaf alike — merge into one interval: the
/// walk shape is identical across them and values are read live.
fn build_table(
    space: &AddressSpace,
    table_id: FrameId,
    depth_idx: usize,
    va_prefix: u64,
    chain: &mut [FrameId; 4],
    out: &mut Vec<ShadowInterval>,
) {
    let level = Level::WALK_ORDER[depth_idx];
    let shift = level_shift(level);
    let span = level.entry_span();
    chain[depth_idx] = table_id;

    let mut run: Option<(u64, u64)> = None; // (start, last) of a terminal run
    for idx in 0..ENTRIES_PER_TABLE {
        // Canonicalize: at the PML4 level bit 47 sign-extends.
        let va = VirtAddr::new_truncate(va_prefix | (idx as u64) << shift).as_u64();
        let last = va + (span - 1);
        let entry = space.table(table_id).entry(idx);

        let descends = entry.is_present()
            && match level {
                Level::Pt => false,
                Level::Pml4 => true,
                _ => !entry.is_huge_leaf(),
            };

        if !descends {
            run = match run {
                Some((start, prev_last)) if prev_last.wrapping_add(1) == va => Some((start, last)),
                Some(done) => {
                    flush_run(done, depth_idx, chain, out);
                    Some((va, last))
                }
                None => Some((va, last)),
            };
            continue;
        }

        if let Some(done) = run.take() {
            flush_run(done, depth_idx, chain, out);
        }
        let next =
            FrameId::new(u32::try_from(entry.addr().frame_number()).expect("table frame id"));
        build_table(space, next, depth_idx + 1, va, chain, out);
        chain[depth_idx] = table_id;
    }
    if let Some(done) = run {
        flush_run(done, depth_idx, chain, out);
    }
}

fn flush_run(
    (start, last): (u64, u64),
    depth_idx: usize,
    chain: &[FrameId; 4],
    out: &mut Vec<ShadowInterval>,
) {
    out.push(ShadowInterval {
        start,
        last,
        tables: *chain,
        depth: depth_idx as u8 + 1,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::PteFlags;
    use crate::psc::PscConfig;

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new_truncate(raw)
    }

    fn sample_space() -> AddressSpace {
        let mut s = AddressSpace::new();
        s.map(
            va(0xffff_ffff_a1e0_0000),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
        s.map(
            va(0xffff_ffff_c012_3000),
            PageSize::Size4K,
            PteFlags::kernel_rx(),
        )
        .unwrap();
        s.map(va(0x5555_5555_4000), PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        s
    }

    fn assert_same_outcome(a: &WalkOutcome, b: &WalkOutcome) {
        assert_eq!(a.va, b.va);
        assert_eq!(a.terminal_level, b.terminal_level);
        assert_eq!(a.structures_accessed, b.structures_accessed);
        assert_eq!(a.psc_resume_level, b.psc_resume_level);
        assert_eq!(a.entry.raw(), b.entry.raw());
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.perms, b.perms);
        let al: Vec<_> = a.accesses.iter().collect();
        let bl: Vec<_> = b.accesses.iter().collect();
        assert_eq!(al, bl);
    }

    #[test]
    fn index_covers_full_canonical_space_in_order() {
        let index = ShadowIndex::build(&sample_space());
        let first = index.intervals.first().unwrap();
        let last = index.intervals.last().unwrap();
        assert_eq!(first.start, 0);
        assert_eq!(last.last, u64::MAX);
        for w in index.intervals.windows(2) {
            assert!(w[0].last < w[1].start, "sorted and non-overlapping");
        }
    }

    #[test]
    fn walk_matches_walker_without_psc() {
        let space = sample_space();
        let index = ShadowIndex::build(&space);
        let walker = Walker::new();
        let mut hint = 0usize;
        for addr in [
            0u64,
            0x5555_5555_4000,
            0x5555_5555_4fff,
            0x5555_5555_5000,
            0xffff_ffff_a1e0_0000,
            0xffff_ffff_a1ff_ffff,
            0xffff_ffff_a000_0000,
            0xffff_ffff_c012_3000,
            0xffff_ffff_c012_4000,
            0xffff_8000_0000_0000,
            u64::MAX,
        ] {
            let slow = walker.walk(&space, va(addr));
            let fast = index.walk_hinted(&space, va(addr), None, &mut hint);
            assert_same_outcome(&fast, &slow);
        }
    }

    #[test]
    fn walk_matches_walker_with_psc_warmup_and_resume() {
        let space = sample_space();
        let index = ShadowIndex::build(&space);
        let walker = Walker::new();
        let mut psc_slow = PagingStructureCache::new(PscConfig::default());
        let mut psc_fast = PagingStructureCache::new(PscConfig::default());
        let mut hint = 0usize;
        let addrs = [
            0xffff_ffff_c012_3000u64,
            0xffff_ffff_c012_3000, // resume from PDE on repeat
            0xffff_ffff_a1e0_0000,
            0xffff_ffff_a000_0000, // sibling resumes from PDPTE
            0x5555_5555_4000,
            0x1234_5678_9000,
        ];
        for addr in addrs {
            let slow = walker.walk_with_psc(&space, va(addr), &mut psc_slow);
            let fast = index.walk_hinted(&space, va(addr), Some(&mut psc_fast), &mut hint);
            assert_same_outcome(&fast, &slow);
            assert_eq!(psc_fast.len(), psc_slow.len());
            assert_eq!(psc_fast.hits(), psc_slow.hits());
            assert_eq!(psc_fast.misses(), psc_slow.misses());
        }
    }

    #[test]
    fn stale_psc_resume_falls_back_to_live_walk() {
        let mut space = sample_space();
        let walker = Walker::new();
        let mut psc_slow = PagingStructureCache::new(PscConfig::default());
        let mut psc_fast = PagingStructureCache::new(PscConfig::default());
        let target = va(0xffff_ffff_c012_3000);
        // Warm both PSCs, then unmap without any PSC invalidation — the
        // cached PDE now points at a pruned table, like hardware without
        // INVLPG.
        let _ = walker.walk_with_psc(&space, target, &mut psc_slow);
        let _ = ShadowIndex::build(&space).walk_hinted(&space, target, Some(&mut psc_fast), &mut 0);
        space.unmap(target, PageSize::Size4K).unwrap();
        let index = ShadowIndex::build(&space);
        let slow = walker.walk_with_psc(&space, target, &mut psc_slow);
        let fast = index.walk_hinted(&space, target, Some(&mut psc_fast), &mut 0);
        assert_same_outcome(&fast, &slow);
    }

    #[test]
    fn lookup_reports_mapping_and_terminal_level() {
        let space = sample_space();
        let index = ShadowIndex::build(&space);
        let hit = index.lookup(&space, va(0xffff_ffff_a1e1_2345));
        assert_eq!(hit.terminal_level, Level::Pd);
        let m = hit.mapping.expect("mapped");
        assert_eq!(m.start, va(0xffff_ffff_a1e0_0000));
        assert!(!hit.perms.user);

        let miss = index.lookup(&space, va(0x1234_5678_9000));
        assert!(miss.mapping.is_none());
        assert_eq!(miss.terminal_level, Level::Pml4);
    }

    #[test]
    fn flags_only_mutations_keep_the_index_current() {
        let mut space = sample_space();
        let index = ShadowIndex::build(&space);
        assert!(index.is_current(&space));
        // A/D-bit settling and permission rewrites change PTE values but
        // not the walk shape: the index stays valid and reads the new
        // values live.
        space.mark_accessed(va(0x5555_5555_4000), true).unwrap();
        assert!(index.is_current(&space));
        let hit = index.lookup(&space, va(0x5555_5555_4000));
        assert!(hit.mapping.unwrap().flags.is_dirty());
        space
            .protect(va(0x5555_5555_4000), PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        assert!(index.is_current(&space), "present-preserving mprotect");
        // Structural mutations invalidate it.
        space
            .map(va(0x7000_0000_0000), PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        assert!(!index.is_current(&space));
    }

    #[test]
    fn present_flip_invalidates_the_index() {
        let mut space = sample_space();
        let index = ShadowIndex::build(&space);
        space
            .protect(
                va(0x5555_5555_4000),
                PageSize::Size4K,
                PteFlags::none_guard(),
            )
            .unwrap();
        assert!(!index.is_current(&space), "Present flip is a shape change");
    }

    #[test]
    fn hint_accelerates_sequential_sweeps_correctly() {
        let space = sample_space();
        let index = ShadowIndex::build(&space);
        let walker = Walker::new();
        let mut hint = 0usize;
        for slot in 0..512u64 {
            let addr = va(0xffff_ffff_8000_0000 + slot * 0x20_0000);
            let slow = walker.walk(&space, addr);
            let fast = index.walk_hinted(&space, addr, None, &mut hint);
            assert_same_outcome(&fast, &slow);
        }
    }

    #[test]
    fn merged_terminal_runs_keep_the_index_small() {
        // A whole PT of 4 KiB leaves collapses into one interval.
        let mut space = AddressSpace::new();
        space
            .map_range(
                va(0x7f00_0000_0000),
                512,
                PageSize::Size4K,
                PteFlags::user_ro(),
            )
            .unwrap();
        let index = ShadowIndex::build(&space);
        assert!(
            index.len() <= 8,
            "512 leaves must not mean 512 intervals: {}",
            index.len()
        );
    }
}
