//! Error type for address-space manipulation.

use core::fmt;

use crate::space::PageSize;

/// Errors raised by [`crate::AddressSpace`] operations and address parsing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MmuError {
    /// The 64-bit value is not a canonical 48-bit virtual address.
    NonCanonical {
        /// Offending raw address.
        addr: u64,
    },
    /// The address is not aligned to the requested page size.
    Misaligned {
        /// Offending address.
        addr: u64,
        /// Page size whose alignment was violated.
        size: PageSize,
    },
    /// A mapping already exists at the address.
    AlreadyMapped {
        /// Offending address.
        addr: u64,
    },
    /// A huge-page mapping overlaps the requested range at a higher level.
    HugePageConflict {
        /// Offending address.
        addr: u64,
    },
    /// No mapping exists at the address.
    NotMapped {
        /// Offending address.
        addr: u64,
    },
    /// The mapping at the address has a different page size than requested.
    SizeMismatch {
        /// Offending address.
        addr: u64,
        /// Size of the existing mapping.
        found: PageSize,
        /// Size the caller asked for.
        expected: PageSize,
    },
    /// The simulated physical frame allocator is exhausted.
    OutOfFrames,
}

impl fmt::Display for MmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::NonCanonical { addr } => {
                write!(f, "address {addr:#x} is not canonical")
            }
            Self::Misaligned { addr, size } => {
                write!(f, "address {addr:#x} is not aligned to {size}")
            }
            Self::AlreadyMapped { addr } => {
                write!(f, "address {addr:#x} is already mapped")
            }
            Self::HugePageConflict { addr } => {
                write!(f, "huge page already covers {addr:#x}")
            }
            Self::NotMapped { addr } => write!(f, "address {addr:#x} is not mapped"),
            Self::SizeMismatch {
                addr,
                found,
                expected,
            } => write!(f, "mapping at {addr:#x} is {found}, expected {expected}"),
            Self::OutOfFrames => write!(f, "physical frame allocator exhausted"),
        }
    }
}

impl std::error::Error for MmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MmuError::NonCanonical { addr: 0xdead };
        assert_eq!(e.to_string(), "address 0xdead is not canonical");
        let e = MmuError::SizeMismatch {
            addr: 0x1000,
            found: PageSize::Size2M,
            expected: PageSize::Size4K,
        };
        assert!(e.to_string().contains("2MiB"));
        assert!(e.to_string().contains("4KiB"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(MmuError::OutOfFrames);
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MmuError>();
    }
}
