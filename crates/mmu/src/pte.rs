//! Raw page-table entries.

use core::fmt;

use crate::addr::PhysAddr;
use crate::flags::PteFlags;

/// Mask of the physical-address field of an entry (bits 51..12).
const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

/// A raw 64-bit page-table entry, exactly as it would appear in memory.
///
/// Bits 51..12 hold the physical frame of either the next paging structure
/// (non-leaf) or the mapped page (leaf); the remaining bits are flags as
/// described by [`PteFlags`].
///
/// ```
/// use avx_mmu::{PhysAddr, Pte, PteFlags};
/// let pte = Pte::new(PhysAddr::new(0x1000), PteFlags::user_rw());
/// assert!(pte.is_present());
/// assert_eq!(pte.addr(), PhysAddr::new(0x1000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(u64);

impl Pte {
    /// An all-zero (non-present, empty) entry.
    #[must_use]
    pub const fn zero() -> Self {
        Self(0)
    }

    /// Builds an entry pointing at `addr` with the given flags.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4 KiB aligned (hardware would silently
    /// corrupt the flag bits; we fail loudly instead).
    #[must_use]
    pub const fn new(addr: PhysAddr, flags: PteFlags) -> Self {
        assert!(
            addr.as_u64() & 0xfff == 0,
            "PTE target must be page aligned"
        );
        Self((addr.as_u64() & ADDR_MASK) | flags.bits())
    }

    /// Reconstructs an entry from its raw memory representation.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw 64-bit representation.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The flag bits of the entry.
    #[must_use]
    pub const fn flags(self) -> PteFlags {
        PteFlags::from_bits_truncate(self.0)
    }

    /// The physical address field (frame of next table or mapped page).
    #[must_use]
    pub const fn addr(self) -> PhysAddr {
        PhysAddr::new(self.0 & ADDR_MASK)
    }

    /// Shorthand for `flags().is_present()`.
    #[must_use]
    pub const fn is_present(self) -> bool {
        self.flags().is_present()
    }

    /// `true` for a present entry with the PS bit (2 MiB / 1 GiB leaf).
    #[must_use]
    pub const fn is_huge_leaf(self) -> bool {
        self.flags().is_present() && self.flags().is_huge()
    }

    /// Returns the entry with `flags` added.
    #[must_use]
    pub const fn with_flags_set(self, flags: PteFlags) -> Self {
        Self(self.0 | flags.bits())
    }

    /// Returns the entry with `flags` removed.
    #[must_use]
    pub const fn with_flags_cleared(self, flags: PteFlags) -> Self {
        Self(self.0 & !flags.bits())
    }

    /// Replaces the whole flag set, preserving the address field.
    #[must_use]
    pub const fn with_flags(self, flags: PteFlags) -> Self {
        Self((self.0 & ADDR_MASK) | flags.bits())
    }
}

impl fmt::Debug for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pte(addr={}, {:?})", self.addr(), self.flags())
    }
}

impl fmt::LowerHex for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_address_and_flags() {
        let pte = Pte::new(PhysAddr::new(0xdead_b000), PteFlags::kernel_rw());
        assert_eq!(pte.addr(), PhysAddr::new(0xdead_b000));
        assert_eq!(pte.flags(), PteFlags::kernel_rw());
    }

    #[test]
    fn zero_is_not_present() {
        assert!(!Pte::zero().is_present());
        assert_eq!(Pte::zero().addr(), PhysAddr::zero());
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_target_panics() {
        let _ = Pte::new(PhysAddr::new(0x1234), PteFlags::PRESENT);
    }

    #[test]
    fn huge_leaf_requires_present_and_ps() {
        let huge = Pte::new(
            PhysAddr::new(0x20_0000),
            PteFlags::kernel_rx() | PteFlags::HUGE,
        );
        assert!(huge.is_huge_leaf());
        let nonpresent = huge.with_flags_cleared(PteFlags::PRESENT);
        assert!(!nonpresent.is_huge_leaf());
        let small = Pte::new(PhysAddr::new(0x1000), PteFlags::kernel_rx());
        assert!(!small.is_huge_leaf());
    }

    #[test]
    fn flag_mutation_preserves_address() {
        let pte = Pte::new(PhysAddr::new(0x4_5000), PteFlags::user_ro());
        let dirty = pte.with_flags_set(PteFlags::DIRTY | PteFlags::ACCESSED);
        assert_eq!(dirty.addr(), pte.addr());
        assert!(dirty.flags().is_dirty());
        let clean = dirty.with_flags_cleared(PteFlags::DIRTY);
        assert!(!clean.flags().is_dirty());
        assert!(clean.flags().contains(PteFlags::ACCESSED));
    }

    #[test]
    fn with_flags_replaces_only_flags() {
        let pte = Pte::new(PhysAddr::new(0x8000), PteFlags::user_rw());
        let swapped = pte.with_flags(PteFlags::kernel_rx());
        assert_eq!(swapped.addr(), PhysAddr::new(0x8000));
        assert_eq!(swapped.flags(), PteFlags::kernel_rx());
    }

    #[test]
    fn nx_survives_round_trip() {
        let pte = Pte::new(PhysAddr::new(0x1000), PteFlags::user_ro());
        assert!(pte.flags().is_no_execute());
        assert_eq!(pte.raw() >> 63, 1);
    }
}
