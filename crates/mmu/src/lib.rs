//! # avx-mmu — x86-64 address-translation substrate
//!
//! A bit-accurate simulator of the pieces of the x86-64 memory-management
//! unit that the AVX masked load/store timing side channel observes
//! (Choi, Kim, Shin, *AVX Timing Side-Channel Attacks against Address Space
//! Layout Randomization*, DAC 2023):
//!
//! * [`VirtAddr`]/[`PhysAddr`] — canonical 48-bit virtual addresses and
//!   52-bit physical addresses with per-level index extraction,
//! * [`PteFlags`]/[`Pte`] — page-table entries with the architectural
//!   Present / Writable / User / Accessed / Dirty / Huge / Global / NX bits,
//! * [`AddressSpace`] — a four-level page-table hierarchy (PML4 → PDPT →
//!   PD → PT) supporting 4 KiB, 2 MiB and 1 GiB mappings,
//! * [`Walker`] — a page-table walker that reports the level at which a
//!   walk terminates and how many paging-structure accesses it performed
//!   (the quantities leaked by attack primitives P2/P3 of the paper),
//! * [`Tlb`] — a set-associative translation look-aside buffer with
//!   eviction, `INVLPG` and global-entry semantics (primitive P4),
//! * [`PagingStructureCache`] — Intel-style paging-structure caches that
//!   hold PML4E/PDPTE/PDE (but, crucially, **not** PTE) partial
//!   translations; this asymmetry is why 4 KiB-backed walks are slower
//!   than huge-page walks in §III-B of the paper.
//!
//! ## Example
//!
//! ```
//! use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr, Walker};
//!
//! # fn main() -> Result<(), avx_mmu::MmuError> {
//! let mut space = AddressSpace::new();
//! let va = VirtAddr::new(0x5555_5555_4000)?;
//! space.map(va, PageSize::Size4K, PteFlags::user_rw())?;
//!
//! let walk = Walker::new().walk(&space, va);
//! assert!(walk.is_mapped());
//! assert_eq!(walk.terminal_level, avx_mmu::Level::Pt);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod addr;
pub mod error;
pub mod flags;
pub mod psc;
pub mod pte;
pub mod shadow;
pub mod space;
pub mod table;
mod tagidx;
pub mod tlb;
pub mod walk;

pub use addr::{PhysAddr, VirtAddr};
pub use error::MmuError;
pub use flags::PteFlags;
pub use psc::{PagingStructureCache, PscConfig};
pub use pte::Pte;
pub use shadow::{ShadowIndex, ShadowLookup, ShadowWalk};
pub use space::{AddressSpace, MappedRegion, PageSize};
pub use table::{FrameId, Level, PageTable, ENTRIES_PER_TABLE};
pub use tlb::{Tlb, TlbConfig, TlbEntry, TlbLookup};
pub use walk::{EffectivePerms, WalkAccessList, WalkOutcome, Walker};
