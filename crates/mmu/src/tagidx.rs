//! Small open-addressed (key → slot) index shared by the hot
//! fully-associative structures — the PSC arrays ([`crate::psc`]) and
//! the TLB's huge-page array ([`crate::tlb`]).
//!
//! Region sweeps *miss* these arrays on nearly every probe, so
//! membership must not cost a linear scan. The index maps a `u64` key
//! to the slot position inside the owner's parallel vectors via linear
//! probing from a Fibonacci-hashed start bucket. It never fills up: the
//! owner sizes it at 4× its slot capacity and rebuilds after removals
//! (open addressing cannot delete in place without tombstones, and
//! removals are rare `INVLPG`/eviction/flush events).

const EMPTY_BUCKET: u32 = u32::MAX;

/// Open-addressed key → slot-position index.
#[derive(Clone, Debug)]
pub(crate) struct TagIndex {
    /// (key, slot); `EMPTY_BUCKET` in the slot half marks a free bucket.
    buckets: Vec<(u64, u32)>,
}

impl TagIndex {
    /// An index able to hold `capacity` live keys with low load factor.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let bucket_count = (capacity * 4).next_power_of_two().max(8);
        Self {
            buckets: vec![(0, EMPTY_BUCKET); bucket_count],
        }
    }

    fn bucket_start(&self, key: u64) -> usize {
        let hash = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (hash >> 32) as usize & (self.buckets.len() - 1)
    }

    /// Slot holding exactly `key` (keys must be unique in the owner).
    pub(crate) fn find(&self, key: u64) -> Option<usize> {
        let mask = self.buckets.len() - 1;
        let mut b = self.bucket_start(key);
        loop {
            let (k, pos) = self.buckets[b];
            if pos == EMPTY_BUCKET {
                return None;
            }
            if k == key {
                return Some(pos as usize);
            }
            b = (b + 1) & mask;
        }
    }

    /// Records `key` at slot `pos`. `key` must not already be present.
    pub(crate) fn insert(&mut self, key: u64, pos: usize) {
        let mask = self.buckets.len() - 1;
        let mut b = self.bucket_start(key);
        while self.buckets[b].1 != EMPTY_BUCKET {
            b = (b + 1) & mask;
        }
        self.buckets[b] = (key, pos as u32);
    }

    /// Rebuilds from the owner's live key vector (call after removals
    /// or slot renumbering).
    pub(crate) fn rebuild(&mut self, keys: &[u64]) {
        self.buckets.fill((0, EMPTY_BUCKET));
        for (pos, &key) in keys.iter().enumerate() {
            self.insert(key, pos);
        }
    }

    /// Drops every key.
    pub(crate) fn clear(&mut self) {
        self.buckets.fill((0, EMPTY_BUCKET));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_insert_rebuild_round_trip() {
        let mut idx = TagIndex::with_capacity(8);
        for (pos, key) in [7u64, 9, 0, u64::MAX - 1].iter().enumerate() {
            idx.insert(*key, pos);
        }
        assert_eq!(idx.find(7), Some(0));
        assert_eq!(idx.find(0), Some(2));
        assert_eq!(idx.find(u64::MAX - 1), Some(3));
        assert_eq!(idx.find(8), None);
        idx.rebuild(&[9, 7]);
        assert_eq!(idx.find(9), Some(0));
        assert_eq!(idx.find(7), Some(1));
        assert_eq!(idx.find(0), None);
        idx.clear();
        assert_eq!(idx.find(9), None);
    }
}
