//! Architectural page-table entry flags.
//!
//! Bit layout follows the Intel SDM Vol. 3A format for 4-level paging.
//! Only the bits relevant to the AVX timing channel are modelled; the
//! remaining bits are preserved as opaque payload by [`crate::Pte`].

use core::fmt;
use core::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Not};

/// Page-table entry flag bits (a hand-rolled `bitflags`-style type; the
/// external `bitflags` crate is intentionally not used to keep the
/// dependency set minimal).
///
/// ```
/// use avx_mmu::PteFlags;
/// let f = PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::USER;
/// assert!(f.contains(PteFlags::PRESENT));
/// assert!(f.is_user());
/// assert_eq!(f | PteFlags::NO_EXECUTE, PteFlags::user_rw());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags(u64);

impl PteFlags {
    /// P — the entry refers to a present translation.
    pub const PRESENT: Self = Self(1 << 0);
    /// R/W — writes are allowed.
    pub const WRITABLE: Self = Self(1 << 1);
    /// U/S — user-mode accesses are allowed.
    pub const USER: Self = Self(1 << 2);
    /// PWT — page-level write-through (modelled as payload only).
    pub const WRITE_THROUGH: Self = Self(1 << 3);
    /// PCD — page-level cache disable (modelled as payload only).
    pub const CACHE_DISABLE: Self = Self(1 << 4);
    /// A — the translation has been used.
    pub const ACCESSED: Self = Self(1 << 5);
    /// D — the page has been written (leaf entries only).
    pub const DIRTY: Self = Self(1 << 6);
    /// PS — this PDPT/PD entry maps a huge page.
    pub const HUGE: Self = Self(1 << 7);
    /// G — translation is global (survives CR3 reloads without PCID).
    pub const GLOBAL: Self = Self(1 << 8);
    /// XD/NX — instruction fetches are not allowed.
    pub const NO_EXECUTE: Self = Self(1 << 63);

    /// The empty flag set.
    #[must_use]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// All modelled flags.
    #[must_use]
    pub const fn all() -> Self {
        Self(
            Self::PRESENT.0
                | Self::WRITABLE.0
                | Self::USER.0
                | Self::WRITE_THROUGH.0
                | Self::CACHE_DISABLE.0
                | Self::ACCESSED.0
                | Self::DIRTY.0
                | Self::HUGE.0
                | Self::GLOBAL.0
                | Self::NO_EXECUTE.0,
        )
    }

    /// Creates a flag set from raw bits, keeping only modelled bits.
    #[must_use]
    pub const fn from_bits_truncate(bits: u64) -> Self {
        Self(bits & Self::all().0)
    }

    /// Raw bit representation.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// `true` if every flag in `other` is set in `self`.
    #[must_use]
    pub const fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// `true` if any flag in `other` is set in `self`.
    #[must_use]
    pub const fn intersects(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `self` with the flags in `other` set.
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Returns `self` with the flags in `other` cleared.
    #[must_use]
    pub const fn difference(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// Sets or clears `other` according to `value`.
    #[must_use]
    pub const fn with(self, other: Self, value: bool) -> Self {
        if value {
            self.union(other)
        } else {
            self.difference(other)
        }
    }

    /// Shorthand: present flag set?
    #[must_use]
    pub const fn is_present(self) -> bool {
        self.contains(Self::PRESENT)
    }

    /// Shorthand: user-accessible?
    #[must_use]
    pub const fn is_user(self) -> bool {
        self.contains(Self::USER)
    }

    /// Shorthand: writable?
    #[must_use]
    pub const fn is_writable(self) -> bool {
        self.contains(Self::WRITABLE)
    }

    /// Shorthand: dirty?
    #[must_use]
    pub const fn is_dirty(self) -> bool {
        self.contains(Self::DIRTY)
    }

    /// Shorthand: maps a huge page?
    #[must_use]
    pub const fn is_huge(self) -> bool {
        self.contains(Self::HUGE)
    }

    /// Shorthand: global translation?
    #[must_use]
    pub const fn is_global(self) -> bool {
        self.contains(Self::GLOBAL)
    }

    /// Shorthand: execution forbidden?
    #[must_use]
    pub const fn is_no_execute(self) -> bool {
        self.contains(Self::NO_EXECUTE)
    }

    // --- Common permission profiles -------------------------------------

    /// Present user read-only data page (`r--`).
    #[must_use]
    pub const fn user_ro() -> Self {
        Self(Self::PRESENT.0 | Self::USER.0 | Self::NO_EXECUTE.0)
    }

    /// Present user read+write data page (`rw-`).
    #[must_use]
    pub const fn user_rw() -> Self {
        Self(Self::PRESENT.0 | Self::USER.0 | Self::WRITABLE.0 | Self::NO_EXECUTE.0)
    }

    /// Present user read+execute page (`r-x`).
    #[must_use]
    pub const fn user_rx() -> Self {
        Self(Self::PRESENT.0 | Self::USER.0)
    }

    /// Present kernel read-only page.
    #[must_use]
    pub const fn kernel_ro() -> Self {
        Self(Self::PRESENT.0 | Self::GLOBAL.0 | Self::NO_EXECUTE.0)
    }

    /// Present kernel read+write page.
    #[must_use]
    pub const fn kernel_rw() -> Self {
        Self(Self::PRESENT.0 | Self::GLOBAL.0 | Self::WRITABLE.0 | Self::NO_EXECUTE.0)
    }

    /// Present kernel read+execute page (kernel text).
    #[must_use]
    pub const fn kernel_rx() -> Self {
        Self(Self::PRESENT.0 | Self::GLOBAL.0)
    }

    /// A `PROT_NONE`-style guard page: a VMA exists but the present bit is
    /// clear, exactly how Linux represents `mmap(PROT_NONE)` regions.
    #[must_use]
    pub const fn none_guard() -> Self {
        Self(Self::USER.0)
    }
}

impl BitOr for PteFlags {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl BitOrAssign for PteFlags {
    fn bitor_assign(&mut self, rhs: Self) {
        *self = self.union(rhs);
    }
}

impl BitAnd for PteFlags {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        Self(self.0 & rhs.0)
    }
}

impl BitAndAssign for PteFlags {
    fn bitand_assign(&mut self, rhs: Self) {
        self.0 &= rhs.0;
    }
}

impl Not for PteFlags {
    type Output = Self;
    fn not(self) -> Self {
        Self(!self.0 & Self::all().0)
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut emit = |name: &str, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, " | ")?;
            }
            first = false;
            write!(f, "{name}")
        };
        write!(f, "PteFlags(")?;
        if self.contains(Self::PRESENT) {
            emit("P", f)?;
        }
        if self.contains(Self::WRITABLE) {
            emit("RW", f)?;
        }
        if self.contains(Self::USER) {
            emit("US", f)?;
        }
        if self.contains(Self::WRITE_THROUGH) {
            emit("PWT", f)?;
        }
        if self.contains(Self::CACHE_DISABLE) {
            emit("PCD", f)?;
        }
        if self.contains(Self::ACCESSED) {
            emit("A", f)?;
        }
        if self.contains(Self::DIRTY) {
            emit("D", f)?;
        }
        if self.contains(Self::HUGE) {
            emit("PS", f)?;
        }
        if self.contains(Self::GLOBAL) {
            emit("G", f)?;
        }
        if self.contains(Self::NO_EXECUTE) {
            emit("NX", f)?;
        }
        if first {
            write!(f, "empty")?;
        }
        write!(f, ")")
    }
}

impl fmt::Binary for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_contains() {
        let f = PteFlags::PRESENT | PteFlags::USER;
        assert!(f.contains(PteFlags::PRESENT));
        assert!(f.contains(PteFlags::USER));
        assert!(!f.contains(PteFlags::WRITABLE));
        assert!(f.contains(PteFlags::PRESENT | PteFlags::USER));
        assert!(!f.contains(PteFlags::PRESENT | PteFlags::WRITABLE));
    }

    #[test]
    fn intersects_is_any_not_all() {
        let f = PteFlags::PRESENT | PteFlags::USER;
        assert!(f.intersects(PteFlags::USER | PteFlags::WRITABLE));
        assert!(!f.intersects(PteFlags::WRITABLE | PteFlags::DIRTY));
    }

    #[test]
    fn difference_and_with() {
        let f = PteFlags::user_rw();
        let ro = f.difference(PteFlags::WRITABLE);
        assert_eq!(ro, PteFlags::user_ro());
        assert_eq!(ro.with(PteFlags::WRITABLE, true), PteFlags::user_rw());
        assert_eq!(f.with(PteFlags::WRITABLE, false), PteFlags::user_ro());
    }

    #[test]
    fn from_bits_truncate_drops_unknown() {
        let raw = 0x7 | (1 << 20);
        let f = PteFlags::from_bits_truncate(raw);
        assert_eq!(f.bits(), 0x7);
    }

    #[test]
    fn profile_constructors() {
        assert!(PteFlags::user_rx().is_user());
        assert!(!PteFlags::user_rx().is_no_execute());
        assert!(PteFlags::user_ro().is_no_execute());
        assert!(PteFlags::kernel_rx().is_global());
        assert!(!PteFlags::kernel_rx().is_user());
        assert!(!PteFlags::none_guard().is_present());
    }

    #[test]
    fn not_stays_within_modelled_bits() {
        let inv = !PteFlags::PRESENT;
        assert!(!inv.contains(PteFlags::PRESENT));
        assert!(inv.contains(PteFlags::NO_EXECUTE));
        assert_eq!(inv.bits() & !PteFlags::all().bits(), 0);
    }

    #[test]
    fn debug_render_lists_set_bits() {
        let f = PteFlags::PRESENT | PteFlags::GLOBAL;
        let s = format!("{f:?}");
        assert!(s.contains('P'));
        assert!(s.contains('G'));
        assert_eq!(format!("{:?}", PteFlags::empty()), "PteFlags(empty)");
    }

    #[test]
    fn nx_is_bit_63() {
        assert_eq!(PteFlags::NO_EXECUTE.bits(), 1 << 63);
    }
}
