//! Model-based testing of `AddressSpace`: random operation sequences
//! are applied both to the real page tables and to a flat reference
//! model; every observable must agree after every step.

use std::collections::HashMap;

use proptest::prelude::*;

use avx_mmu::{AddressSpace, MmuError, PageSize, PteFlags, VirtAddr, Walker};

/// One reference entry: what we believe is mapped at a base address.
#[derive(Clone, Copy, Debug, PartialEq)]
struct RefEntry {
    size: PageSize,
    flags: PteFlags,
}

/// The reference model: base address → mapping, no overlap tracking
/// beyond exact bases (the generator only produces aligned, size-homed
/// addresses so overlaps can be checked structurally).
#[derive(Default)]
struct RefModel {
    entries: HashMap<u64, RefEntry>,
}

impl RefModel {
    /// The reference "would this overlap" check: any existing entry
    /// whose span intersects the candidate span.
    fn overlaps(&self, base: u64, size: PageSize) -> bool {
        let end = base + size.bytes();
        self.entries.iter().any(|(&b, e)| {
            let e_end = b + e.size.bytes();
            b < end && base < e_end
        })
    }

    fn lookup(&self, addr: u64) -> Option<(u64, RefEntry)> {
        self.entries
            .iter()
            .find(|(&b, e)| addr >= b && addr < b + e.size.bytes())
            .map(|(&b, &e)| (b, e))
    }
}

/// Operations the generator can issue.
#[derive(Clone, Debug)]
enum Op {
    Map {
        slot: u64,
        size: PageSize,
        user: bool,
        writable: bool,
    },
    Unmap {
        slot: u64,
        size: PageSize,
    },
    Protect {
        slot: u64,
        size: PageSize,
        writable: bool,
    },
    Lookup {
        slot: u64,
        size: PageSize,
    },
}

/// Slots are homed per size class so alignment is always valid, and
/// classes are interleaved within one PML4 region so huge/small
/// conflicts actually occur.
fn addr_of(slot: u64, size: PageSize) -> u64 {
    match size {
        // 4 KiB pages live in the low half of each 1 GiB window.
        PageSize::Size4K => 0x6000_0000_0000 + (slot % 64) * 0x1000,
        // 2 MiB pages overlap the same window.
        PageSize::Size2M => 0x6000_0000_0000 + (slot % 8) * 0x20_0000,
        // 1 GiB pages cover whole windows.
        PageSize::Size1G => 0x6000_0000_0000 + (slot % 2) * 0x4000_0000,
    }
}

fn arb_size() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        4 => Just(PageSize::Size4K),
        2 => Just(PageSize::Size2M),
        1 => Just(PageSize::Size1G),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u64>(), arb_size(), any::<bool>(), any::<bool>()).prop_map(
            |(slot, size, user, writable)| Op::Map {
                slot,
                size,
                user,
                writable
            }
        ),
        (any::<u64>(), arb_size()).prop_map(|(slot, size)| Op::Unmap { slot, size }),
        (any::<u64>(), arb_size(), any::<bool>()).prop_map(|(slot, size, writable)| Op::Protect {
            slot,
            size,
            writable
        }),
        (any::<u64>(), arb_size()).prop_map(|(slot, size)| Op::Lookup { slot, size }),
    ]
}

fn flags_for(user: bool, writable: bool) -> PteFlags {
    let mut f = PteFlags::PRESENT;
    if user {
        f |= PteFlags::USER;
    }
    if writable {
        f |= PteFlags::WRITABLE;
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn address_space_agrees_with_reference_model(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut space = AddressSpace::new();
        let mut model = RefModel::default();
        let walker = Walker::new();

        for op in ops {
            match op {
                Op::Map { slot, size, user, writable } => {
                    let base = addr_of(slot, size);
                    let va = VirtAddr::new_truncate(base);
                    let result = space.map(va, size, flags_for(user, writable));
                    if model.overlaps(base, size) {
                        prop_assert!(
                            matches!(
                                result,
                                Err(MmuError::AlreadyMapped { .. })
                                    | Err(MmuError::HugePageConflict { .. })
                            ),
                            "overlap must be rejected at {base:#x} {size}"
                        );
                    } else {
                        prop_assert!(result.is_ok(), "free slot must map: {result:?}");
                        model.entries.insert(base, RefEntry {
                            size,
                            flags: flags_for(user, writable),
                        });
                    }
                }
                Op::Unmap { slot, size } => {
                    let base = addr_of(slot, size);
                    let va = VirtAddr::new_truncate(base);
                    let result = space.unmap(va, size);
                    match model.entries.get(&base).copied() {
                        Some(e) if e.size == size => {
                            prop_assert!(result.is_ok());
                            model.entries.remove(&base);
                        }
                        Some(e) => {
                            prop_assert_eq!(
                                result,
                                Err(MmuError::SizeMismatch {
                                    addr: base,
                                    found: e.size,
                                    expected: size
                                })
                            );
                        }
                        None => {
                            prop_assert!(result.is_err(), "unmapping nothing must fail");
                        }
                    }
                }
                Op::Protect { slot, size, writable } => {
                    let base = addr_of(slot, size);
                    let va = VirtAddr::new_truncate(base);
                    let new_flags = flags_for(true, writable);
                    let result = space.protect(va, size, new_flags);
                    match model.entries.get_mut(&base) {
                        Some(e) if e.size == size => {
                            prop_assert!(result.is_ok());
                            e.flags = new_flags;
                        }
                        _ => prop_assert!(result.is_err()),
                    }
                }
                Op::Lookup { slot, size } => {
                    // Check agreement at the base and at an interior point.
                    let base = addr_of(slot, size);
                    for probe in [base, base + size.bytes() / 2] {
                        let va = VirtAddr::new_truncate(probe);
                        let walk = walker.walk(&space, va);
                        match model.lookup(probe) {
                            Some((mbase, e)) => {
                                prop_assert!(walk.is_mapped(), "model has {mbase:#x}");
                                let mapping = walk.mapping.unwrap();
                                prop_assert_eq!(mapping.start.as_u64(), mbase);
                                prop_assert_eq!(mapping.size, e.size);
                                prop_assert_eq!(
                                    walk.perms.writable,
                                    e.flags.is_writable()
                                );
                                prop_assert_eq!(walk.perms.user, e.flags.is_user());
                            }
                            None => prop_assert!(
                                !walk.is_mapped(),
                                "model empty at {probe:#x} but walk found a page"
                            ),
                        }
                    }
                }
            }

            // Global invariant: live mapping count agrees.
            prop_assert_eq!(space.mapped_pages(), model.entries.len());
        }

        // Final invariant: region enumeration equals the model exactly.
        let regions = space.iter_regions();
        prop_assert_eq!(regions.len(), model.entries.len());
        for r in regions {
            let e = model.entries.get(&r.start.as_u64()).copied();
            prop_assert!(e.is_some(), "extra region at {}", r.start);
            prop_assert_eq!(e.unwrap().size, r.size);
        }
    }
}
