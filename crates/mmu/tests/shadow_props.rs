//! Property suite pinning the shadow translation index to the reference
//! walker, and the copy-on-write snapshot isolation contract.
//!
//! The shadow index is only allowed to exist because it is observably
//! identical to [`Walker`]: same [`WalkOutcome`] (termination level,
//! access list, access count, PSC resume level, terminal entry, mapping,
//! perms) and same PSC evolution (contents, hit/miss counters), under
//! *any* interleaving of structural mutations, flags-only mutations and
//! probes — including the stale-PSC resumes that arise when the tables
//! mutate without `INVLPG`, exactly as on hardware.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use avx_mmu::{
    AddressSpace, PageSize, PagingStructureCache, PscConfig, PteFlags, ShadowIndex, VirtAddr,
    WalkOutcome, Walker,
};

/// Candidate page bases the mutation driver works over: a mix of user,
/// kernel-text, module-area and wild addresses, various alignments.
const SITES: [u64; 8] = [
    0x5555_5555_4000,      // user 4K
    0x7f00_0000_0000,      // user 4K
    0x6000_0000_0000,      // user, also used at 2M/1G alignment
    0xffff_ffff_8000_0000, // kernel-text region start (2M)
    0xffff_ffff_a1e0_0000, // kernel 2M slot
    0xffff_ffff_c012_3000, // module-area 4K
    0xffff_c000_0000_0000, // 1G-aligned kernel
    0x1234_5678_9000,      // wild hole
];

fn assert_same_outcome(a: &WalkOutcome, b: &WalkOutcome, step: usize) {
    assert_eq!(a.va, b.va, "step {step}");
    assert_eq!(a.terminal_level, b.terminal_level, "step {step}");
    assert_eq!(a.structures_accessed, b.structures_accessed, "step {step}");
    assert_eq!(a.psc_resume_level, b.psc_resume_level, "step {step}");
    assert_eq!(a.entry.raw(), b.entry.raw(), "step {step}");
    assert_eq!(a.mapping, b.mapping, "step {step}");
    assert_eq!(a.perms, b.perms, "step {step}");
    let al: Vec<_> = a.accesses.iter().collect();
    let bl: Vec<_> = b.accesses.iter().collect();
    assert_eq!(al, bl, "step {step}");
}

/// Applies one random mutation or probe step; probes compare the shadow
/// index (rebuilt only on shape-epoch change, like the engine does)
/// against the reference walker on the same evolving PSC pair.
fn drive(seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut space = AddressSpace::new();
    let walker = Walker::new();
    let mut psc_slow = PagingStructureCache::new(PscConfig::default());
    let mut psc_fast = PagingStructureCache::new(PscConfig::default());
    let mut shadow = ShadowIndex::build(&space);
    let mut hint = 0usize;

    for step in 0..steps {
        let site = SITES[rng.gen_range(0..SITES.len())];
        match rng.gen_range(0u32..10) {
            // Structural mutations (shape epoch bumps).
            0 | 1 => {
                let size = match rng.gen_range(0u32..4) {
                    0 => PageSize::Size2M,
                    1 if site.is_multiple_of(1 << 30) => PageSize::Size1G,
                    _ => PageSize::Size4K,
                };
                let flags = match rng.gen_range(0u32..3) {
                    0 => PteFlags::user_rw(),
                    1 => PteFlags::user_ro(),
                    _ => PteFlags::kernel_rx(),
                };
                let va = VirtAddr::new_truncate(site).align_down(size.bytes());
                let _ = space.map(va, size, flags);
            }
            2 => {
                for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
                    let va = VirtAddr::new_truncate(site).align_down(size.bytes());
                    if space.unmap(va, size).is_ok() {
                        break;
                    }
                }
            }
            // Flags-only and Present-flipping mutations.
            3 => {
                let flags = if rng.gen_range(0u32..4) == 0 {
                    PteFlags::none_guard()
                } else {
                    PteFlags::user_ro()
                };
                for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
                    let va = VirtAddr::new_truncate(site).align_down(size.bytes());
                    if space.protect(va, size, flags).is_ok() {
                        break;
                    }
                }
            }
            // A/D-bit churn (must never invalidate the index).
            4 => {
                let va = VirtAddr::new_truncate(site);
                let _ = space.mark_accessed(va, rng.gen_range(0u32..2) == 0);
            }
            5 => {
                let va = VirtAddr::new_truncate(site);
                let _ = space.clear_accessed_dirty(va);
            }
            // INVLPG-style PSC invalidation, applied to both PSCs.
            6 => {
                let va = VirtAddr::new_truncate(site);
                psc_slow.invlpg(va);
                psc_fast.invlpg(va);
            }
            // Probes: walk and compare.
            _ => {
                let offset = rng.gen_range(0u64..0x40_0000);
                let va = VirtAddr::new_truncate(site.wrapping_add(offset));
                if !shadow.is_current(&space) {
                    shadow = ShadowIndex::build(&space);
                }
                let (slow, fast) = if rng.gen_range(0u32..4) == 0 {
                    (
                        walker.walk(&space, va),
                        shadow.walk_hinted(&space, va, None, &mut hint),
                    )
                } else {
                    (
                        walker.walk_with_psc(&space, va, &mut psc_slow),
                        shadow.walk_hinted(&space, va, Some(&mut psc_fast), &mut hint),
                    )
                };
                assert_same_outcome(&fast, &slow, step);
                assert_eq!(psc_fast.len(), psc_slow.len(), "step {step}");
                assert_eq!(psc_fast.hits(), psc_slow.hits(), "step {step}");
                assert_eq!(psc_fast.misses(), psc_slow.misses(), "step {step}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shadow index ≡ reference walker — outcome, access list and PSC
    /// evolution — under randomized map/unmap/protect/A-D/probe
    /// interleavings with hardware-style stale PSC state.
    #[test]
    fn shadow_index_is_bit_exact_with_walker(seed in 0u64..1 << 32) {
        drive(seed, 160);
    }

    /// The point query agrees with the walker's view after arbitrary
    /// mutation histories.
    #[test]
    fn shadow_lookup_agrees_with_walker(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ab);
        let mut space = AddressSpace::new();
        for _ in 0..24 {
            let site = SITES[rng.gen_range(0..SITES.len())];
            let size = if rng.gen_range(0u32..3) == 0 {
                PageSize::Size2M
            } else {
                PageSize::Size4K
            };
            let va = VirtAddr::new_truncate(site).align_down(size.bytes());
            let _ = space.map(va, size, PteFlags::user_rw());
        }
        let shadow = ShadowIndex::build(&space);
        let walker = Walker::new();
        for _ in 0..64 {
            let site = SITES[rng.gen_range(0..SITES.len())];
            let va = VirtAddr::new_truncate(site.wrapping_add(rng.gen_range(0u64..0x20_0000)));
            let walk = walker.walk(&space, va);
            let hit = shadow.lookup(&space, va);
            prop_assert_eq!(hit.terminal_level, walk.terminal_level);
            prop_assert_eq!(hit.mapping, walk.mapping);
            if walk.is_mapped() {
                prop_assert_eq!(hit.perms, walk.perms);
            }
        }
    }

    /// Copy-on-write snapshot isolation: mutating a clone never changes
    /// the parent or a sibling, while unmutated structures stay
    /// physically shared.
    #[test]
    fn cow_snapshots_isolate_clones(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0e0);
        let mut parent = AddressSpace::new();
        for _ in 0..16 {
            let site = SITES[rng.gen_range(0..SITES.len())];
            let _ = parent.map(
                VirtAddr::new_truncate(site),
                PageSize::Size4K,
                PteFlags::user_rw(),
            );
        }
        let parent_regions = parent.iter_regions();

        let mut a = parent.clone();
        let b = parent.clone();
        prop_assert_eq!(a.shared_tables_with(&parent), parent.table_count());

        // Mutate clone A heavily: new mappings, unmaps, A/D churn.
        for _ in 0..32 {
            let site = SITES[rng.gen_range(0..SITES.len())];
            let va = VirtAddr::new_truncate(site.wrapping_add(rng.gen_range(0u64..8) * 0x1000));
            match rng.gen_range(0u32..3) {
                0 => {
                    let _ = a.map(va, PageSize::Size4K, PteFlags::user_rw());
                }
                1 => {
                    let _ = a.unmap(va.align_down(4096), PageSize::Size4K);
                }
                _ => {
                    let _ = a.mark_accessed(va, true);
                }
            }
        }

        // Parent and sibling B are untouched, bit for bit.
        prop_assert_eq!(parent.iter_regions(), parent_regions.clone());
        prop_assert_eq!(b.iter_regions(), parent_regions);
        // The walker agrees: B translates exactly like the parent.
        let walker = Walker::new();
        for &site in &SITES {
            let va = VirtAddr::new_truncate(site);
            let pw = walker.walk(&parent, va);
            let bw = walker.walk(&b, va);
            prop_assert_eq!(pw.mapping, bw.mapping);
            prop_assert_eq!(pw.terminal_level, bw.terminal_level);
        }
    }
}
