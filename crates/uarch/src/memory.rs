//! Sparse simulated physical memory.
//!
//! The side channel never depends on data values, but a library that
//! executes loads and stores should actually move bytes; examples and the
//! Fig. 1 fault-suppression demo read back what they wrote.

use std::collections::HashMap;

use avx_mmu::PhysAddr;

/// Byte-addressable sparse memory; unwritten bytes read as zero.
#[derive(Clone, Debug, Default)]
pub struct SparseMemory {
    bytes: HashMap<u64, u8>,
}

impl SparseMemory {
    /// Creates empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads `buf.len()` bytes starting at `pa`.
    pub fn read(&self, pa: PhysAddr, buf: &mut [u8]) {
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self
                .bytes
                .get(&pa.as_u64().wrapping_add(i as u64))
                .copied()
                .unwrap_or(0);
        }
    }

    /// Writes `data` starting at `pa`.
    pub fn write(&mut self, pa: PhysAddr, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let addr = pa.as_u64().wrapping_add(i as u64);
            if b == 0 {
                self.bytes.remove(&addr);
            } else {
                self.bytes.insert(addr, b);
            }
        }
    }

    /// Number of non-zero bytes stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when entirely zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = SparseMemory::new();
        let mut buf = [0xffu8; 8];
        mem.read(PhysAddr::new(0x1000), &mut buf);
        assert_eq!(buf, [0; 8]);
    }

    #[test]
    fn write_read_round_trip() {
        let mut mem = SparseMemory::new();
        mem.write(PhysAddr::new(0x2000), &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        mem.read(PhysAddr::new(0x2000), &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn zero_writes_reclaim_storage() {
        let mut mem = SparseMemory::new();
        mem.write(PhysAddr::new(0x3000), &[7, 7]);
        assert_eq!(mem.len(), 2);
        mem.write(PhysAddr::new(0x3000), &[0, 0]);
        assert!(mem.is_empty());
    }

    #[test]
    fn partial_overlap() {
        let mut mem = SparseMemory::new();
        mem.write(PhysAddr::new(0x100), &[1, 2, 3, 4]);
        mem.write(PhysAddr::new(0x102), &[9]);
        let mut buf = [0u8; 4];
        mem.read(PhysAddr::new(0x100), &mut buf);
        assert_eq!(buf, [1, 2, 9, 4]);
    }
}
