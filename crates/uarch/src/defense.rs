//! Victim-side ASLR defenses at the translation layer.
//!
//! Two defense mechanisms from the post-paper literature are modelled
//! here, both installed on a [`crate::Machine`] (never on a shared
//! fixture — a defended victim defends its *own* copy-on-write space):
//!
//! * [`AddressMask`] — an Oreo-style masked address space: the
//!   architecturally visible address the attacker issues is decoupled
//!   from the address the page-table walk actually resolves, by an
//!   involutive permutation of the randomization slots. Kernel-side
//!   accesses ([`crate::Machine::touch_as_kernel`]) keep the unmasked
//!   view, so the timing picture the attacker assembles no longer
//!   corresponds to the architectural layout.
//! * [`Rerandomizer`] — live layout re-randomization: the protected
//!   image is periodically re-slid to a fresh random slot *while the
//!   attack is running*, on a probe-count trigger. This is drift in
//!   *layout*, exactly analogous to [`crate::NoiseProfile::Drift`]'s
//!   drift in noise: a probe-indexed trigger instead of a probe-indexed
//!   sigma ramp, turning every scan into a race.
//!
//! Both draw their randomness from their own SplitMix64 streams seeded
//! at install time — never from the machine's measurement RNG — so a
//! defended machine's *noise* stream is bit-identical to an undefended
//! one's, and re-randomization timing is reproducible from the seed.

use avx_mmu::{AddressSpace, PageSize, PhysAddr, PteFlags, VirtAddr};

/// SplitMix64 — the defense layer's self-contained seed expander (the
/// same mixer the campaign/fleet seed chokepoints use, duplicated here
/// because `avx-uarch` sits below `avx-channel` in the crate DAG).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An involutive slot permutation over one randomization region:
/// addresses inside `[start, end)` have their slot index XORed with a
/// fixed secret; addresses outside pass through unchanged (totality —
/// every probe of a masked space still classifies).
///
/// The XOR key is nonzero and the slot count a power of two, so the
/// permutation is a bijection of the region onto itself and its own
/// inverse: `apply(apply(va)) == va`. Intra-slot offsets (including the
/// 4 KiB pages inside a 2 MiB slot) are preserved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressMask {
    start: u64,
    end: u64,
    slot_shift: u32,
    xor_slots: u64,
}

impl AddressMask {
    /// Builds a mask over `[start, end)` with `slot_align`-sized slots,
    /// XOR key drawn from `seed` (never zero — a zero key would be the
    /// identity, i.e. no defense).
    ///
    /// # Panics
    ///
    /// Panics if `slot_align` is not a power of two, the region is not
    /// slot-aligned, or the slot count is not a power of two ≥ 2 (the
    /// XOR must stay inside the region).
    #[must_use]
    pub fn new(start: u64, end: u64, slot_align: u64, seed: u64) -> Self {
        assert!(slot_align.is_power_of_two(), "slot align must be 2^k");
        assert!(end > start, "empty mask region");
        let span = end - start;
        assert_eq!(span % slot_align, 0, "region must be slot-aligned");
        let slots = span / slot_align;
        assert!(
            slots.is_power_of_two() && slots >= 2,
            "slot count must be a power of two >= 2 for an in-region XOR"
        );
        let xor_slots = 1 + splitmix64(seed) % (slots - 1);
        Self {
            start,
            end,
            slot_shift: slot_align.trailing_zeros(),
            xor_slots,
        }
    }

    /// The XOR key in slots (test visibility).
    #[must_use]
    pub fn xor_slots(&self) -> u64 {
        self.xor_slots
    }

    /// Whether `va` falls inside the masked region.
    #[must_use]
    pub fn covers(&self, va: VirtAddr) -> bool {
        let raw = va.as_u64();
        raw >= self.start && raw < self.end
    }

    /// The masked view of `va`: slot-XOR inside the region, identity
    /// outside. Total — never panics, for any address.
    #[must_use]
    pub fn apply(&self, va: VirtAddr) -> VirtAddr {
        if !self.covers(va) {
            return va;
        }
        let off = va.as_u64() - self.start;
        let masked = off ^ (self.xor_slots << self.slot_shift);
        VirtAddr::new_truncate(self.start + masked)
    }
}

/// One captured page of the protected image: offset from the image
/// base plus everything needed to re-map it elsewhere.
#[derive(Clone, Copy, Debug)]
struct CapturedPage {
    offset: u64,
    size: PageSize,
    flags: PteFlags,
    phys: PhysAddr,
}

/// Live re-randomization of one region's image: every `period` executed
/// ops, the captured pages are unmapped and re-mapped at a fresh random
/// slot inside the region (same physical frames — the "copy" is free in
/// the model), and the machine performs the TLB shootdown an OS would.
///
/// All mutation goes through [`AddressSpace::unmap`] / `map_at`, i.e.
/// through `write_entry`, so a re-randomization event bumps the space's
/// `shape_epoch` like any other mutation and the shadow translation
/// index rebuilds itself lazily on the next walk.
#[derive(Clone, Debug)]
pub struct Rerandomizer {
    region_start: u64,
    region_end: u64,
    slot_align: u64,
    period: u64,
    seed: u64,
    layout: Vec<CapturedPage>,
    image_base: u64,
    image_span: u64,
    ops_seen: u64,
    generation: u64,
}

impl Rerandomizer {
    /// Captures the image currently mapped inside `[start, end)` of
    /// `space`. Returns `None` when the region holds no pages (nothing
    /// to re-randomize — e.g. a KPTI kernel's hidden image).
    ///
    /// # Panics
    ///
    /// Panics if `slot_align` is not a power of two or `period` is zero.
    #[must_use]
    pub fn capture(
        space: &AddressSpace,
        start: u64,
        end: u64,
        slot_align: u64,
        period: u64,
        seed: u64,
    ) -> Option<Self> {
        assert!(slot_align.is_power_of_two(), "slot align must be 2^k");
        assert!(period > 0, "re-randomization period must be positive");
        let pages: Vec<_> = space
            .iter_regions()
            .into_iter()
            .filter(|r| r.start.as_u64() >= start && r.start.as_u64() < end)
            .collect();
        let image_base = pages.iter().map(|r| r.start.as_u64()).min()?;
        let image_end = pages
            .iter()
            .map(|r| r.start.as_u64() + r.size.bytes())
            .max()?;
        let image_span = (image_end - image_base).div_ceil(slot_align) * slot_align;
        let layout = pages
            .iter()
            .map(|r| CapturedPage {
                offset: r.start.as_u64() - image_base,
                size: r.size,
                flags: r.flags,
                phys: r.phys,
            })
            .collect();
        Some(Self {
            region_start: start,
            region_end: end,
            slot_align,
            period,
            seed,
            layout,
            image_base,
            image_span,
            ops_seen: 0,
            generation: 0,
        })
    }

    /// Current base of the protected image (moves on every firing).
    #[must_use]
    pub fn image_base(&self) -> u64 {
        self.image_base
    }

    /// Completed re-randomization events.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Probe-count trigger period.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Counts one executed op; when the trigger fires, re-slides the
    /// image inside `space` and returns `true` (the caller performs the
    /// TLB shootdown). Deterministic in (`seed`, firing index); draws
    /// nothing from any shared RNG.
    pub fn tick(&mut self, space: &mut AddressSpace) -> bool {
        self.ops_seen += 1;
        if !self.ops_seen.is_multiple_of(self.period) {
            return false;
        }
        let slots = (self.region_end - self.region_start - self.image_span) / self.slot_align;
        let draw = splitmix64(self.seed ^ splitmix64(self.generation.wrapping_add(1)));
        let new_base = self.region_start + (draw % (slots + 1)) * self.slot_align;
        self.generation += 1;
        if new_base == self.image_base {
            // Same slot drawn: the event still happened (epoch bump +
            // shootdown), the slide just happens to be identity.
            return true;
        }
        for page in &self.layout {
            let va = VirtAddr::new_truncate(self.image_base + page.offset);
            space.unmap(va, page.size).expect("captured page mapped");
        }
        for page in &self.layout {
            let va = VirtAddr::new_truncate(new_base + page.offset);
            space
                .map_at(va, page.phys, page.size, page.flags)
                .expect("target slot free");
        }
        self.image_base = new_base;
        true
    }
}

/// The defenses installed on one victim machine. Absent (`None` on the
/// machine) means the bit-exact undefended path — the container itself
/// is only constructed when at least one mechanism is active.
#[derive(Clone, Debug, Default)]
pub struct VictimDefense {
    /// Masked-translation layers, one per protected region (regions
    /// must be disjoint; the first covering mask wins).
    pub masks: Vec<AddressMask>,
    /// Live re-randomizers, one per protected image.
    pub rerandomizers: Vec<Rerandomizer>,
    /// Completed re-randomization events across all images.
    pub rerandomizations: u64,
}

impl VictimDefense {
    /// A defense with no mechanisms (useful as a builder base).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a masked-translation layer.
    #[must_use]
    pub fn with_mask(mut self, mask: AddressMask) -> Self {
        self.masks.push(mask);
        self
    }

    /// Adds a live re-randomizer.
    #[must_use]
    pub fn with_rerandomizer(mut self, r: Rerandomizer) -> Self {
        self.rerandomizers.push(r);
        self
    }

    /// Whether any mechanism is active (an empty container is a no-op
    /// and need not be installed at all).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.masks.is_empty() || !self.rerandomizers.is_empty()
    }

    /// The masked view of `va` under the first covering mask (identity
    /// when none covers it).
    #[must_use]
    pub fn masked(&self, va: VirtAddr) -> VirtAddr {
        for mask in &self.masks {
            if mask.covers(va) {
                return mask.apply(va);
            }
        }
        va
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REGION_START: u64 = 0xffff_ffff_8000_0000;
    const REGION_END: u64 = 0xffff_ffff_c000_0000;
    const ALIGN: u64 = 0x20_0000;

    fn mask() -> AddressMask {
        AddressMask::new(REGION_START, REGION_END, ALIGN, 7)
    }

    #[test]
    fn mask_is_an_involution_over_the_region() {
        let m = mask();
        for slot in [0u64, 1, 7, 255, 511] {
            for intra in [0u64, 0x1000, 0x1f_f000] {
                let va = VirtAddr::new_truncate(REGION_START + slot * ALIGN + intra);
                let masked = m.apply(va);
                assert!(m.covers(masked), "mask stays in-region");
                assert_eq!(m.apply(masked), va, "involution");
                assert_eq!(
                    masked.as_u64() & (ALIGN - 1),
                    intra,
                    "intra-slot offset preserved"
                );
            }
        }
    }

    #[test]
    fn mask_is_identity_outside_the_region() {
        let m = mask();
        for raw in [0u64, 0x5555_5555_4000, REGION_START - 0x1000, REGION_END] {
            let va = VirtAddr::new_truncate(raw);
            assert_eq!(m.apply(va), va);
        }
    }

    #[test]
    fn mask_key_is_never_zero_and_seed_dependent() {
        for seed in 0..64u64 {
            let m = AddressMask::new(REGION_START, REGION_END, ALIGN, seed);
            assert!(m.xor_slots() > 0 && m.xor_slots() < 512);
        }
        let a = AddressMask::new(REGION_START, REGION_END, ALIGN, 1);
        let b = AddressMask::new(REGION_START, REGION_END, ALIGN, 2);
        assert_ne!(a.xor_slots(), b.xor_slots());
    }

    #[test]
    fn mask_is_a_bijection_of_the_slots() {
        let m = mask();
        let mut seen = std::collections::HashSet::new();
        for slot in 0..512u64 {
            let va = VirtAddr::new_truncate(REGION_START + slot * ALIGN);
            assert!(seen.insert(m.apply(va).as_u64()), "no collisions");
        }
        assert_eq!(seen.len(), 512);
    }

    fn image_space(base_slot: u64, slots: u64) -> AddressSpace {
        let mut space = AddressSpace::new();
        for s in 0..slots {
            space
                .map(
                    VirtAddr::new_truncate(REGION_START + (base_slot + s) * ALIGN),
                    PageSize::Size2M,
                    PteFlags::kernel_rx(),
                )
                .unwrap();
        }
        space
    }

    #[test]
    fn rerandomizer_moves_the_image_and_bumps_epochs() {
        let mut space = image_space(8, 4);
        let shape_before = space.shape_epoch();
        let mut r = Rerandomizer::capture(&space, REGION_START, REGION_END, ALIGN, 3, 42).unwrap();
        assert_eq!(r.image_base(), REGION_START + 8 * ALIGN);

        assert!(!r.tick(&mut space));
        assert!(!r.tick(&mut space));
        assert!(r.tick(&mut space), "fires on the period boundary");
        assert_eq!(r.generation(), 1);
        assert!(space.shape_epoch() > shape_before, "mutation bumps epoch");
        // The image is whole at its new base, gone from the old one.
        let new_base = r.image_base();
        for s in 0..4u64 {
            assert!(space
                .lookup(VirtAddr::new_truncate(new_base + s * ALIGN))
                .is_some());
        }
        if new_base != REGION_START + 8 * ALIGN {
            assert!(space
                .lookup(VirtAddr::new_truncate(REGION_START + 8 * ALIGN))
                .is_none());
        }
        assert_eq!(space.mapped_pages(), 4, "page count conserved");
    }

    #[test]
    fn rerandomizer_preserves_physical_frames() {
        let mut space = image_space(0, 2);
        let phys0 = space
            .lookup(VirtAddr::new_truncate(REGION_START))
            .unwrap()
            .phys;
        let mut r = Rerandomizer::capture(&space, REGION_START, REGION_END, ALIGN, 1, 9).unwrap();
        for _ in 0..8 {
            assert!(r.tick(&mut space));
        }
        let now = space
            .lookup(VirtAddr::new_truncate(r.image_base()))
            .unwrap()
            .phys;
        assert_eq!(now, phys0, "re-randomization moves, never reallocates");
    }

    #[test]
    fn rerandomizer_is_deterministic_in_seed_and_schedule() {
        let trajectory = |seed: u64| {
            let mut space = image_space(100, 20);
            let mut r =
                Rerandomizer::capture(&space, REGION_START, REGION_END, ALIGN, 2, seed).unwrap();
            let mut bases = Vec::new();
            for _ in 0..20 {
                if r.tick(&mut space) {
                    bases.push(r.image_base());
                }
            }
            bases
        };
        assert_eq!(trajectory(5), trajectory(5), "same seed, same walk");
        assert_ne!(trajectory(5), trajectory(6), "different seed diverges");
        assert_eq!(trajectory(5).len(), 10, "every period boundary fires");
    }

    #[test]
    fn rerandomizer_capture_of_empty_region_is_none() {
        let space = AddressSpace::new();
        assert!(Rerandomizer::capture(&space, REGION_START, REGION_END, ALIGN, 4, 0).is_none());
    }

    #[test]
    fn victim_defense_routing() {
        let d = VictimDefense::new();
        assert!(!d.is_active());
        let va = VirtAddr::new_truncate(REGION_START + 3 * ALIGN);
        assert_eq!(d.masked(va), va, "no mask: identity");
        let d = d.with_mask(mask());
        assert!(d.is_active());
        assert_ne!(d.masked(va), va, "mask engaged in-region");
        assert_eq!(
            d.masked(VirtAddr::new_truncate(0x1000)),
            VirtAddr::new_truncate(0x1000),
            "out-of-region identity"
        );
    }
}
