//! A small cache of paging-structure *lines*.
//!
//! Page-table entries are ordinary memory: after a walk touches a PTE,
//! the 64-byte line holding it (8 entries) stays in the data caches, so
//! the next walk over the same line is much cheaper. The engine uses
//! this to decide between [`warm`](crate::TimingParams::walk_step_warm)
//! and [`cold`](crate::TimingParams::walk_step_cold) step costs — the
//! difference behind the paper's P4 experiment (381 vs 147 cycles) and
//! the Fig. 6 idle level.
//!
//! The cache sits on the probe hot path (every walk step touches it), so
//! it is implemented as a true O(1) LRU: a dense direct index over the
//! (frame, line) key space plus an intrusive recency list. Replacement
//! behaviour is identical to the reference linear-scan/min-stamp LRU —
//! stamps were strictly increasing, so the minimum-stamp victim *is* the
//! least-recently-touched entry, i.e. the tail of the recency list.

use avx_mmu::FrameId;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct LruNode {
    key: u64,
    prev: u32,
    next: u32,
}

/// LRU cache keyed by (paging-structure frame, 64-byte line index).
#[derive(Clone, Debug)]
pub struct PteLineCache {
    capacity: usize,
    /// Node arena; at most `capacity` nodes are ever allocated.
    nodes: Vec<LruNode>,
    /// Most-recently-touched node.
    head: u32,
    /// Least-recently-touched node (the eviction victim).
    tail: u32,
    /// Dense key → node-index+1 map (0 = absent). Keys combine a table
    /// arena index with a 6-bit line index, so the space is small and
    /// grows only when new paging structures are allocated.
    index: Vec<u32>,
}

impl PteLineCache {
    /// Default capacity: 256 lines ≈ 16 KiB of PTE data resident.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates a cache holding up to `capacity` lines.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            nodes: Vec::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            index: Vec::new(),
        }
    }

    fn key(table: FrameId, entry_index: usize) -> u64 {
        ((table.index() as u64) << 6) | (entry_index as u64 >> 3)
    }

    fn slot(&mut self, key: u64) -> &mut u32 {
        let key = key as usize;
        if key >= self.index.len() {
            self.index.resize(key + 1, 0);
        }
        &mut self.index[key]
    }

    fn unlink(&mut self, node: u32) {
        let LruNode { prev, next, .. } = self.nodes[node as usize];
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, node: u32) {
        self.nodes[node as usize].prev = NIL;
        self.nodes[node as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = node;
        }
        self.head = node;
        if self.tail == NIL {
            self.tail = node;
        }
    }

    /// Records an access to `entry_index` of `table`; returns `true` if
    /// the line was already cached (a *warm* access).
    pub fn touch(&mut self, table: FrameId, entry_index: usize) -> bool {
        if self.capacity == 0 {
            // A disabled cache caches nothing: every access is cold
            // (the reference min-stamp implementation degraded the same
            // way).
            return false;
        }
        let key = Self::key(table, entry_index);
        let mapped = *self.slot(key);
        if mapped != 0 {
            let node = mapped - 1;
            if self.head != node {
                self.unlink(node);
                self.push_front(node);
            }
            return true;
        }
        let node = if self.nodes.len() < self.capacity {
            self.nodes.push(LruNode {
                key,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        } else {
            // Evict the least-recently-touched line and reuse its node.
            let victim = self.tail;
            let old_key = self.nodes[victim as usize].key;
            self.unlink(victim);
            *self.slot(old_key) = 0;
            self.nodes[victim as usize].key = key;
            victim
        };
        self.push_front(node);
        *self.slot(key) = node + 1;
        false
    }

    /// Checks warmth without updating recency (diagnostics).
    #[must_use]
    pub fn contains(&self, table: FrameId, entry_index: usize) -> bool {
        let key = Self::key(table, entry_index) as usize;
        self.index.get(key).is_some_and(|&m| m != 0)
    }

    /// Drops everything (models cache thrashing by an eviction loop).
    pub fn flush(&mut self) {
        for i in 0..self.nodes.len() {
            let key = self.nodes[i].key as usize;
            self.index[key] = 0;
        }
        self.nodes.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Number of cached lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl Default for PteLineCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_cold_second_is_warm() {
        let mut c = PteLineCache::default();
        assert!(!c.touch(FrameId::new(1), 100));
        assert!(c.touch(FrameId::new(1), 100));
    }

    #[test]
    fn entries_on_same_line_share_warmth() {
        let mut c = PteLineCache::default();
        // Entries 96..103 share one 64-byte line (index >> 3 == 12).
        assert!(!c.touch(FrameId::new(1), 96));
        assert!(c.touch(FrameId::new(1), 103));
        // Entry 104 is the next line.
        assert!(!c.touch(FrameId::new(1), 104));
    }

    #[test]
    fn different_tables_do_not_alias() {
        let mut c = PteLineCache::default();
        c.touch(FrameId::new(1), 0);
        assert!(!c.touch(FrameId::new(2), 0));
    }

    #[test]
    fn lru_eviction() {
        let mut c = PteLineCache::new(2);
        c.touch(FrameId::new(1), 0);
        c.touch(FrameId::new(2), 0);
        // Refresh frame 1, then insert a third line: frame 2 is evicted.
        c.touch(FrameId::new(1), 0);
        c.touch(FrameId::new(3), 0);
        assert!(c.contains(FrameId::new(1), 0));
        assert!(!c.contains(FrameId::new(2), 0));
        assert!(c.contains(FrameId::new(3), 0));
    }

    #[test]
    fn zero_capacity_cache_is_always_cold() {
        let mut c = PteLineCache::new(0);
        assert!(!c.touch(FrameId::new(1), 0));
        assert!(!c.touch(FrameId::new(1), 0), "nothing is ever cached");
        assert!(c.is_empty());
    }

    #[test]
    fn flush_empties() {
        let mut c = PteLineCache::default();
        c.touch(FrameId::new(1), 0);
        assert!(!c.is_empty());
        c.flush();
        assert!(c.is_empty());
        assert!(!c.touch(FrameId::new(1), 0), "cold again after flush");
    }

    #[test]
    fn eviction_order_matches_reference_lru_under_churn() {
        // Cross-check against a straightforward stamp-based LRU (the
        // previous implementation) over a deterministic churn pattern.
        struct Reference {
            capacity: usize,
            slots: Vec<(u64, u64)>,
            clock: u64,
        }
        impl Reference {
            fn touch(&mut self, key: u64) -> bool {
                self.clock += 1;
                if let Some(slot) = self.slots.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = self.clock;
                    return true;
                }
                if self.slots.len() < self.capacity {
                    self.slots.push((key, self.clock));
                } else if let Some(victim) = self.slots.iter_mut().min_by_key(|(_, s)| *s) {
                    *victim = (key, self.clock);
                }
                false
            }
        }
        let mut fast = PteLineCache::new(8);
        let mut reference = Reference {
            capacity: 8,
            slots: Vec::new(),
            clock: 0,
        };
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..4096 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let table = FrameId::new(((state >> 33) % 5) as u32);
            let entry = ((state >> 13) % 512) as usize;
            let key = ((table.index() as u64) << 6) | (entry as u64 >> 3);
            assert_eq!(fast.touch(table, entry), reference.touch(key));
        }
    }
}
