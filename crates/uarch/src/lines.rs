//! A small cache of paging-structure *lines*.
//!
//! Page-table entries are ordinary memory: after a walk touches a PTE,
//! the 64-byte line holding it (8 entries) stays in the data caches, so
//! the next walk over the same line is much cheaper. The engine uses
//! this to decide between [`warm`](crate::TimingParams::walk_step_warm)
//! and [`cold`](crate::TimingParams::walk_step_cold) step costs — the
//! difference behind the paper's P4 experiment (381 vs 147 cycles) and
//! the Fig. 6 idle level.

use avx_mmu::FrameId;

/// LRU cache keyed by (paging-structure frame, 64-byte line index).
#[derive(Clone, Debug)]
pub struct PteLineCache {
    capacity: usize,
    /// (key, stamp); linear scan — capacity is small and probes are the
    /// hot path, so locality beats hashing here.
    slots: Vec<(u64, u64)>,
    clock: u64,
}

impl PteLineCache {
    /// Default capacity: 256 lines ≈ 16 KiB of PTE data resident.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates a cache holding up to `capacity` lines.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slots: Vec::with_capacity(capacity.min(1024)),
            clock: 0,
        }
    }

    fn key(table: FrameId, entry_index: usize) -> u64 {
        ((table.index() as u64) << 6) | (entry_index as u64 >> 3)
    }

    /// Records an access to `entry_index` of `table`; returns `true` if
    /// the line was already cached (a *warm* access).
    pub fn touch(&mut self, table: FrameId, entry_index: usize) -> bool {
        self.clock += 1;
        let key = Self::key(table, entry_index);
        if let Some(slot) = self.slots.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = self.clock;
            return true;
        }
        if self.slots.len() < self.capacity {
            self.slots.push((key, self.clock));
        } else if let Some(victim) = self.slots.iter_mut().min_by_key(|(_, s)| *s) {
            *victim = (key, self.clock);
        }
        false
    }

    /// Checks warmth without updating recency (diagnostics).
    #[must_use]
    pub fn contains(&self, table: FrameId, entry_index: usize) -> bool {
        let key = Self::key(table, entry_index);
        self.slots.iter().any(|(k, _)| *k == key)
    }

    /// Drops everything (models cache thrashing by an eviction loop).
    pub fn flush(&mut self) {
        self.slots.clear();
    }

    /// Number of cached lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl Default for PteLineCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_cold_second_is_warm() {
        let mut c = PteLineCache::default();
        assert!(!c.touch(FrameId::new(1), 100));
        assert!(c.touch(FrameId::new(1), 100));
    }

    #[test]
    fn entries_on_same_line_share_warmth() {
        let mut c = PteLineCache::default();
        // Entries 96..103 share one 64-byte line (index >> 3 == 12).
        assert!(!c.touch(FrameId::new(1), 96));
        assert!(c.touch(FrameId::new(1), 103));
        // Entry 104 is the next line.
        assert!(!c.touch(FrameId::new(1), 104));
    }

    #[test]
    fn different_tables_do_not_alias() {
        let mut c = PteLineCache::default();
        c.touch(FrameId::new(1), 0);
        assert!(!c.touch(FrameId::new(2), 0));
    }

    #[test]
    fn lru_eviction() {
        let mut c = PteLineCache::new(2);
        c.touch(FrameId::new(1), 0);
        c.touch(FrameId::new(2), 0);
        // Refresh frame 1, then insert a third line: frame 2 is evicted.
        c.touch(FrameId::new(1), 0);
        c.touch(FrameId::new(3), 0);
        assert!(c.contains(FrameId::new(1), 0));
        assert!(!c.contains(FrameId::new(2), 0));
        assert!(c.contains(FrameId::new(3), 0));
    }

    #[test]
    fn flush_empties() {
        let mut c = PteLineCache::default();
        c.touch(FrameId::new(1), 0);
        assert!(!c.is_empty());
        c.flush();
        assert!(c.is_empty());
        assert!(!c.touch(FrameId::new(1), 0), "cold again after flush");
    }
}
