//! Measurement-noise model.
//!
//! Real `rdtsc`-based timing of a single instruction carries two noise
//! components: small Gaussian jitter (pipeline state, clock domain
//! crossings) and rare large positive spikes (interrupts, SMIs,
//! frequency transitions). Both matter for reproducing the paper's
//! *accuracy* numbers: without spikes the simulated attacks would be a
//! flat 100 % instead of the reported 99.3–99.8 %.

use rand::Rng;

/// Gaussian + spike noise generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the Gaussian jitter (cycles).
    pub sigma: f64,
    /// Per-sample probability of an interrupt-style spike.
    pub spike_prob: f64,
    /// Uniform spike magnitude range (cycles).
    pub spike_range: (f64, f64),
}

impl NoiseModel {
    /// Creates a noise model.
    #[must_use]
    pub fn new(sigma: f64, spike_prob: f64, spike_range: (f64, f64)) -> Self {
        Self {
            sigma,
            spike_prob,
            spike_range,
        }
    }

    /// A noiseless model, for deterministic tests.
    #[must_use]
    pub fn none() -> Self {
        Self {
            sigma: 0.0,
            spike_prob: 0.0,
            spike_range: (0.0, 0.0),
        }
    }

    /// Draws one noise sample (may be negative; spikes are positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut noise = if self.sigma > 0.0 {
            gaussian(rng) * self.sigma
        } else {
            0.0
        };
        if self.spike_prob > 0.0 && rng.gen::<f64>() < self.spike_prob {
            let (lo, hi) = self.spike_range;
            noise += if hi > lo { rng.gen_range(lo..hi) } else { lo };
        }
        noise
    }

    /// Applies noise to a deterministic cycle cost, clamping at 1 cycle.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, cycles: f64) -> u64 {
        let noisy = cycles + self.sample(rng);
        noisy.round().max(1.0) as u64
    }
}

/// One standard-normal sample via the Box–Muller transform.
///
/// `rand` is in the dependency set, `rand_distr` deliberately is not; a
/// two-line Box–Muller keeps the footprint minimal.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = NoiseModel::none();
        for _ in 0..100 {
            assert_eq!(m.perturb(&mut rng, 93.0), 93);
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = NoiseModel::new(2.0, 0.0, (0.0, 0.0));
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn spikes_appear_at_expected_rate_and_are_positive() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = NoiseModel::new(0.0, 0.05, (500.0, 1000.0));
        let n = 40_000;
        let spikes = (0..n)
            .map(|_| m.sample(&mut rng))
            .filter(|&x| x > 0.0)
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn spike_magnitude_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = NoiseModel::new(0.0, 1.0, (500.0, 1000.0));
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!((500.0..1000.0).contains(&s), "spike {s}");
        }
    }

    #[test]
    fn perturb_never_returns_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let m = NoiseModel::new(50.0, 0.0, (0.0, 0.0));
        for _ in 0..1000 {
            assert!(m.perturb(&mut rng, 1.0) >= 1);
        }
    }

    #[test]
    fn degenerate_spike_range_uses_lower_bound() {
        let mut rng = StdRng::seed_from_u64(19);
        let m = NoiseModel::new(0.0, 1.0, (250.0, 250.0));
        assert_eq!(m.sample(&mut rng), 250.0);
    }
}
