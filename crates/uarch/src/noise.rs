//! Measurement-noise model and the named noise-scenario presets.
//!
//! Real `rdtsc`-based timing of a single instruction carries two noise
//! components: small Gaussian jitter (pipeline state, clock domain
//! crossings) and rare large positive spikes (interrupts, SMIs,
//! frequency transitions). Both matter for reproducing the paper's
//! *accuracy* numbers: without spikes the simulated attacks would be a
//! flat 100 % instead of the reported 99.3–99.8 %.
//!
//! [`NoiseProfile`] promotes the raw [`NoiseModel`] parameters into a
//! small set of *named environments* — quiet host, SMT-contended
//! sibling, frequency-scaling laptop, noisy-neighbor cloud — so that
//! campaigns can treat "how noisy is the machine" as a first-class
//! scenario axis (NetSpectre showed the required probe budget moves by
//! orders of magnitude with exactly this axis).
//!
//! ```
//! use avx_uarch::{CpuProfile, NoiseProfile};
//!
//! let timing = CpuProfile::alder_lake_i5_12400f().timing;
//! let laptop = NoiseProfile::parse("laptop").unwrap();
//! // The preset is a fixed multiplier over the profile's baseline σ...
//! assert_eq!(laptop.effective_sigma(&timing), timing.noise_sigma * 6.0);
//! // ...and induces a concrete generator for the machine to sample.
//! let model = laptop.model_for(&timing);
//! assert_eq!(model.sigma, laptop.effective_sigma(&timing));
//! ```

use core::fmt;

use rand::Rng;

use crate::profile::TimingParams;

/// Gaussian + spike noise generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the Gaussian jitter (cycles).
    pub sigma: f64,
    /// Per-sample probability of an interrupt-style spike.
    pub spike_prob: f64,
    /// Uniform spike magnitude range (cycles).
    pub spike_range: (f64, f64),
}

impl NoiseModel {
    /// Creates a noise model.
    #[must_use]
    pub fn new(sigma: f64, spike_prob: f64, spike_range: (f64, f64)) -> Self {
        Self {
            sigma,
            spike_prob,
            spike_range,
        }
    }

    /// A noiseless model, for deterministic tests.
    #[must_use]
    pub fn none() -> Self {
        Self {
            sigma: 0.0,
            spike_prob: 0.0,
            spike_range: (0.0, 0.0),
        }
    }

    /// Draws one noise sample (may be negative; spikes are positive).
    ///
    /// This is the **v1 observables** path: the exact historical draw
    /// sequence (Box–Muller Gaussian, then an `f64` spike-decision
    /// uniform, then the spike magnitude), pinned bit-for-bit by the
    /// golden suites. The v2 path ([`NoiseModel::sample_v2`]) produces
    /// the same distribution from a different, cheaper stream.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut noise = if self.sigma > 0.0 {
            gaussian(rng) * self.sigma
        } else {
            0.0
        };
        if self.spike_prob > 0.0 && rng.gen::<f64>() < self.spike_prob {
            noise += self.spike_magnitude(rng);
        }
        noise
    }

    /// Applies noise to a deterministic cycle cost, clamping at 1 cycle.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, cycles: f64) -> u64 {
        let noisy = cycles + self.sample(rng);
        noisy.round().max(1.0) as u64
    }

    /// Draws the magnitude of one spike — the single source of truth
    /// shared by the v1 per-sample path and the v2 block path (only the
    /// spike *decision* differs between regimes; the magnitude draw is
    /// identical, which `noise_props.rs` pins by property test).
    fn spike_magnitude<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (lo, hi) = self.spike_range;
        if hi > lo {
            rng.gen_range(lo..hi)
        } else {
            lo
        }
    }

    /// The v2 spike-decision threshold: `spike_prob` mapped onto the
    /// full `u64` range so the per-sample decision is one integer
    /// compare against a raw RNG word instead of an `f64` conversion.
    /// Kept in `u128` so `spike_prob >= 1.0` saturates to *always*
    /// rather than losing the top probability ulp.
    fn spike_threshold(&self) -> u128 {
        if self.spike_prob <= 0.0 {
            0
        } else {
            (self.spike_prob * 18_446_744_073_709_551_616.0) as u128
        }
    }

    /// Draws one noise sample under the **v2 observables** regime: a
    /// ziggurat Gaussian (single RNG word in the common case) and a
    /// fixed-point spike decision. Distribution-equivalent to
    /// [`NoiseModel::sample`]; bit-identical only to itself.
    pub fn sample_v2<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_v2_with(crate::ziggurat::tables(), self.spike_threshold(), rng)
    }

    /// The shared v2 draw: `tables` and `threshold` are hoisted by the
    /// block path so the per-sample work is the draw alone.
    #[inline]
    fn sample_v2_with<R: Rng + ?Sized>(
        &self,
        tables: &crate::ziggurat::Tables,
        threshold: u128,
        rng: &mut R,
    ) -> f64 {
        let mut noise = if self.sigma > 0.0 {
            tables.sample(rng) * self.sigma
        } else {
            0.0
        };
        if threshold != 0 && u128::from(rng.next_u64()) < threshold {
            noise += self.spike_magnitude(rng);
        }
        noise
    }

    /// Fills `out` with consecutive v2 noise samples — the per-tile
    /// noise block of the batched probe path. The samples are drawn in
    /// order, so the RNG stream is identical to `out.len()` scalar
    /// [`NoiseModel::sample_v2`] calls (the scalar/batch bit-equality
    /// the engine property tests assert); the ziggurat tables and the
    /// spike threshold are resolved once per block.
    pub fn fill_block<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        let tables = crate::ziggurat::tables();
        let threshold = self.spike_threshold();
        for slot in out.iter_mut() {
            *slot = self.sample_v2_with(tables, threshold, rng);
        }
    }
}

/// One standard-normal sample via the Box–Muller transform — the v1
/// observables Gaussian.
///
/// `rand` is in the dependency set, `rand_distr` deliberately is not; a
/// two-line Box–Muller keeps the footprint minimal.
///
/// Interval conventions, pinned here because the v1 golden suites
/// depend on the exact draw sequence:
///
/// * `u1` is drawn from the **open-at-zero** interval
///   `[f64::MIN_POSITIVE, 1.0)` — `ln(0)` must never be reached, so the
///   radius term is always finite.
/// * `u2` is drawn from the standard **half-open** `[0, 1)` uniform.
///   `cos(TAU·u2)` is total and periodic, so the closed-at-zero
///   endpoint is harmless (`u2 = 0` gives `cos(0) = 1`, a valid angle);
///   widening it to an open interval would change the bit-exact v1
///   stream for no numerical benefit, which the v1 bit-exactness pin in
///   `noise_props.rs` forbids. The v2 regime does not use this
///   function at all (see [`crate::ziggurat`]).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// A named noise environment: fixed multipliers applied on top of a CPU
/// profile's baseline [`TimingParams`] noise anchors.
///
/// The four *static* presets are *pinned distributions*, not free-form
/// config blobs: each maps a profile's `(noise_sigma, spike_prob,
/// spike_range)` to a concrete [`NoiseModel`] through constant factors,
/// and the unit tests assert the resulting moments, so a preset cannot
/// silently drift.
///
/// | preset | σ factor | spike-rate factor | spike-magnitude factor |
/// |---|---|---|---|
/// | [`NoiseProfile::Quiet`] | 1 | 1 | 1 |
/// | [`NoiseProfile::SmtSibling`] | 3 | 6 | 0.5 |
/// | [`NoiseProfile::LaptopDvfs`] | 6 | 3 | 2 |
/// | [`NoiseProfile::NoisyNeighbor`] | 4 | 12 | 1.5 |
///
/// [`NoiseProfile::Drift`] is the non-stationary exception: the
/// environment *ramps* from one static preset to another mid-scan
/// (probe-indexed, see [`DriftRamp`]) — the DVFS-transition /
/// co-tenant-arrival scenario in which a one-shot calibration silently
/// goes stale.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum NoiseProfile {
    /// A quiescent host — the paper's measurement setup. Baseline
    /// profile noise, unscaled.
    #[default]
    Quiet,
    /// An SMT sibling hammering the shared core: persistent extra
    /// pipeline jitter and frequent small preemption spikes.
    SmtSibling,
    /// A frequency-scaling laptop: DVFS transitions smear the cycle
    /// scale (wide Gaussian) and add long transition stalls.
    LaptopDvfs,
    /// A noisy-neighbor cloud tenant: scheduler steal time makes
    /// interrupt-style spikes an order of magnitude more frequent.
    NoisyNeighbor,
    /// A mid-scan environment ramp between two static presets (e.g.
    /// quiet → laptop when DVFS kicks in). Built via
    /// [`NoiseProfile::drift`]; the victim machine interpolates the two
    /// induced models over the ramp's probe-index span.
    Drift(DriftRamp),
}

/// Probe index at which the default [`NoiseProfile::drift`] ramp starts
/// leaving its `from` preset. 256 probes sits safely after the §IV-B
/// calibration series (17 probes) but early enough that the bulk of a
/// 512-slot sweep runs in the drifted environment.
pub const DRIFT_DEFAULT_ONSET: u64 = 256;

/// Probe index at which the default [`NoiseProfile::drift`] ramp has
/// fully reached its `to` preset.
pub const DRIFT_DEFAULT_FULL: u64 = 512;

/// The probe-indexed ramp of a [`NoiseProfile::Drift`] environment.
///
/// Endpoints are two *static* presets; the ramp linearly interpolates
/// their induced [`NoiseModel`]s between the `onset`-th and `full`-th
/// probe the victim machine executes (`onset == full` is a step).
/// Probe-indexed rather than wall-clock so campaign trials stay
/// deterministic and independent of the sampling policy's runtime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DriftRamp {
    /// Index of the starting preset in [`NoiseProfile::ALL`].
    from: u8,
    /// Index of the target preset in [`NoiseProfile::ALL`].
    to: u8,
    /// Probe index where the environment starts leaving `from`.
    onset: u64,
    /// Probe index from which `to` fully applies.
    full: u64,
}

impl DriftRamp {
    /// The static preset the environment starts in.
    #[must_use]
    pub fn from_profile(self) -> NoiseProfile {
        NoiseProfile::ALL[self.from as usize]
    }

    /// The static preset the environment ramps to.
    #[must_use]
    pub fn to_profile(self) -> NoiseProfile {
        NoiseProfile::ALL[self.to as usize]
    }

    /// Probe index where the ramp starts.
    #[must_use]
    pub fn onset(self) -> u64 {
        self.onset
    }

    /// Probe index from which the target preset fully applies.
    #[must_use]
    pub fn full(self) -> u64 {
        self.full
    }
}

/// A probe-indexed noise trajectory: the concrete per-machine form of a
/// [`DriftRamp`] (endpoint presets already resolved against one CPU's
/// timing anchors).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseSchedule {
    /// Model in effect before `onset`.
    pub from: NoiseModel,
    /// Model in effect from `full` on.
    pub to: NoiseModel,
    /// Probe index where interpolation starts.
    pub onset: u64,
    /// Probe index where `to` fully applies.
    pub full: u64,
}

impl NoiseSchedule {
    /// The noise model in effect for the `probe_index`-th probe:
    /// `from` before `onset`, `to` from `full` on, linear interpolation
    /// of σ, spike rate and spike magnitudes in between.
    #[must_use]
    pub fn model_at(&self, probe_index: u64) -> NoiseModel {
        if probe_index < self.onset {
            return self.from;
        }
        if probe_index >= self.full {
            return self.to;
        }
        let t = (probe_index - self.onset) as f64 / (self.full - self.onset) as f64;
        let lerp = |a: f64, b: f64| a + (b - a) * t;
        NoiseModel::new(
            lerp(self.from.sigma, self.to.sigma),
            lerp(self.from.spike_prob, self.to.spike_prob),
            (
                lerp(self.from.spike_range.0, self.to.spike_range.0),
                lerp(self.from.spike_range.1, self.to.spike_range.1),
            ),
        )
    }
}

impl NoiseProfile {
    /// The four static presets, quietest first. [`NoiseProfile::Drift`]
    /// is deliberately absent: it is a scenario *modifier* built from
    /// two of these, not a fifth stationary environment — grid code
    /// iterating `ALL` keeps its historical row counts.
    pub const ALL: [NoiseProfile; 4] = [
        NoiseProfile::Quiet,
        NoiseProfile::SmtSibling,
        NoiseProfile::LaptopDvfs,
        NoiseProfile::NoisyNeighbor,
    ];

    /// A drifting environment ramping from one static preset to another
    /// over the default probe-index span
    /// ([`DRIFT_DEFAULT_ONSET`]..[`DRIFT_DEFAULT_FULL`]).
    ///
    /// ```
    /// use avx_uarch::{CpuProfile, NoiseProfile};
    ///
    /// let timing = CpuProfile::alder_lake_i5_12400f().timing;
    /// let drift = NoiseProfile::drift(NoiseProfile::Quiet, NoiseProfile::LaptopDvfs);
    /// // One-shot calibration (the first ~17 probes) sees the quiet σ...
    /// assert_eq!(drift.effective_sigma(&timing), timing.noise_sigma);
    /// // ...but the machine's schedule ends on the laptop model.
    /// let schedule = drift.schedule_for(&timing).unwrap();
    /// assert_eq!(schedule.model_at(0), NoiseProfile::Quiet.model_for(&timing));
    /// assert_eq!(
    ///     schedule.model_at(u64::MAX),
    ///     NoiseProfile::LaptopDvfs.model_for(&timing),
    /// );
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is itself a drift (ramps do not nest).
    #[must_use]
    pub fn drift(from: NoiseProfile, to: NoiseProfile) -> Self {
        Self::drift_with(from, to, DRIFT_DEFAULT_ONSET, DRIFT_DEFAULT_FULL)
    }

    /// [`NoiseProfile::drift`] with an explicit probe-index ramp;
    /// `onset == full` models an abrupt step (e.g. a co-tenant landing
    /// on the core).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is a drift or `full < onset`.
    #[must_use]
    pub fn drift_with(from: NoiseProfile, to: NoiseProfile, onset: u64, full: u64) -> Self {
        let index = |p: NoiseProfile| {
            Self::ALL
                .iter()
                .position(|&s| s == p)
                .expect("drift endpoints must be static presets") as u8
        };
        assert!(full >= onset, "ramp must not end before it starts");
        NoiseProfile::Drift(DriftRamp {
            from: index(from),
            to: index(to),
            onset,
            full,
        })
    }

    /// The pinned drifting-noise scenario of the campaign matrix: a
    /// quiet host whose environment ramps to the laptop-DVFS preset
    /// mid-scan (what `repro --noise drift` selects).
    #[must_use]
    pub fn drift_quiet_to_laptop() -> Self {
        Self::drift(NoiseProfile::Quiet, NoiseProfile::LaptopDvfs)
    }

    /// `(sigma, spike_prob, spike_magnitude)` multipliers of the preset.
    /// For [`NoiseProfile::Drift`] these are the *starting* preset's
    /// factors — what the environment looks like while the attacker
    /// calibrates.
    #[must_use]
    pub const fn factors(self) -> (f64, f64, f64) {
        match self {
            NoiseProfile::Quiet => (1.0, 1.0, 1.0),
            NoiseProfile::SmtSibling => (3.0, 6.0, 0.5),
            NoiseProfile::LaptopDvfs => (6.0, 3.0, 2.0),
            NoiseProfile::NoisyNeighbor => (4.0, 12.0, 1.5),
            // One level of recursion at most: ALL holds only static
            // presets (DriftRamp endpoints are constructed from it),
            // so the table above is the single source of the factors.
            NoiseProfile::Drift(ramp) => Self::ALL[ramp.from as usize].factors(),
        }
    }

    /// Stable identifier (also what [`NoiseProfile::parse`] accepts).
    /// All drift ramps report `"drift"`; the endpoints show up in
    /// [`fmt::Display`].
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            NoiseProfile::Quiet => "quiet",
            NoiseProfile::SmtSibling => "smt",
            NoiseProfile::LaptopDvfs => "laptop",
            NoiseProfile::NoisyNeighbor => "cloud",
            NoiseProfile::Drift(_) => "drift",
        }
    }

    /// Parses a preset name (`quiet`, `smt`, `laptop`, `cloud`, plus
    /// the long aliases `smt-sibling`, `dvfs`, `noisy-neighbor`, and
    /// `drift` for the pinned quiet→laptop ramp).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "quiet" => Some(NoiseProfile::Quiet),
            "smt" | "smt-sibling" => Some(NoiseProfile::SmtSibling),
            "laptop" | "dvfs" => Some(NoiseProfile::LaptopDvfs),
            "cloud" | "noisy-neighbor" => Some(NoiseProfile::NoisyNeighbor),
            "drift" | "quiet-laptop" => Some(NoiseProfile::drift_quiet_to_laptop()),
            _ => None,
        }
    }

    /// The concrete noise model this preset induces on a CPU whose
    /// baseline anchors are `timing`. Spike probability is capped at
    /// 0.5 — past that the "spike" is the common case and the model
    /// stops being a spike model. For [`NoiseProfile::Drift`] this is
    /// the *starting* model; [`NoiseProfile::schedule_for`] carries the
    /// trajectory.
    #[must_use]
    pub fn model_for(self, timing: &TimingParams) -> NoiseModel {
        if let NoiseProfile::Drift(ramp) = self {
            return ramp.from_profile().model_for(timing);
        }
        let (sigma_f, spike_f, magnitude_f) = self.factors();
        let (lo, hi) = timing.spike_range;
        NoiseModel::new(
            timing.noise_sigma * sigma_f,
            (timing.spike_prob * spike_f).min(0.5),
            (lo * magnitude_f, hi * magnitude_f),
        )
    }

    /// The probe-indexed noise trajectory this profile induces: `None`
    /// for the stationary presets, the resolved ramp for
    /// [`NoiseProfile::Drift`].
    #[must_use]
    pub fn schedule_for(self, timing: &TimingParams) -> Option<NoiseSchedule> {
        match self {
            NoiseProfile::Drift(ramp) => Some(NoiseSchedule {
                from: ramp.from_profile().model_for(timing),
                to: ramp.to_profile().model_for(timing),
                onset: ramp.onset,
                full: ramp.full,
            }),
            _ => None,
        }
    }

    /// Effective Gaussian σ of this preset on `timing` — what the
    /// adaptive sampler's likelihood model should assume. For
    /// [`NoiseProfile::Drift`] this is the *starting* σ: exactly what a
    /// one-shot calibration phase observes (and why it goes stale — the
    /// closed-loop recalibration engine in `avx-channel` exists to
    /// re-estimate it mid-scan).
    #[must_use]
    pub fn effective_sigma(self, timing: &TimingParams) -> f64 {
        timing.noise_sigma * self.factors().0
    }
}

impl fmt::Display for NoiseProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseProfile::Drift(ramp) => f.pad(&format!(
                "drift({}→{})",
                ramp.from_profile().name(),
                ramp.to_profile().name()
            )),
            _ => f.pad(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = NoiseModel::none();
        for _ in 0..100 {
            assert_eq!(m.perturb(&mut rng, 93.0), 93);
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = NoiseModel::new(2.0, 0.0, (0.0, 0.0));
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn spikes_appear_at_expected_rate_and_are_positive() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = NoiseModel::new(0.0, 0.05, (500.0, 1000.0));
        let n = 40_000;
        let spikes = (0..n)
            .map(|_| m.sample(&mut rng))
            .filter(|&x| x > 0.0)
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn spike_magnitude_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = NoiseModel::new(0.0, 1.0, (500.0, 1000.0));
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!((500.0..1000.0).contains(&s), "spike {s}");
        }
    }

    #[test]
    fn perturb_never_returns_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let m = NoiseModel::new(50.0, 0.0, (0.0, 0.0));
        for _ in 0..1000 {
            assert!(m.perturb(&mut rng, 1.0) >= 1);
        }
    }

    #[test]
    fn degenerate_spike_range_uses_lower_bound() {
        let mut rng = StdRng::seed_from_u64(19);
        let m = NoiseModel::new(0.0, 1.0, (250.0, 250.0));
        assert_eq!(m.sample(&mut rng), 250.0);
    }

    #[test]
    fn v2_moments_match_v1_distribution() {
        let mut rng = StdRng::seed_from_u64(23);
        let m = NoiseModel::new(2.0, 0.0, (0.0, 0.0));
        let n = 30_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_v2(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn v2_spike_rate_matches_the_probability() {
        let mut rng = StdRng::seed_from_u64(29);
        let m = NoiseModel::new(0.0, 0.05, (500.0, 1000.0));
        let n = 40_000;
        let spikes = (0..n)
            .map(|_| m.sample_v2(&mut rng))
            .filter(|&x| x > 0.0)
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn v2_certain_spike_always_fires() {
        // spike_prob = 1.0 saturates the u128 threshold to "always":
        // the fixed-point compare must not lose the top probability ulp.
        let mut rng = StdRng::seed_from_u64(31);
        let m = NoiseModel::new(0.0, 1.0, (500.0, 1000.0));
        for _ in 0..1000 {
            let s = m.sample_v2(&mut rng);
            assert!((500.0..1000.0).contains(&s), "spike {s}");
        }
    }

    #[test]
    fn fill_block_is_the_scalar_v2_stream() {
        // The block path must consume the RNG exactly like consecutive
        // scalar sample_v2 calls — that equality is what makes the v2
        // batched machine bit-identical to the v2 scalar machine.
        let m = NoiseModel::new(1.3, 0.05, (200.0, 900.0));
        let mut block_rng = StdRng::seed_from_u64(37);
        let mut scalar_rng = StdRng::seed_from_u64(37);
        let mut block = [0.0; 16];
        for _ in 0..64 {
            m.fill_block(&mut block_rng, &mut block);
            for &b in &block {
                assert_eq!(b, m.sample_v2(&mut scalar_rng));
            }
        }
    }

    #[test]
    fn v2_none_model_draws_nothing() {
        // A noiseless model must not consume RNG words in either regime.
        use rand::RngCore;
        let m = NoiseModel::none();
        let mut rng = StdRng::seed_from_u64(41);
        let mut reference = StdRng::seed_from_u64(41);
        assert_eq!(m.sample_v2(&mut rng), 0.0);
        let mut block = [1.0; 8];
        m.fill_block(&mut rng, &mut block);
        assert_eq!(block, [0.0; 8]);
        assert_eq!(rng.next_u64(), reference.next_u64());
    }

    /// Baseline anchors the preset moment tests scale from.
    fn reference_timing() -> TimingParams {
        TimingParams {
            base_load: 13.0,
            base_store: 12.0,
            assist_load: 80.0,
            assist_store: 64.0,
            stlb_hit_extra: 6.0,
            walk_step_warm: 7.0,
            walk_step_cold: 65.0,
            level_extra_pt: 18.0,
            level_extra_pd: 0.0,
            level_extra_pdpt: 12.0,
            level_extra_pml4: 24.0,
            nonpresent_retries: 2,
            user_nonpresent_load_extra: 3.0,
            fault_cost: 1500.0,
            noise_sigma: 1.0,
            spike_prob: 0.002,
            spike_range: (200.0, 1500.0),
        }
    }

    #[test]
    fn profile_factors_are_pinned() {
        // The presets are distributions, not tunables: changing a factor
        // must be a deliberate, test-visible act.
        assert_eq!(NoiseProfile::Quiet.factors(), (1.0, 1.0, 1.0));
        assert_eq!(NoiseProfile::SmtSibling.factors(), (3.0, 6.0, 0.5));
        assert_eq!(NoiseProfile::LaptopDvfs.factors(), (6.0, 3.0, 2.0));
        assert_eq!(NoiseProfile::NoisyNeighbor.factors(), (4.0, 12.0, 1.5));
    }

    #[test]
    fn quiet_profile_is_the_baseline_model() {
        let t = reference_timing();
        let m = NoiseProfile::Quiet.model_for(&t);
        assert_eq!(
            m,
            NoiseModel::new(t.noise_sigma, t.spike_prob, t.spike_range)
        );
        assert_eq!(NoiseProfile::Quiet.effective_sigma(&t), 1.0);
    }

    #[test]
    fn preset_moments_match_their_factors() {
        // Fixed-seed empirical moment check per preset: the Gaussian σ
        // and the spike rate of the induced model must land on the
        // factor-scaled baseline within sampling tolerance.
        let t = reference_timing();
        for (i, profile) in NoiseProfile::ALL.into_iter().enumerate() {
            let (sigma_f, spike_f, magnitude_f) = profile.factors();
            let m = profile.model_for(&t);

            // σ, isolated from spikes.
            let jitter = NoiseModel::new(m.sigma, 0.0, (0.0, 0.0));
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            let n = 30_000;
            let samples: Vec<f64> = (0..n).map(|_| jitter.sample(&mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let expect_sigma = t.noise_sigma * sigma_f;
            assert!(mean.abs() < 0.15, "{profile}: jitter mean {mean}");
            assert!(
                (var.sqrt() - expect_sigma).abs() < 0.15 * expect_sigma.max(1.0),
                "{profile}: σ {} vs expected {expect_sigma}",
                var.sqrt()
            );

            // Spike rate, isolated from jitter.
            let spikes_only = NoiseModel::new(0.0, m.spike_prob, m.spike_range);
            let mut rng = StdRng::seed_from_u64(200 + i as u64);
            let n = 200_000;
            let spikes = (0..n)
                .map(|_| spikes_only.sample(&mut rng))
                .filter(|&x| x > 0.0)
                .count();
            let rate = spikes as f64 / n as f64;
            let expect_rate = (t.spike_prob * spike_f).min(0.5);
            assert!(
                (rate - expect_rate).abs() < 0.35 * expect_rate,
                "{profile}: spike rate {rate} vs expected {expect_rate}"
            );

            // Spike magnitude window scales with the preset.
            assert_eq!(m.spike_range.0, t.spike_range.0 * magnitude_f, "{profile}");
            assert_eq!(m.spike_range.1, t.spike_range.1 * magnitude_f, "{profile}");
        }
    }

    #[test]
    fn spike_probability_is_capped() {
        let mut t = reference_timing();
        t.spike_prob = 0.2;
        let m = NoiseProfile::NoisyNeighbor.model_for(&t); // 0.2 × 12 = 2.4
        assert_eq!(m.spike_prob, 0.5);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for profile in NoiseProfile::ALL {
            assert_eq!(NoiseProfile::parse(profile.name()), Some(profile));
            assert_eq!(profile.to_string(), profile.name());
        }
        assert_eq!(
            NoiseProfile::parse("SMT-Sibling"),
            Some(NoiseProfile::SmtSibling)
        );
        assert_eq!(NoiseProfile::parse("dvfs"), Some(NoiseProfile::LaptopDvfs));
        assert_eq!(
            NoiseProfile::parse("noisy-neighbor"),
            Some(NoiseProfile::NoisyNeighbor)
        );
        assert_eq!(NoiseProfile::parse("bogus"), None);
        assert_eq!(NoiseProfile::default(), NoiseProfile::Quiet);
    }

    #[test]
    fn drift_ramp_interpolates_between_its_endpoints() {
        let t = reference_timing();
        let drift =
            NoiseProfile::drift_with(NoiseProfile::Quiet, NoiseProfile::LaptopDvfs, 100, 300);
        let schedule = drift.schedule_for(&t).expect("drift has a schedule");
        let quiet = NoiseProfile::Quiet.model_for(&t);
        let laptop = NoiseProfile::LaptopDvfs.model_for(&t);
        assert_eq!(schedule.model_at(0), quiet);
        assert_eq!(schedule.model_at(99), quiet);
        assert_eq!(schedule.model_at(300), laptop);
        assert_eq!(schedule.model_at(u64::MAX), laptop);
        // Halfway through the ramp the σ sits halfway between.
        let mid = schedule.model_at(200);
        assert!((mid.sigma - (quiet.sigma + laptop.sigma) / 2.0).abs() < 1e-12);
        assert!(mid.spike_prob > quiet.spike_prob && mid.spike_prob < laptop.spike_prob);
        // The profile's one-shot view is the starting preset.
        assert_eq!(drift.model_for(&t), quiet);
        assert_eq!(drift.effective_sigma(&t), quiet.sigma);
        assert_eq!(drift.name(), "drift");
        assert_eq!(drift.to_string(), "drift(quiet→laptop)");
    }

    #[test]
    fn drift_step_switches_at_the_onset() {
        let t = reference_timing();
        let step = NoiseProfile::drift_with(NoiseProfile::Quiet, NoiseProfile::LaptopDvfs, 50, 50);
        let schedule = step.schedule_for(&t).unwrap();
        assert_eq!(schedule.model_at(49), NoiseProfile::Quiet.model_for(&t));
        assert_eq!(
            schedule.model_at(50),
            NoiseProfile::LaptopDvfs.model_for(&t)
        );
    }

    #[test]
    fn drift_parses_and_static_presets_have_no_schedule() {
        let t = reference_timing();
        assert_eq!(
            NoiseProfile::parse("drift"),
            Some(NoiseProfile::drift_quiet_to_laptop())
        );
        let drift = NoiseProfile::drift_quiet_to_laptop();
        let NoiseProfile::Drift(ramp) = drift else {
            panic!("drift constructor must build the Drift variant");
        };
        assert_eq!(ramp.from_profile(), NoiseProfile::Quiet);
        assert_eq!(ramp.to_profile(), NoiseProfile::LaptopDvfs);
        assert_eq!(ramp.onset(), DRIFT_DEFAULT_ONSET);
        assert_eq!(ramp.full(), DRIFT_DEFAULT_FULL);
        for profile in NoiseProfile::ALL {
            assert_eq!(profile.schedule_for(&t), None, "{profile}");
        }
    }

    #[test]
    #[should_panic(expected = "static presets")]
    fn nested_drift_endpoints_are_rejected() {
        let inner = NoiseProfile::drift_quiet_to_laptop();
        let _ = NoiseProfile::drift(inner, NoiseProfile::Quiet);
    }

    #[test]
    fn presets_order_by_effective_sigma_above_quiet() {
        let t = reference_timing();
        let quiet = NoiseProfile::Quiet.effective_sigma(&t);
        for profile in [
            NoiseProfile::SmtSibling,
            NoiseProfile::LaptopDvfs,
            NoiseProfile::NoisyNeighbor,
        ] {
            assert!(
                profile.effective_sigma(&t) > quiet,
                "{profile} must be noisier than quiet"
            );
        }
    }
}
