//! Observables versioning: which *measurement protocol* a machine's
//! noise stream follows.
//!
//! The golden suites pin two different kinds of contract:
//!
//! * **v1** pins the *individual samples*: the per-probe Box–Muller
//!   noise stream is byte-for-byte reproducible, so every golden row
//!   recorded before the versioning existed stays bit-exact forever.
//!   This is the paper-reproduction regime and the default.
//! * **v2** pins only the *statistics*: the same Gaussian + spike
//!   distribution is produced by a table-driven ziggurat sampler
//!   filling per-tile noise blocks, amortizing RNG and transcendental
//!   cost across each probe batch. Accuracy rows under v2 were
//!   re-goldened once, deliberately, and are tagged `v2` alongside
//!   (never replacing) the v1 rows.
//!
//! NetSpectre applies the same discipline to its measurement protocol:
//! the distribution is the contract, not the sample stream. See the
//! "Observables versioning" section of `ARCHITECTURE.md` for the
//! invariants a future `v3` must satisfy.

use core::fmt;

/// The noise-observables regime a [`crate::Machine`] runs under.
///
/// ```
/// use avx_uarch::ObservablesVersion;
///
/// // v1 is the default and what every pre-existing golden row assumes.
/// assert_eq!(ObservablesVersion::default(), ObservablesVersion::V1);
/// assert_eq!(ObservablesVersion::parse("v2"), Some(ObservablesVersion::V2));
/// assert_eq!(ObservablesVersion::V2.name(), "v2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ObservablesVersion {
    /// Bit-exact per-sample Box–Muller stream (the original engine).
    #[default]
    V1,
    /// Batched ziggurat noise blocks: distribution-equivalent to v1,
    /// bit-identical only to itself.
    V2,
}

impl ObservablesVersion {
    /// Both regimes, oldest first.
    pub const ALL: [ObservablesVersion; 2] = [ObservablesVersion::V1, ObservablesVersion::V2];

    /// Stable identifier (also what [`ObservablesVersion::parse`]
    /// accepts, and the tag recorded per `BENCH_campaign.json` entry).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            ObservablesVersion::V1 => "v1",
            ObservablesVersion::V2 => "v2",
        }
    }

    /// Parses a regime name (`v1` or `v2`, case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "v1" => Some(ObservablesVersion::V1),
            "v2" => Some(ObservablesVersion::V2),
            _ => None,
        }
    }
}

impl fmt::Display for ObservablesVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_is_the_default_regime() {
        assert_eq!(ObservablesVersion::default(), ObservablesVersion::V1);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for version in ObservablesVersion::ALL {
            assert_eq!(ObservablesVersion::parse(version.name()), Some(version));
            assert_eq!(version.to_string(), version.name());
        }
        assert_eq!(
            ObservablesVersion::parse(" V2 "),
            Some(ObservablesVersion::V2)
        );
        assert_eq!(ObservablesVersion::parse("v3"), None);
        assert_eq!(ObservablesVersion::parse(""), None);
    }
}
