//! Masked load/store operation descriptions.
//!
//! Models the AVX/AVX2 `VMASKMOVPS/PD` and `VPMASKMOVD/Q` instructions:
//! a packed access of 4 or 8 elements whose per-element mask bit decides
//! whether the element is transferred — and, crucially for the side
//! channel, whether a translation problem on that element's page raises
//! `#PF` or is silently suppressed.

use core::fmt;

use avx_mmu::VirtAddr;

/// Direction of the masked access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// `VMASKMOV dest, mask, mem` — masked load.
    Load,
    /// `VMASKMOV mem, mask, src` — masked store.
    Store,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Load => write!(f, "masked load"),
            OpKind::Store => write!(f, "masked store"),
        }
    }
}

/// Element width of the vector operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ElemWidth {
    /// 32-bit elements (`VPMASKMOVD` / `VMASKMOVPS`).
    Dword,
    /// 64-bit elements (`VPMASKMOVQ` / `VMASKMOVPD`).
    Qword,
}

impl ElemWidth {
    /// Bytes per element.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            ElemWidth::Dword => 4,
            ElemWidth::Qword => 8,
        }
    }
}

/// A per-lane mask for up to 8 lanes (256-bit vector of dwords).
///
/// Bit *i* set means lane *i* participates in the transfer. In hardware
/// the mask is the sign bit of each element of a ymm register; here it
/// is a compact bitset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mask {
    bits: u8,
    lanes: u8,
}

impl Mask {
    /// Creates a mask over `lanes` lanes (1..=8) from the low bits of
    /// `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 8.
    #[must_use]
    pub fn new(bits: u8, lanes: u8) -> Self {
        assert!((1..=8).contains(&lanes), "lanes must be in 1..=8");
        let keep = if lanes == 8 { 0xff } else { (1u8 << lanes) - 1 };
        Self {
            bits: bits & keep,
            lanes,
        }
    }

    /// The all-zero mask: nothing is transferred, every fault is
    /// suppressed. This is the probe mask of the attack (paper P1).
    #[must_use]
    pub fn all_zero(lanes: u8) -> Self {
        Self::new(0, lanes)
    }

    /// The all-ones mask: a plain vector access.
    #[must_use]
    pub fn all_set(lanes: u8) -> Self {
        Self::new(0xff, lanes)
    }

    /// Number of lanes.
    #[must_use]
    pub const fn lanes(self) -> u8 {
        self.lanes
    }

    /// `true` if lane `i` participates.
    ///
    /// # Panics
    ///
    /// Panics if `i >= lanes`.
    #[must_use]
    pub fn lane(self, i: u8) -> bool {
        assert!(i < self.lanes, "lane out of range");
        self.bits & (1 << i) != 0
    }

    /// `true` if no lane participates.
    #[must_use]
    pub const fn is_all_zero(self) -> bool {
        self.bits == 0
    }

    /// Raw bits (low `lanes` bits meaningful).
    #[must_use]
    pub const fn bits(self) -> u8 {
        self.bits
    }

    /// Iterator over participating lane indices.
    pub fn set_lanes(self) -> impl Iterator<Item = u8> {
        let bits = self.bits;
        let lanes = self.lanes;
        (0..lanes).filter(move |i| bits & (1 << i) != 0)
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.lanes).rev() {
            write!(f, "{}", u8::from(self.lane(i)))?;
        }
        Ok(())
    }
}

/// A fully-described masked memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MaskedOp {
    /// Load or store.
    pub kind: OpKind,
    /// Base virtual address of element 0.
    pub addr: VirtAddr,
    /// Per-lane participation mask.
    pub mask: Mask,
    /// Element width.
    pub width: ElemWidth,
}

impl MaskedOp {
    /// The attack probe: an all-zero-mask dword load at `addr`.
    #[must_use]
    pub fn probe_load(addr: VirtAddr) -> Self {
        Self {
            kind: OpKind::Load,
            addr,
            mask: Mask::all_zero(8),
            width: ElemWidth::Dword,
        }
    }

    /// The attack probe: an all-zero-mask dword store at `addr`.
    #[must_use]
    pub fn probe_store(addr: VirtAddr) -> Self {
        Self {
            kind: OpKind::Store,
            addr,
            mask: Mask::all_zero(8),
            width: ElemWidth::Dword,
        }
    }

    /// The virtual address of lane `i`.
    #[must_use]
    pub fn lane_addr(&self, i: u8) -> VirtAddr {
        self.addr.wrapping_add(u64::from(i) * self.width.bytes())
    }

    /// Total byte span of the vector access.
    #[must_use]
    pub fn span(&self) -> u64 {
        u64::from(self.mask.lanes()) * self.width.bytes()
    }

    /// Distinct 4 KiB page base addresses the vector touches, with a flag
    /// for whether any *unmasked* lane lies on that page.
    #[must_use]
    pub fn touched_pages(&self) -> Vec<(VirtAddr, bool)> {
        let mut pages: Vec<(VirtAddr, bool)> = Vec::with_capacity(2);
        for i in 0..self.mask.lanes() {
            let page = self.lane_addr(i).align_down(4096);
            let unmasked = self.mask.lane(i);
            match pages.iter_mut().find(|(p, _)| *p == page) {
                Some(slot) => slot.1 |= unmasked,
                None => pages.push((page, unmasked)),
            }
        }
        pages
    }
}

impl fmt::Display for MaskedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} mask={}", self.kind, self.addr, self.mask)
    }
}

/// An architecturally delivered fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Faulting page base.
    pub addr: VirtAddr,
    /// `true` when caused by a store.
    pub write: bool,
    /// `true` when the translation existed but permissions failed
    /// (protection violation vs non-present fault).
    pub protection: bool,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#PF at {} ({}, {})",
            self.addr,
            if self.write { "write" } else { "read" },
            if self.protection {
                "protection"
            } else {
                "not-present"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new_truncate(raw)
    }

    #[test]
    fn mask_construction_and_lanes() {
        let m = Mask::new(0b1101, 4);
        assert!(m.lane(0));
        assert!(!m.lane(1));
        assert!(m.lane(2));
        assert!(m.lane(3));
        assert_eq!(m.set_lanes().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn mask_truncates_to_lane_count() {
        let m = Mask::new(0xff, 4);
        assert_eq!(m.bits(), 0x0f);
    }

    #[test]
    fn all_zero_and_all_set() {
        assert!(Mask::all_zero(8).is_all_zero());
        assert_eq!(Mask::all_set(8).bits(), 0xff);
        assert!(!Mask::all_set(1).is_all_zero());
    }

    #[test]
    #[should_panic(expected = "lanes must be in 1..=8")]
    fn zero_lanes_rejected() {
        let _ = Mask::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn out_of_range_lane_panics() {
        let m = Mask::new(0b1, 2);
        let _ = m.lane(2);
    }

    #[test]
    fn mask_display_msb_first() {
        let m = Mask::new(0b1101, 4);
        assert_eq!(m.to_string(), "1101");
    }

    #[test]
    fn lane_addresses_step_by_width() {
        let op = MaskedOp {
            kind: OpKind::Load,
            addr: va(0x1000),
            mask: Mask::all_set(4),
            width: ElemWidth::Qword,
        };
        assert_eq!(op.lane_addr(0), va(0x1000));
        assert_eq!(op.lane_addr(3), va(0x1018));
        assert_eq!(op.span(), 32);
    }

    #[test]
    fn touched_pages_single_page() {
        let op = MaskedOp::probe_load(va(0x5000));
        let pages = op.touched_pages();
        assert_eq!(pages, vec![(va(0x5000), false)]);
    }

    #[test]
    fn touched_pages_straddles_boundary() {
        // 8 dword lanes starting 16 bytes before a page boundary:
        // lanes 0..3 on the low page, 4..7 on the high page.
        let op = MaskedOp {
            kind: OpKind::Load,
            addr: va(0x1ff0),
            mask: Mask::new(0b0000_1111, 8), // only low-page lanes unmasked
            width: ElemWidth::Dword,
        };
        let pages = op.touched_pages();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0], (va(0x1000), true));
        assert_eq!(pages[1], (va(0x2000), false), "high page fully masked");
    }

    #[test]
    fn probe_ops_use_zero_mask() {
        assert!(MaskedOp::probe_load(va(0)).mask.is_all_zero());
        assert!(MaskedOp::probe_store(va(0)).mask.is_all_zero());
    }

    #[test]
    fn fault_display() {
        let f = Fault {
            addr: va(0x2000),
            write: true,
            protection: false,
        };
        let s = f.to_string();
        assert!(s.contains("#PF"));
        assert!(s.contains("write"));
        assert!(s.contains("not-present"));
    }
}
