//! CPU profiles: the per-microarchitecture latency anchors.
//!
//! Every profile corresponds to one of the processors evaluated in the
//! paper. The latency parameters are *fitted* to the means the paper
//! reports (Fig. 2, Fig. 3, §III-B, Table I), not derived from first
//! principles; see `DESIGN.md` §5 for the fitting notes.

use core::fmt;

use avx_mmu::{PscConfig, TlbConfig};

/// CPU vendor, which selects the kernel-probe translation behaviour.
///
/// The paper observes that on AMD Zen 3 "accessing kernel addresses
/// always triggers page table walks regardless of page mappings"
/// (§IV-B), so mapped and unmapped kernel pages are indistinguishable by
/// the TLB shortcut and only the walk-termination level leaks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Vendor {
    /// Intel: supervisor translations are cached and reused.
    Intel,
    /// AMD: kernel-half probes from user mode bypass the TLB/PSC.
    Amd,
}

/// Identifiers for the concrete CPUs used in the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum CpuModel {
    /// Intel Core i7-1065G7 (Ice Lake, mobile, Q3'19).
    IceLakeI7_1065G7,
    /// Intel Core i9-9900 (Coffee Lake, desktop) — §III-B testbed.
    CoffeeLakeI9_9900,
    /// Intel Core i5-12400F (Alder Lake, desktop, Q1'22).
    AlderLakeI5_12400F,
    /// Intel Core i7-6600U (Skylake, mobile) — Windows KVAS testbed.
    SkylakeI7_6600U,
    /// AMD Ryzen 5 5600X (Zen 3, desktop, Q2'20).
    Zen3Ryzen5_5600X,
    /// Intel Xeon E5-2676 (Haswell) — Amazon EC2.
    XeonE5_2676,
    /// Intel Xeon Cascade Lake — Google GCE.
    XeonCascadeLake,
    /// Intel Xeon Platinum 8171M — Microsoft Azure.
    XeonPlatinum8171M,
    /// Composite desktop part used for the Fig. 3 permission study.
    GenericDesktop,
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CpuModel::IceLakeI7_1065G7 => "Intel Core i7-1065G7 (Ice Lake)",
            CpuModel::CoffeeLakeI9_9900 => "Intel Core i9-9900 (Coffee Lake)",
            CpuModel::AlderLakeI5_12400F => "Intel Core i5-12400F (Alder Lake)",
            CpuModel::SkylakeI7_6600U => "Intel Core i7-6600U (Skylake)",
            CpuModel::Zen3Ryzen5_5600X => "AMD Ryzen 5 5600X (Zen 3)",
            CpuModel::XeonE5_2676 => "Intel Xeon E5-2676 (Haswell, EC2)",
            CpuModel::XeonCascadeLake => "Intel Xeon Cascade Lake (GCE)",
            CpuModel::XeonPlatinum8171M => "Intel Xeon Platinum 8171M (Azure)",
            CpuModel::GenericDesktop => "Generic desktop x86-64",
        };
        write!(f, "{name}")
    }
}

/// Latency anchors of the masked-op timing model (cycles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingParams {
    /// Base cost of a masked load that needs no assist and hits the TLB.
    pub base_load: f64,
    /// Base cost of a masked store under the same conditions.
    pub base_store: f64,
    /// Microcode-assist cost added to a masked load whose translation is
    /// invalid or inaccessible (paper Fig. 2: KERNEL-M = base + assist).
    pub assist_load: f64,
    /// Assist cost for a masked store (≈16–18 cycles cheaper, §III-B P6).
    pub assist_store: f64,
    /// Extra cycles when the translation comes from the STLB instead of
    /// the first-level TLB.
    pub stlb_hit_extra: f64,
    /// Cost of one paging-structure access whose line is cache-hot.
    pub walk_step_warm: f64,
    /// Cost of one paging-structure access that misses the data caches.
    pub walk_step_cold: f64,
    /// Termination-level extras, applied only to walks that start at the
    /// PML4 root (no PSC resume); fitted to the §III-B P3 ordering
    /// PD < PDPT < PML4, with PT off the line because the PSC never
    /// caches PTEs.
    pub level_extra_pt: f64,
    /// See [`TimingParams::level_extra_pt`].
    pub level_extra_pd: f64,
    /// See [`TimingParams::level_extra_pt`].
    pub level_extra_pdpt: f64,
    /// See [`TimingParams::level_extra_pt`].
    pub level_extra_pml4: f64,
    /// How many times the walker re-walks a non-present translation while
    /// the assist determines suppression (Fig. 2 PMC: 2 completed walks).
    pub nonpresent_retries: u8,
    /// Additional cycles for non-present *user-half* loads (Fig. 2:
    /// USER-U is ~3 cycles above KERNEL-U).
    pub user_nonpresent_load_extra: f64,
    /// Architectural #PF delivery cost (only hit when an unmasked lane
    /// faults; the attack never pays this).
    pub fault_cost: f64,
    /// Gaussian timing-noise sigma.
    pub noise_sigma: f64,
    /// Probability that a probe is disturbed by an interrupt-style spike.
    pub spike_prob: f64,
    /// Spike magnitude range (uniform), cycles.
    pub spike_range: (f64, f64),
}

/// A complete CPU description: identity, clocks, cache geometry, timing.
#[derive(Clone, Debug)]
pub struct CpuProfile {
    /// Which concrete part this models.
    pub model: CpuModel,
    /// Vendor behaviour class.
    pub vendor: Vendor,
    /// Effective clock while probing, GHz (used to convert cycle counts
    /// into the wall-clock runtimes of Table I).
    pub freq_ghz: f64,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Paging-structure-cache geometry.
    pub psc: PscConfig,
    /// Latency anchors.
    pub timing: TimingParams,
    /// `true` if the part supports AVX2 (all evaluated parts do).
    pub has_avx2: bool,
    /// Per-probe loop overhead in cycles (rdtsc serialization, branches),
    /// used for "Total" vs "Probing" runtime accounting in Table I.
    pub probe_overhead: f64,
}

impl CpuProfile {
    /// Intel Core i7-1065G7 (Ice Lake). Anchors from paper Fig. 2:
    /// USER-M 13, KERNEL-M 93, KERNEL-U 107, USER-U 110; P6: store 76
    /// vs load 92 on KERNEL-M; Fig. 6 idle level ≈ 430.
    #[must_use]
    pub fn ice_lake_i7_1065g7() -> Self {
        Self {
            model: CpuModel::IceLakeI7_1065G7,
            vendor: Vendor::Intel,
            freq_ghz: 1.3,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 13.0,
                base_store: 12.0,
                assist_load: 80.0,
                assist_store: 64.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 80.0,
                level_extra_pt: 18.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 3.0,
                fault_cost: 1800.0,
                noise_sigma: 1.1,
                spike_prob: 0.003,
                spike_range: (200.0, 1800.0),
            },
            has_avx2: true,
            probe_overhead: 160.0,
        }
    }

    /// Intel Core i9-9900 (Coffee Lake). Anchors from §III-B P4: TLB hit
    /// 147 vs miss 381 on a kernel-mapped 2 MiB page.
    #[must_use]
    pub fn coffee_lake_i9_9900() -> Self {
        Self {
            model: CpuModel::CoffeeLakeI9_9900,
            vendor: Vendor::Intel,
            freq_ghz: 3.6,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 13.0,
                base_store: 12.0,
                assist_load: 134.0,
                assist_store: 118.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 78.0,
                level_extra_pt: 18.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 3.0,
                fault_cost: 1800.0,
                noise_sigma: 1.5,
                spike_prob: 0.003,
                spike_range: (200.0, 1800.0),
            },
            has_avx2: true,
            probe_overhead: 140.0,
        }
    }

    /// Intel Core i5-12400F (Alder Lake). Anchors from Fig. 4: kernel
    /// mapped ≈ 93, unmapped ≈ 107 cycles; fastest Table I runtimes.
    #[must_use]
    pub fn alder_lake_i5_12400f() -> Self {
        Self {
            model: CpuModel::AlderLakeI5_12400F,
            vendor: Vendor::Intel,
            freq_ghz: 4.4,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 13.0,
                base_store: 12.0,
                assist_load: 80.0,
                assist_store: 64.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 65.0,
                level_extra_pt: 18.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 3.0,
                fault_cost: 1500.0,
                noise_sigma: 1.0,
                spike_prob: 0.002,
                spike_range: (200.0, 1500.0),
            },
            has_avx2: true,
            probe_overhead: 120.0,
        }
    }

    /// Intel Core i7-6600U (Skylake) — the Windows KVAS testbed (§IV-G).
    #[must_use]
    pub fn skylake_i7_6600u() -> Self {
        Self {
            model: CpuModel::SkylakeI7_6600U,
            vendor: Vendor::Intel,
            freq_ghz: 2.6,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 14.0,
                base_store: 13.0,
                assist_load: 90.0,
                assist_store: 74.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 75.0,
                level_extra_pt: 18.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 3.0,
                fault_cost: 2000.0,
                noise_sigma: 1.4,
                spike_prob: 0.003,
                spike_range: (200.0, 1800.0),
            },
            has_avx2: true,
            probe_overhead: 170.0,
        }
    }

    /// AMD Ryzen 5 5600X (Zen 3). Kernel probes always walk (§IV-B);
    /// discrimination works through the walk-termination level only.
    #[must_use]
    pub fn zen3_ryzen5_5600x() -> Self {
        Self {
            model: CpuModel::Zen3Ryzen5_5600X,
            vendor: Vendor::Amd,
            freq_ghz: 4.6,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 15.0,
                base_store: 14.0,
                assist_load: 90.0,
                assist_store: 74.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 60.0,
                level_extra_pt: 22.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 3.0,
                fault_cost: 1700.0,
                noise_sigma: 1.8,
                spike_prob: 0.003,
                spike_range: (200.0, 1800.0),
            },
            has_avx2: true,
            probe_overhead: 150.0,
        }
    }

    /// Intel Xeon E5-2676 (Haswell) — the Amazon EC2 guest (§IV-H).
    /// Meltdown-vulnerable, so the guest kernel runs KPTI.
    #[must_use]
    pub fn xeon_e5_2676() -> Self {
        Self {
            model: CpuModel::XeonE5_2676,
            vendor: Vendor::Intel,
            freq_ghz: 2.4,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 14.0,
                base_store: 13.0,
                assist_load: 95.0,
                assist_store: 79.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 80.0,
                level_extra_pt: 18.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 3.0,
                fault_cost: 2200.0,
                noise_sigma: 2.0,
                spike_prob: 0.004,
                spike_range: (250.0, 2500.0),
            },
            has_avx2: true,
            probe_overhead: 180.0,
        }
    }

    /// Intel Xeon Cascade Lake — the Google GCE guest (§IV-H).
    /// Meltdown-resistant: KASLR probed directly.
    #[must_use]
    pub fn xeon_cascade_lake() -> Self {
        Self {
            model: CpuModel::XeonCascadeLake,
            vendor: Vendor::Intel,
            freq_ghz: 2.8,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 13.0,
                base_store: 12.0,
                assist_load: 85.0,
                assist_store: 69.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 72.0,
                level_extra_pt: 18.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 3.0,
                fault_cost: 2000.0,
                noise_sigma: 1.6,
                spike_prob: 0.004,
                spike_range: (250.0, 2200.0),
            },
            has_avx2: true,
            probe_overhead: 160.0,
        }
    }

    /// Intel Xeon Platinum 8171M — the Microsoft Azure guest (§IV-H),
    /// running Windows 10 21H2.
    #[must_use]
    pub fn xeon_platinum_8171m() -> Self {
        Self {
            model: CpuModel::XeonPlatinum8171M,
            vendor: Vendor::Intel,
            freq_ghz: 2.6,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 13.0,
                base_store: 12.0,
                assist_load: 88.0,
                assist_store: 72.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 75.0,
                level_extra_pt: 18.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 3.0,
                fault_cost: 2100.0,
                noise_sigma: 1.5,
                spike_prob: 0.004,
                spike_range: (250.0, 2200.0),
            },
            has_avx2: true,
            probe_overhead: 170.0,
        }
    }

    /// The unnamed desktop part of the Fig. 3 permission study: load
    /// 16/16/16/115 and store 82/82/16/96 cycles on r--, r-x, rw-, ---.
    #[must_use]
    pub fn generic_desktop() -> Self {
        Self {
            model: CpuModel::GenericDesktop,
            vendor: Vendor::Intel,
            freq_ghz: 3.8,
            tlb: TlbConfig::default(),
            psc: PscConfig::default(),
            timing: TimingParams {
                base_load: 16.0,
                base_store: 16.0,
                assist_load: 80.0,
                assist_store: 66.0,
                stlb_hit_extra: 6.0,
                walk_step_warm: 7.0,
                walk_step_cold: 70.0,
                level_extra_pt: 18.0,
                level_extra_pd: 0.0,
                level_extra_pdpt: 12.0,
                level_extra_pml4: 24.0,
                nonpresent_retries: 2,
                user_nonpresent_load_extra: 5.0,
                fault_cost: 1800.0,
                noise_sigma: 1.2,
                spike_prob: 0.002,
                spike_range: (200.0, 1500.0),
            },
            has_avx2: true,
            probe_overhead: 140.0,
        }
    }

    /// All paper-evaluation profiles, for sweeps.
    #[must_use]
    pub fn all_evaluated() -> Vec<Self> {
        vec![
            Self::alder_lake_i5_12400f(),
            Self::ice_lake_i7_1065g7(),
            Self::coffee_lake_i9_9900(),
            Self::skylake_i7_6600u(),
            Self::zen3_ryzen5_5600x(),
            Self::xeon_e5_2676(),
            Self::xeon_cascade_lake(),
            Self::xeon_platinum_8171m(),
        ]
    }

    /// `true` when kernel-half probes bypass the TLB/PSC (AMD behaviour).
    #[must_use]
    pub fn kernel_walks_uncached(&self) -> bool {
        matches!(self.vendor, Vendor::Amd)
    }

    /// The dirty-bit microcode-assist cost for masked stores on clean
    /// writable pages.
    ///
    /// Chosen so that `base_store + dirty_assist = base_load +
    /// assist_load`: the paper's calibration identity (§IV-B — "the
    /// execution time of the masked store on the user-mapped page with no
    /// dirty bit set is the same as the execution time on the
    /// kernel-mapped page").
    #[must_use]
    pub fn dirty_assist(&self) -> f64 {
        self.timing.base_load + self.timing.assist_load - self.timing.base_store
    }

    /// Converts a cycle count into seconds at this profile's clock.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Expected steady-state masked-load cycles on a kernel-mapped page
    /// (TLB hit + assist) — the lower band of Fig. 4.
    #[must_use]
    pub fn expect_kernel_mapped_load(&self) -> f64 {
        self.timing.base_load + self.timing.assist_load
    }

    /// Expected steady-state masked-load cycles on an unmapped kernel
    /// page (assist + retried warm walk) — the upper band of Fig. 4.
    #[must_use]
    pub fn expect_kernel_unmapped_load(&self) -> f64 {
        self.timing.base_load
            + self.timing.assist_load
            + f64::from(self.timing.nonpresent_retries) * self.timing.walk_step_warm
    }
}

impl fmt::Display for CpuProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {:.1} GHz", self.model, self.freq_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ice_lake_matches_fig2_anchors() {
        let p = CpuProfile::ice_lake_i7_1065g7();
        assert_eq!(p.expect_kernel_mapped_load(), 93.0);
        assert_eq!(p.expect_kernel_unmapped_load(), 107.0);
        // USER-U = KERNEL-U + 3 (Fig. 2).
        assert_eq!(p.timing.user_nonpresent_load_extra, 3.0);
    }

    #[test]
    fn alder_lake_matches_fig4_bands() {
        let p = CpuProfile::alder_lake_i5_12400f();
        assert_eq!(p.expect_kernel_mapped_load(), 93.0);
        assert_eq!(p.expect_kernel_unmapped_load(), 107.0);
    }

    #[test]
    fn p6_store_is_16_to_18_cycles_faster() {
        for p in CpuProfile::all_evaluated() {
            let load = p.timing.base_load + p.timing.assist_load;
            let store = p.timing.base_store + p.timing.assist_store;
            let delta = load - store;
            assert!(
                (16.0..=18.0).contains(&delta),
                "{}: load-store delta {delta}",
                p.model
            );
        }
    }

    #[test]
    fn calibration_identity_holds() {
        for p in CpuProfile::all_evaluated() {
            let clean_store = p.timing.base_store + p.dirty_assist();
            assert!(
                (clean_store - p.expect_kernel_mapped_load()).abs() < 1e-9,
                "{}",
                p.model
            );
        }
    }

    #[test]
    fn level_extras_are_linear_pd_to_pml4() {
        for p in CpuProfile::all_evaluated() {
            let t = &p.timing;
            assert!(t.level_extra_pd < t.level_extra_pdpt);
            assert!(t.level_extra_pdpt < t.level_extra_pml4);
            assert!(t.level_extra_pt > t.level_extra_pd, "PT off the line");
        }
    }

    #[test]
    fn amd_is_the_only_uncached_kernel_walker() {
        for p in CpuProfile::all_evaluated() {
            assert_eq!(
                p.kernel_walks_uncached(),
                matches!(p.vendor, Vendor::Amd),
                "{}",
                p.model
            );
        }
    }

    #[test]
    fn coffee_lake_matches_p4_anchors() {
        let p = CpuProfile::coffee_lake_i9_9900();
        // TLB hit on KERNEL-M: 147 cycles.
        assert_eq!(p.expect_kernel_mapped_load(), 147.0);
        // Full cold walk of a 2 MiB kernel page: hit + 3 cold steps = 381.
        let miss = p.expect_kernel_mapped_load() + 3.0 * p.timing.walk_step_cold;
        assert_eq!(miss, 381.0);
    }

    #[test]
    fn generic_desktop_matches_fig3_anchors() {
        let p = CpuProfile::generic_desktop();
        let t = &p.timing;
        assert_eq!(t.base_load, 16.0); // r--/r-x/rw- load
        assert_eq!(t.base_store + t.assist_store, 82.0); // r--/r-x store
                                                         // --- store: base + assist + retried warm walk = 96.
        let none_store =
            t.base_store + t.assist_store + f64::from(t.nonpresent_retries) * t.walk_step_warm;
        assert_eq!(none_store, 96.0);
        // --- load: +user extra = 115.
        let none_load = t.base_load
            + t.assist_load
            + f64::from(t.nonpresent_retries) * t.walk_step_warm
            + t.user_nonpresent_load_extra;
        assert_eq!(none_load, 115.0);
    }

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        let p = CpuProfile::alder_lake_i5_12400f();
        let s = p.cycles_to_seconds(4_400_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_model_and_clock() {
        let p = CpuProfile::zen3_ryzen5_5600x();
        let s = p.to_string();
        assert!(s.contains("5600X"));
        assert!(s.contains("4.6"));
    }

    #[test]
    fn all_evaluated_has_eight_parts() {
        assert_eq!(CpuProfile::all_evaluated().len(), 8);
    }
}
