//! # avx-uarch — masked-op execution engine and timing model
//!
//! Simulates the microarchitectural behaviour of the AVX/AVX2 masked
//! load/store instructions that the DAC 2023 paper *AVX Timing
//! Side-Channel Attacks against Address Space Layout Randomization*
//! exploits:
//!
//! * **fault suppression** (P1): masked-out lanes never raise `#PF`,
//! * **microcode assists** on invalid/inaccessible translations, whose
//!   latency dominates the mapped/unmapped signal (P2),
//! * **page-walk depth** and **paging-structure-cache** interactions (P3),
//! * **TLB state** visibility (P4),
//! * **permission-dependent** store behaviour incl. the dirty-bit assist
//!   used for threshold calibration (P5),
//! * the **load/store latency asymmetry** (P6).
//!
//! The numeric anchors per CPU live in [`CpuProfile`]; the execution
//! semantics in [`Machine::execute`].
//!
//! ```
//! use avx_uarch::{CpuProfile, Machine, MaskedOp, OpKind};
//! use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
//!
//! # fn main() -> Result<(), avx_mmu::MmuError> {
//! let mut space = AddressSpace::new();
//! let kernel = VirtAddr::new(0xffff_ffff_a1e0_0000)?;
//! space.map(kernel, PageSize::Size2M, PteFlags::kernel_rx())?;
//!
//! let mut machine = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 7);
//! // Probing kernel memory with an all-zero mask never faults...
//! let outcome = machine.execute(MaskedOp::probe_load(kernel));
//! assert!(outcome.fault.is_none());
//! // ...but its latency leaks that the page is mapped.
//! let _cycles = machine.probe(OpKind::Load, kernel);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod defense;
pub mod lines;
pub mod machine;
pub mod masked;
pub mod memory;
pub mod noise;
pub mod observables;
pub mod pmc;
pub mod profile;
pub mod sched;
pub mod ziggurat;

pub use defense::{AddressMask, Rerandomizer, VictimDefense};
pub use lines::PteLineCache;
pub use machine::{Machine, MaskedOutcome, NOISE_BLOCK};
pub use masked::{ElemWidth, Fault, Mask, MaskedOp, OpKind};
pub use memory::SparseMemory;
pub use noise::{DriftRamp, NoiseModel, NoiseProfile, NoiseSchedule};
pub use observables::ObservablesVersion;
pub use pmc::{Event, PmcBank, PmcDelta, PmcSnapshot};
pub use profile::{CpuModel, CpuProfile, TimingParams, Vendor};
pub use sched::{SchedEvent, SchedRegion, VictimSchedule, DEFAULT_TENANT_WEIGHT};
