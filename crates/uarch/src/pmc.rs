//! Performance-monitoring counters.
//!
//! Models the two counters the paper reads to explain Fig. 2 —
//! `ASSISTS.ANY` and `DTLB_LOAD_MISSES.WALK_COMPLETED` — plus a few more
//! that the tests use to validate engine behaviour.

use core::fmt;

/// The modelled performance events.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum Event {
    /// `ASSISTS.ANY` — microcode assists of any kind.
    AssistsAny,
    /// `DTLB_LOAD_MISSES.WALK_COMPLETED` — completed walks for loads.
    DtlbLoadWalkCompleted,
    /// `DTLB_STORE_MISSES.WALK_COMPLETED` — completed walks for stores.
    DtlbStoreWalkCompleted,
    /// First-level TLB hits.
    TlbHitL1,
    /// Second-level (STLB) hits.
    TlbHitL2,
    /// TLB misses (a walk was required).
    TlbMiss,
    /// Page faults architecturally delivered.
    PageFault,
    /// Page faults suppressed by masking (paper property P1).
    SuppressedFault,
    /// Retired masked-load instructions.
    MaskedLoadRetired,
    /// Retired masked-store instructions.
    MaskedStoreRetired,
}

impl Event {
    /// Every modelled event, for iteration.
    pub const ALL: [Event; 10] = [
        Event::AssistsAny,
        Event::DtlbLoadWalkCompleted,
        Event::DtlbStoreWalkCompleted,
        Event::TlbHitL1,
        Event::TlbHitL2,
        Event::TlbMiss,
        Event::PageFault,
        Event::SuppressedFault,
        Event::MaskedLoadRetired,
        Event::MaskedStoreRetired,
    ];

    const fn index(self) -> usize {
        match self {
            Event::AssistsAny => 0,
            Event::DtlbLoadWalkCompleted => 1,
            Event::DtlbStoreWalkCompleted => 2,
            Event::TlbHitL1 => 3,
            Event::TlbHitL2 => 4,
            Event::TlbMiss => 5,
            Event::PageFault => 6,
            Event::SuppressedFault => 7,
            Event::MaskedLoadRetired => 8,
            Event::MaskedStoreRetired => 9,
        }
    }

    /// The conventional (Intel SDM-style) event mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Event::AssistsAny => "ASSISTS.ANY",
            Event::DtlbLoadWalkCompleted => "DTLB_LOAD_MISSES.WALK_COMPLETED",
            Event::DtlbStoreWalkCompleted => "DTLB_STORE_MISSES.WALK_COMPLETED",
            Event::TlbHitL1 => "DTLB.HIT_L1",
            Event::TlbHitL2 => "DTLB.HIT_L2",
            Event::TlbMiss => "DTLB.MISS",
            Event::PageFault => "FAULTS.DELIVERED",
            Event::SuppressedFault => "FAULTS.SUPPRESSED",
            Event::MaskedLoadRetired => "MASKED_LOAD.RETIRED",
            Event::MaskedStoreRetired => "MASKED_STORE.RETIRED",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A snapshot-capable counter bank.
#[derive(Clone, Default, Debug)]
pub struct PmcBank {
    counts: [u64; Event::ALL.len()],
}

impl PmcBank {
    /// A zeroed bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `event` by one.
    pub fn bump(&mut self, event: Event) {
        self.counts[event.index()] += 1;
    }

    /// Increments `event` by `n`.
    pub fn add(&mut self, event: Event, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Current value of `event`.
    #[must_use]
    pub fn read(&self, event: Event) -> u64 {
        self.counts[event.index()]
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        self.counts = [0; Event::ALL.len()];
    }

    /// Takes a snapshot for later delta computation.
    #[must_use]
    pub fn snapshot(&self) -> PmcSnapshot {
        PmcSnapshot {
            counts: self.counts,
        }
    }

    /// Per-event difference since `snapshot`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a counter moved backwards (would indicate
    /// an engine bug; counters are monotonic).
    #[must_use]
    pub fn delta(&self, snapshot: &PmcSnapshot) -> PmcDelta {
        let mut d = [0u64; Event::ALL.len()];
        for (i, slot) in d.iter_mut().enumerate() {
            debug_assert!(self.counts[i] >= snapshot.counts[i]);
            *slot = self.counts[i] - snapshot.counts[i];
        }
        PmcDelta { counts: d }
    }
}

/// An immutable snapshot of all counters.
#[derive(Clone, Copy, Debug)]
pub struct PmcSnapshot {
    counts: [u64; Event::ALL.len()],
}

/// Differences between two points in time.
#[derive(Clone, Copy, Debug)]
pub struct PmcDelta {
    counts: [u64; Event::ALL.len()],
}

impl PmcDelta {
    /// The delta of `event`.
    #[must_use]
    pub fn get(&self, event: Event) -> u64 {
        self.counts[event.index()]
    }
}

impl fmt::Display for PmcDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for event in Event::ALL {
            let v = self.get(event);
            if v != 0 {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}={v}", event.mnemonic())?;
            }
        }
        if first {
            write!(f, "no events")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_read() {
        let mut bank = PmcBank::new();
        bank.bump(Event::AssistsAny);
        bank.bump(Event::AssistsAny);
        bank.add(Event::TlbMiss, 5);
        assert_eq!(bank.read(Event::AssistsAny), 2);
        assert_eq!(bank.read(Event::TlbMiss), 5);
        assert_eq!(bank.read(Event::PageFault), 0);
    }

    #[test]
    fn snapshot_delta() {
        let mut bank = PmcBank::new();
        bank.add(Event::DtlbLoadWalkCompleted, 3);
        let snap = bank.snapshot();
        bank.add(Event::DtlbLoadWalkCompleted, 2);
        bank.bump(Event::SuppressedFault);
        let d = bank.delta(&snap);
        assert_eq!(d.get(Event::DtlbLoadWalkCompleted), 2);
        assert_eq!(d.get(Event::SuppressedFault), 1);
        assert_eq!(d.get(Event::AssistsAny), 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut bank = PmcBank::new();
        bank.bump(Event::PageFault);
        bank.reset();
        assert_eq!(bank.read(Event::PageFault), 0);
    }

    #[test]
    fn delta_display_lists_nonzero() {
        let mut bank = PmcBank::new();
        let snap = bank.snapshot();
        bank.bump(Event::AssistsAny);
        let text = bank.delta(&snap).to_string();
        assert!(text.contains("ASSISTS.ANY=1"));
        let empty = bank.delta(&bank.snapshot()).to_string();
        assert_eq!(empty, "no events");
    }

    #[test]
    fn mnemonics_match_paper() {
        assert_eq!(Event::AssistsAny.mnemonic(), "ASSISTS.ANY");
        assert_eq!(
            Event::DtlbLoadWalkCompleted.mnemonic(),
            "DTLB_LOAD_MISSES.WALK_COMPLETED"
        );
    }
}
