//! Table-driven standard-normal sampler (Marsaglia–Tsang ziggurat).
//!
//! The v2 observables regime replaces the per-sample Box–Muller
//! transform (one `ln`, one `sqrt`, one `cos` and two uniform draws per
//! sample) with the 256-layer ziggurat: in the ~98.8 % common case a
//! sample costs a single 64-bit RNG draw, one table lookup and one
//! multiply — no transcendentals. The rare wedge/tail cases fall back
//! to exact rejection sampling, so the produced distribution is the
//! standard normal to floating-point accuracy, not an approximation.
//!
//! The tables are built once at first use ([`tables`]) from the
//! published 256-layer constants `R` and `V`; the moment and tail
//! property tests in `noise_props.rs` pin the output distribution.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let tables = avx_uarch::ziggurat::tables();
//! let n = 100_000;
//! let mean: f64 = (0..n).map(|_| tables.sample(&mut rng)).sum::<f64>() / n as f64;
//! assert!(mean.abs() < 0.02);
//! ```

use std::sync::OnceLock;

use rand::Rng;

/// Number of ziggurat layers.
const LAYERS: usize = 256;

/// Rightmost layer edge of the 256-layer standard-normal ziggurat
/// (Marsaglia & Tsang; the tail starts here).
const R: f64 = 3.654_152_885_361_009;

/// Common area of every layer (rectangle, plus base strip + tail for
/// layer 0) of the 256-layer standard-normal ziggurat.
const V: f64 = 0.004_928_673_233_992_336;

/// The standard-normal density without its normalizing constant:
/// `f(x) = exp(-x²/2)`.
#[inline]
fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

/// Precomputed layer tables: `x[i]` are the layer edges (decreasing,
/// `x[0] = V / f(R)` spans the base strip, `x[LAYERS] = 0`), `f[i]`
/// their densities.
#[derive(Debug)]
pub struct Tables {
    x: [f64; LAYERS + 1],
    f: [f64; LAYERS + 1],
}

impl Tables {
    /// Builds the tables from `R` and `V` by the standard downward
    /// recurrence `f(x[i+1]) = f(x[i]) + V / x[i]`.
    fn build() -> Self {
        let mut x = [0.0; LAYERS + 1];
        let mut f = [0.0; LAYERS + 1];
        x[0] = V / pdf(R);
        x[1] = R;
        f[0] = pdf(x[0]);
        f[1] = pdf(R);
        for i in 2..LAYERS {
            // Clamp: accumulated rounding can push the density a hair
            // past 1.0 near the mode, whose ln would go NaN.
            let fi = (f[i - 1] + V / x[i - 1]).min(1.0);
            x[i] = (-2.0 * fi.ln()).max(0.0).sqrt();
            f[i] = fi;
        }
        x[LAYERS] = 0.0;
        f[LAYERS] = 1.0;
        Self { x, f }
    }

    /// Draws one standard-normal sample.
    ///
    /// Layout of the single hot-path draw: low 8 bits pick the layer,
    /// the top 53 bits form the uniform position within it (the same
    /// 53-bit mantissa convention as the `rand` shim's `f64` draw).
    #[inline]
    pub fn sample<R2: Rng + ?Sized>(&self, rng: &mut R2) -> f64 {
        loop {
            let bits = rng.next_u64();
            let i = (bits & 0xff) as usize;
            // Uniform in [0, 1) from the top 53 bits, then (-1, 1).
            let u = 2.0 * ((bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) - 1.0;
            let x = u * self.x[i];
            if x.abs() < self.x[i + 1] {
                return x; // strictly inside the layer: accept
            }
            if i == 0 {
                return self.tail(rng, x.is_sign_negative());
            }
            // Wedge: accept against the true density.
            let y: f64 = rng.gen();
            if self.f[i + 1] + (self.f[i] - self.f[i + 1]) * y < pdf(x) {
                return x;
            }
        }
    }

    /// Exact samples from the normal tail beyond `R` (Marsaglia's
    /// exponential-rejection method). `u = 0` draws produce infinities
    /// that fail the acceptance test, so the loop is total without any
    /// open-interval fix-up.
    #[inline(never)]
    fn tail<R2: Rng + ?Sized>(&self, rng: &mut R2, negative: bool) -> f64 {
        loop {
            let u1: f64 = rng.gen();
            let u2: f64 = rng.gen();
            let x = -u1.ln() / R;
            let y = -u2.ln();
            if 2.0 * y > x * x {
                let t = R + x;
                return if negative { -t } else { t };
            }
        }
    }
}

/// The process-wide ziggurat tables, built on first use. Hot loops
/// fetch this once per noise block so the per-sample cost is the table
/// lookup alone.
#[must_use]
pub fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(Tables::build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layer_edges_decrease_from_base_to_mode() {
        let t = tables();
        assert!(t.x[0] > R, "base strip edge spans past R: {}", t.x[0]);
        assert_eq!(t.x[1], R);
        for i in 1..LAYERS {
            assert!(t.x[i] > t.x[i + 1], "x[{i}] {} > x[{}]", t.x[i], i + 1);
        }
        assert_eq!(t.x[LAYERS], 0.0);
        // Densities increase toward the mode and end at f(0) = 1.
        for i in 0..LAYERS {
            assert!(t.f[i] < t.f[i + 1] + 1e-15, "f[{i}]");
        }
        assert_eq!(t.f[LAYERS], 1.0);
        // The recurrence must land on the published table's final edge
        // (X[255] of the canonical 256-layer normal ziggurat).
        assert!(
            (t.x[LAYERS - 1] - 0.215_241_895_9).abs() < 1e-9,
            "x[255] = {}",
            t.x[LAYERS - 1]
        );
    }

    #[test]
    fn moments_match_the_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = tables();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| t.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let skew = samples.iter().map(|x| x.powi(3)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
    }

    #[test]
    fn tail_mass_beyond_r_matches_the_normal() {
        // P(|X| > R) for R = 3.654... is ≈ 2.58e-4; at n = 400k expect
        // ≈ 103 tail samples. A broken tail path would yield 0 or a
        // wildly different count.
        let mut rng = StdRng::seed_from_u64(77);
        let t = tables();
        let n = 400_000;
        let tail = (0..n).filter(|_| t.sample(&mut rng).abs() > R).count();
        assert!(
            (30..400).contains(&tail),
            "tail count {tail} out of plausible range"
        );
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let t = tables();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut a), t.sample(&mut b));
        }
    }
}
