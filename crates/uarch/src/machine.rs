//! The execution engine: one simulated core running masked ops.
//!
//! [`Machine`] owns an [`AddressSpace`] plus the translation caches and
//! counters, and executes [`MaskedOp`]s with the timing semantics the
//! paper measures:
//!
//! * valid, accessible, TLB-hit access → base cost only (Fig. 2 USER-M),
//! * invalid or inaccessible translation → microcode assist, faults
//!   suppressed for masked-out lanes (P1), retried walks for non-present
//!   pages (Fig. 2 PMC column),
//! * masked store to a clean writable page → dirty-bit assist whose cost
//!   equals the kernel-mapped load cost (the §IV-B calibration identity),
//! * TLB hit vs miss and walk depth modulate latency (P2–P4),
//! * masked stores run ~16–18 cycles faster than loads under assist (P6).

use rand::rngs::StdRng;
use rand::SeedableRng;

use avx_mmu::{
    AddressSpace, Level, PagingStructureCache, ShadowIndex, ShadowWalk, Tlb, TlbEntry, TlbLookup,
    VirtAddr, WalkOutcome, Walker,
};

use crate::defense::VictimDefense;
use crate::lines::PteLineCache;
use crate::masked::{ElemWidth, Fault, MaskedOp, OpKind};
use crate::memory::SparseMemory;
use crate::noise::{NoiseModel, NoiseSchedule};
use crate::observables::ObservablesVersion;
use crate::pmc::{Event, PmcBank};
use crate::profile::CpuProfile;
use crate::sched::VictimSchedule;

/// Noise-block length of the v2 batched path: how many consecutive
/// probes share one precomputed block of noise samples. Pinned equal to
/// the probe pipeline's batch tile (`ProbeStrategy::BATCH_TILE` in
/// `avx-channel`, asserted by a cross-crate test there) so blocks align
/// with `AddrRange::tiles()` and every sweep engine fills whole blocks.
pub const NOISE_BLOCK: usize = 16;

/// Result of executing one masked operation.
#[derive(Clone, Debug)]
pub struct MaskedOutcome {
    /// Measured latency in cycles (noise included).
    pub cycles: u64,
    /// Architecturally delivered fault, if any unmasked lane touched a
    /// bad page. `None` for suppressed (masked-out) problems.
    pub fault: Option<Fault>,
    /// A microcode assist fired (invalid/inaccessible translation).
    pub assist: bool,
    /// The dirty-bit assist fired (store to a clean writable page).
    pub dirty_assist: bool,
    /// Completed page-table walks during this op.
    pub walks_completed: u8,
    /// TLB outcome for the first touched page (`None` = miss/bypass).
    pub tlb_hit: Option<TlbLookup>,
    /// Walk-termination level for the first touched page, when a walk ran.
    pub terminal_level: Option<Level>,
    /// Loaded bytes (loads only): `lanes × width` bytes, zeros in
    /// masked-out lanes, zeros for suppressed pages.
    pub data: Option<Vec<u8>>,
}

/// Per-page translation verdict, internal to the engine.
struct PageVerdict {
    present: bool,
    user: bool,
    writable: bool,
    dirty: bool,
    phys_frame: Option<u64>,
    tlb_hit: Option<TlbLookup>,
    terminal_level: Option<Level>,
    walks: u8,
    cycles: f64,
}

/// Running per-op accounting shared by the scalar ([`Machine::execute`])
/// and batched ([`Machine::execute_batch`]) paths — one source of truth
/// for the timing/PMC/assist semantics, so the two paths cannot drift.
struct OpAccounting {
    cycles: f64,
    assist: bool,
    dirty_assist: bool,
    walks_total: u8,
    user_nonpresent: bool,
    primary_tlb: Option<TlbLookup>,
    primary_level: Option<Level>,
    first_page_seen: bool,
}

impl OpAccounting {
    fn new(base_cycles: f64) -> Self {
        Self {
            cycles: base_cycles,
            assist: false,
            dirty_assist: false,
            walks_total: 0,
            user_nonpresent: false,
            primary_tlb: None,
            primary_level: None,
            first_page_seen: false,
        }
    }
}

/// One simulated core: address space + TLB + PSC + PTE-line cache +
/// counters + clock.
///
/// ```
/// use avx_uarch::{CpuProfile, Machine, MaskedOp};
/// use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
///
/// # fn main() -> Result<(), avx_mmu::MmuError> {
/// let mut space = AddressSpace::new();
/// let page = VirtAddr::new(0x5555_5555_4000)?;
/// space.map(page, PageSize::Size4K, PteFlags::user_rw())?;
///
/// let mut m = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, 42);
/// let out = m.execute(MaskedOp::probe_load(page));
/// assert!(out.fault.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    profile: CpuProfile,
    space: AddressSpace,
    tlb: Tlb,
    psc: PagingStructureCache,
    lines: PteLineCache,
    walker: Walker,
    /// Epoch-cached shadow translation index; rebuilt lazily whenever
    /// the address space's *walk shape* mutates (keyed on
    /// [`AddressSpace::shape_epoch`] — flags-only PTE rewrites such as
    /// A/D-bit settling deliberately do not invalidate it, because the
    /// index reads entry values live).
    shadow: Option<ShadowIndex>,
    /// Interval cursor of the last shadow lookup — sweeps touch
    /// consecutive intervals, making the common lookup O(1).
    shadow_hint: usize,
    /// `false` forces the reference walker (the bit-exactness property
    /// suites compare the two paths).
    shadow_enabled: bool,
    pmc: PmcBank,
    mem: SparseMemory,
    noise: NoiseModel,
    /// Probe-indexed noise trajectory ([`crate::NoiseProfile::Drift`]):
    /// when set, each executed op draws its noise from
    /// [`NoiseSchedule::model_at`] instead of the stationary model.
    schedule: Option<NoiseSchedule>,
    /// Ops executed so far — the index the schedule interpolates on.
    probe_seq: u64,
    /// Which noise-observables regime the machine runs under:
    /// [`ObservablesVersion::V1`] (default) reproduces the historical
    /// per-sample Box–Muller stream bit-for-bit; V2 draws the same
    /// distribution through the batched ziggurat kernel.
    observables: ObservablesVersion,
    /// Victim-side ASLR defenses ([`crate::defense`]). `None` — the
    /// default — is the bit-exact undefended engine: no per-op check
    /// beyond one `Option` discriminant read, no RNG interaction, no
    /// translation rewriting.
    defense: Option<VictimDefense>,
    /// Event-driven victim environment ([`crate::sched`]). `None` —
    /// the default — is the bit-exact open-loop engine: no clock
    /// reads, no per-op work beyond one `Option` discriminant read.
    sched: Option<VictimSchedule>,
    rng: StdRng,
    tsc: u64,
}

impl Machine {
    /// Creates a machine over `space` with the profile's caches and noise.
    #[must_use]
    pub fn new(profile: CpuProfile, space: AddressSpace, seed: u64) -> Self {
        let tlb = Tlb::new(profile.tlb);
        let psc = PagingStructureCache::new(profile.psc);
        let noise = NoiseModel::new(
            profile.timing.noise_sigma,
            profile.timing.spike_prob,
            profile.timing.spike_range,
        );
        Self {
            profile,
            space,
            tlb,
            psc,
            lines: PteLineCache::default(),
            walker: Walker::new(),
            shadow: None,
            shadow_hint: 0,
            shadow_enabled: true,
            pmc: PmcBank::new(),
            mem: SparseMemory::new(),
            noise,
            schedule: None,
            probe_seq: 0,
            observables: ObservablesVersion::V1,
            defense: None,
            sched: None,
            rng: StdRng::seed_from_u64(seed),
            tsc: 0,
        }
    }

    /// The CPU profile in use.
    #[must_use]
    pub fn profile(&self) -> &CpuProfile {
        &self.profile
    }

    /// Read access to the address space.
    #[must_use]
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable access to the address space (OS-model surgery). Note that
    /// changing mappings does **not** flush the TLB — exactly like
    /// hardware; call [`Machine::invlpg`] as an OS would.
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// The performance counters.
    #[must_use]
    pub fn pmc(&self) -> &PmcBank {
        &self.pmc
    }

    /// Mutable counters (reset between experiments).
    pub fn pmc_mut(&mut self) -> &mut PmcBank {
        &mut self.pmc
    }

    /// Cumulative cycle count of executed operations.
    #[must_use]
    pub fn elapsed_cycles(&self) -> u64 {
        self.tsc
    }

    /// Advances the clock without executing anything (models attack loop
    /// overhead around the timed instruction).
    pub fn spend_cycles(&mut self, cycles: u64) {
        self.tsc += cycles;
    }

    /// Replaces the noise model (tests use [`NoiseModel::none`]) and
    /// clears any drift schedule: an explicit model is stationary.
    pub fn set_noise(&mut self, noise: NoiseModel) {
        self.noise = noise;
        self.schedule = None;
    }

    /// The active stationary noise model (for a drifting environment,
    /// the model in effect before the ramp's onset).
    #[must_use]
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// Installs (or clears) a probe-indexed noise trajectory. The
    /// schedule interpolates on the machine's op counter, so a freshly
    /// built victim drifts at the same point of every identically-seeded
    /// attack run.
    pub fn set_noise_schedule(&mut self, schedule: Option<NoiseSchedule>) {
        self.schedule = schedule;
    }

    /// The installed noise trajectory, if the environment drifts.
    #[must_use]
    pub fn noise_schedule(&self) -> Option<NoiseSchedule> {
        self.schedule
    }

    /// The noise model for the op about to execute, advancing the
    /// probe-sequence counter. With no schedule this is exactly the
    /// stationary model — same draws, same RNG stream, bit-exact with
    /// the pre-drift engine.
    fn next_noise(&mut self) -> NoiseModel {
        let model = match &self.schedule {
            Some(s) => s.model_at(self.probe_seq),
            None => self.noise,
        };
        self.probe_seq += 1;
        model
    }

    /// Selects the noise-observables regime. V1 (the construction
    /// default) is the bit-exact historical stream; V2 is the batched
    /// ziggurat kernel — same distribution, different (cheaper) draws.
    /// Switching mid-run is supported but changes the stream from that
    /// point on, so campaigns set it once at machine construction.
    pub fn set_observables(&mut self, observables: ObservablesVersion) {
        self.observables = observables;
    }

    /// The active noise-observables regime.
    #[must_use]
    pub fn observables(&self) -> ObservablesVersion {
        self.observables
    }

    /// Applies measurement noise to one op's deterministic cycle cost —
    /// the single dispatch point between the v1 and v2 regimes for the
    /// scalar path (the v2 batch path pre-draws whole noise blocks but
    /// consumes the RNG in the same per-sample order, so scalar and
    /// batched v2 streams stay bit-identical).
    fn measure_cycles(&mut self, cycles: f64) -> u64 {
        match self.observables {
            ObservablesVersion::V1 => self.next_noise().perturb(&mut self.rng, cycles),
            ObservablesVersion::V2 => {
                let model = match &self.schedule {
                    Some(s) => s.model_at(self.probe_seq),
                    None => self.noise,
                };
                self.probe_seq += 1;
                (cycles + model.sample_v2(&mut self.rng)).round().max(1.0) as u64
            }
        }
    }

    /// Switches to a named noise environment: the preset's factors are
    /// applied to this machine's profile baseline anchors. A
    /// [`crate::NoiseProfile::Drift`] profile additionally installs its
    /// probe-indexed [`NoiseSchedule`] (see
    /// [`Machine::set_noise_schedule`]); stationary presets clear it.
    ///
    /// ```
    /// use avx_mmu::AddressSpace;
    /// use avx_uarch::{CpuProfile, Machine, NoiseProfile};
    ///
    /// let mut machine = Machine::new(
    ///     CpuProfile::alder_lake_i5_12400f(),
    ///     AddressSpace::new(),
    ///     7,
    /// );
    /// machine.set_noise_profile(NoiseProfile::LaptopDvfs);
    /// assert_eq!(
    ///     machine.noise(),
    ///     NoiseProfile::LaptopDvfs.model_for(&machine.profile().timing),
    /// );
    /// ```
    pub fn set_noise_profile(&mut self, profile: crate::noise::NoiseProfile) {
        self.noise = profile.model_for(&self.profile.timing);
        self.schedule = profile.schedule_for(&self.profile.timing);
    }

    /// Installs (or removes) the victim-side defense layer. Installing
    /// `None` — or never calling this — is the bit-exact undefended
    /// engine; a defended machine defends its *own* address space (the
    /// campaign layer hands every machine a copy-on-write snapshot, so
    /// shared fixtures are never touched).
    pub fn set_defense(&mut self, defense: Option<VictimDefense>) {
        self.defense = defense.filter(VictimDefense::is_active);
    }

    /// The installed defense layer, if any.
    #[must_use]
    pub fn defense(&self) -> Option<&VictimDefense> {
        self.defense.as_ref()
    }

    /// Completed live re-randomization events across all protected
    /// images (0 without a [`crate::defense::Rerandomizer`]).
    #[must_use]
    pub fn rerandomizations(&self) -> u64 {
        self.defense.as_ref().map_or(0, |d| d.rerandomizations)
    }

    /// The defense's view of an attacker-issued page address: masked
    /// translation rewrites it, everything else (and the undefended
    /// machine) is identity.
    #[inline]
    fn defended_page(&self, page: VirtAddr) -> VirtAddr {
        match &self.defense {
            Some(d) => d.masked(page),
            None => page,
        }
    }

    /// Advances every live re-randomizer by one executed op; on a
    /// firing, performs the TLB shootdown an OS would after moving the
    /// image (non-global flush + paging-structure caches). Runs before
    /// the op's translations, so a firing is visible to the very op
    /// that triggered it — the mid-scan race the defense creates.
    #[inline]
    fn defense_tick(&mut self) {
        let Some(defense) = &mut self.defense else {
            return;
        };
        if defense.rerandomizers.is_empty() {
            return;
        }
        let mut fired = false;
        for r in &mut defense.rerandomizers {
            if r.tick(&mut self.space) {
                defense.rerandomizations += 1;
                fired = true;
            }
        }
        if fired {
            self.tlb.flush(false);
            self.psc.flush_all();
        }
    }

    /// Installs (or removes) the victim's event schedule. Installing
    /// `None` — or never calling this, or installing a schedule with
    /// an empty queue — is the bit-exact open-loop engine: the per-op
    /// hook reduces to one `Option` discriminant read and the machine
    /// never reads the virtual wall clock at all.
    pub fn set_victim_schedule(&mut self, sched: Option<VictimSchedule>) {
        self.sched = sched.filter(VictimSchedule::is_active);
    }

    /// The installed victim schedule, if the environment is
    /// event-driven.
    #[must_use]
    pub fn victim_schedule(&self) -> Option<&VictimSchedule> {
        self.sched.as_ref()
    }

    /// Advances the victim's wall clock by one observed op and applies
    /// any due events. Runs before [`Machine::defense_tick`] at every
    /// op site (scalar and both batch paths): environment events are
    /// the world the op executes in, defenses react inside that world.
    #[inline]
    fn sched_tick(&mut self) {
        if self.sched.is_some() {
            self.sched_advance();
        }
    }

    /// The out-of-line slow path of [`Machine::sched_tick`]: pops all
    /// due events in `(tick, insertion-seq)` order and routes their
    /// effects through the existing chokepoints — noise-shaped events
    /// re-resolve the stationary model via [`Machine::set_noise`] (the
    /// same swap site every preset change uses), space-shaped events
    /// mutate [`Machine::space`] through `map`/`unmap` (`write_entry`)
    /// followed by the same TLB shootdown a defense firing performs.
    fn sched_advance(&mut self) {
        let due = self.sched.as_mut().is_some_and(VictimSchedule::advance_op);
        if !due {
            return;
        }
        let mut sched = self.sched.take().expect("checked due above");
        let mut noise_dirty = false;
        let mut space_dirty = false;
        while let Some(event) = sched.pop_due() {
            noise_dirty |= sched.apply_env_event(event);
            space_dirty |= sched.apply_space_event(event, &mut self.space);
        }
        if noise_dirty {
            let model = sched.effective_model(&self.profile.timing);
            self.set_noise(model);
        }
        if space_dirty {
            self.tlb.flush(false);
            self.psc.flush_all();
        }
        self.sched = Some(sched);
    }

    /// Flushes the whole TLB (CR3 reload). Global entries survive when
    /// `keep_global`.
    pub fn flush_tlb(&mut self, keep_global: bool) {
        self.tlb.flush(keep_global);
        if !keep_global {
            self.psc.flush_all();
        }
    }

    /// `INVLPG`: invalidates the TLB entry and paging-structure-cache
    /// entries for `va`. PTE lines stay in the data caches (they are
    /// ordinary memory), matching the §III-B P3 experiment setup.
    pub fn invlpg(&mut self, va: VirtAddr) {
        self.tlb.invlpg(va);
        self.psc.invlpg(va);
    }

    /// User-level eviction of the translation for `va` (Gras-style): the
    /// attacker touches thousands of own pages, which as a side effect
    /// also thrashes the paging-structure caches and the cached PTE
    /// lines. This is the "TLB eviction to reduce noise" of the paper's
    /// TLB attack (P4) and produces the *cold-walk* timings (381 cycles
    /// in §III-B, the ≈430-cycle idle band of Fig. 6).
    pub fn evict_translation(&mut self, va: VirtAddr) {
        // The eviction targets the translation the attacker's probes
        // actually exercise — under masked translation, the masked one.
        let va = self.defended_page(va);
        self.tlb.evict_address(va);
        self.psc.flush_all();
        self.lines.flush();
    }

    /// Disables (or re-enables) the shadow translation index, forcing
    /// every walk through the reference [`Walker`]. The two paths are
    /// observably identical — this switch exists so the property suites
    /// can *prove* that by running both against the same op sequence.
    pub fn set_shadow_enabled(&mut self, enabled: bool) {
        self.shadow_enabled = enabled;
    }

    /// One page-table walk through the shadow fast path (rebuilding the
    /// index if the space mutated) or the reference walker.
    fn walk_shadowed(&mut self, va: VirtAddr, use_psc: bool) -> WalkOutcome {
        if self.shadow_enabled {
            let current = matches!(&self.shadow, Some(s) if s.is_current(&self.space));
            if !current {
                self.shadow = Some(ShadowIndex::build(&self.space));
            }
            let shadow = self.shadow.as_ref().expect("just built");
            let psc = if use_psc { Some(&mut self.psc) } else { None };
            shadow.walk_hinted(&self.space, va, psc, &mut self.shadow_hint)
        } else if use_psc {
            self.walker.walk_with_psc(&self.space, va, &mut self.psc)
        } else {
            self.walker.walk(&self.space, va)
        }
    }

    /// Accessed/Dirty maintenance after a successful translation. The
    /// slow path re-walks to the leaf on every probe; in steady state
    /// the bits are already set, so consult the shadow index's terminal
    /// slot first and skip the (no-op) write entirely.
    fn mark_accessed_shadowed(&mut self, page: VirtAddr, write: bool) {
        if self.shadow_enabled {
            if let Some(shadow) = self.shadow.as_ref().filter(|s| s.is_current(&self.space)) {
                let (table, idx) = shadow.terminal_slot(page, &mut self.shadow_hint);
                let entry = self.space.table(table).entry(idx);
                let mut need = avx_mmu::PteFlags::ACCESSED;
                if write {
                    need |= avx_mmu::PteFlags::DIRTY;
                }
                if entry.is_present() && entry.flags().contains(need) {
                    return; // already set: the write below would no-op
                }
            }
        }
        let _ = self.space.mark_accessed(page, write);
    }

    /// Simulates the *kernel itself* using the page at `va` (syscall,
    /// interrupt handler, driver code): the translation is walked and
    /// cached in the shared TLB with its true (supervisor) permissions.
    /// Drives the Fig. 6 user-behaviour signal and the FLARE bypass.
    pub fn touch_as_kernel(&mut self, va: VirtAddr) {
        let walk = self.walk_shadowed(va, true);
        for (table, idx) in walk.accesses.iter() {
            let _ = self.lines.touch(table, idx);
        }
        if let Some(mapping) = walk.mapping {
            self.tlb.insert(TlbEntry {
                vpn: va.as_u64() >> mapping.size.shift(),
                size: mapping.size,
                pfn: mapping.phys.frame_number(),
                perms: walk.perms,
            });
        }
    }

    /// Convenience probe: executes an all-zero-mask op and returns the
    /// measured cycles. This is the attack's innermost loop.
    pub fn probe(&mut self, kind: OpKind, addr: VirtAddr) -> u64 {
        let op = match kind {
            OpKind::Load => MaskedOp::probe_load(addr),
            OpKind::Store => MaskedOp::probe_store(addr),
        };
        self.execute(op).cycles
    }

    /// Batched probe: executes one all-zero-mask op per address and
    /// returns the measured cycles in input order.
    ///
    /// Observably identical to calling [`Machine::probe`] once per
    /// address — same translation-cache evolution, same performance
    /// counters, same noise stream — but the per-op bookkeeping of
    /// [`Machine::execute`] is amortized away: no [`MaskedOutcome`] is
    /// materialized and no lane-transfer buffer is allocated (an
    /// all-zero mask moves no data), which is what makes large
    /// Fig. 4/5/7-style sweeps fast.
    pub fn execute_batch(&mut self, kind: OpKind, addrs: &[VirtAddr]) -> Vec<u64> {
        let mut out = Vec::with_capacity(addrs.len());
        self.execute_batch_into(kind, addrs, &mut out);
        out
    }

    /// Allocation-free variant of [`Machine::execute_batch`]: appends
    /// one measurement per address to `out`, reusing its capacity.
    /// Sweep engines thread one scratch buffer through every tile, so
    /// the steady-state probe loop performs no heap allocation at all.
    pub fn execute_batch_into(&mut self, kind: OpKind, addrs: &[VirtAddr], out: &mut Vec<u64>) {
        if self.observables == ObservablesVersion::V2 {
            return self.execute_batch_into_v2(kind, addrs, out);
        }
        let t = self.profile.timing;
        let (retired_event, walk_event, base) = match kind {
            OpKind::Load => (
                Event::MaskedLoadRetired,
                Event::DtlbLoadWalkCompleted,
                t.base_load,
            ),
            OpKind::Store => (
                Event::MaskedStoreRetired,
                Event::DtlbStoreWalkCompleted,
                t.base_store,
            ),
        };
        // Footprint of the probe ops built by `MaskedOp::probe_load` /
        // `probe_store`: 8 dword lanes, so the last lane starts 28 bytes
        // past the base address.
        let last_lane_offset = 7 * ElemWidth::Dword.bytes();

        out.reserve(addrs.len());
        for &addr in addrs {
            self.sched_tick();
            self.defense_tick();
            self.pmc.bump(retired_event);
            let mut acc = OpAccounting::new(base);

            // The zero mask means no lane is unmasked, so `visit_page`
            // can never report a fault on this path.
            let first_page = addr.align_down(4096);
            let last_page = addr.wrapping_add(last_lane_offset).align_down(4096);
            let _ = self.visit_page(kind, first_page, false, &mut acc, None);
            if last_page != first_page {
                let _ = self.visit_page(kind, last_page, false, &mut acc, None);
            }

            if acc.user_nonpresent && kind == OpKind::Load {
                acc.cycles += t.user_nonpresent_load_extra;
            }
            self.pmc.add(walk_event, u64::from(acc.walks_total));
            let measured = self.next_noise().perturb(&mut self.rng, acc.cycles);
            self.tsc += measured;
            out.push(measured);
        }
    }

    /// The v2 batched hot path: probes are processed in
    /// [`NOISE_BLOCK`]-sized chunks, each chunk's noise pre-drawn into
    /// one stack block by the ziggurat kernel ([`NoiseModel::fill_block`])
    /// before the translation loop consumes it. Translation never
    /// touches the RNG, so pre-drawing preserves the per-sample stream:
    /// a v2 batch is bit-identical to the same probes run through the
    /// v2 scalar path (asserted by `execute_batch_matches_scalar_*`).
    /// Retired-op PMC bumps are aggregated per chunk — batch callers
    /// have no mid-batch observation point, so the post-batch counter
    /// values are unchanged.
    fn execute_batch_into_v2(&mut self, kind: OpKind, addrs: &[VirtAddr], out: &mut Vec<u64>) {
        let t = self.profile.timing;
        let (retired_event, walk_event, base) = match kind {
            OpKind::Load => (
                Event::MaskedLoadRetired,
                Event::DtlbLoadWalkCompleted,
                t.base_load,
            ),
            OpKind::Store => (
                Event::MaskedStoreRetired,
                Event::DtlbStoreWalkCompleted,
                t.base_store,
            ),
        };
        let last_lane_offset = 7 * ElemWidth::Dword.bytes();

        out.reserve(addrs.len());
        let mut block = [0.0f64; NOISE_BLOCK];
        for chunk in addrs.chunks(NOISE_BLOCK) {
            let noise = &mut block[..chunk.len()];
            self.fill_noise_block(noise);
            self.pmc.add(retired_event, chunk.len() as u64);
            for (i, &addr) in chunk.iter().enumerate() {
                self.sched_tick();
                self.defense_tick();
                let mut acc = OpAccounting::new(base);
                let first_page = addr.align_down(4096);
                let last_page = addr.wrapping_add(last_lane_offset).align_down(4096);
                let _ = self.visit_page(kind, first_page, false, &mut acc, None);
                if last_page != first_page {
                    let _ = self.visit_page(kind, last_page, false, &mut acc, None);
                }

                if acc.user_nonpresent && kind == OpKind::Load {
                    acc.cycles += t.user_nonpresent_load_extra;
                }
                self.pmc.add(walk_event, u64::from(acc.walks_total));
                let measured = (acc.cycles + noise[i]).round().max(1.0) as u64;
                self.tsc += measured;
                out.push(measured);
            }
        }
    }

    /// Fills one noise block in per-sample order, advancing the probe
    /// sequence by the block length. A drifting schedule resolves its
    /// model per probe index — block boundaries never quantize the
    /// ramp, so the drift trajectory is identical whether the sweep
    /// probes scalar or batched (the block-boundary consistency
    /// property in `noise_props.rs`).
    fn fill_noise_block(&mut self, out: &mut [f64]) {
        match self.schedule {
            None => {
                let model = self.noise;
                model.fill_block(&mut self.rng, out);
            }
            Some(s) => {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = s
                        .model_at(self.probe_seq + i as u64)
                        .sample_v2(&mut self.rng);
                }
            }
        }
        self.probe_seq += out.len() as u64;
    }

    /// Translates and accounts one touched page of a masked op — the
    /// shared per-page core of [`Machine::execute`] and
    /// [`Machine::execute_batch`]. Returns the fault to deliver when an
    /// *unmasked* lane touched a bad page.
    fn visit_page(
        &mut self,
        kind: OpKind,
        page: VirtAddr,
        has_unmasked: bool,
        acc: &mut OpAccounting,
        ok_pages: Option<&mut Vec<(VirtAddr, u64)>>,
    ) -> Option<Fault> {
        // The single defense chokepoint of every attacker-issued op:
        // scalar, v1-batch and v2-batch paths all translate through
        // here, so masked translation rewrites the walked (and
        // TLB-/shadow-indexed) address in one place. Kernel-side
        // accesses (`touch_as_kernel`) keep the unmasked view.
        let page = self.defended_page(page);
        let t = self.profile.timing;
        let verdict = self.translate_page(page);
        acc.cycles += verdict.cycles;
        acc.walks_total += verdict.walks;
        if !acc.first_page_seen {
            acc.first_page_seen = true;
            acc.primary_tlb = verdict.tlb_hit;
            acc.primary_level = verdict.terminal_level;
        }

        let accessible =
            verdict.present && verdict.user && (kind == OpKind::Load || verdict.writable);
        if accessible {
            if kind == OpKind::Store && !verdict.dirty && !acc.dirty_assist {
                // First store to a clean page: dirty-bit microcode
                // assist, regardless of the mask (the assist must
                // inspect the mask to know whether D may be set).
                acc.dirty_assist = true;
                acc.cycles += self.profile.dirty_assist();
                self.pmc.bump(Event::AssistsAny);
            }
            if let (Some(ok_pages), Some(frame)) = (ok_pages, verdict.phys_frame) {
                ok_pages.push((page, frame));
            }
            // A-bit maintenance; D only when lanes actually store.
            let writes = kind == OpKind::Store && has_unmasked;
            self.mark_accessed_shadowed(page, writes);
            if writes {
                self.tlb.set_dirty(page);
            }
            None
        } else if has_unmasked {
            // An unmasked lane touches a bad page: deliver #PF.
            Some(Fault {
                addr: page,
                write: kind == OpKind::Store,
                protection: verdict.present,
            })
        } else {
            // Bad page, all lanes masked: suppression via assist.
            if !acc.assist {
                acc.assist = true;
                acc.cycles += match kind {
                    OpKind::Load => t.assist_load,
                    OpKind::Store => t.assist_store,
                };
                self.pmc.bump(Event::AssistsAny);
            }
            if !verdict.present && !page.is_kernel_half() {
                acc.user_nonpresent = true;
            }
            self.pmc.bump(Event::SuppressedFault);
            None
        }
    }

    /// Executes one masked operation, advancing the clock.
    pub fn execute(&mut self, op: MaskedOp) -> MaskedOutcome {
        self.sched_tick();
        self.defense_tick();
        let retired_event = match op.kind {
            OpKind::Load => Event::MaskedLoadRetired,
            OpKind::Store => Event::MaskedStoreRetired,
        };
        self.pmc.bump(retired_event);

        let t = self.profile.timing;
        let mut acc = OpAccounting::new(match op.kind {
            OpKind::Load => t.base_load,
            OpKind::Store => t.base_store,
        });

        let pages = op.touched_pages();
        let mut fault: Option<Fault> = None;
        let mut ok_pages: Vec<(VirtAddr, u64)> = Vec::with_capacity(pages.len());

        for &(page, has_unmasked) in pages.iter() {
            let page_fault =
                self.visit_page(op.kind, page, has_unmasked, &mut acc, Some(&mut ok_pages));
            if fault.is_none() {
                fault = page_fault;
            }
        }

        if acc.user_nonpresent && op.kind == OpKind::Load {
            acc.cycles += t.user_nonpresent_load_extra;
        }

        if let Some(f) = fault {
            acc.cycles += t.fault_cost;
            self.pmc.bump(Event::PageFault);
            let measured = self.measure_cycles(acc.cycles);
            self.tsc += measured;
            return MaskedOutcome {
                cycles: measured,
                fault: Some(f),
                assist: acc.assist,
                dirty_assist: acc.dirty_assist,
                walks_completed: acc.walks_total,
                tlb_hit: acc.primary_tlb,
                terminal_level: acc.primary_level,
                data: None,
            };
        }

        let walk_event = match op.kind {
            OpKind::Load => Event::DtlbLoadWalkCompleted,
            OpKind::Store => Event::DtlbStoreWalkCompleted,
        };
        self.pmc.add(walk_event, u64::from(acc.walks_total));

        // Move the data for unmasked lanes on good pages.
        let data = self.transfer(&op, &ok_pages);

        let measured = self.measure_cycles(acc.cycles);
        self.tsc += measured;
        MaskedOutcome {
            cycles: measured,
            fault: None,
            assist: acc.assist,
            dirty_assist: acc.dirty_assist,
            walks_completed: acc.walks_total,
            tlb_hit: acc.primary_tlb,
            terminal_level: acc.primary_level,
            data,
        }
    }

    /// Translates one page, charging cycles for TLB/walk behaviour and
    /// updating the caches.
    fn translate_page(&mut self, page: VirtAddr) -> PageVerdict {
        let t = self.profile.timing;
        let bypass = self.profile.kernel_walks_uncached() && page.is_kernel_half();

        if !bypass {
            if let Some((entry, lookup)) = self.tlb.lookup(page) {
                self.pmc.bump(match lookup {
                    TlbLookup::L1 => Event::TlbHitL1,
                    TlbLookup::L2 => Event::TlbHitL2,
                });
                let extra = match lookup {
                    TlbLookup::L1 => 0.0,
                    TlbLookup::L2 => t.stlb_hit_extra,
                };
                return PageVerdict {
                    present: true,
                    user: entry.perms.user,
                    writable: entry.perms.writable,
                    dirty: entry.perms.dirty,
                    phys_frame: Some(entry.pfn),
                    tlb_hit: Some(lookup),
                    terminal_level: None,
                    walks: 0,
                    cycles: extra,
                };
            }
            self.pmc.bump(Event::TlbMiss);
        }

        // Walk. Non-present translations are re-walked while the assist
        // decides suppression (Fig. 2: 2 completed walks per probe).
        let (walk, mut cycles) = self.perform_walk(page, bypass);
        let mut walks: u8 = 1;

        if !walk.present_leaf {
            // Intel's suppression assist re-walks the translation
            // (Fig. 2: 2 completed walks). AMD shows no such retry —
            // mapped and unmapped kernel pages time identically (§IV-B).
            if !bypass {
                for _ in 1..t.nonpresent_retries.max(1) {
                    if walk.clean_replay {
                        // The first walk ran through the clean shadow
                        // replay, so the retry is fully determined (see
                        // `ShadowWalk::clean_replay`): it resumes from
                        // the deepest intermediate the first walk left
                        // in the PSC and re-reads only the terminal
                        // entry, whose line the first walk just made
                        // warm. A PML4-terminated walk has no resume
                        // point, so it alone pays the level extras.
                        // PSC/line replacement *order* is untouched —
                        // the retry would only refresh the entry that
                        // is already the most recent of its array.
                        cycles += t.walk_step_warm;
                        if walk.terminal_level == Level::Pml4 {
                            cycles += t.level_extra_pml4;
                        }
                    } else {
                        let retry = self.perform_walk(page, bypass);
                        cycles += retry.1;
                    }
                    walks += 1;
                }
            }
            return PageVerdict {
                present: false,
                user: false,
                writable: false,
                dirty: false,
                phys_frame: None,
                tlb_hit: None,
                terminal_level: Some(walk.terminal_level),
                walks,
                cycles,
            };
        }

        if !bypass {
            // Present translations are cached even when the permission
            // check will fail — the observable that keeps KERNEL-M at
            // zero walks in Fig. 2.
            self.tlb.insert(TlbEntry {
                vpn: page.as_u64() >> walk.page_size.shift(),
                size: walk.page_size,
                pfn: walk.frame_number,
                perms: walk.perms,
            });
        }
        PageVerdict {
            present: true,
            user: walk.perms.user,
            writable: walk.perms.writable,
            dirty: walk.perms.dirty,
            phys_frame: Some(walk.frame_number),
            tlb_hit: None,
            terminal_level: Some(walk.terminal_level),
            walks,
            cycles,
        }
    }

    /// One page-table walk with cycle accounting.
    ///
    /// The shadow path streams structure accesses straight into the
    /// line-cache cost model (no access-list or [`WalkOutcome`]
    /// materialization); the reference path produces the full outcome
    /// and charges the identical costs from its access list.
    fn perform_walk(&mut self, page: VirtAddr, bypass_psc: bool) -> (ShadowWalk, f64) {
        let t = self.profile.timing;
        let mut cycles = 0.0;

        let walk: ShadowWalk = if self.shadow_enabled {
            let current = matches!(&self.shadow, Some(s) if s.is_current(&self.space));
            if !current {
                self.shadow = Some(ShadowIndex::build(&self.space));
            }
            let shadow = self.shadow.as_ref().expect("just built");
            let lines = &mut self.lines;
            let mut on_access = |table, idx| {
                let warm = if bypass_psc {
                    // AMD kernel walks re-fetch structures each time.
                    false_warm_for_amd(lines, table, idx)
                } else {
                    lines.touch(table, idx)
                };
                cycles += if warm {
                    t.walk_step_warm
                } else {
                    t.walk_step_cold
                };
            };
            let psc = if bypass_psc {
                None
            } else {
                Some(&mut self.psc)
            };
            shadow.walk_costed(
                &self.space,
                page,
                psc,
                &mut self.shadow_hint,
                &mut on_access,
            )
        } else {
            let outcome = if bypass_psc {
                self.walker.walk(&self.space, page)
            } else {
                self.walker.walk_with_psc(&self.space, page, &mut self.psc)
            };
            for (table, idx) in outcome.accesses.iter() {
                let warm = if bypass_psc {
                    false_warm_for_amd(&mut self.lines, table, idx)
                } else {
                    self.lines.touch(table, idx)
                };
                cycles += if warm {
                    t.walk_step_warm
                } else {
                    t.walk_step_cold
                };
            }
            ShadowWalk::from(&outcome)
        };

        // Termination-level extras apply to root walks only (see
        // `TimingParams::level_extra_pt` and DESIGN.md §5).
        if !walk.resumed || bypass_psc {
            cycles += match walk.terminal_level {
                Level::Pt => t.level_extra_pt,
                Level::Pd => t.level_extra_pd,
                Level::Pdpt => t.level_extra_pdpt,
                Level::Pml4 => t.level_extra_pml4,
            };
        }
        (walk, cycles)
    }

    /// Moves bytes for unmasked lanes whose pages translated fine.
    fn transfer(&mut self, op: &MaskedOp, ok_pages: &[(VirtAddr, u64)]) -> Option<Vec<u8>> {
        let width = op.width.bytes() as usize;
        let mut data = match op.kind {
            OpKind::Load => Some(vec![0u8; usize::from(op.mask.lanes()) * width]),
            OpKind::Store => None,
        };
        for lane in op.mask.set_lanes() {
            let la = op.lane_addr(lane);
            let page = self.defended_page(la.align_down(4096));
            let Some(&(_, frame)) = ok_pages.iter().find(|(p, _)| *p == page) else {
                continue; // suppressed page: lane dropped (loads read 0)
            };
            let pa = avx_mmu::PhysAddr::from_frame_number(frame).wrapping_add(la.as_u64() & 0xfff);
            match (&mut data, op.kind) {
                (Some(buf), OpKind::Load) => {
                    let off = usize::from(lane) * width;
                    self.mem.read(pa, &mut buf[off..off + width]);
                }
                (None, OpKind::Store) => {
                    // Stores write a recognizable lane pattern.
                    let pattern = [0xa5u8; 8];
                    self.mem.write(pa, &pattern[..width]);
                }
                _ => unreachable!("data buffer existence tracks op kind"),
            }
        }
        data
    }

    /// Writes bytes into simulated physical memory behind `va` (test and
    /// example setup). Pages must be mapped.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not mapped.
    pub fn poke(&mut self, va: VirtAddr, bytes: &[u8]) {
        let mapping = self.space.lookup(va).expect("poke target must be mapped");
        let offset = va.as_u64() - mapping.start.as_u64();
        let pa = mapping.phys.wrapping_add(offset);
        self.mem.write(pa, bytes);
    }

    /// Reads bytes from simulated physical memory behind `va`.
    ///
    /// Allocates a fresh buffer per call; assertion loops that peek in
    /// a hot path should reuse one via [`Machine::peek_into`].
    ///
    /// # Panics
    ///
    /// Panics if `va` is not mapped.
    #[must_use]
    pub fn peek(&mut self, va: VirtAddr, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.peek_into(va, &mut buf);
        buf
    }

    /// Reads `buf.len()` bytes from simulated physical memory behind
    /// `va` into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `va` is not mapped.
    pub fn peek_into(&mut self, va: VirtAddr, buf: &mut [u8]) {
        let mapping = self.space.lookup(va).expect("peek target must be mapped");
        let offset = va.as_u64() - mapping.start.as_u64();
        let pa = mapping.phys.wrapping_add(offset);
        self.mem.read(pa, buf);
    }
}

/// AMD kernel walks bypass cached structures; still record the touch so
/// user-half behaviour stays realistic.
fn false_warm_for_amd(lines: &mut PteLineCache, table: avx_mmu::FrameId, idx: usize) -> bool {
    let _ = lines.touch(table, idx);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::masked::{ElemWidth, Mask};
    use avx_mmu::{PageSize, PteFlags};

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new_truncate(raw)
    }

    /// USER-M, USER-U, KERNEL-M, KERNEL-U pages as in Fig. 2.
    fn fig2_machine() -> Machine {
        let mut space = AddressSpace::new();
        space
            .map(va(0x5555_5555_4000), PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        // USER-U: adjacent VMA exists but page non-present.
        space
            .map(va(0x5555_5555_5000), PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        space
            .protect(
                va(0x5555_5555_5000),
                PageSize::Size4K,
                PteFlags::none_guard(),
            )
            .unwrap();
        space
            .map(
                va(0xffff_ffff_a1e0_0000),
                PageSize::Size2M,
                PteFlags::kernel_rx(),
            )
            .unwrap();
        let mut m = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, 1);
        m.set_noise(NoiseModel::none());
        m
    }

    const USER_M: u64 = 0x5555_5555_4000;
    const USER_U: u64 = 0x5555_5555_5000;
    const KERNEL_M: u64 = 0xffff_ffff_a1e0_0000;
    const KERNEL_U: u64 = 0xffff_ffff_a1a0_0000; // unmapped 2 MiB slot nearby

    /// Steady-state probe: run twice, report the second (paper §IV-B).
    fn steady(m: &mut Machine, kind: OpKind, addr: u64) -> MaskedOutcome {
        let op = match kind {
            OpKind::Load => MaskedOp::probe_load(va(addr)),
            OpKind::Store => MaskedOp::probe_store(va(addr)),
        };
        let _ = m.execute(op);
        m.execute(op)
    }

    #[test]
    fn fig2_user_mapped_is_base_cost() {
        let mut m = fig2_machine();
        let out = steady(&mut m, OpKind::Load, USER_M);
        assert_eq!(out.cycles, 13);
        assert!(!out.assist);
        assert_eq!(out.walks_completed, 0);
        assert_eq!(out.tlb_hit, Some(TlbLookup::L1));
    }

    #[test]
    fn fig2_kernel_mapped_is_assist_no_walk() {
        let mut m = fig2_machine();
        let out = steady(&mut m, OpKind::Load, KERNEL_M);
        assert_eq!(out.cycles, 93);
        assert!(out.assist);
        assert_eq!(out.walks_completed, 0, "translation cached in TLB");
        assert!(out.fault.is_none(), "fault suppressed");
    }

    #[test]
    fn fig2_kernel_unmapped_walks_twice() {
        let mut m = fig2_machine();
        let out = steady(&mut m, OpKind::Load, KERNEL_U);
        assert_eq!(out.cycles, 107);
        assert!(out.assist);
        assert_eq!(out.walks_completed, 2);
    }

    #[test]
    fn fig2_user_unmapped_slightly_above_kernel_unmapped() {
        let mut m = fig2_machine();
        let ku = steady(&mut m, OpKind::Load, KERNEL_U).cycles;
        let uu = steady(&mut m, OpKind::Load, USER_U).cycles;
        assert_eq!(uu, 110);
        assert_eq!(uu - ku, 3);
    }

    #[test]
    fn fig2_pmc_pattern_matches_paper() {
        let mut m = fig2_machine();
        // Warm up all four page types, then measure one probe each.
        for addr in [USER_M, USER_U, KERNEL_M, KERNEL_U] {
            let _ = m.execute(MaskedOp::probe_load(va(addr)));
        }
        let mut assists = Vec::new();
        let mut walks = Vec::new();
        for addr in [USER_M, USER_U, KERNEL_M, KERNEL_U] {
            let snap = m.pmc().snapshot();
            let _ = m.execute(MaskedOp::probe_load(va(addr)));
            let d = m.pmc().delta(&snap);
            assists.push(d.get(Event::AssistsAny));
            walks.push(d.get(Event::DtlbLoadWalkCompleted));
        }
        assert_eq!(assists, vec![0, 1, 1, 1], "Fig. 2 ASSISTS.ANY");
        assert_eq!(walks, vec![0, 2, 0, 2], "Fig. 2 WALK_COMPLETED");
    }

    #[test]
    fn p6_kernel_store_faster_than_load() {
        let mut m = fig2_machine();
        let load = steady(&mut m, OpKind::Load, KERNEL_M).cycles;
        let store = steady(&mut m, OpKind::Store, KERNEL_M).cycles;
        assert_eq!(load, 93);
        assert_eq!(store, 76);
        assert!((16..=18).contains(&(load - store)));
    }

    #[test]
    fn fault_suppression_all_zero_mask_never_faults() {
        let mut m = fig2_machine();
        for addr in [USER_U, KERNEL_M, KERNEL_U, 0x10_0000_0000] {
            let out = m.execute(MaskedOp::probe_load(va(addr)));
            assert!(out.fault.is_none(), "addr {addr:#x}");
        }
    }

    #[test]
    fn unmasked_lane_on_bad_page_faults() {
        let mut m = fig2_machine();
        let op = MaskedOp {
            kind: OpKind::Load,
            addr: va(USER_U),
            mask: Mask::new(0b1, 8),
            width: ElemWidth::Dword,
        };
        let out = m.execute(op);
        let fault = out.fault.expect("must fault");
        assert!(!fault.protection, "non-present fault");
        assert!(!fault.write);
    }

    #[test]
    fn fig1_cross_page_cases() {
        // Fig. 1: access straddling a mapped(low)/unmapped(high) boundary.
        let mut m = fig2_machine();
        let base = va(USER_M + 0xff0); // last 16 bytes of USER_M page
                                       // Case A/B: an unmasked lane on the unmapped page → #PF.
        let faulting = MaskedOp {
            kind: OpKind::Load,
            addr: base,
            mask: Mask::new(0b1111_0001, 8),
            width: ElemWidth::Dword,
        };
        assert!(m.execute(faulting).fault.is_some());
        // Case C/D: lanes on the unmapped page are masked → suppressed.
        let suppressed = MaskedOp {
            kind: OpKind::Load,
            addr: base,
            mask: Mask::new(0b0000_0111, 8),
            width: ElemWidth::Dword,
        };
        let out = m.execute(suppressed);
        assert!(out.fault.is_none());
        assert!(out.assist);
    }

    #[test]
    fn store_dirty_assist_matches_kernel_mapped_load() {
        let mut m = fig2_machine();
        // Fresh writable page, D=0. Warm translation with a load first.
        let _ = m.execute(MaskedOp::probe_load(va(USER_M)));
        let kernel = steady(&mut m, OpKind::Load, KERNEL_M).cycles;
        let clean_store = m.execute(MaskedOp::probe_store(va(USER_M))).cycles;
        assert_eq!(
            clean_store, kernel,
            "§IV-B calibration identity: clean-store == kernel-mapped load"
        );
    }

    #[test]
    fn zero_mask_store_never_sets_dirty_so_assist_repeats() {
        let mut m = fig2_machine();
        let _ = m.execute(MaskedOp::probe_load(va(USER_M)));
        let first = m.execute(MaskedOp::probe_store(va(USER_M)));
        let second = m.execute(MaskedOp::probe_store(va(USER_M)));
        assert!(first.dirty_assist);
        assert!(second.dirty_assist, "no lane stored, D stays clear");
        assert_eq!(first.cycles, second.cycles);
    }

    #[test]
    fn real_store_sets_dirty_and_becomes_fast() {
        let mut m = fig2_machine();
        let op = MaskedOp {
            kind: OpKind::Store,
            addr: va(USER_M),
            mask: Mask::all_set(8),
            width: ElemWidth::Dword,
        };
        let first = m.execute(op);
        assert!(first.dirty_assist);
        let second = m.execute(op);
        assert!(!second.dirty_assist);
        assert_eq!(second.cycles, 12, "base store cost after D is set");
    }

    #[test]
    fn load_transfers_unmasked_lanes_only() {
        let mut m = fig2_machine();
        m.poke(va(USER_M), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let op = MaskedOp {
            kind: OpKind::Load,
            addr: va(USER_M),
            mask: Mask::new(0b0000_0001, 8),
            width: ElemWidth::Dword,
        };
        let out = m.execute(op);
        let data = out.data.unwrap();
        assert_eq!(&data[..4], &[1, 2, 3, 4], "lane 0 transferred");
        assert_eq!(&data[4..8], &[0, 0, 0, 0], "lane 1 masked out");
    }

    #[test]
    fn suppressed_cross_page_load_still_transfers_valid_lanes() {
        let mut m = fig2_machine();
        let base = va(USER_M + 0xff8); // 2 dword lanes fit, rest on USER_U
        m.poke(base, &[9, 9, 9, 9]);
        let op = MaskedOp {
            kind: OpKind::Load,
            addr: base,
            mask: Mask::new(0b0000_0011, 8), // lanes 0,1 valid page only
            width: ElemWidth::Dword,
        };
        let out = m.execute(op);
        assert!(out.fault.is_none());
        let data = out.data.unwrap();
        assert_eq!(&data[..4], &[9, 9, 9, 9]);
    }

    #[test]
    fn tlb_eviction_makes_next_probe_cold() {
        let mut m = fig2_machine();
        let warm = steady(&mut m, OpKind::Load, KERNEL_M).cycles;
        m.evict_translation(va(KERNEL_M));
        let cold = m.execute(MaskedOp::probe_load(va(KERNEL_M))).cycles;
        assert!(
            cold > warm + 100,
            "cold walk must be much slower: warm={warm} cold={cold}"
        );
    }

    #[test]
    fn p4_coffee_lake_hit_miss_anchors() {
        let mut space = AddressSpace::new();
        space
            .map(va(KERNEL_M), PageSize::Size2M, PteFlags::kernel_rx())
            .unwrap();
        let mut m = Machine::new(CpuProfile::coffee_lake_i9_9900(), space, 3);
        m.set_noise(NoiseModel::none());
        // Warm up, then evict: first probe cold, second probe hit.
        let _ = m.execute(MaskedOp::probe_load(va(KERNEL_M)));
        m.evict_translation(va(KERNEL_M));
        let miss = m.execute(MaskedOp::probe_load(va(KERNEL_M))).cycles;
        let hit = m.execute(MaskedOp::probe_load(va(KERNEL_M))).cycles;
        assert_eq!(miss, 381, "3 cold steps + assist + base");
        assert_eq!(hit, 147);
    }

    #[test]
    fn touch_as_kernel_fills_tlb_for_user_probe() {
        let mut m = fig2_machine();
        m.evict_translation(va(KERNEL_M));
        m.touch_as_kernel(va(KERNEL_M));
        let out = m.execute(MaskedOp::probe_load(va(KERNEL_M)));
        assert_eq!(out.tlb_hit, Some(TlbLookup::L1));
        assert_eq!(out.cycles, 93);
    }

    #[test]
    fn amd_kernel_probes_always_walk() {
        let mut space = AddressSpace::new();
        space
            .map(va(KERNEL_M), PageSize::Size2M, PteFlags::kernel_rx())
            .unwrap();
        let mut m = Machine::new(CpuProfile::zen3_ryzen5_5600x(), space, 4);
        m.set_noise(NoiseModel::none());
        let first = m.execute(MaskedOp::probe_load(va(KERNEL_M)));
        let second = m.execute(MaskedOp::probe_load(va(KERNEL_M)));
        assert!(first.walks_completed >= 1);
        assert!(second.walks_completed >= 1, "no TLB shortcut on AMD");
        assert_eq!(first.cycles, second.cycles, "steady and identical");
    }

    #[test]
    fn amd_mapped_and_unmapped_kernel_indistinguishable_but_4k_visible() {
        let mut space = AddressSpace::new();
        space
            .map(va(KERNEL_M), PageSize::Size2M, PteFlags::kernel_rx())
            .unwrap();
        // A 4 KiB kernel page in the same PDPT.
        space
            .map(
                va(0xffff_ffff_a1c0_0000),
                PageSize::Size4K,
                PteFlags::kernel_ro(),
            )
            .unwrap();
        let mut m = Machine::new(CpuProfile::zen3_ryzen5_5600x(), space, 5);
        m.set_noise(NoiseModel::none());
        let mapped_2m = m.execute(MaskedOp::probe_load(va(KERNEL_M))).cycles;
        let unmapped = m.execute(MaskedOp::probe_load(va(KERNEL_U))).cycles;
        let mapped_4k = m
            .execute(MaskedOp::probe_load(va(0xffff_ffff_a1c0_0000)))
            .cycles;
        assert_eq!(mapped_2m, unmapped, "P-bit invisible on AMD");
        assert!(
            mapped_4k > mapped_2m + 20,
            "PT-terminated walks stand out: {mapped_4k} vs {mapped_2m}"
        );
    }

    #[test]
    fn user_half_on_amd_still_uses_tlb() {
        let mut space = AddressSpace::new();
        space
            .map(va(USER_M), PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        let mut m = Machine::new(CpuProfile::zen3_ryzen5_5600x(), space, 6);
        m.set_noise(NoiseModel::none());
        let _ = m.execute(MaskedOp::probe_load(va(USER_M)));
        let out = m.execute(MaskedOp::probe_load(va(USER_M)));
        assert_eq!(out.tlb_hit, Some(TlbLookup::L1));
        assert_eq!(out.walks_completed, 0);
    }

    #[test]
    fn permission_fig3_pattern() {
        let mut space = AddressSpace::new();
        let ro = va(0x7f00_0000_0000);
        let rx = va(0x7f00_0000_1000);
        let rw = va(0x7f00_0000_2000);
        let none = va(0x7f00_0000_3000);
        space
            .map(ro, PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        space
            .map(rx, PageSize::Size4K, PteFlags::user_rx())
            .unwrap();
        space
            .map(rw, PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        // PROT_NONE: map then drop present, like mprotect(PROT_NONE).
        space
            .map(none, PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        space
            .protect(none, PageSize::Size4K, PteFlags::none_guard())
            .unwrap();

        let mut m = Machine::new(CpuProfile::generic_desktop(), space, 7);
        m.set_noise(NoiseModel::none());
        // Warm up translations + dirty bits with real accesses.
        for page in [ro, rx, rw] {
            let _ = m.execute(MaskedOp::probe_load(page));
        }
        let write_all = MaskedOp {
            kind: OpKind::Store,
            addr: rw,
            mask: Mask::all_set(8),
            width: ElemWidth::Dword,
        };
        let _ = m.execute(write_all);

        // Masked load: 16 / 16 / 16 / 115.
        assert_eq!(m.execute(MaskedOp::probe_load(ro)).cycles, 16);
        assert_eq!(m.execute(MaskedOp::probe_load(rx)).cycles, 16);
        assert_eq!(m.execute(MaskedOp::probe_load(rw)).cycles, 16);
        let _ = m.execute(MaskedOp::probe_load(none));
        assert_eq!(m.execute(MaskedOp::probe_load(none)).cycles, 115);

        // Masked store: 82 / 82 / 16 / 96.
        assert_eq!(m.execute(MaskedOp::probe_store(ro)).cycles, 82);
        assert_eq!(m.execute(MaskedOp::probe_store(rx)).cycles, 82);
        assert_eq!(m.execute(write_all).cycles, 16);
        assert_eq!(m.execute(MaskedOp::probe_store(none)).cycles, 96);
    }

    #[test]
    fn p3_level_ordering_with_invlpg() {
        // Kernel pages terminating at PT, PD, PDPT plus an empty PML4
        // slot; INVLPG before each probe → root walks with level extras.
        let mut space = AddressSpace::new();
        let pt_page = va(0xffff_ffff_c012_3000);
        let pd_page = va(0xffff_ffff_a1e0_0000);
        let pdpt_page = va(0xffff_c000_0000_0000);
        let pml4_hole = va(0xffff_9000_0000_0000);
        space
            .map(pt_page, PageSize::Size4K, PteFlags::kernel_rx())
            .unwrap();
        space
            .map(pd_page, PageSize::Size2M, PteFlags::kernel_rx())
            .unwrap();
        space
            .map(pdpt_page, PageSize::Size1G, PteFlags::kernel_rw())
            .unwrap();

        let mut m = Machine::new(CpuProfile::coffee_lake_i9_9900(), space, 8);
        m.set_noise(NoiseModel::none());
        let mut measure = |addr: VirtAddr| {
            // Warm lines first so the signal is the level pattern, not
            // cold-line noise.
            let _ = m.execute(MaskedOp::probe_load(addr));
            m.invlpg(addr);
            let _ = m.execute(MaskedOp::probe_load(addr));
            m.invlpg(addr);
            m.execute(MaskedOp::probe_load(addr)).cycles
        };
        let t_pd = measure(pd_page);
        let t_pdpt = measure(pdpt_page);
        let t_pml4 = measure(pml4_hole);
        let t_pt = measure(pt_page);
        assert!(t_pd < t_pdpt, "PD {t_pd} < PDPT {t_pdpt}");
        assert!(t_pdpt < t_pml4, "PDPT {t_pdpt} < PML4 {t_pml4}");
        assert!(t_pt > t_pd, "PT off the line: {t_pt} > {t_pd}");
    }

    #[test]
    fn clock_advances_with_execution() {
        let mut m = fig2_machine();
        assert_eq!(m.elapsed_cycles(), 0);
        let out = m.execute(MaskedOp::probe_load(va(USER_M)));
        assert_eq!(m.elapsed_cycles(), out.cycles);
        m.spend_cycles(100);
        assert_eq!(m.elapsed_cycles(), out.cycles + 100);
    }

    #[test]
    fn poke_peek_round_trip() {
        let mut m = fig2_machine();
        m.poke(va(USER_M + 8), &[0xde, 0xad]);
        assert_eq!(m.peek(va(USER_M + 8), 2), vec![0xde, 0xad]);
    }

    #[test]
    fn execute_batch_matches_scalar_probes_exactly() {
        // Two identically-built machines: one runs the batched fast
        // path, the other the scalar loop. Cycles, clock and PMCs must
        // agree bit for bit — including a page-straddling probe.
        let addrs: Vec<VirtAddr> = [USER_M, USER_U, KERNEL_M, KERNEL_U, USER_M + 0xff0]
            .iter()
            .map(|&a| va(a))
            .collect();
        for kind in [OpKind::Load, OpKind::Store] {
            let mut scalar = fig2_machine();
            let mut batched = fig2_machine();
            let batch = batched.execute_batch(kind, &addrs);
            let looped: Vec<u64> = addrs.iter().map(|&a| scalar.probe(kind, a)).collect();
            assert_eq!(batch, looped, "{kind}");
            assert_eq!(scalar.elapsed_cycles(), batched.elapsed_cycles());
            for event in [
                Event::AssistsAny,
                Event::SuppressedFault,
                Event::DtlbLoadWalkCompleted,
                Event::DtlbStoreWalkCompleted,
                Event::TlbMiss,
                Event::TlbHitL1,
            ] {
                assert_eq!(
                    scalar.pmc().read(event),
                    batched.pmc().read(event),
                    "{kind}: {event:?}"
                );
            }
        }
    }

    #[test]
    fn drift_schedule_widens_noise_mid_run() {
        use crate::noise::NoiseProfile;
        let mut space = AddressSpace::new();
        space
            .map(va(KERNEL_M), PageSize::Size2M, PteFlags::kernel_rx())
            .unwrap();
        let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 21);
        m.set_noise_profile(NoiseProfile::drift_with(
            NoiseProfile::Quiet,
            NoiseProfile::LaptopDvfs,
            64,
            64,
        ));
        assert!(m.noise_schedule().is_some());
        let probe = MaskedOp::probe_load(va(KERNEL_M));
        let _ = m.execute(probe); // warm the translation
        let spread = |m: &mut Machine, n: usize| {
            let samples: Vec<f64> = (0..n).map(|_| m.execute(probe).cycles as f64).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64).sqrt()
        };
        let early = spread(&mut m, 60); // probes 1..61: quiet phase
        for _ in 0..64 {
            let _ = m.execute(probe); // cross the step
        }
        let late = spread(&mut m, 200); // fully drifted
        assert!(
            late > early * 2.0,
            "post-step spread must widen: early {early:.2} vs late {late:.2}"
        );
        // set_noise clears the trajectory again (stationary override).
        m.set_noise(NoiseModel::none());
        assert!(m.noise_schedule().is_none());
        assert_eq!(m.execute(probe).cycles, m.execute(probe).cycles);
    }

    #[test]
    fn execute_batch_matches_scalar_under_noise() {
        // With the full noise model the two paths must also consume the
        // RNG stream identically (same draws in the same order).
        let addrs: Vec<VirtAddr> = (0..64)
            .map(|i| va(0xffff_ffff_a000_0000 + i * 0x20_0000))
            .collect();
        let mut scalar = fig2_machine();
        let mut batched = fig2_machine();
        scalar.set_noise(NoiseModel::new(1.3, 0.05, (200.0, 900.0)));
        batched.set_noise(NoiseModel::new(1.3, 0.05, (200.0, 900.0)));
        let batch = batched.execute_batch(OpKind::Load, &addrs);
        let looped: Vec<u64> = addrs
            .iter()
            .map(|&a| scalar.probe(OpKind::Load, a))
            .collect();
        assert_eq!(batch, looped);
    }

    #[test]
    fn v2_batch_matches_v2_scalar_under_noise() {
        // The v2 block path pre-draws noise per chunk; because
        // translation never consumes RNG, its stream must equal the v2
        // scalar path's draw-per-probe stream — including a tail chunk
        // shorter than NOISE_BLOCK (69 = 4×16 + 5) and PMC totals.
        use crate::observables::ObservablesVersion;
        let addrs: Vec<VirtAddr> = (0..69)
            .map(|i| va(0xffff_ffff_a000_0000 + i * 0x20_0000))
            .collect();
        for kind in [OpKind::Load, OpKind::Store] {
            let mut scalar = fig2_machine();
            let mut batched = fig2_machine();
            for m in [&mut scalar, &mut batched] {
                m.set_noise(NoiseModel::new(1.3, 0.05, (200.0, 900.0)));
                m.set_observables(ObservablesVersion::V2);
            }
            assert_eq!(batched.observables(), ObservablesVersion::V2);
            let batch = batched.execute_batch(kind, &addrs);
            let looped: Vec<u64> = addrs.iter().map(|&a| scalar.probe(kind, a)).collect();
            assert_eq!(batch, looped, "{kind}");
            assert_eq!(scalar.elapsed_cycles(), batched.elapsed_cycles());
            for event in [
                Event::MaskedLoadRetired,
                Event::MaskedStoreRetired,
                Event::AssistsAny,
                Event::SuppressedFault,
                Event::DtlbLoadWalkCompleted,
                Event::DtlbStoreWalkCompleted,
                Event::TlbMiss,
                Event::TlbHitL1,
            ] {
                assert_eq!(
                    scalar.pmc().read(event),
                    batched.pmc().read(event),
                    "{kind}: {event:?}"
                );
            }
        }
    }

    #[test]
    fn v2_drift_schedule_indexes_blocks_per_probe() {
        // Under a drifting schedule the v2 block fill resolves the
        // model per probe index, so batch and scalar agree even when a
        // block straddles the ramp onset (onset 40 inside the 3rd
        // 16-probe block).
        use crate::noise::NoiseProfile;
        use crate::observables::ObservablesVersion;
        let addrs: Vec<VirtAddr> = (0..96)
            .map(|i| va(0xffff_ffff_a000_0000 + i * 0x20_0000))
            .collect();
        let drift = NoiseProfile::drift_with(NoiseProfile::Quiet, NoiseProfile::LaptopDvfs, 40, 72);
        let mut scalar = fig2_machine();
        let mut batched = fig2_machine();
        for m in [&mut scalar, &mut batched] {
            m.set_noise_profile(drift);
            m.set_observables(ObservablesVersion::V2);
        }
        let batch = batched.execute_batch(OpKind::Load, &addrs);
        let looped: Vec<u64> = addrs
            .iter()
            .map(|&a| scalar.probe(OpKind::Load, a))
            .collect();
        assert_eq!(batch, looped);
    }

    #[test]
    fn v1_default_stream_is_unchanged_by_the_dispatch() {
        // The observables dispatch must leave the default (v1) stream
        // bit-exact: a machine that never calls set_observables produces
        // the same cycles as one explicitly set to V1.
        use crate::observables::ObservablesVersion;
        let addrs: Vec<VirtAddr> = (0..32)
            .map(|i| va(0xffff_ffff_a000_0000 + i * 0x20_0000))
            .collect();
        let mut default = fig2_machine();
        let mut explicit = fig2_machine();
        default.set_noise(NoiseModel::new(1.3, 0.05, (200.0, 900.0)));
        explicit.set_noise(NoiseModel::new(1.3, 0.05, (200.0, 900.0)));
        assert_eq!(default.observables(), ObservablesVersion::V1);
        explicit.set_observables(ObservablesVersion::V1);
        assert_eq!(
            default.execute_batch(OpKind::Load, &addrs),
            explicit.execute_batch(OpKind::Load, &addrs)
        );
    }
}
