//! Event-driven victims: a deterministic discrete-event scheduler.
//!
//! Real victim noise is *event-shaped*, not probe-indexed: DVFS duty
//! cycles, co-tenant arrival/departure, and module load/unload happen
//! on a wall clock the attacker does not control. The
//! [`crate::NoiseProfile::Drift`] ramp models one environment change
//! per scan; [`VictimSchedule`] generalizes that to an arbitrary event
//! *timeline* — a virtual wall clock advancing per victim-observed op
//! at a configurable ops-per-tick rate, driving a binary-heap event
//! queue with stable FIFO tie-breaking.
//!
//! The [`SchedEvent`] menu covers the three environment axes a real
//! host exercises:
//!
//! * **DVFS duty cycles** — [`SchedEvent::NoiseSwap`] replaces the
//!   machine's noise preset through the existing stationary-swap site
//!   ([`crate::Machine::set_noise`]), so a square wave is just two
//!   recurring swaps offset by half a period,
//! * **co-tenant bursts** — [`SchedEvent::TenantArrive`] /
//!   [`SchedEvent::TenantDepart`] scale the active preset's σ and
//!   spike rate by an additive per-tenant multiplier,
//! * **module churn** — [`SchedEvent::ModuleLoad`] /
//!   [`SchedEvent::ModuleUnload`] / [`SchedEvent::ProcessSpawn`]
//!   mutate the trial's own machine clone through
//!   [`avx_mmu::AddressSpace::map`] / `unmap` (i.e. through
//!   `write_entry`, bumping the shape epoch like any OS mutation and
//!   feeding the re-randomizing-defense machinery).
//!
//! Like the [`crate::defense`] layer, the scheduler draws randomness
//! from its own SplitMix64 stream seeded at install time — never from
//! the machine's measurement RNG — so a scheduled machine's noise
//! stream before the first firing is bit-identical to an unscheduled
//! one's, and the whole timeline replays from the seed. A machine with
//! no schedule installed performs **no clock reads at all**: the per-op
//! hook is a single `Option` discriminant check.
//!
//! ```
//! use avx_uarch::sched::{SchedEvent, VictimSchedule};
//! use avx_uarch::NoiseProfile;
//!
//! // A square-wave DVFS duty cycle: laptop preset from tick 4,
//! // back to quiet at tick 10, repeating every 12 ticks.
//! let sched = VictimSchedule::new(64, 7)
//!     .with_base(NoiseProfile::Quiet)
//!     .every(4, 12, SchedEvent::NoiseSwap(NoiseProfile::LaptopDvfs))
//!     .every(10, 12, SchedEvent::NoiseSwap(NoiseProfile::Quiet));
//! assert_eq!(sched.ops_per_tick(), 64);
//! assert_eq!(sched.pending(), 2);
//! ```

use core::cmp::Ordering;
use core::fmt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};

use crate::defense::splitmix64;
use crate::noise::{NoiseModel, NoiseProfile};
use crate::profile::TimingParams;

/// One region of the victim's address space a schedule may map images
/// into (module area, user mmap area). The uarch layer stays
/// layout-agnostic: the OS model supplies the concrete bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedRegion {
    /// First byte of the region.
    pub start: u64,
    /// One past the last byte of the region.
    pub end: u64,
    /// Slot granularity images are placed on (power of two).
    pub slot_align: u64,
}

impl SchedRegion {
    /// Builds a region.
    ///
    /// # Panics
    ///
    /// Panics if `slot_align` is not a power of two or the region is
    /// empty or not slot-aligned.
    #[must_use]
    pub fn new(start: u64, end: u64, slot_align: u64) -> Self {
        assert!(slot_align.is_power_of_two(), "slot align must be 2^k");
        assert!(end > start, "empty schedule region");
        assert_eq!((end - start) % slot_align, 0, "region must be slot-aligned");
        Self {
            start,
            end,
            slot_align,
        }
    }
}

/// One environment event on the victim's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedEvent {
    /// The environment switches to this noise preset (a DVFS
    /// transition, a governor decision). Routed through the machine's
    /// stationary-swap site; co-tenant multipliers keep applying on
    /// top of the new preset.
    NoiseSwap(NoiseProfile),
    /// A co-tenant lands on the core: the active preset's σ and spike
    /// rate scale up by one tenant weight.
    TenantArrive,
    /// A co-tenant leaves (no-op at zero tenants).
    TenantDepart,
    /// The OS loads a kernel module: `pages` fresh 4 KiB kernel pages
    /// are mapped at a seed-drawn slot of the module region.
    ModuleLoad {
        /// Image size in 4 KiB pages.
        pages: u64,
    },
    /// The most recently schedule-loaded module is unloaded (its pages
    /// unmapped). Never touches the fixture's own modules; a no-op
    /// when the schedule has loaded nothing.
    ModuleUnload,
    /// A process spawns: `pages` fresh 4 KiB user pages are mapped at
    /// a seed-drawn slot of the spawn region.
    ProcessSpawn {
        /// Image size in 4 KiB pages.
        pages: u64,
    },
}

impl fmt::Display for SchedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedEvent::NoiseSwap(p) => write!(f, "noise {}", p.name()),
            SchedEvent::TenantArrive => f.pad("tenant-arrive"),
            SchedEvent::TenantDepart => f.pad("tenant-depart"),
            SchedEvent::ModuleLoad { pages } => write!(f, "module-load {pages}"),
            SchedEvent::ModuleUnload => f.pad("module-unload"),
            SchedEvent::ProcessSpawn { pages } => write!(f, "process-spawn {pages}"),
        }
    }
}

/// One queued occurrence: an event pinned to a tick, plus its
/// insertion sequence number — the FIFO tie-breaker for simultaneous
/// events — and an optional recurrence interval.
#[derive(Clone, Debug)]
struct Queued {
    tick: u64,
    seq: u64,
    event: SchedEvent,
    every: Option<u64>,
}

// Ordering is (tick, seq) only: two occurrences never compare equal
// (seq is unique), so heap order is total and insertion-stable.
impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.seq == other.seq
    }
}

impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.tick, self.seq).cmp(&(other.tick, other.seq))
    }
}

/// A deterministic discrete-event schedule for one victim machine.
///
/// The virtual wall clock advances one tick per
/// [`VictimSchedule::ops_per_tick`] victim-observed ops; every op, the
/// machine pops all due events in `(tick, insertion-seq)` order and
/// applies them through its existing chokepoints. Built with the
/// [`VictimSchedule::at`] / [`VictimSchedule::every`] builders or
/// parsed from a trace file ([`VictimSchedule::from_trace`]).
#[derive(Clone, Debug)]
pub struct VictimSchedule {
    ops_per_tick: u64,
    ops_seen: u64,
    queue: BinaryHeap<Reverse<Queued>>,
    seq: u64,
    fired: u64,
    /// The preset the environment is currently in (initially the
    /// base the schedule was installed over).
    profile: NoiseProfile,
    tenants: u32,
    tenant_weight: f64,
    draw_state: u64,
    module_region: Option<SchedRegion>,
    spawn_region: Option<SchedRegion>,
    /// Schedule-loaded module images as `(base, pages)`, unload order
    /// LIFO — the schedule only ever unloads what it loaded.
    loaded: Vec<(u64, u64)>,
}

/// Default additive noise multiplier contributed by each co-tenant:
/// `n` tenants scale σ and spike rate by `1 + n × weight`.
pub const DEFAULT_TENANT_WEIGHT: f64 = 2.0;

impl VictimSchedule {
    /// An empty schedule ticking every `ops_per_tick` ops, with its
    /// SplitMix64 draw stream seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_tick` is zero.
    #[must_use]
    pub fn new(ops_per_tick: u64, seed: u64) -> Self {
        assert!(ops_per_tick > 0, "ops-per-tick must be positive");
        Self {
            ops_per_tick,
            ops_seen: 0,
            queue: BinaryHeap::new(),
            seq: 0,
            fired: 0,
            profile: NoiseProfile::Quiet,
            tenants: 0,
            tenant_weight: DEFAULT_TENANT_WEIGHT,
            draw_state: splitmix64(seed ^ 0x5ced_00e5_ca1e_cafe),
            module_region: None,
            spawn_region: None,
            loaded: Vec::new(),
        }
    }

    /// Sets the base noise preset — what [`SchedEvent::TenantArrive`]
    /// multipliers apply over until the first
    /// [`SchedEvent::NoiseSwap`]. Campaigns pass their noise axis.
    #[must_use]
    pub fn with_base(mut self, base: NoiseProfile) -> Self {
        self.profile = base;
        self
    }

    /// Sets the per-tenant noise multiplier weight
    /// (default [`DEFAULT_TENANT_WEIGHT`]).
    #[must_use]
    pub fn with_tenant_weight(mut self, weight: f64) -> Self {
        self.tenant_weight = weight;
        self
    }

    /// Sets the region [`SchedEvent::ModuleLoad`] maps images into.
    /// Without one, module events are skipped (they still fire).
    #[must_use]
    pub fn with_module_region(mut self, region: SchedRegion) -> Self {
        self.module_region = Some(region);
        self
    }

    /// Sets the region [`SchedEvent::ProcessSpawn`] maps images into.
    /// Without one, spawn events are skipped (they still fire).
    #[must_use]
    pub fn with_spawn_region(mut self, region: SchedRegion) -> Self {
        self.spawn_region = Some(region);
        self
    }

    /// Queues `event` once at `tick`. Events sharing a tick fire in
    /// insertion order (stable FIFO tie-break).
    #[must_use]
    pub fn at(mut self, tick: u64, event: SchedEvent) -> Self {
        self.push(tick, event, None);
        self
    }

    /// Queues `event` at `first`, then every `interval` ticks forever.
    /// A recurrence re-enters the queue behind anything else already
    /// scheduled for its tick.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn every(mut self, first: u64, interval: u64, event: SchedEvent) -> Self {
        assert!(interval > 0, "recurrence interval must be positive");
        self.push(first, event, Some(interval));
        self
    }

    fn push(&mut self, tick: u64, event: SchedEvent, every: Option<u64>) {
        self.seq += 1;
        self.queue.push(Reverse(Queued {
            tick,
            seq: self.seq,
            event,
            every,
        }));
    }

    /// The wall-clock rate: victim-observed ops per tick.
    #[must_use]
    pub fn ops_per_tick(&self) -> u64 {
        self.ops_per_tick
    }

    /// Victim-observed ops so far.
    #[must_use]
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// The current wall-clock tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.ops_seen / self.ops_per_tick
    }

    /// Events fired so far.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Queued occurrences not yet fired (recurring events count once).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Co-tenants currently resident.
    #[must_use]
    pub fn tenants(&self) -> u32 {
        self.tenants
    }

    /// The noise preset the environment is currently in.
    #[must_use]
    pub fn profile(&self) -> NoiseProfile {
        self.profile
    }

    /// Module images loaded by the schedule and not yet unloaded.
    #[must_use]
    pub fn loaded_modules(&self) -> usize {
        self.loaded.len()
    }

    /// Whether the schedule can ever fire (an empty queue is a no-op
    /// and need not be installed at all).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Counts one victim-observed op and reports whether any event is
    /// now due — the machine's per-op fast path (one increment, one
    /// heap peek).
    pub fn advance_op(&mut self) -> bool {
        self.ops_seen += 1;
        let now = self.now();
        self.queue.peek().is_some_and(|Reverse(q)| q.tick <= now)
    }

    /// Pops the next due event in `(tick, insertion-seq)` order,
    /// re-queueing recurrences. `None` once the current tick is drained.
    pub fn pop_due(&mut self) -> Option<SchedEvent> {
        let now = self.now();
        if self.queue.peek().is_none_or(|Reverse(q)| q.tick > now) {
            return None;
        }
        let Reverse(q) = self.queue.pop().expect("peeked above");
        if let Some(interval) = q.every {
            self.push(q.tick + interval, q.event, Some(interval));
        }
        self.fired += 1;
        Some(q.event)
    }

    /// The noise model the current environment induces on `timing`:
    /// the active preset's model with σ and spike rate scaled by
    /// `1 + tenants × weight` (spike rate capped at 0.5 like every
    /// preset; spike magnitudes are interrupt-length, not
    /// contention-scaled). This is what the machine feeds its
    /// stationary-swap site after any noise-shaped event.
    #[must_use]
    pub fn effective_model(&self, timing: &TimingParams) -> NoiseModel {
        let base = self.profile.model_for(timing);
        let m = 1.0 + f64::from(self.tenants) * self.tenant_weight;
        NoiseModel::new(
            base.sigma * m,
            (base.spike_prob * m).min(0.5),
            base.spike_range,
        )
    }

    /// Applies a noise-shaped event to the environment state. Returns
    /// `true` when the effective model changed and the machine must
    /// re-resolve it (the space-shaped events return `false` here and
    /// go through [`VictimSchedule::apply_space_event`] instead).
    pub fn apply_env_event(&mut self, event: SchedEvent) -> bool {
        match event {
            SchedEvent::NoiseSwap(p) => {
                self.profile = p;
                true
            }
            SchedEvent::TenantArrive => {
                self.tenants += 1;
                true
            }
            SchedEvent::TenantDepart if self.tenants > 0 => {
                self.tenants -= 1;
                true
            }
            _ => false,
        }
    }

    /// Applies a space-shaped event to `space`, routing every mutation
    /// through [`AddressSpace::map`] / [`AddressSpace::unmap`] (i.e.
    /// `write_entry`). Returns `true` when the space mutated — the
    /// caller performs the TLB shootdown an OS would.
    pub fn apply_space_event(&mut self, event: SchedEvent, space: &mut AddressSpace) -> bool {
        match event {
            SchedEvent::ModuleLoad { pages } => {
                let Some(region) = self.module_region else {
                    return false;
                };
                self.map_image(space, region, pages, PteFlags::kernel_rx())
                    .map(|base| self.loaded.push((base, pages)))
                    .is_some()
            }
            SchedEvent::ModuleUnload => {
                let Some((base, pages)) = self.loaded.pop() else {
                    return false;
                };
                for i in 0..pages {
                    let va = VirtAddr::new_truncate(base + i * 4096);
                    space
                        .unmap(va, PageSize::Size4K)
                        .expect("schedule-loaded page mapped");
                }
                true
            }
            SchedEvent::ProcessSpawn { pages } => {
                let Some(region) = self.spawn_region else {
                    return false;
                };
                self.map_image(space, region, pages, PteFlags::user_ro())
                    .is_some()
            }
            _ => false,
        }
    }

    /// Draws a free slot of `region` and maps `pages` 4 KiB pages
    /// there. Up to 8 draws are tried before the event is skipped
    /// (a full region is a full region — real `insmod` fails too).
    fn map_image(
        &mut self,
        space: &mut AddressSpace,
        region: SchedRegion,
        pages: u64,
        flags: PteFlags,
    ) -> Option<u64> {
        let slots = (region.end - region.start) / region.slot_align;
        let bytes = pages * 4096;
        for _ in 0..8 {
            self.draw_state = splitmix64(self.draw_state);
            let base = region.start + (self.draw_state % slots) * region.slot_align;
            if base + bytes > region.end {
                continue;
            }
            let free = (0..pages).all(|i| {
                space
                    .lookup(VirtAddr::new_truncate(base + i * 4096))
                    .is_none()
            });
            if !free {
                continue;
            }
            for i in 0..pages {
                space
                    .map(
                        VirtAddr::new_truncate(base + i * 4096),
                        PageSize::Size4K,
                        flags,
                    )
                    .expect("checked free above");
            }
            return Some(base);
        }
        None
    }

    /// Parses a schedule from the trace-file format (see
    /// `docs/VICTIMS.md`): `#` comments, optional `ops-per-tick <n>` /
    /// `tenant-weight <f>` / `base <preset>` headers, then one event
    /// per line — `at <tick> <event>` or `every <first> <interval>
    /// <event>` with events `noise <preset>`, `tenant-arrive`,
    /// `tenant-depart`, `module-load <pages>`, `module-unload`,
    /// `process-spawn <pages>`.
    ///
    /// ```
    /// use avx_uarch::sched::VictimSchedule;
    ///
    /// let sched = VictimSchedule::from_trace(
    ///     "ops-per-tick 32\n\
    ///      every 4 8 noise laptop\n\
    ///      every 8 8 noise quiet\n\
    ///      at 16 tenant-arrive\n",
    ///     7,
    /// )
    /// .unwrap();
    /// assert_eq!(sched.ops_per_tick(), 32);
    /// assert_eq!(sched.pending(), 3);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a line-tagged message on any token the grammar does not
    /// accept.
    pub fn from_trace(text: &str, seed: u64) -> Result<Self, String> {
        let mut sched = Self::new(64, seed);
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("trace line {}: {what}: {raw:?}", idx + 1);
            let mut tok = line.split_whitespace();
            let head = tok.next().expect("non-empty line has a head token");
            match head {
                "ops-per-tick" => {
                    let n: u64 = tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err("expected a positive integer"))?;
                    sched.ops_per_tick = n;
                }
                "tenant-weight" => {
                    let w: f64 = tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|w: &f64| w.is_finite() && *w >= 0.0)
                        .ok_or_else(|| err("expected a non-negative number"))?;
                    sched.tenant_weight = w;
                }
                "base" => {
                    let p = tok
                        .next()
                        .and_then(NoiseProfile::parse)
                        .ok_or_else(|| err("unknown noise preset"))?;
                    sched.profile = p;
                }
                "at" => {
                    let tick: u64 = tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("expected a tick number"))?;
                    let event = parse_event(&mut tok).map_err(|e| err(&e))?;
                    sched.push(tick, event, None);
                }
                "every" => {
                    let first: u64 = tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("expected a first-tick number"))?;
                    let interval: u64 = tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err("expected a positive interval"))?;
                    let event = parse_event(&mut tok).map_err(|e| err(&e))?;
                    sched.push(first, event, Some(interval));
                }
                _ => return Err(err("unknown directive")),
            }
            if tok.next().is_some() {
                return Err(err("trailing tokens"));
            }
        }
        Ok(sched)
    }
}

/// Parses one event tail (`noise laptop`, `module-load 16`, ...).
fn parse_event<'a, I: Iterator<Item = &'a str>>(tok: &mut I) -> Result<SchedEvent, String> {
    match tok.next() {
        Some("noise") => tok
            .next()
            .and_then(NoiseProfile::parse)
            .map(SchedEvent::NoiseSwap)
            .ok_or_else(|| "unknown noise preset".to_string()),
        Some("tenant-arrive") => Ok(SchedEvent::TenantArrive),
        Some("tenant-depart") => Ok(SchedEvent::TenantDepart),
        Some("module-load") => tok
            .next()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .map(|pages| SchedEvent::ModuleLoad { pages })
            .ok_or_else(|| "expected a positive page count".to_string()),
        Some("module-unload") => Ok(SchedEvent::ModuleUnload),
        Some("process-spawn") => tok
            .next()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .map(|pages| SchedEvent::ProcessSpawn { pages })
            .ok_or_else(|| "expected a positive page count".to_string()),
        _ => Err("unknown event".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_tick(s: &mut VictimSchedule) -> Vec<SchedEvent> {
        let mut out = Vec::new();
        while let Some(e) = s.pop_due() {
            out.push(e);
        }
        out
    }

    #[test]
    fn clock_advances_at_the_configured_rate() {
        let mut s = VictimSchedule::new(4, 0).at(2, SchedEvent::TenantArrive);
        for _ in 0..7 {
            assert!(!s.advance_op(), "tick 2 starts at op 8");
        }
        assert!(s.advance_op(), "op 8 reaches tick 2");
        assert_eq!(s.now(), 2);
        assert_eq!(drain_tick(&mut s), vec![SchedEvent::TenantArrive]);
        assert_eq!(s.fired(), 1);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut s = VictimSchedule::new(1, 0)
            .at(3, SchedEvent::NoiseSwap(NoiseProfile::LaptopDvfs))
            .at(3, SchedEvent::TenantArrive)
            .at(3, SchedEvent::NoiseSwap(NoiseProfile::Quiet))
            .at(1, SchedEvent::TenantDepart);
        for _ in 0..3 {
            let _ = s.advance_op();
        }
        assert_eq!(
            drain_tick(&mut s),
            vec![
                SchedEvent::TenantDepart,
                SchedEvent::NoiseSwap(NoiseProfile::LaptopDvfs),
                SchedEvent::TenantArrive,
                SchedEvent::NoiseSwap(NoiseProfile::Quiet),
            ],
            "ticks ascend, ties break FIFO"
        );
    }

    #[test]
    fn recurrences_requeue_behind_same_tick_events() {
        let mut s = VictimSchedule::new(1, 0)
            .every(2, 2, SchedEvent::TenantArrive)
            .at(4, SchedEvent::TenantDepart);
        for _ in 0..2 {
            let _ = s.advance_op();
        }
        assert_eq!(drain_tick(&mut s), vec![SchedEvent::TenantArrive]);
        for _ in 0..2 {
            let _ = s.advance_op();
        }
        // The tick-4 one-shot was queued before the recurrence re-entered.
        assert_eq!(
            drain_tick(&mut s),
            vec![SchedEvent::TenantDepart, SchedEvent::TenantArrive]
        );
        assert_eq!(s.pending(), 1, "the recurrence lives on");
    }

    #[test]
    fn replay_is_bit_deterministic() {
        let run = |seed: u64| {
            let mut s = VictimSchedule::new(3, seed)
                .every(1, 2, SchedEvent::NoiseSwap(NoiseProfile::LaptopDvfs))
                .every(2, 2, SchedEvent::NoiseSwap(NoiseProfile::Quiet))
                .at(5, SchedEvent::TenantArrive);
            let mut log = Vec::new();
            for op in 0..64u64 {
                if s.advance_op() {
                    for e in drain_tick(&mut s) {
                        log.push((op, format!("{e}")));
                    }
                }
            }
            log
        };
        assert_eq!(run(9), run(9), "same seed, same timeline");
    }

    #[test]
    fn tenants_scale_the_effective_model_additively() {
        let timing = crate::profile::CpuProfile::alder_lake_i5_12400f().timing;
        let mut s = VictimSchedule::new(1, 0).with_tenant_weight(2.0);
        let base = s.effective_model(&timing);
        assert_eq!(base, NoiseProfile::Quiet.model_for(&timing));
        assert!(s.apply_env_event(SchedEvent::TenantArrive));
        let one = s.effective_model(&timing);
        assert_eq!(one.sigma, base.sigma * 3.0, "1 + 1×2 multiplier");
        assert_eq!(one.spike_range, base.spike_range, "magnitudes untouched");
        assert!(s.apply_env_event(SchedEvent::TenantDepart));
        assert_eq!(s.effective_model(&timing), base, "departure restores");
        assert!(
            !s.apply_env_event(SchedEvent::TenantDepart),
            "no underflow at zero tenants"
        );
    }

    #[test]
    fn noise_swap_rebases_the_tenant_multiplier() {
        let timing = crate::profile::CpuProfile::alder_lake_i5_12400f().timing;
        let mut s = VictimSchedule::new(1, 0).with_tenant_weight(1.0);
        assert!(s.apply_env_event(SchedEvent::TenantArrive));
        assert!(s.apply_env_event(SchedEvent::NoiseSwap(NoiseProfile::LaptopDvfs)));
        let m = s.effective_model(&timing);
        let laptop = NoiseProfile::LaptopDvfs.model_for(&timing);
        assert_eq!(m.sigma, laptop.sigma * 2.0, "tenant rides the new preset");
    }

    #[test]
    fn module_churn_maps_and_unmaps_through_the_space() {
        let region = SchedRegion::new(0xffff_ffff_c000_0000, 0xffff_ffff_c400_0000, 0x10_0000);
        let mut s = VictimSchedule::new(1, 7).with_module_region(region);
        let mut space = AddressSpace::new();
        let epoch0 = space.shape_epoch();

        assert!(s.apply_space_event(SchedEvent::ModuleLoad { pages: 16 }, &mut space));
        assert_eq!(s.loaded_modules(), 1);
        assert_eq!(space.mapped_pages(), 16);
        assert!(space.shape_epoch() > epoch0, "mutation bumps the epoch");

        assert!(s.apply_space_event(SchedEvent::ModuleUnload, &mut space));
        assert_eq!(s.loaded_modules(), 0);
        assert_eq!(space.mapped_pages(), 0, "only its own pages unmapped");
        assert!(
            !s.apply_space_event(SchedEvent::ModuleUnload, &mut space),
            "nothing left to unload"
        );
    }

    #[test]
    fn spawn_without_a_region_is_skipped() {
        let mut s = VictimSchedule::new(1, 7);
        let mut space = AddressSpace::new();
        assert!(!s.apply_space_event(SchedEvent::ProcessSpawn { pages: 4 }, &mut space));
        assert!(!s.apply_space_event(SchedEvent::ModuleLoad { pages: 4 }, &mut space));
        assert_eq!(space.mapped_pages(), 0);
    }

    #[test]
    fn image_draws_are_seed_deterministic_and_collision_free() {
        let region = SchedRegion::new(0x7f00_0000_0000, 0x7f00_0100_0000, 0x10_0000);
        let bases = |seed: u64| {
            let mut s = VictimSchedule::new(1, seed).with_module_region(region);
            let mut space = AddressSpace::new();
            let mut bases = Vec::new();
            for _ in 0..8 {
                assert!(s.apply_space_event(SchedEvent::ModuleLoad { pages: 4 }, &mut space));
                bases.push(s.loaded.last().copied().unwrap());
            }
            bases
        };
        assert_eq!(bases(3), bases(3), "same seed, same slots");
        assert_ne!(bases(3), bases(4), "different seed diverges");
        let drawn = bases(3);
        let unique: std::collections::HashSet<_> = drawn.iter().map(|&(b, _)| b).collect();
        assert_eq!(unique.len(), drawn.len(), "no slot collisions");
    }

    #[test]
    fn trace_round_trips_the_full_grammar() {
        let text = "\
            # a DVFS duty cycle with churn\n\
            ops-per-tick 32\n\
            tenant-weight 1.5\n\
            base laptop\n\
            every 4 8 noise quiet   # swap back\n\
            at 6 tenant-arrive\n\
            at 6 tenant-depart\n\
            at 10 module-load 16\n\
            at 12 module-unload\n\
            at 14 process-spawn 8\n";
        let s = VictimSchedule::from_trace(text, 7).unwrap();
        assert_eq!(s.ops_per_tick(), 32);
        assert_eq!(s.tenant_weight, 1.5);
        assert_eq!(s.profile(), NoiseProfile::LaptopDvfs);
        assert_eq!(s.pending(), 6);
        assert!(s.is_active());
    }

    #[test]
    fn trace_errors_are_line_tagged() {
        for (text, what) in [
            ("ops-per-tick 0\n", "positive integer"),
            ("at x noise quiet\n", "tick number"),
            ("every 4 0 noise quiet\n", "positive interval"),
            ("at 4 noise loudest\n", "noise preset"),
            ("at 4 module-load 0\n", "page count"),
            ("warp 4\n", "unknown directive"),
            ("at 4 tenant-arrive extra\n", "trailing tokens"),
        ] {
            let err = VictimSchedule::from_trace(text, 0).unwrap_err();
            assert!(err.contains("line 1"), "{err}");
            assert!(err.contains(what), "{err} should mention {what}");
        }
    }

    #[test]
    fn empty_schedule_is_inactive() {
        assert!(!VictimSchedule::new(64, 0).is_active());
        assert!(VictimSchedule::from_trace("# only comments\n", 0)
            .unwrap()
            .is_active()
            .eq(&false));
    }
}
