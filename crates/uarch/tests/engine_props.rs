//! Property tests of the execution engine's timing and counter
//! semantics — the invariants the attack's correctness rests on.

use proptest::prelude::*;

use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, ElemWidth, Event, Machine, Mask, MaskedOp, NoiseModel, OpKind};

const USER_M: u64 = 0x5555_5555_4000;
const KERNEL_M: u64 = 0xffff_ffff_a1e0_0000;
const KERNEL_U: u64 = 0xffff_ffff_a1a0_0000;

fn machine(profile: CpuProfile, seed: u64) -> Machine {
    let mut space = AddressSpace::new();
    space
        .map(
            VirtAddr::new_truncate(USER_M),
            PageSize::Size4K,
            PteFlags::user_rw(),
        )
        .unwrap();
    space
        .map(
            VirtAddr::new_truncate(KERNEL_M),
            PageSize::Size2M,
            PteFlags::kernel_rx(),
        )
        .unwrap();
    let mut m = Machine::new(profile, space, seed);
    m.set_noise(NoiseModel::none());
    m
}

fn steady(m: &mut Machine, op: MaskedOp) -> u64 {
    let _ = m.execute(op);
    m.execute(op).cycles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ordering P2 depends on holds on every Intel profile:
    /// user-mapped < kernel-mapped < kernel-unmapped (steady state).
    #[test]
    fn p2_ordering_holds_on_all_intel_profiles(idx in 0usize..7) {
        let profiles = [
            CpuProfile::ice_lake_i7_1065g7(),
            CpuProfile::coffee_lake_i9_9900(),
            CpuProfile::alder_lake_i5_12400f(),
            CpuProfile::skylake_i7_6600u(),
            CpuProfile::xeon_e5_2676(),
            CpuProfile::xeon_cascade_lake(),
            CpuProfile::xeon_platinum_8171m(),
        ];
        let mut m = machine(profiles[idx].clone(), 1);
        let user = steady(&mut m, MaskedOp::probe_load(VirtAddr::new_truncate(USER_M)));
        let mapped = steady(&mut m, MaskedOp::probe_load(VirtAddr::new_truncate(KERNEL_M)));
        let unmapped = steady(&mut m, MaskedOp::probe_load(VirtAddr::new_truncate(KERNEL_U)));
        prop_assert!(user < mapped, "{user} < {mapped}");
        prop_assert!(mapped < unmapped, "{mapped} < {unmapped}");
    }

    /// P6 holds on every profile: the store assist is cheaper than the
    /// load assist by 16–18 cycles.
    #[test]
    fn p6_delta_in_band_on_all_profiles(idx in 0usize..8) {
        let profiles = CpuProfile::all_evaluated();
        let mut m = machine(profiles[idx].clone(), 2);
        let load = steady(&mut m, MaskedOp::probe_load(VirtAddr::new_truncate(KERNEL_M)));
        let store = steady(&mut m, MaskedOp::probe_store(VirtAddr::new_truncate(KERNEL_M)));
        let delta = load as i64 - store as i64;
        prop_assert!((16..=18).contains(&delta), "delta {delta}");
    }

    /// Walk counters agree with outcome reporting for any probe mix.
    #[test]
    fn pmc_walks_match_outcomes(ops in prop::collection::vec(any::<(bool, bool)>(), 1..60)) {
        let mut m = machine(CpuProfile::alder_lake_i5_12400f(), 3);
        for (store, kernel_unmapped) in ops {
            let addr = if kernel_unmapped { KERNEL_U } else { KERNEL_M };
            let op = if store {
                MaskedOp::probe_store(VirtAddr::new_truncate(addr))
            } else {
                MaskedOp::probe_load(VirtAddr::new_truncate(addr))
            };
            let snap = m.pmc().snapshot();
            let out = m.execute(op);
            let d = m.pmc().delta(&snap);
            let event = if store {
                Event::DtlbStoreWalkCompleted
            } else {
                Event::DtlbLoadWalkCompleted
            };
            prop_assert_eq!(d.get(event), u64::from(out.walks_completed));
            prop_assert_eq!(d.get(Event::AssistsAny) > 0, out.assist || out.dirty_assist);
        }
    }

    /// Suppressed probes never change architectural state: no dirty
    /// bits appear anywhere from any sequence of zero-mask probes.
    #[test]
    fn zero_mask_probes_leave_no_dirty_bits(addrs in prop::collection::vec(any::<u16>(), 1..80)) {
        let mut m = machine(CpuProfile::ice_lake_i7_1065g7(), 4);
        for a in addrs {
            let addr = VirtAddr::new_truncate(KERNEL_M + u64::from(a) * 4096);
            let _ = m.execute(MaskedOp::probe_store(addr));
        }
        // The kernel page's dirty bit must still be clear.
        let region = m.space().lookup(VirtAddr::new_truncate(KERNEL_M)).unwrap();
        prop_assert!(!region.flags.is_dirty());
    }

    /// The measured latency after any prefix of operations stays within
    /// the model's envelope (base .. cold-walk + assist + extras): no
    /// state combination produces nonsense.
    #[test]
    fn latency_envelope(seq in prop::collection::vec(any::<(u8, bool)>(), 1..100)) {
        let profile = CpuProfile::alder_lake_i5_12400f();
        let t = profile.timing;
        let hi = t.base_load
            + t.assist_load
            + 2.0 * (4.0 * t.walk_step_cold + t.level_extra_pml4)
            + t.user_nonpresent_load_extra
            + 1.0;
        let mut m = machine(profile, 5);
        for (page, evict) in seq {
            let addr = VirtAddr::new_truncate(KERNEL_M + u64::from(page % 64) * 4096);
            if evict {
                m.evict_translation(addr);
            }
            let out = m.execute(MaskedOp::probe_load(addr));
            prop_assert!(out.fault.is_none());
            prop_assert!((out.cycles as f64) >= t.base_load, "{}", out.cycles);
            prop_assert!((out.cycles as f64) <= hi, "{} > {hi}", out.cycles);
        }
    }

    /// Masked stores with at least one unmasked lane on a writable page
    /// set the dirty bit exactly once and get fast afterwards.
    #[test]
    fn dirty_transition_is_monotone(mask_bits in 1u8..=0xff) {
        let mut m = machine(CpuProfile::alder_lake_i5_12400f(), 6);
        let op = MaskedOp {
            kind: OpKind::Store,
            addr: VirtAddr::new_truncate(USER_M),
            mask: Mask::new(mask_bits, 8),
            width: ElemWidth::Dword,
        };
        let first = m.execute(op);
        prop_assert!(first.dirty_assist);
        let second = m.execute(op);
        prop_assert!(!second.dirty_assist, "D already set");
        prop_assert!(second.cycles < first.cycles);
    }

    /// Noise never produces sub-floor measurements: with spikes-only
    /// noise the minimum over many probes equals the deterministic value.
    #[test]
    fn spikes_are_strictly_positive(seed in any::<u64>()) {
        let mut space = AddressSpace::new();
        space
            .map(
                VirtAddr::new_truncate(KERNEL_M),
                PageSize::Size2M,
                PteFlags::kernel_rx(),
            )
            .unwrap();
        let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, seed);
        m.set_noise(NoiseModel::new(0.0, 0.4, (100.0, 3000.0)));
        let probe = MaskedOp::probe_load(VirtAddr::new_truncate(KERNEL_M));
        let _ = m.execute(probe);
        let min = (0..64).map(|_| m.execute(probe).cycles).min().unwrap();
        prop_assert_eq!(min, 93);
    }

    /// The shadow-index fast path is observably identical to the
    /// reference walker at machine level: cycles, clock, PMCs, faults
    /// and the evolving PTE state agree under randomized interleavings
    /// of probes, batches, mutations, INVLPG and evictions — with the
    /// full noise model consuming the same RNG stream on both paths.
    #[test]
    fn shadow_fast_path_is_bit_exact_with_reference_walker(
        seed in any::<u64>(),
        profile_idx in 0usize..3,
    ) {
        let profiles = [
            CpuProfile::alder_lake_i5_12400f(), // Intel: PSC + retries
            CpuProfile::zen3_ryzen5_5600x(),    // AMD: PSC-bypass kernel walks
            CpuProfile::coffee_lake_i9_9900(),
        ];
        let build = || {
            let mut space = AddressSpace::new();
            space
                .map(
                    VirtAddr::new_truncate(USER_M),
                    PageSize::Size4K,
                    PteFlags::user_rw(),
                )
                .unwrap();
            space
                .map(
                    VirtAddr::new_truncate(KERNEL_M),
                    PageSize::Size2M,
                    PteFlags::kernel_rx(),
                )
                .unwrap();
            space
                .map(
                    VirtAddr::new_truncate(0xffff_ffff_c012_3000),
                    PageSize::Size4K,
                    PteFlags::kernel_rx(),
                )
                .unwrap();
            Machine::new(profiles[profile_idx].clone(), space, seed ^ 0x5ade)
        };
        let mut fast = build();
        let mut slow = build();
        slow.set_shadow_enabled(false);

        // A small deterministic op schedule derived from the seed.
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let sites = [
            USER_M,
            USER_M + 0x1000,
            KERNEL_M,
            KERNEL_U,
            0xffff_ffff_c012_3000,
            0x1234_5678_9000,
        ];
        for step in 0..96 {
            let addr = VirtAddr::new_truncate(
                sites[(next() % sites.len() as u64) as usize]
                    .wrapping_add((next() % 4) * 0x1000),
            );
            match next() % 8 {
                0 => {
                    let kind = if next() % 2 == 0 { OpKind::Load } else { OpKind::Store };
                    let batch: Vec<VirtAddr> =
                        (0..4).map(|i| addr.wrapping_add(i * 0x20_0000)).collect();
                    let mut out_fast = Vec::new();
                    let mut out_slow = Vec::new();
                    fast.execute_batch_into(kind, &batch, &mut out_fast);
                    slow.execute_batch_into(kind, &batch, &mut out_slow);
                    prop_assert_eq!(out_fast, out_slow, "step {}", step);
                }
                1 => {
                    fast.invlpg(addr);
                    slow.invlpg(addr);
                }
                2 => {
                    fast.evict_translation(addr);
                    slow.evict_translation(addr);
                }
                3 => {
                    fast.touch_as_kernel(addr);
                    slow.touch_as_kernel(addr);
                }
                4 => {
                    // Structural mutation mid-run: unmap/remap a page.
                    let page = VirtAddr::new_truncate(USER_M + 0x1000);
                    let _ = fast.space_mut().map(page, PageSize::Size4K, PteFlags::user_ro());
                    let _ = slow.space_mut().map(page, PageSize::Size4K, PteFlags::user_ro());
                    if next() % 2 == 0 {
                        let _ = fast.space_mut().unmap(page, PageSize::Size4K);
                        let _ = slow.space_mut().unmap(page, PageSize::Size4K);
                    }
                }
                _ => {
                    let op = if next() % 2 == 0 {
                        MaskedOp::probe_load(addr)
                    } else {
                        MaskedOp::probe_store(addr)
                    };
                    let a = fast.execute(op);
                    let b = slow.execute(op);
                    prop_assert_eq!(a.cycles, b.cycles, "step {}", step);
                    prop_assert_eq!(a.fault.is_some(), b.fault.is_some(), "step {}", step);
                    prop_assert_eq!(a.assist, b.assist, "step {}", step);
                    prop_assert_eq!(a.walks_completed, b.walks_completed, "step {}", step);
                    prop_assert_eq!(a.tlb_hit, b.tlb_hit, "step {}", step);
                    prop_assert_eq!(a.terminal_level, b.terminal_level, "step {}", step);
                }
            }
        }
        prop_assert_eq!(fast.elapsed_cycles(), slow.elapsed_cycles());
        for event in Event::ALL {
            prop_assert_eq!(
                fast.pmc().read(event),
                slow.pmc().read(event),
                "{:?}",
                event
            );
        }
        prop_assert_eq!(fast.space().iter_regions(), slow.space().iter_regions());
    }
}
