//! Property suite for the victim event scheduler (`avx_uarch::sched`)
//! at the machine layer.
//!
//! Pins the wiring invariants of invariant 13:
//! 1. No schedule ⇒ no clock reads: an uninstalled (or inactive)
//!    schedule leaves the probe stream bit-identical to the historical
//!    machine, both observables regimes.
//! 2. A scheduled no-op (quiet→quiet swap) is architecturally silent:
//!    the event fires, the probe values do not move.
//! 3. Same seed + schedule ⇒ bit-identical probe streams (the machine
//!    replays, events included).
//! 4. Space events route through the page-table chokepoint: module
//!    churn mutates the victim's own space mid-stream and the clock
//!    ticks per victim-observed op.

use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{
    CpuProfile, Machine, NoiseProfile, ObservablesVersion, OpKind, SchedEvent, SchedRegion,
    VictimSchedule,
};

const MODULE_REGION_START: u64 = 0xffff_ffff_c000_0000;
const MODULE_REGION_END: u64 = 0xffff_ffff_c400_0000;

fn victim_space() -> (AddressSpace, VirtAddr, VirtAddr) {
    let mut space = AddressSpace::new();
    let kernel = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
    let user = VirtAddr::new_truncate(0x5500_0000_0000);
    space
        .map(kernel, PageSize::Size2M, PteFlags::kernel_rx())
        .expect("kernel page");
    space
        .map(user, PageSize::Size4K, PteFlags::user_ro())
        .expect("user page");
    (space, kernel, user)
}

fn machine(seed: u64) -> (Machine, Vec<VirtAddr>) {
    let (space, kernel, user) = victim_space();
    let m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, seed);
    // A mix of mapped/unmapped kernel and user probes, long enough for
    // every schedule below to tick several times.
    let addrs: Vec<VirtAddr> = (0..512)
        .map(|i| match i % 3 {
            0 => kernel,
            1 => user,
            _ => VirtAddr::new_truncate(0xffff_ffff_b000_0000 + (i as u64) * 0x1000),
        })
        .collect();
    (m, addrs)
}

// ---------------------------------------------------------------------
// Property 1: no schedule ⇒ no clock reads.

#[test]
fn inactive_schedules_are_dropped_at_install() {
    let (mut m, _) = machine(7);
    m.set_victim_schedule(Some(VictimSchedule::new(64, 7)));
    assert!(
        m.victim_schedule().is_none(),
        "an empty event queue is the no-schedule machine"
    );
    m.set_victim_schedule(None);
    assert!(m.victim_schedule().is_none());
}

#[test]
fn no_schedule_probe_streams_are_bit_identical_in_both_regimes() {
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        let (mut plain, addrs) = machine(42);
        let (mut installed, _) = machine(42);
        plain.set_observables(observables);
        installed.set_observables(observables);
        // Installing nothing (and an inactive schedule) must leave the
        // stream untouched, value for value.
        installed.set_victim_schedule(Some(VictimSchedule::new(8, 42)));
        let a = plain.execute_batch(OpKind::Load, &addrs);
        let b = installed.execute_batch(OpKind::Load, &addrs);
        assert_eq!(a, b, "probe stream moved under {}", observables.name());
    }
}

// ---------------------------------------------------------------------
// Property 2: a scheduled no-op event is architecturally silent.

#[test]
fn quiet_to_quiet_swaps_leave_the_stream_bit_exact() {
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        let (mut plain, addrs) = machine(9);
        let (mut swapped, _) = machine(9);
        plain.set_observables(observables);
        swapped.set_observables(observables);
        swapped.set_victim_schedule(Some(
            VictimSchedule::new(16, 9)
                .with_base(NoiseProfile::Quiet)
                .every(2, 4, SchedEvent::NoiseSwap(NoiseProfile::Quiet)),
        ));
        let a = plain.execute_batch(OpKind::Load, &addrs);
        let b = swapped.execute_batch(OpKind::Load, &addrs);
        assert_eq!(
            a,
            b,
            "a no-op swap bent the stream under {}",
            observables.name()
        );
        let sched = swapped.victim_schedule().expect("still installed");
        assert!(sched.fired() >= 7, "events fired: {}", sched.fired());
        assert_eq!(sched.ops_seen(), addrs.len() as u64, "clock tracked ops");
    }
}

// ---------------------------------------------------------------------
// Property 3: scheduled machines replay bit-identically.

#[test]
fn same_seed_and_schedule_replays_bit_identical_streams() {
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        let run = |_| {
            let (mut m, addrs) = machine(23);
            m.set_observables(observables);
            m.set_victim_schedule(Some(
                VictimSchedule::new(16, 23)
                    .with_base(NoiseProfile::Quiet)
                    .every(2, 6, SchedEvent::NoiseSwap(NoiseProfile::LaptopDvfs))
                    .every(5, 6, SchedEvent::NoiseSwap(NoiseProfile::Quiet))
                    .every(3, 8, SchedEvent::TenantArrive)
                    .every(7, 8, SchedEvent::TenantDepart),
            ));
            m.execute_batch(OpKind::Load, &addrs)
        };
        assert_eq!(run(0), run(1), "replay moved under {}", observables.name());
    }
}

#[test]
fn dvfs_swaps_actually_move_the_stream() {
    // The counter-property: the same schedule with a *real* noise swap
    // must diverge from the unscheduled machine — events do fire.
    let (mut plain, addrs) = machine(31);
    let (mut swapped, _) = machine(31);
    swapped.set_victim_schedule(Some(
        VictimSchedule::new(16, 31)
            .with_base(NoiseProfile::Quiet)
            .every(2, 4, SchedEvent::NoiseSwap(NoiseProfile::LaptopDvfs)),
    ));
    let a = plain.execute_batch(OpKind::Load, &addrs);
    let b = swapped.execute_batch(OpKind::Load, &addrs);
    assert_ne!(a, b, "the DVFS swap never took effect");
}

// ---------------------------------------------------------------------
// Property 4: module churn mutates the victim's own space mid-stream.

#[test]
fn module_churn_maps_and_unmaps_mid_stream() {
    let (mut m, addrs) = machine(17);
    m.set_victim_schedule(Some(
        VictimSchedule::new(16, 17)
            .with_module_region(SchedRegion::new(
                MODULE_REGION_START,
                MODULE_REGION_END,
                0x1000,
            ))
            .every(2, 4, SchedEvent::ModuleLoad { pages: 4 })
            .every(4, 8, SchedEvent::ModuleUnload),
    ));
    let _ = m.execute_batch(OpKind::Load, &addrs);
    let sched = m.victim_schedule().expect("installed");
    assert!(sched.fired() >= 8, "churn events fired: {}", sched.fired());
    assert!(
        sched.loaded_modules() >= 1,
        "loads outpace unloads 2:1, so modules accumulate"
    );
}

#[test]
fn probes_against_churned_pages_see_the_mapping_flip() {
    // A page the schedule will map: before the load event it times like
    // unmapped memory, afterwards like mapped memory. The probe stream
    // itself witnesses the write_entry mutation.
    let (mut m, _) = machine(3);
    let mut sched = VictimSchedule::new(4, 3).with_module_region(SchedRegion::new(
        MODULE_REGION_START,
        MODULE_REGION_END,
        0x1000,
    ));
    sched = sched.at(2, SchedEvent::ModuleLoad { pages: 16 });
    m.set_victim_schedule(Some(sched));
    let filler = VirtAddr::new_truncate(0xffff_ffff_b000_0000);
    // Advance the clock past the load event.
    for _ in 0..16 {
        let _ = m.probe(OpKind::Load, filler);
    }
    let sched = m.victim_schedule().expect("installed");
    assert_eq!(sched.fired(), 1, "one-shot load fired");
    assert_eq!(sched.loaded_modules(), 1);
    assert!(
        m.space().mapped_pages() > 2,
        "the module's pages joined the victim space"
    );
}
