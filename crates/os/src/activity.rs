//! Background kernel-activity timelines.
//!
//! Drives the Fig. 6 user-behaviour experiment: when the user streams
//! Bluetooth audio or moves the mouse, the kernel executes the
//! corresponding driver module, whose page translations land in the
//! shared TLB. A spy probing the module's pages then sees TLB-hit
//! latencies during activity and cold-walk latencies otherwise.

use core::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use avx_mmu::VirtAddr;
use avx_uarch::Machine;

/// The two user behaviours monitored in the paper's Fig. 6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Behaviour {
    /// Bluetooth audio streaming (touches the `bluetooth` module).
    BluetoothAudio,
    /// Mouse movement (touches the `psmouse` module).
    MouseMovement,
}

impl Behaviour {
    /// The kernel module this behaviour exercises.
    #[must_use]
    pub const fn module_name(self) -> &'static str {
        match self {
            Behaviour::BluetoothAudio => "bluetooth",
            Behaviour::MouseMovement => "psmouse",
        }
    }
}

impl fmt::Display for Behaviour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behaviour::BluetoothAudio => write!(f, "Bluetooth audio"),
            Behaviour::MouseMovement => write!(f, "Mouse movements"),
        }
    }
}

/// A half-open activity window `[start, end)` in seconds.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Window {
    /// Start second (inclusive).
    pub start: f64,
    /// End second (exclusive).
    pub end: f64,
}

impl Window {
    /// `true` if `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// When a behaviour is active over the observation period.
#[derive(Clone, Debug)]
pub struct ActivityTimeline {
    /// Which behaviour this timeline describes.
    pub behaviour: Behaviour,
    /// Active windows, non-overlapping, ascending.
    pub windows: Vec<Window>,
    /// Total observation length in seconds.
    pub duration: f64,
}

impl ActivityTimeline {
    /// The Fig. 6 Bluetooth session: one long streaming window in the
    /// middle of a 100 s observation.
    #[must_use]
    pub fn bluetooth_session() -> Self {
        Self {
            behaviour: Behaviour::BluetoothAudio,
            windows: vec![Window {
                start: 20.0,
                end: 80.0,
            }],
            duration: 100.0,
        }
    }

    /// The Fig. 6 mouse session: several movement bursts.
    #[must_use]
    pub fn mouse_session() -> Self {
        Self {
            behaviour: Behaviour::MouseMovement,
            windows: vec![
                Window {
                    start: 10.0,
                    end: 22.0,
                },
                Window {
                    start: 38.0,
                    end: 52.0,
                },
                Window {
                    start: 68.0,
                    end: 90.0,
                },
            ],
            duration: 100.0,
        }
    }

    /// A randomized timeline with `bursts` activity windows — used for
    /// accuracy sweeps of the behaviour detector.
    #[must_use]
    pub fn random(behaviour: Behaviour, duration: f64, bursts: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4143_5449_5649_5459); // "ACTIVITY"
        let mut windows: Vec<Window> = Vec::with_capacity(bursts);
        let slot = duration / bursts.max(1) as f64;
        for i in 0..bursts {
            let lo = i as f64 * slot;
            let start = lo + rng.gen_range(0.0..slot * 0.4);
            let len = rng.gen_range(slot * 0.2..slot * 0.5);
            windows.push(Window {
                start,
                end: (start + len).min(duration),
            });
        }
        Self {
            behaviour,
            windows,
            duration,
        }
    }

    /// `true` if the behaviour is active at time `t`.
    #[must_use]
    pub fn active_at(&self, t: f64) -> bool {
        self.windows.iter().any(|w| w.contains(t))
    }

    /// The ground-truth activity sample at 1 Hz (for detector scoring).
    #[must_use]
    pub fn samples_1hz(&self) -> Vec<bool> {
        (0..self.duration as usize)
            .map(|s| self.active_at(s as f64))
            .collect()
    }
}

/// Applies kernel-side effects of the timeline to a machine at time `t`:
/// when active, the kernel touches the first pages of the module
/// (interrupt handlers, data structures), caching their translations.
pub fn apply_activity(
    machine: &mut Machine,
    timeline: &ActivityTimeline,
    module_base: VirtAddr,
    module_pages: u64,
    t: f64,
) {
    if timeline.active_at(t) {
        // Driver activity touches the leading pages repeatedly.
        for page in 0..module_pages.min(10) {
            machine.touch_as_kernel(module_base.wrapping_add(page * 4096));
        }
    }
}

/// An application's *module-activity profile*: which kernel modules its
/// execution keeps hot, as fractions of spy samples in [0, 1].
///
/// The paper closes §IV-E with "we believe that our attack will likely
/// be extended … to fingerprint applications or websites"; this is that
/// extension. Only unique-sized modules are usable in practice (the spy
/// must first locate them by size, §IV-C), so profiles are defined over
/// that subset.
#[derive(Clone, Debug, PartialEq)]
pub struct AppProfile {
    /// Application name.
    pub name: &'static str,
    /// `(module, expected activity fraction)` — modules not listed are
    /// expected idle.
    pub activity: Vec<(&'static str, f64)>,
}

impl AppProfile {
    /// A video-call app: audio streaming + camera + network driver work.
    #[must_use]
    pub fn video_call() -> Self {
        Self {
            name: "video-call",
            activity: vec![
                ("bluetooth", 0.9),
                ("video", 0.7),
                ("e1000e", 0.8),
                ("psmouse", 0.2),
            ],
        }
    }

    /// A code editor: input devices dominate, barely any network.
    #[must_use]
    pub fn editor() -> Self {
        Self {
            name: "editor",
            activity: vec![("psmouse", 0.8), ("i2c_i801", 0.3), ("e1000e", 0.1)],
        }
    }

    /// A file-sync daemon: filesystem + network, no input.
    #[must_use]
    pub fn file_sync() -> Self {
        Self {
            name: "file-sync",
            activity: vec![("xfs", 0.9), ("e1000e", 0.9), ("nvme", 0.6)],
        }
    }

    /// A media player: audio + video, mouse only occasionally.
    #[must_use]
    pub fn media_player() -> Self {
        Self {
            name: "media-player",
            activity: vec![("snd_hda_intel", 0.9), ("video", 0.8), ("psmouse", 0.1)],
        }
    }

    /// The default classifier database.
    #[must_use]
    pub fn standard_set() -> Vec<Self> {
        vec![
            Self::video_call(),
            Self::editor(),
            Self::file_sync(),
            Self::media_player(),
        ]
    }

    /// Expected activity fraction for `module` (0 when unlisted).
    #[must_use]
    pub fn expected(&self, module: &str) -> f64 {
        self.activity
            .iter()
            .find(|(m, _)| *m == module)
            .map_or(0.0, |(_, f)| *f)
    }

    /// Generates per-module activity timelines for one run of this app:
    /// each listed module gets random bursts totalling roughly its
    /// activity fraction of the observation window.
    #[must_use]
    pub fn timelines(&self, duration: f64, seed: u64) -> Vec<(&'static str, ActivityTimeline)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4150_5050_524f_464c); // "APPPROFL"
        self.activity
            .iter()
            .map(|&(module, fraction)| {
                // Bernoulli per second, preserving the expected fraction.
                let mut windows = Vec::new();
                let mut t = 0.0;
                while t < duration {
                    if rng.gen::<f64>() < fraction {
                        windows.push(Window {
                            start: t,
                            end: t + 1.0,
                        });
                    }
                    t += 1.0;
                }
                (
                    module,
                    ActivityTimeline {
                        behaviour: Behaviour::BluetoothAudio, // label unused here
                        windows,
                        duration,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bluetooth_session_matches_fig6_shape() {
        let tl = ActivityTimeline::bluetooth_session();
        assert!(!tl.active_at(5.0));
        assert!(tl.active_at(25.0));
        assert!(tl.active_at(79.9));
        assert!(!tl.active_at(85.0));
        assert_eq!(tl.behaviour.module_name(), "bluetooth");
    }

    #[test]
    fn mouse_session_has_three_bursts() {
        let tl = ActivityTimeline::mouse_session();
        assert_eq!(tl.windows.len(), 3);
        assert!(tl.active_at(15.0));
        assert!(!tl.active_at(30.0));
        assert!(tl.active_at(45.0));
        assert!(!tl.active_at(60.0));
        assert!(tl.active_at(75.0));
        assert_eq!(tl.behaviour.module_name(), "psmouse");
    }

    #[test]
    fn samples_1hz_length_and_content() {
        let tl = ActivityTimeline::bluetooth_session();
        let s = tl.samples_1hz();
        assert_eq!(s.len(), 100);
        assert!(!s[0]);
        assert!(s[50]);
        assert_eq!(s.iter().filter(|&&b| b).count(), 60);
    }

    #[test]
    fn random_timelines_stay_in_bounds_and_vary() {
        let a = ActivityTimeline::random(Behaviour::MouseMovement, 60.0, 4, 1);
        let b = ActivityTimeline::random(Behaviour::MouseMovement, 60.0, 4, 2);
        assert_eq!(a.windows.len(), 4);
        for w in &a.windows {
            assert!(w.start >= 0.0 && w.end <= 60.0 && w.start < w.end);
        }
        assert_ne!(
            a.samples_1hz(),
            b.samples_1hz(),
            "different seeds, different bursts"
        );
    }

    #[test]
    fn windows_do_not_overlap() {
        for seed in 0..10 {
            let tl = ActivityTimeline::random(Behaviour::BluetoothAudio, 120.0, 5, seed);
            for pair in tl.windows.windows(2) {
                assert!(pair[0].end <= pair[1].start + 1e-9);
            }
        }
    }

    #[test]
    fn behaviour_display() {
        assert_eq!(Behaviour::BluetoothAudio.to_string(), "Bluetooth audio");
        assert_eq!(Behaviour::MouseMovement.to_string(), "Mouse movements");
    }

    #[test]
    fn app_profiles_use_unique_sized_modules_only() {
        use crate::modules::{unique_sized, UBUNTU_18_04_MODULES};
        let unique: Vec<&str> = unique_sized(&UBUNTU_18_04_MODULES)
            .iter()
            .map(|m| m.name)
            .collect();
        for profile in AppProfile::standard_set() {
            for (module, fraction) in &profile.activity {
                assert!(
                    unique.contains(module),
                    "{}: {module} is not locatable by size",
                    profile.name
                );
                assert!((0.0..=1.0).contains(fraction));
            }
        }
    }

    #[test]
    fn app_timelines_respect_activity_fractions() {
        let profile = AppProfile::video_call();
        let timelines = profile.timelines(200.0, 3);
        for (module, tl) in &timelines {
            let active = tl.samples_1hz().iter().filter(|&&b| b).count() as f64 / 200.0;
            let expected = profile.expected(module);
            assert!(
                (active - expected).abs() < 0.15,
                "{module}: {active} vs expected {expected}"
            );
        }
    }

    #[test]
    fn app_profiles_are_pairwise_distinguishable() {
        // The L1 distance between any two profiles (over the union of
        // their modules) must be large enough for a detector to tell
        // them apart even with sampling noise.
        let set = AppProfile::standard_set();
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                let mut modules: Vec<&str> = a
                    .activity
                    .iter()
                    .chain(&b.activity)
                    .map(|(m, _)| *m)
                    .collect();
                modules.sort_unstable();
                modules.dedup();
                let dist: f64 = modules
                    .iter()
                    .map(|m| (a.expected(m) - b.expected(m)).abs())
                    .sum();
                assert!(dist > 0.8, "{} vs {} too close: {dist}", a.name, b.name);
            }
        }
    }

    #[test]
    fn expected_returns_zero_for_unlisted() {
        assert_eq!(AppProfile::editor().expected("bluetooth"), 0.0);
        assert!(AppProfile::editor().expected("psmouse") > 0.0);
    }
}
