//! Windows 10 kernel memory-layout simulator (§IV-G).
//!
//! The kernel and drivers live between `0xfffff80000000000` and
//! `0xfffff88000000000` with 2 MiB granularity — 262144 possible offsets
//! (18 bits of entropy). The kernel image occupies five consecutive
//! 2 MiB pages; its entry point is additionally randomized at 4 KiB
//! granularity inside the image (the remaining 9 bits the paper breaks
//! with the TLB attack). With KVAS (the Windows Meltdown mitigation),
//! only the shadow entry region — three consecutive 4 KiB pages at
//! offset `0x298000` from the base (Windows 10 1709) — stays visible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, Machine};

/// Start of the Windows kernel randomization region.
pub const WIN_KERNEL_REGION_START: u64 = 0xffff_f800_0000_0000;
/// End (exclusive) of the region.
pub const WIN_KERNEL_REGION_END: u64 = 0xffff_f880_0000_0000;
/// Randomization granularity.
pub const WIN_KASLR_ALIGN: u64 = 0x20_0000;
/// Number of candidate offsets (262144 → 18 bits of entropy).
pub const WIN_KERNEL_SLOTS: u64 =
    (WIN_KERNEL_REGION_END - WIN_KERNEL_REGION_START) / WIN_KASLR_ALIGN;
/// 2 MiB pages occupied by the kernel image.
pub const WIN_KERNEL_IMAGE_SLOTS: u64 = 5;
/// `KiSystemCall64Shadow` offset from the kernel base (Win10 1709).
pub const KVAS_SHADOW_OFFSET: u64 = 0x29_8000;
/// Size of the KVAS shadow region: three consecutive 4 KiB pages.
pub const KVAS_SHADOW_PAGES: u64 = 3;

/// Windows version, which fixes the KVAS shadow offset semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WindowsVersion {
    /// Windows 10 1709 (KVAS testbed of §IV-G).
    V1709,
    /// Windows 10 21H2 (Azure testbed of §IV-H).
    V21H2,
}

/// Build options for the Windows model.
#[derive(Clone, Debug)]
pub struct WindowsConfig {
    /// OS version.
    pub version: WindowsVersion,
    /// Kernel Virtual Address Shadow (Meltdown mitigation): hide the
    /// kernel, expose only the shadow entry pages.
    pub kvas: bool,
    /// Pin the 2 MiB slot (tests); random otherwise.
    pub fixed_slot: Option<u64>,
    /// Layout seed.
    pub seed: u64,
}

impl Default for WindowsConfig {
    fn default() -> Self {
        Self {
            version: WindowsVersion::V21H2,
            kvas: false,
            fixed_slot: None,
            seed: 0,
        }
    }
}

/// Ground truth of the built Windows machine.
#[derive(Clone, Copy, Debug)]
pub struct WindowsTruth {
    /// Base of the five-slot kernel image region.
    pub kernel_base: VirtAddr,
    /// 2 MiB slot index of the base.
    pub slot: u64,
    /// Kernel entry point (4 KiB-randomized inside the image).
    pub entry: VirtAddr,
    /// First KVAS shadow page, when KVAS is enabled.
    pub shadow: Option<VirtAddr>,
    /// Attacker scratch page (user rw).
    pub user_scratch: VirtAddr,
}

/// A built Windows machine model.
#[derive(Clone, Debug)]
pub struct WindowsSystem {
    space: AddressSpace,
    truth: WindowsTruth,
    config: WindowsConfig,
}

impl WindowsSystem {
    /// Builds the attacker-visible address space.
    ///
    /// # Panics
    ///
    /// Panics if `fixed_slot` exceeds the randomization range.
    #[must_use]
    pub fn build(config: WindowsConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5749_4e4b_4153_4c52); // "WINKASLR"
        let max_slot = WIN_KERNEL_SLOTS - WIN_KERNEL_IMAGE_SLOTS;
        let slot = match config.fixed_slot {
            Some(s) => {
                assert!(s <= max_slot, "fixed slot out of range");
                s
            }
            None => rng.gen_range(0..=max_slot),
        };
        let kernel_base = VirtAddr::new_truncate(WIN_KERNEL_REGION_START + slot * WIN_KASLR_ALIGN);
        let entry = kernel_base.wrapping_add(rng.gen_range(0..WIN_KASLR_ALIGN / 0x1000) * 0x1000);

        let mut space = AddressSpace::new();
        let shadow = if config.kvas {
            let shadow_base = kernel_base.wrapping_add(KVAS_SHADOW_OFFSET);
            space
                .map_range(
                    shadow_base,
                    KVAS_SHADOW_PAGES,
                    PageSize::Size4K,
                    PteFlags::kernel_rx(),
                )
                .expect("KVAS shadow mapping");
            Some(shadow_base)
        } else {
            for s in 0..WIN_KERNEL_IMAGE_SLOTS {
                let flags = if s < 2 {
                    PteFlags::kernel_rx()
                } else {
                    PteFlags::kernel_rw()
                };
                let slot_base = kernel_base.wrapping_add(s * WIN_KASLR_ALIGN);
                if s == 0 {
                    // The image head (PE headers + entry sections) is
                    // 4 KiB-mapped, like the section boundaries of real
                    // ntoskrnl images. This is what lets the TLB attack
                    // resolve the 4 KiB-randomized entry point — the
                    // "remaining 9 bits of entropy" of §IV-G.
                    space
                        .map_range(slot_base, 512, PageSize::Size4K, flags)
                        .expect("kernel head 4 KiB mapping");
                } else {
                    space
                        .map(slot_base, PageSize::Size2M, flags)
                        .expect("kernel image mapping");
                }
            }
            None
        };

        // Attacker user pages.
        let user_scratch =
            VirtAddr::new_truncate(0x0000_7ff6_0000_0000 + (rng.gen_range(0u64..1 << 24) << 12));
        space
            .map_range(user_scratch, 4, PageSize::Size4K, PteFlags::user_rw())
            .expect("user scratch");

        Self {
            space,
            truth: WindowsTruth {
                kernel_base,
                slot,
                entry,
                shadow,
                user_scratch,
            },
            config,
        }
    }

    /// The built address space.
    #[must_use]
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Ground truth for scoring.
    #[must_use]
    pub fn truth(&self) -> &WindowsTruth {
        &self.truth
    }

    /// The configuration used.
    #[must_use]
    pub fn config(&self) -> &WindowsConfig {
        &self.config
    }

    /// Consumes into a [`Machine`] plus ground truth.
    #[must_use]
    pub fn into_machine(self, profile: CpuProfile, seed: u64) -> (Machine, WindowsTruth) {
        (Machine::new(profile, self.space, seed), self.truth)
    }

    /// Builds a [`Machine`] from a copy-on-write snapshot of this
    /// system, leaving the system reusable across trials (see
    /// [`crate::linux::LinuxSystem::machine`]).
    #[must_use]
    pub fn machine(&self, profile: CpuProfile, seed: u64) -> (Machine, WindowsTruth) {
        (Machine::new(profile, self.space.clone(), seed), self.truth)
    }
}

/// Simulates one victim syscall: the kernel executes its entry code,
/// caching the entry page's translation in the shared TLB. The driver
/// for the §IV-G entry-point refinement.
pub fn perform_syscall(machine: &mut Machine, truth: &WindowsTruth) {
    machine.touch_as_kernel(truth.entry.align_down(4096));
}

#[cfg(test)]
mod tests {
    use super::*;
    use avx_mmu::Walker;

    #[test]
    fn entropy_constants_match_paper() {
        assert_eq!(WIN_KERNEL_SLOTS, 262_144, "18 bits of entropy");
        assert_eq!(WIN_KERNEL_IMAGE_SLOTS, 5);
        assert_eq!(KVAS_SHADOW_OFFSET, 0x29_8000);
        assert_eq!(KVAS_SHADOW_PAGES, 3);
    }

    #[test]
    fn kernel_occupies_five_consecutive_slots() {
        let sys = WindowsSystem::build(WindowsConfig {
            fixed_slot: Some(1000),
            ..WindowsConfig::default()
        });
        let t = sys.truth();
        let walker = Walker::new();
        for s in 0..5 {
            let va = t.kernel_base.wrapping_add(s * WIN_KASLR_ALIGN);
            assert!(walker.walk(sys.space(), va).is_mapped(), "slot {s}");
        }
        let before = VirtAddr::new_truncate(t.kernel_base.as_u64() - WIN_KASLR_ALIGN);
        let after = t.kernel_base.wrapping_add(5 * WIN_KASLR_ALIGN);
        assert!(!walker.walk(sys.space(), before).is_mapped());
        assert!(!walker.walk(sys.space(), after).is_mapped());
    }

    #[test]
    fn entry_is_4k_randomized_inside_image() {
        let mut entries = std::collections::HashSet::new();
        for seed in 0..12 {
            let sys = WindowsSystem::build(WindowsConfig {
                fixed_slot: Some(7),
                seed,
                ..WindowsConfig::default()
            });
            let t = sys.truth();
            let off = t.entry.as_u64() - t.kernel_base.as_u64();
            assert_eq!(off % 0x1000, 0);
            assert!(off < WIN_KASLR_ALIGN);
            entries.insert(off);
        }
        assert!(entries.len() > 6, "entry offset varies across seeds");
    }

    #[test]
    fn kvas_hides_kernel_but_maps_three_shadow_pages() {
        let sys = WindowsSystem::build(WindowsConfig {
            version: WindowsVersion::V1709,
            kvas: true,
            fixed_slot: Some(5000),
            seed: 1,
        });
        let t = sys.truth();
        let walker = Walker::new();
        assert!(!walker.walk(sys.space(), t.kernel_base).is_mapped());
        let shadow = t.shadow.expect("shadow mapped");
        assert_eq!(shadow.as_u64(), t.kernel_base.as_u64() + KVAS_SHADOW_OFFSET);
        for p in 0..3 {
            assert!(walker
                .walk(sys.space(), shadow.wrapping_add(p * 4096))
                .is_mapped());
        }
        assert!(!walker
            .walk(sys.space(), shadow.wrapping_add(3 * 4096))
            .is_mapped());
    }

    #[test]
    fn random_slot_in_range_and_varies() {
        let mut slots = std::collections::HashSet::new();
        for seed in 0..10 {
            let sys = WindowsSystem::build(WindowsConfig {
                seed,
                ..WindowsConfig::default()
            });
            let t = sys.truth();
            assert!(t.slot <= WIN_KERNEL_SLOTS - 5);
            assert!(t.kernel_base.as_u64() >= WIN_KERNEL_REGION_START);
            assert!(t.kernel_base.as_u64() < WIN_KERNEL_REGION_END);
            slots.insert(t.slot);
        }
        assert!(slots.len() >= 8);
    }

    #[test]
    fn user_scratch_is_writable_user_memory() {
        let sys = WindowsSystem::build(WindowsConfig::default());
        let m = sys.space().lookup(sys.truth().user_scratch).unwrap();
        assert!(m.flags.is_user());
        assert!(m.flags.is_writable());
    }

    #[test]
    #[should_panic(expected = "fixed slot out of range")]
    fn oversized_slot_panics() {
        let _ = WindowsSystem::build(WindowsConfig {
            fixed_slot: Some(WIN_KERNEL_SLOTS),
            ..WindowsConfig::default()
        });
    }
}
