//! SGX enclave execution context (§IV-F).
//!
//! The paper mounts its fine-grained user-space ASLR break *from inside*
//! an SGX enclave. The enclave does not change what the masked
//! operations observe — it changes what the attacker can use:
//!
//! * no syscalls, hence no `/proc/PID/maps` oracle,
//! * SGX1 forbids `RDTSC`/`RDTSCP` inside the enclave (the attack then
//!   needs a counting-thread timer with extra jitter),
//! * SGX2 permits the high-precision timer, which is the configuration
//!   the paper evaluates (51 s masked-load / 44 s masked-store scans).

use core::fmt;

/// SGX generation, deciding timer availability.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SgxGeneration {
    /// SGX1: `RDTSC` is illegal inside the enclave.
    Sgx1,
    /// SGX2: `RDTSC`/`RDTSCP` allowed (the paper's setup).
    Sgx2,
}

/// The execution context an attack runs in.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ExecutionContext {
    /// Inside an enclave?
    pub enclave: Option<SgxGeneration>,
    /// Multiplier on timing-noise sigma for degraded timers (counting
    /// thread ≈ 3–5× noisier than `RDTSC`).
    pub timer_noise_factor: f64,
}

impl ExecutionContext {
    /// Plain user-space process with `RDTSC` (the common case).
    #[must_use]
    pub const fn native() -> Self {
        Self {
            enclave: None,
            timer_noise_factor: 1.0,
        }
    }

    /// Inside an SGX2 enclave: precise timer available.
    #[must_use]
    pub const fn sgx2() -> Self {
        Self {
            enclave: Some(SgxGeneration::Sgx2),
            timer_noise_factor: 1.0,
        }
    }

    /// Inside an SGX1 enclave: counting-thread timer only.
    #[must_use]
    pub const fn sgx1() -> Self {
        Self {
            enclave: Some(SgxGeneration::Sgx1),
            timer_noise_factor: 4.0,
        }
    }

    /// `true` when a high-precision timer is available.
    #[must_use]
    pub fn has_precise_timer(&self) -> bool {
        !matches!(self.enclave, Some(SgxGeneration::Sgx1))
    }

    /// `true` when OS oracles (`/proc`) are reachable: never in enclaves.
    #[must_use]
    pub fn has_proc_oracle(&self) -> bool {
        self.enclave.is_none()
    }
}

impl Default for ExecutionContext {
    fn default() -> Self {
        Self::native()
    }
}

impl fmt::Display for ExecutionContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.enclave {
            None => write!(f, "native process"),
            Some(SgxGeneration::Sgx1) => write!(f, "SGX1 enclave (no rdtsc)"),
            Some(SgxGeneration::Sgx2) => write!(f, "SGX2 enclave (rdtsc ok)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_has_everything() {
        let c = ExecutionContext::native();
        assert!(c.has_precise_timer());
        assert!(c.has_proc_oracle());
        assert_eq!(c.timer_noise_factor, 1.0);
    }

    #[test]
    fn sgx2_keeps_timer_loses_proc() {
        let c = ExecutionContext::sgx2();
        assert!(c.has_precise_timer());
        assert!(!c.has_proc_oracle());
    }

    #[test]
    fn sgx1_degrades_timer() {
        let c = ExecutionContext::sgx1();
        assert!(!c.has_precise_timer());
        assert!(c.timer_noise_factor > 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ExecutionContext::native().to_string(), "native process");
        assert!(ExecutionContext::sgx2().to_string().contains("SGX2"));
    }
}
