//! Cloud-provider guest presets (§IV-H).
//!
//! The paper breaks KASLR on three public clouds. Each preset bundles
//! the host CPU the paper observed with the guest OS configuration:
//!
//! * **Amazon EC2** — Xeon E5-2676 (Meltdown-vulnerable ⇒ KPTI on),
//!   Linux 5.11.0-1020-aws with the trampoline at offset `0xe00000`,
//! * **Google GCE** — Xeon Cascade Lake (Meltdown-resistant ⇒ KPTI
//!   off), Linux 5.13.0: kernel base probed directly,
//! * **Microsoft Azure** — Xeon Platinum 8171M running Windows 10 21H2.

use core::fmt;

use avx_uarch::CpuProfile;

use crate::linux::LinuxConfig;
use crate::windows::{WindowsConfig, WindowsVersion};

/// The three evaluated providers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CloudProvider {
    /// Amazon EC2 (§IV-H first testbed).
    AmazonEc2,
    /// Google Compute Engine.
    GoogleGce,
    /// Microsoft Azure.
    MicrosoftAzure,
}

impl fmt::Display for CloudProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudProvider::AmazonEc2 => write!(f, "Amazon EC2"),
            CloudProvider::GoogleGce => write!(f, "Google GCE"),
            CloudProvider::MicrosoftAzure => write!(f, "Microsoft Azure"),
        }
    }
}

/// The guest operating-system configuration of a preset.
#[derive(Clone, Debug)]
pub enum GuestOs {
    /// A Linux guest.
    Linux(LinuxConfig),
    /// A Windows guest.
    Windows(WindowsConfig),
}

/// A cloud scenario: provider + host CPU + guest OS.
#[derive(Clone, Debug)]
pub struct CloudScenario {
    /// Which provider.
    pub provider: CloudProvider,
    /// Host CPU profile observed by the paper.
    pub cpu: CpuProfile,
    /// Guest OS configuration.
    pub guest: GuestOs,
}

impl CloudScenario {
    /// The EC2 preset: KPTI-enabled Linux, trampoline at `0xe00000`.
    #[must_use]
    pub fn amazon_ec2(seed: u64) -> Self {
        Self {
            provider: CloudProvider::AmazonEc2,
            cpu: CpuProfile::xeon_e5_2676(),
            guest: GuestOs::Linux(LinuxConfig {
                kpti: true,
                trampoline_offset: 0xe0_0000,
                ..LinuxConfig::seeded(seed)
            }),
        }
    }

    /// The GCE preset: Meltdown-resistant host, KPTI off.
    #[must_use]
    pub fn google_gce(seed: u64) -> Self {
        Self {
            provider: CloudProvider::GoogleGce,
            cpu: CpuProfile::xeon_cascade_lake(),
            guest: GuestOs::Linux(LinuxConfig::seeded(seed)),
        }
    }

    /// The Azure preset: Windows 10 21H2 guest.
    #[must_use]
    pub fn microsoft_azure(seed: u64) -> Self {
        Self {
            provider: CloudProvider::MicrosoftAzure,
            cpu: CpuProfile::xeon_platinum_8171m(),
            guest: GuestOs::Windows(WindowsConfig {
                version: WindowsVersion::V21H2,
                kvas: false,
                fixed_slot: None,
                seed,
            }),
        }
    }

    /// All three presets.
    #[must_use]
    pub fn all(seed: u64) -> Vec<Self> {
        vec![
            Self::amazon_ec2(seed),
            Self::google_gce(seed.wrapping_add(1)),
            Self::microsoft_azure(seed.wrapping_add(2)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avx_uarch::CpuModel;

    #[test]
    fn ec2_runs_kpti_with_aws_trampoline() {
        let s = CloudScenario::amazon_ec2(1);
        assert_eq!(s.cpu.model, CpuModel::XeonE5_2676);
        match &s.guest {
            GuestOs::Linux(cfg) => {
                assert!(cfg.kpti, "Meltdown-vulnerable host needs KPTI");
                assert_eq!(cfg.trampoline_offset, 0xe0_0000);
            }
            GuestOs::Windows(_) => panic!("EC2 preset is Linux"),
        }
    }

    #[test]
    fn gce_is_kpti_free_linux() {
        let s = CloudScenario::google_gce(1);
        assert_eq!(s.cpu.model, CpuModel::XeonCascadeLake);
        match &s.guest {
            GuestOs::Linux(cfg) => assert!(!cfg.kpti),
            GuestOs::Windows(_) => panic!("GCE preset is Linux"),
        }
    }

    #[test]
    fn azure_is_windows_21h2() {
        let s = CloudScenario::microsoft_azure(1);
        assert_eq!(s.cpu.model, CpuModel::XeonPlatinum8171M);
        match &s.guest {
            GuestOs::Windows(cfg) => {
                assert_eq!(cfg.version, WindowsVersion::V21H2);
            }
            GuestOs::Linux(_) => panic!("Azure preset is Windows"),
        }
    }

    #[test]
    fn all_returns_three_distinct_providers() {
        let all = CloudScenario::all(9);
        assert_eq!(all.len(), 3);
        let providers: std::collections::HashSet<_> = all.iter().map(|s| s.provider).collect();
        assert_eq!(providers.len(), 3);
    }

    #[test]
    fn provider_display() {
        assert_eq!(CloudProvider::AmazonEc2.to_string(), "Amazon EC2");
        assert_eq!(CloudProvider::GoogleGce.to_string(), "Google GCE");
        assert_eq!(CloudProvider::MicrosoftAzure.to_string(), "Microsoft Azure");
    }
}
