//! # avx-os — operating-system memory-layout simulator
//!
//! Builds the attacker-visible address spaces that the AVX timing side
//! channel (DAC 2023) is evaluated against:
//!
//! * [`linux`] — KASLR-randomized kernel image, the 125-module area,
//!   KPTI trampolines, FLARE dummy mappings, FGKASLR shuffling, and the
//!   attacker's own user pages,
//! * [`modules`] — the `/proc/modules` ground-truth database (125
//!   modules, 19 unique sizes, incl. the Fig. 5 and Fig. 6 modules),
//! * [`process`] — 28-bit user-space ASLR with glibc-style section
//!   signatures (Fig. 7),
//! * [`windows`] — the Windows 10 kernel region (18-bit entropy) and
//!   KVAS shadow pages,
//! * [`sgx`] — enclave execution contexts (timer/oracle restrictions),
//! * [`cloud`] — EC2/GCE/Azure guest presets,
//! * [`activity`] — user-behaviour timelines driving the Fig. 6
//!   TLB-spy experiment.
//!
//! ```
//! use avx_os::linux::{LinuxConfig, LinuxSystem};
//! use avx_uarch::CpuProfile;
//!
//! let system = LinuxSystem::build(LinuxConfig::seeded(42));
//! let kernel_base = system.truth().kernel_base;
//! let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 7);
//! assert_eq!(truth.kernel_base, kernel_base);
//! assert!(machine.space().mapped_pages() > 0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod activity;
pub mod cloud;
pub mod linux;
pub mod modules;
pub mod process;
pub mod sgx;
pub mod windows;

pub use activity::{ActivityTimeline, AppProfile, Behaviour};
pub use cloud::{CloudProvider, CloudScenario, GuestOs};
pub use linux::{LinuxConfig, LinuxSystem, LinuxTruth, LoadedModule};
pub use modules::ModuleSpec;
pub use process::{build_process, ImageSignature, PermClass, ProcessTruth};
pub use sgx::ExecutionContext;
pub use windows::{WindowsConfig, WindowsSystem, WindowsTruth};
