//! The kernel-module database.
//!
//! Mirrors the `/proc/modules` view of the paper's Ubuntu 18.04.3
//! testbed (§IV-C): **125 loaded modules of which 19 have a unique
//! size**. Classification by size can then identify exactly the
//! unique-size modules — the paper's Fig. 5 shows `video`, `mac_hid` and
//! `pinctrl_icelake` identified while `autofs4`/`x_tables` collide at
//! 0xB000 bytes.
//!
//! Sizes are 4 KiB multiples (module core layout granularity).

use core::fmt;

/// One `/proc/modules`-style record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ModuleSpec {
    /// Module name.
    pub name: &'static str,
    /// Mapped size in bytes (4 KiB multiple).
    pub size: u64,
}

impl ModuleSpec {
    /// Size in 4 KiB pages.
    #[must_use]
    pub const fn pages(&self) -> u64 {
        self.size / 4096
    }
}

impl fmt::Display for ModuleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}", self.name, self.size)
    }
}

/// The five modules shown in the paper's Fig. 5, with their exact sizes.
pub const FIG5_MODULES: [ModuleSpec; 5] = [
    ModuleSpec {
        name: "autofs4",
        size: 0xB000,
    },
    ModuleSpec {
        name: "x_tables",
        size: 0xB000,
    },
    ModuleSpec {
        name: "video",
        size: 0xC000,
    },
    ModuleSpec {
        name: "mac_hid",
        size: 0x4000,
    },
    ModuleSpec {
        name: "pinctrl_icelake",
        size: 0x6000,
    },
];

/// The full 125-module set of the simulated Ubuntu 18.04.3 machine.
///
/// Shared sizes (appearing ≥ 2×): 0x2000, 0x3000, 0x5000, 0x7000,
/// 0x8000, 0xB000, 0xD000, 0xE000, 0x10000, 0x14000, 0x18000, 0x20000.
/// Unique sizes (19): 0x4000, 0x6000, 0x9000, 0xA000, 0xC000, 0xF000,
/// 0x11000, 0x12000, 0x13000, 0x15000, 0x16000, 0x17000, 0x19000,
/// 0x1B000, 0x1D000, 0x22000, 0x28000, 0x30000, 0x95000.
#[rustfmt::skip]
pub const UBUNTU_18_04_MODULES: [ModuleSpec; 125] = [
    // --- unique sizes (19 identifiable modules) ---------------------
    ModuleSpec { name: "mac_hid",           size: 0x4000 },
    ModuleSpec { name: "pinctrl_icelake",   size: 0x6000 },
    ModuleSpec { name: "coretemp",          size: 0x9000 },
    ModuleSpec { name: "intel_wmi_thunderbolt", size: 0xA000 },
    ModuleSpec { name: "video",             size: 0xC000 },
    ModuleSpec { name: "thunderbolt",       size: 0xF000 },
    ModuleSpec { name: "i2c_i801",          size: 0x11000 },
    ModuleSpec { name: "snd_hda_codec_hdmi", size: 0x12000 },
    ModuleSpec { name: "iwlmvm",            size: 0x13000 },
    ModuleSpec { name: "kvm_intel",         size: 0x15000 },
    ModuleSpec { name: "psmouse",           size: 0x16000 },
    ModuleSpec { name: "e1000e",            size: 0x17000 },
    ModuleSpec { name: "snd_hda_intel",     size: 0x19000 },
    ModuleSpec { name: "nvme",              size: 0x1B000 },
    ModuleSpec { name: "i915",              size: 0x1D000 },
    ModuleSpec { name: "mwifiex_pcie",      size: 0x22000 },
    ModuleSpec { name: "xfs",               size: 0x28000 },
    ModuleSpec { name: "btrfs",             size: 0x30000 },
    ModuleSpec { name: "bluetooth",         size: 0x95000 },
    // --- 0x2000 × 12 -------------------------------------------------
    ModuleSpec { name: "scsi_transport_sas", size: 0x2000 },
    ModuleSpec { name: "crc16",             size: 0x2000 },
    ModuleSpec { name: "crc32_pclmul",      size: 0x2000 },
    ModuleSpec { name: "cryptd",            size: 0x2000 },
    ModuleSpec { name: "glue_helper",       size: 0x2000 },
    ModuleSpec { name: "intel_rapl_perf",   size: 0x2000 },
    ModuleSpec { name: "joydev",            size: 0x2000 },
    ModuleSpec { name: "lp",                size: 0x2000 },
    ModuleSpec { name: "mei_hdcp",          size: 0x2000 },
    ModuleSpec { name: "ecc",               size: 0x2000 },
    ModuleSpec { name: "parport_pc",        size: 0x2000 },
    ModuleSpec { name: "wmi_bmof",          size: 0x2000 },
    // --- 0x3000 × 12 -------------------------------------------------
    ModuleSpec { name: "aesni_intel",       size: 0x3000 },
    ModuleSpec { name: "af_alg",            size: 0x3000 },
    ModuleSpec { name: "algif_hash",        size: 0x3000 },
    ModuleSpec { name: "algif_skcipher",    size: 0x3000 },
    ModuleSpec { name: "bnep",              size: 0x3000 },
    ModuleSpec { name: "btbcm",             size: 0x3000 },
    ModuleSpec { name: "btintel",           size: 0x3000 },
    ModuleSpec { name: "hid_generic",       size: 0x3000 },
    ModuleSpec { name: "input_leds",        size: 0x3000 },
    ModuleSpec { name: "intel_cstate",      size: 0x3000 },
    ModuleSpec { name: "ip6t_REJECT",       size: 0x3000 },
    ModuleSpec { name: "ipt_REJECT",        size: 0x3000 },
    // --- 0x5000 × 12 -------------------------------------------------
    ModuleSpec { name: "acpi_pad",          size: 0x5000 },
    ModuleSpec { name: "acpi_tad",          size: 0x5000 },
    ModuleSpec { name: "btrtl",             size: 0x5000 },
    ModuleSpec { name: "btusb",             size: 0x5000 },
    ModuleSpec { name: "dca",               size: 0x5000 },
    ModuleSpec { name: "ee1004",            size: 0x5000 },
    ModuleSpec { name: "fb_sys_fops",       size: 0x5000 },
    ModuleSpec { name: "hid",               size: 0x5000 },
    ModuleSpec { name: "i2c_algo_bit",      size: 0x5000 },
    ModuleSpec { name: "i2c_smbus",         size: 0x5000 },
    ModuleSpec { name: "idma64",            size: 0x5000 },
    ModuleSpec { name: "intel_lpss",        size: 0x5000 },
    // --- 0x7000 × 10 -------------------------------------------------
    ModuleSpec { name: "intel_lpss_pci",    size: 0x7000 },
    ModuleSpec { name: "intel_pch_thermal", size: 0x7000 },
    ModuleSpec { name: "intel_powerclamp",  size: 0x7000 },
    ModuleSpec { name: "irqbypass",         size: 0x7000 },
    ModuleSpec { name: "iwlwifi",           size: 0x7000 },
    ModuleSpec { name: "kvm",               size: 0x7000 },
    ModuleSpec { name: "ledtrig_audio",     size: 0x7000 },
    ModuleSpec { name: "libahci",           size: 0x7000 },
    ModuleSpec { name: "libcrc32c",         size: 0x7000 },
    ModuleSpec { name: "llc",               size: 0x7000 },
    // --- 0x8000 × 10 -------------------------------------------------
    ModuleSpec { name: "mei",               size: 0x8000 },
    ModuleSpec { name: "mei_me",            size: 0x8000 },
    ModuleSpec { name: "memstick",          size: 0x8000 },
    ModuleSpec { name: "mii",               size: 0x8000 },
    ModuleSpec { name: "msr",               size: 0x8000 },
    ModuleSpec { name: "nf_conntrack",      size: 0x8000 },
    ModuleSpec { name: "nf_defrag_ipv4",    size: 0x8000 },
    ModuleSpec { name: "nf_defrag_ipv6",    size: 0x8000 },
    ModuleSpec { name: "nf_log_common",     size: 0x8000 },
    ModuleSpec { name: "nf_log_ipv4",       size: 0x8000 },
    // --- 0xB000 × 10 (autofs4 and x_tables collide here: Fig. 5) -----
    ModuleSpec { name: "autofs4",           size: 0xB000 },
    ModuleSpec { name: "x_tables",          size: 0xB000 },
    ModuleSpec { name: "nf_log_ipv6",       size: 0xB000 },
    ModuleSpec { name: "nf_nat",            size: 0xB000 },
    ModuleSpec { name: "nf_reject_ipv4",    size: 0xB000 },
    ModuleSpec { name: "nf_reject_ipv6",    size: 0xB000 },
    ModuleSpec { name: "nf_tables",         size: 0xB000 },
    ModuleSpec { name: "nfnetlink",         size: 0xB000 },
    ModuleSpec { name: "nls_iso8859_1",     size: 0xB000 },
    ModuleSpec { name: "intel_rapl_msr",    size: 0xB000 },
    // --- 0xD000 × 10 -------------------------------------------------
    ModuleSpec { name: "parport",           size: 0xD000 },
    ModuleSpec { name: "pinctrl_cannonlake", size: 0xD000 },
    ModuleSpec { name: "processor_thermal_device", size: 0xD000 },
    ModuleSpec { name: "rapl",              size: 0xD000 },
    ModuleSpec { name: "rc_core",           size: 0xD000 },
    ModuleSpec { name: "rtsx_pci",          size: 0xD000 },
    ModuleSpec { name: "rtsx_pci_ms",       size: 0xD000 },
    ModuleSpec { name: "rtsx_pci_sdmmc",    size: 0xD000 },
    ModuleSpec { name: "sch_fq_codel",      size: 0xD000 },
    ModuleSpec { name: "serio_raw",         size: 0xD000 },
    // --- 0xE000 × 8 --------------------------------------------------
    ModuleSpec { name: "snd",               size: 0xE000 },
    ModuleSpec { name: "snd_compress",      size: 0xE000 },
    ModuleSpec { name: "snd_hda_codec",     size: 0xE000 },
    ModuleSpec { name: "snd_hda_codec_generic", size: 0xE000 },
    ModuleSpec { name: "snd_hda_codec_realtek", size: 0xE000 },
    ModuleSpec { name: "snd_hda_core",      size: 0xE000 },
    ModuleSpec { name: "snd_hrtimer",       size: 0xE000 },
    ModuleSpec { name: "snd_hwdep",         size: 0xE000 },
    // --- 0x10000 × 8 -------------------------------------------------
    ModuleSpec { name: "snd_pcm",           size: 0x10000 },
    ModuleSpec { name: "snd_rawmidi",       size: 0x10000 },
    ModuleSpec { name: "snd_seq",           size: 0x10000 },
    ModuleSpec { name: "snd_seq_device",    size: 0x10000 },
    ModuleSpec { name: "snd_seq_midi",      size: 0x10000 },
    ModuleSpec { name: "snd_seq_midi_event", size: 0x10000 },
    ModuleSpec { name: "snd_timer",         size: 0x10000 },
    ModuleSpec { name: "soundcore",         size: 0x10000 },
    // --- 0x14000 × 6 -------------------------------------------------
    ModuleSpec { name: "spi_pxa2xx_platform", size: 0x14000 },
    ModuleSpec { name: "syscopyarea",       size: 0x14000 },
    ModuleSpec { name: "sysfillrect",       size: 0x14000 },
    ModuleSpec { name: "sysimgblt",         size: 0x14000 },
    ModuleSpec { name: "typec",             size: 0x14000 },
    ModuleSpec { name: "typec_ucsi",        size: 0x14000 },
    // --- 0x18000 × 4 -------------------------------------------------
    ModuleSpec { name: "ucsi_acpi",         size: 0x18000 },
    ModuleSpec { name: "uvcvideo",          size: 0x18000 },
    ModuleSpec { name: "videobuf2_common",  size: 0x18000 },
    ModuleSpec { name: "videobuf2_v4l2",    size: 0x18000 },
    // --- 0x20000 × 4 -------------------------------------------------
    ModuleSpec { name: "videodev",          size: 0x20000 },
    ModuleSpec { name: "wmi",               size: 0x20000 },
    ModuleSpec { name: "xhci_pci",          size: 0x20000 },
    ModuleSpec { name: "ahci",              size: 0x20000 },
];

/// Returns the default module set as a vector (most callers want owned).
#[must_use]
pub fn default_module_set() -> Vec<ModuleSpec> {
    UBUNTU_18_04_MODULES.to_vec()
}

/// Returns the modules whose size is unique within `set`.
#[must_use]
pub fn unique_sized(set: &[ModuleSpec]) -> Vec<&ModuleSpec> {
    set.iter()
        .filter(|m| set.iter().filter(|o| o.size == m.size).count() == 1)
        .collect()
}

/// Looks a module up by name.
#[must_use]
pub fn find<'a>(set: &'a [ModuleSpec], name: &str) -> Option<&'a ModuleSpec> {
    set.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_125_modules() {
        assert_eq!(UBUNTU_18_04_MODULES.len(), 125);
    }

    #[test]
    fn exactly_19_unique_sizes() {
        assert_eq!(unique_sized(&UBUNTU_18_04_MODULES).len(), 19);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = UBUNTU_18_04_MODULES.iter().map(|m| m.name).collect();
        assert_eq!(names.len(), 125);
    }

    #[test]
    fn sizes_are_page_multiples() {
        for m in &UBUNTU_18_04_MODULES {
            assert_eq!(m.size % 4096, 0, "{}", m.name);
            assert!(m.size > 0);
        }
    }

    #[test]
    fn fig5_modules_present_with_paper_sizes() {
        for wanted in FIG5_MODULES {
            let found = find(&UBUNTU_18_04_MODULES, wanted.name)
                .unwrap_or_else(|| panic!("{} missing", wanted.name));
            assert_eq!(found.size, wanted.size, "{}", wanted.name);
        }
    }

    #[test]
    fn fig5_collision_and_uniqueness_structure() {
        let uniques = unique_sized(&UBUNTU_18_04_MODULES);
        let unique_names: HashSet<_> = uniques.iter().map(|m| m.name).collect();
        // video, mac_hid, pinctrl_icelake identifiable.
        assert!(unique_names.contains("video"));
        assert!(unique_names.contains("mac_hid"));
        assert!(unique_names.contains("pinctrl_icelake"));
        // autofs4 / x_tables share 0xB000 → not identifiable.
        assert!(!unique_names.contains("autofs4"));
        assert!(!unique_names.contains("x_tables"));
    }

    #[test]
    fn behaviour_target_modules_are_unique_sized() {
        // Fig. 6 monitors bluetooth and psmouse; the spy finds them via
        // size classification, so they must be unique-sized.
        let uniques = unique_sized(&UBUNTU_18_04_MODULES);
        let unique_names: HashSet<_> = uniques.iter().map(|m| m.name).collect();
        assert!(unique_names.contains("bluetooth"));
        assert!(unique_names.contains("psmouse"));
    }

    #[test]
    fn display_formats_proc_modules_style() {
        let m = ModuleSpec {
            name: "video",
            size: 0xC000,
        };
        assert_eq!(m.to_string(), "video 0xc000");
        assert_eq!(m.pages(), 12);
    }
}
