//! Linux memory-layout simulator.
//!
//! Builds the attacker-visible address space of an x86-64 Linux machine:
//! KASLR-randomized kernel image (§II-B: 2 MiB-aligned slide within
//! `0xffffffff80000000–0xffffffffc0000000`, 512 slots), the module area
//! (`0xffffffffc0000000–0xffffffffc4000000`, 4 KiB aligned, guard-page
//! separated), optional KPTI (only the trampoline pages remain visible),
//! optional FLARE dummy mappings, optional FGKASLR function shuffling,
//! and the attacker's own user-space pages.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use avx_mmu::{AddressSpace, MmuError, PageSize, PteFlags, VirtAddr};
use avx_uarch::{CpuProfile, Machine};

use crate::modules::{default_module_set, ModuleSpec};

/// Start of the kernel-text randomization range.
pub const KERNEL_TEXT_REGION_START: u64 = 0xffff_ffff_8000_0000;
/// End (exclusive) of the kernel-text randomization range.
pub const KERNEL_TEXT_REGION_END: u64 = 0xffff_ffff_c000_0000;
/// KASLR slide granularity.
pub const KASLR_ALIGN: u64 = 0x20_0000;
/// Number of possible kernel base slots (9 bits of entropy).
pub const KERNEL_SLOTS: u64 = (KERNEL_TEXT_REGION_END - KERNEL_TEXT_REGION_START) / KASLR_ALIGN;
/// Start of the kernel-module area.
pub const MODULE_REGION_START: u64 = 0xffff_ffff_c000_0000;
/// End (exclusive) of the kernel-module area.
pub const MODULE_REGION_END: u64 = 0xffff_ffff_c400_0000;
/// Module placement granularity.
pub const MODULE_ALIGN: u64 = 0x1000;
/// Number of probeable module-area slots (16384).
pub const MODULE_SLOTS: u64 = (MODULE_REGION_END - MODULE_REGION_START) / MODULE_ALIGN;
/// Default KPTI trampoline offset from the kernel base (Ubuntu kernels;
/// §IV-D observed `0xc00000`).
pub const KPTI_TRAMPOLINE_OFFSET: u64 = 0xc0_0000;

/// A kernel symbol with its offset from the kernel base.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KernelFunction {
    /// Symbol name.
    pub name: &'static str,
    /// Offset from the kernel text base.
    pub offset: u64,
}

/// Nominal (FGKASLR-off) function offsets used by the countermeasure
/// study; values are representative, not copied from a real build.
pub const DEFAULT_FUNCTIONS: [KernelFunction; 8] = [
    KernelFunction {
        name: "do_syscall_64",
        offset: 0x00_2340,
    },
    KernelFunction {
        name: "__x64_sys_read",
        offset: 0x0e_1200,
    },
    KernelFunction {
        name: "__x64_sys_write",
        offset: 0x0e_3480,
    },
    KernelFunction {
        name: "commit_creds",
        offset: 0x10_5a00,
    },
    KernelFunction {
        name: "prepare_kernel_cred",
        offset: 0x10_7c40,
    },
    KernelFunction {
        name: "bprm_execve",
        offset: 0x15_9e80,
    },
    KernelFunction {
        name: "ksys_mmap_pgoff",
        offset: 0x1b_0d00,
    },
    KernelFunction {
        name: "entry_SYSCALL_64",
        offset: KPTI_TRAMPOLINE_OFFSET,
    },
];

/// Build-time options for a simulated Linux machine.
#[derive(Clone, Debug)]
pub struct LinuxConfig {
    /// Randomize the kernel base (off = `nokaslr`).
    pub kaslr: bool,
    /// Pin the slide to a specific slot (e.g. 8 → base
    /// `0xffffffff81000000`, the §IV-D setup). Overrides `kaslr`.
    pub fixed_slide: Option<u64>,
    /// Kernel image size in 2 MiB slots.
    pub kernel_slots: u64,
    /// Fraction of leading slots mapped executable (text); the rest are
    /// data/rodata (strict W^X, \[19\]).
    pub text_slots: u64,
    /// Slots (relative to base) backed by 4 KiB pages instead of one
    /// 2 MiB page — the splits the AMD page-table attack detects (§IV-B:
    /// "Linux's kernel-mapped area contains 4-KiB pages"). Real kernels
    /// split at section-permission boundaries (end of text, rodata,
    /// data), i.e. in the image interior, not at the base.
    pub split_slots: Vec<u64>,
    /// Kernel Page-Table Isolation: hide the kernel, expose trampoline.
    pub kpti: bool,
    /// Trampoline offset from base when KPTI is on.
    pub trampoline_offset: u64,
    /// Modules to load.
    pub modules: Vec<ModuleSpec>,
    /// Guard pages between consecutive modules.
    pub module_gap_pages: u64,
    /// Randomize module-area start within this many leading bytes.
    pub module_area_window: u64,
    /// FLARE defense: dummy-map everything unmapped in kernel ranges.
    pub flare: bool,
    /// FGKASLR: shuffle function offsets within the text region.
    pub fgkaslr: bool,
    /// Layout RNG seed (kernel base, module order/placement, user ASLR).
    pub seed: u64,
}

impl Default for LinuxConfig {
    /// Ubuntu-like defaults: KASLR on, KPTI off (Meltdown-resistant CPU),
    /// 125 modules, no defense extensions.
    fn default() -> Self {
        Self {
            kaslr: true,
            fixed_slide: None,
            kernel_slots: 20,
            text_slots: 8,
            split_slots: vec![8, 9, 10, 18, 19],
            kpti: false,
            trampoline_offset: KPTI_TRAMPOLINE_OFFSET,
            modules: default_module_set(),
            module_gap_pages: 1,
            module_area_window: 8 * 1024 * 1024,
            flare: false,
            fgkaslr: false,
            seed: 0,
        }
    }
}

impl LinuxConfig {
    /// Shorthand: default config with a given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// A placed kernel module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadedModule {
    /// Name and nominal size.
    pub spec: ModuleSpec,
    /// First mapped address.
    pub base: VirtAddr,
}

impl LoadedModule {
    /// One past the last mapped byte.
    #[must_use]
    pub fn end(&self) -> VirtAddr {
        self.base.wrapping_add(self.spec.size)
    }
}

/// The attacker's own user-space anchors.
#[derive(Clone, Copy, Debug)]
pub struct UserContext {
    /// Attacker code (r-x).
    pub text: VirtAddr,
    /// General-purpose writable scratch (rw-, dirtied).
    pub scratch: VirtAddr,
    /// Calibration page: writable, never written, D = 0 (the §IV-B
    /// threshold source).
    pub calibration: VirtAddr,
}

/// Ground truth about the built machine — the simulation's stand-in for
/// `/proc/kallsyms`, `/proc/modules` and the boot log, used to score
/// attack accuracy.
#[derive(Clone, Debug)]
pub struct LinuxTruth {
    /// Randomized kernel text base.
    pub kernel_base: VirtAddr,
    /// Slide in 2 MiB slots from the region start.
    pub slide_slots: u64,
    /// Kernel image size in slots.
    pub kernel_slots: u64,
    /// Loaded modules in ascending address order.
    pub modules: Vec<LoadedModule>,
    /// First trampoline page, when KPTI is enabled.
    pub trampoline: Option<VirtAddr>,
    /// Bases of the 4 KiB-split slots (AMD page-table-attack anchors).
    pub split_slot_bases: Vec<VirtAddr>,
    /// Kernel functions with their (possibly FGKASLR-shuffled) offsets.
    pub functions: Vec<KernelFunction>,
    /// Whether FLARE dummies were installed.
    pub flare: bool,
    /// The attacker's user pages.
    pub user: UserContext,
}

impl LinuxTruth {
    /// Looks up a module by name.
    #[must_use]
    pub fn module(&self, name: &str) -> Option<&LoadedModule> {
        self.modules.iter().find(|m| m.spec.name == name)
    }

    /// The virtual address of a kernel function (base + offset).
    #[must_use]
    pub fn function_addr(&self, name: &str) -> Option<VirtAddr> {
        self.functions
            .iter()
            .find(|f| f.name == name)
            .map(|f| self.kernel_base.wrapping_add(f.offset))
    }
}

/// A fully built Linux machine model: address space + ground truth.
#[derive(Clone, Debug)]
pub struct LinuxSystem {
    space: AddressSpace,
    truth: LinuxTruth,
    config: LinuxConfig,
}

impl LinuxSystem {
    /// Builds the attacker-visible address space for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (e.g. the
    /// image does not fit the randomization range) — configs are
    /// programmer input, not runtime data.
    #[must_use]
    pub fn build(config: LinuxConfig) -> Self {
        assert!(
            config.kernel_slots <= KERNEL_SLOTS,
            "kernel image larger than the randomization range"
        );
        assert!(
            config.text_slots <= config.kernel_slots,
            "text cannot exceed the image"
        );
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x4b41_534c_525f_4c58); // "KASLR_LX"
        let mut space = AddressSpace::new();

        let max_slide = KERNEL_SLOTS - config.kernel_slots;
        let slide_slots = match config.fixed_slide {
            Some(s) => {
                assert!(s <= max_slide, "fixed slide out of range");
                s
            }
            None if config.kaslr => rng.gen_range(0..=max_slide),
            None => 0,
        };
        let kernel_base =
            VirtAddr::new_truncate(KERNEL_TEXT_REGION_START + slide_slots * KASLR_ALIGN);

        // --- kernel image -------------------------------------------------
        let mut split_slot_bases = Vec::new();
        if !config.kpti {
            for slot in 0..config.kernel_slots {
                let base = kernel_base.wrapping_add(slot * KASLR_ALIGN);
                let flags = if slot < config.text_slots {
                    PteFlags::kernel_rx()
                } else if slot < config.text_slots + 2 {
                    PteFlags::kernel_ro()
                } else {
                    PteFlags::kernel_rw()
                };
                let split = config.split_slots.contains(&slot)
                    // FGKASLR forces section-granular (4 KiB) text
                    // mappings, which the TLB-template bypass relies on.
                    || (config.fgkaslr && slot < config.text_slots);
                if split {
                    // Split into 512 × 4 KiB pages (page-permission
                    // boundaries force PT-level mappings here).
                    space
                        .map_range(base, 512, PageSize::Size4K, flags)
                        .expect("kernel 4 KiB split mapping");
                    if config.split_slots.contains(&slot) {
                        split_slot_bases.push(base);
                    }
                } else {
                    space
                        .map(base, PageSize::Size2M, flags)
                        .expect("kernel 2 MiB mapping");
                }
            }
        }

        // --- KPTI trampoline ----------------------------------------------
        let trampoline = if config.kpti {
            let tramp = kernel_base.wrapping_add(config.trampoline_offset);
            space
                .map_range(tramp, 2, PageSize::Size4K, PteFlags::kernel_rx())
                .expect("KPTI trampoline mapping");
            Some(tramp)
        } else {
            None
        };

        // --- modules --------------------------------------------------------
        let mut modules = Vec::new();
        if !config.kpti {
            let mut order = config.modules.clone();
            order.shuffle(&mut rng);
            let window_pages = (config.module_area_window / MODULE_ALIGN).max(1);
            let mut cursor = MODULE_REGION_START + rng.gen_range(0..window_pages) * MODULE_ALIGN;
            for spec in order {
                let base = VirtAddr::new_truncate(cursor);
                assert!(
                    cursor + spec.size <= MODULE_REGION_END,
                    "module area overflow"
                );
                space
                    .map_range(base, spec.pages(), PageSize::Size4K, PteFlags::kernel_rx())
                    .expect("module mapping");
                modules.push(LoadedModule { spec, base });
                cursor += spec.size + config.module_gap_pages * MODULE_ALIGN;
            }
            modules.sort_by_key(|m| m.base);
        }

        // --- FLARE dummy mappings -------------------------------------------
        if config.flare {
            install_flare_dummies(&mut space, kernel_base, &config);
        }

        // --- FGKASLR ---------------------------------------------------------
        let mut functions = DEFAULT_FUNCTIONS.to_vec();
        if config.fgkaslr {
            let text_bytes = config.text_slots * KASLR_ALIGN;
            for f in &mut functions {
                if f.name == "entry_SYSCALL_64" {
                    continue; // entry code is not reordered by FGKASLR
                }
                f.offset = rng.gen_range(0..text_bytes / 0x1000) * 0x1000 + (f.offset & 0xfff);
            }
        }

        // --- attacker user pages ----------------------------------------------
        let user = map_user_context(&mut space, &mut rng).expect("user mappings");

        let truth = LinuxTruth {
            kernel_base,
            slide_slots,
            kernel_slots: config.kernel_slots,
            modules,
            trampoline,
            split_slot_bases,
            functions,
            flare: config.flare,
            user,
        };
        Self {
            space,
            truth,
            config,
        }
    }

    /// The built address space (attacker's CR3 view).
    #[must_use]
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Ground truth for scoring.
    #[must_use]
    pub fn truth(&self) -> &LinuxTruth {
        &self.truth
    }

    /// The configuration the system was built from.
    #[must_use]
    pub fn config(&self) -> &LinuxConfig {
        &self.config
    }

    /// Consumes the system into a [`Machine`] plus the ground truth.
    #[must_use]
    pub fn into_machine(self, profile: CpuProfile, seed: u64) -> (Machine, LinuxTruth) {
        (Machine::new(profile, self.space, seed), self.truth)
    }

    /// Builds a [`Machine`] from a copy-on-write snapshot of this
    /// system, leaving the system reusable: the paging-structure arena
    /// is shared until the machine first writes to it (A/D-bit
    /// settling), so campaign engines construct one layout per seed and
    /// hand every (CPU, noise) trial its own isolated O(1) copy.
    #[must_use]
    pub fn machine(&self, profile: CpuProfile, seed: u64) -> (Machine, LinuxTruth) {
        (
            Machine::new(profile, self.space.clone(), seed),
            self.truth.clone(),
        )
    }
}

/// FLARE ([5]): map dummy pages over every unmapped kernel-text slot and
/// module-area page so the page-table attack sees a uniform "mapped"
/// picture. Dummy translations are never used by the kernel, so they
/// stay TLB-cold — which is exactly how the paper bypasses the defense.
fn install_flare_dummies(space: &mut AddressSpace, kernel_base: VirtAddr, config: &LinuxConfig) {
    for slot in 0..KERNEL_SLOTS {
        let base = VirtAddr::new_truncate(KERNEL_TEXT_REGION_START + slot * KASLR_ALIGN);
        let inside_image = base >= kernel_base
            && base < kernel_base.wrapping_add(config.kernel_slots * KASLR_ALIGN);
        if !inside_image {
            space
                .map(base, PageSize::Size2M, PteFlags::kernel_ro())
                .expect("FLARE kernel dummy");
        }
    }
    let mut page = MODULE_REGION_START;
    while page < MODULE_REGION_END {
        let va = VirtAddr::new_truncate(page);
        if space.lookup(va).is_none() {
            space
                .map(va, PageSize::Size4K, PteFlags::kernel_ro())
                .expect("FLARE module dummy");
        }
        page += MODULE_ALIGN;
    }
}

/// Maps the attacker's text, scratch and calibration pages with 28-bit
/// user ASLR (§IV-F: code text within `0x55XXXXXXX000`).
fn map_user_context(space: &mut AddressSpace, rng: &mut StdRng) -> Result<UserContext, MmuError> {
    let text_base = VirtAddr::new_truncate(0x5500_0000_0000 + (rng.gen_range(0u64..1 << 28) << 12));
    space.map_range(text_base, 2, PageSize::Size4K, PteFlags::user_rx())?;
    let scratch = text_base.wrapping_add(0x10_0000);
    space.map_range(scratch, 4, PageSize::Size4K, PteFlags::user_rw())?;
    let calibration = scratch.wrapping_add(0x4000);
    space.map(calibration, PageSize::Size4K, PteFlags::user_rw())?;
    Ok(UserContext {
        text: text_base,
        scratch,
        calibration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use avx_mmu::Walker;

    #[test]
    fn region_constants_match_paper() {
        assert_eq!(KERNEL_SLOTS, 512);
        assert_eq!(MODULE_SLOTS, 16384);
        assert_eq!(KPTI_TRAMPOLINE_OFFSET, 0xc0_0000);
    }

    #[test]
    fn default_build_has_kernel_and_modules() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(1));
        let t = sys.truth();
        assert!(t.kernel_base.as_u64() >= KERNEL_TEXT_REGION_START);
        assert_eq!(t.modules.len(), 125);
        assert!(t.trampoline.is_none());
    }

    #[test]
    fn slide_is_2mib_aligned_and_in_range() {
        for seed in 0..20 {
            let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
            let base = sys.truth().kernel_base.as_u64();
            assert_eq!(base % KASLR_ALIGN, 0);
            assert!(base >= KERNEL_TEXT_REGION_START);
            assert!(
                base + sys.truth().kernel_slots * KASLR_ALIGN <= KERNEL_TEXT_REGION_END,
                "image fits"
            );
        }
    }

    #[test]
    fn seeds_change_the_slide() {
        let a = LinuxSystem::build(LinuxConfig::seeded(1))
            .truth()
            .slide_slots;
        let b = LinuxSystem::build(LinuxConfig::seeded(2))
            .truth()
            .slide_slots;
        let c = LinuxSystem::build(LinuxConfig::seeded(3))
            .truth()
            .slide_slots;
        assert!(a != b || b != c, "different seeds should move the base");
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = LinuxSystem::build(LinuxConfig::seeded(9));
        let b = LinuxSystem::build(LinuxConfig::seeded(9));
        assert_eq!(a.truth().kernel_base, b.truth().kernel_base);
        assert_eq!(a.truth().modules.len(), b.truth().modules.len());
        for (ma, mb) in a.truth().modules.iter().zip(b.truth().modules.iter()) {
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn fixed_slide_pins_base() {
        let cfg = LinuxConfig {
            fixed_slide: Some(8),
            ..LinuxConfig::seeded(4)
        };
        let sys = LinuxSystem::build(cfg);
        assert_eq!(sys.truth().kernel_base.as_u64(), 0xffff_ffff_8100_0000);
    }

    #[test]
    fn fig4_slide_271_reproduces_paper_base() {
        let cfg = LinuxConfig {
            fixed_slide: Some(271),
            ..LinuxConfig::seeded(0)
        };
        let sys = LinuxSystem::build(cfg);
        assert_eq!(sys.truth().kernel_base.as_u64(), 0xffff_ffff_a1e0_0000);
    }

    #[test]
    fn kernel_slots_are_mapped_others_not() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(5));
        let t = sys.truth();
        let walker = Walker::new();
        for slot in 0..t.kernel_slots {
            let va = t.kernel_base.wrapping_add(slot * KASLR_ALIGN);
            assert!(walker.walk(sys.space(), va).is_mapped(), "slot {slot}");
        }
        // Just before the image and just after: unmapped (unless slide=0).
        if t.slide_slots > 0 {
            let prev = VirtAddr::new_truncate(t.kernel_base.as_u64() - KASLR_ALIGN);
            assert!(!walker.walk(sys.space(), prev).is_mapped());
        }
        let after = t.kernel_base.wrapping_add(t.kernel_slots * KASLR_ALIGN);
        if after.as_u64() < KERNEL_TEXT_REGION_END {
            assert!(!walker.walk(sys.space(), after).is_mapped());
        }
    }

    #[test]
    fn split_slots_terminate_at_pt() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(6));
        let walker = Walker::new();
        assert_eq!(sys.truth().split_slot_bases.len(), 5);
        for &base in &sys.truth().split_slot_bases {
            let walk = walker.walk(sys.space(), base);
            assert!(walk.is_mapped());
            assert_eq!(walk.terminal_level, avx_mmu::Level::Pt);
        }
    }

    #[test]
    fn strict_wx_no_page_both_writable_and_executable() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(7));
        for region in sys.space().iter_regions() {
            let f = region.flags;
            if f.is_writable() {
                assert!(f.is_no_execute(), "W^X violated at {}", region.start);
            }
        }
    }

    #[test]
    fn modules_within_region_sorted_and_gap_separated() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(8));
        let mods = &sys.truth().modules;
        assert_eq!(mods.len(), 125);
        for m in mods {
            assert!(m.base.as_u64() >= MODULE_REGION_START);
            assert!(m.end().as_u64() <= MODULE_REGION_END);
            assert!(m.base.is_aligned(MODULE_ALIGN));
        }
        for pair in mods.windows(2) {
            assert!(
                pair[1].base.as_u64() >= pair[0].end().as_u64() + MODULE_ALIGN,
                "guard page between {} and {}",
                pair[0].spec.name,
                pair[1].spec.name
            );
        }
    }

    #[test]
    fn module_pages_all_mapped_guards_not() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(9));
        let walker = Walker::new();
        let m = &sys.truth().modules[3];
        for page in 0..m.spec.pages() {
            let va = m.base.wrapping_add(page * 4096);
            assert!(walker.walk(sys.space(), va).is_mapped());
        }
        let guard = m.end();
        assert!(!walker.walk(sys.space(), guard).is_mapped());
    }

    #[test]
    fn kpti_hides_kernel_and_modules_but_maps_trampoline() {
        let cfg = LinuxConfig {
            kpti: true,
            fixed_slide: Some(8),
            ..LinuxConfig::seeded(10)
        };
        let sys = LinuxSystem::build(cfg);
        let t = sys.truth();
        let walker = Walker::new();
        assert!(!walker.walk(sys.space(), t.kernel_base).is_mapped());
        assert!(t.modules.is_empty());
        let tramp = t.trampoline.expect("trampoline mapped");
        assert_eq!(tramp.as_u64(), 0xffff_ffff_81c0_0000);
        assert!(walker.walk(sys.space(), tramp).is_mapped());
    }

    #[test]
    fn flare_makes_everything_look_mapped() {
        let cfg = LinuxConfig {
            flare: true,
            ..LinuxConfig::seeded(11)
        };
        let sys = LinuxSystem::build(cfg);
        let walker = Walker::new();
        // Every 2 MiB kernel slot and every module page is now present.
        for slot in (0..KERNEL_SLOTS).step_by(37) {
            let va = VirtAddr::new_truncate(KERNEL_TEXT_REGION_START + slot * KASLR_ALIGN);
            assert!(walker.walk(sys.space(), va).is_mapped(), "slot {slot}");
        }
        for page in (0..MODULE_SLOTS).step_by(971) {
            let va = VirtAddr::new_truncate(MODULE_REGION_START + page * MODULE_ALIGN);
            assert!(walker.walk(sys.space(), va).is_mapped(), "page {page}");
        }
    }

    #[test]
    fn fgkaslr_shuffles_function_offsets_but_not_entry() {
        let base_cfg = LinuxConfig {
            fixed_slide: Some(100),
            ..LinuxConfig::seeded(12)
        };
        let plain = LinuxSystem::build(base_cfg.clone());
        let fg = LinuxSystem::build(LinuxConfig {
            fgkaslr: true,
            ..base_cfg
        });
        let moved = DEFAULT_FUNCTIONS
            .iter()
            .filter(|f| f.name != "entry_SYSCALL_64")
            .filter(|f| plain.truth().function_addr(f.name) != fg.truth().function_addr(f.name))
            .count();
        assert!(moved >= 5, "most functions should move under FGKASLR");
        assert_eq!(
            plain.truth().function_addr("entry_SYSCALL_64"),
            fg.truth().function_addr("entry_SYSCALL_64"),
        );
    }

    #[test]
    fn user_context_pages_mapped_with_expected_permissions() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(13));
        let u = sys.truth().user;
        let text = sys.space().lookup(u.text).expect("text mapped");
        assert!(text.flags.is_user());
        assert!(!text.flags.is_writable());
        let scratch = sys.space().lookup(u.scratch).expect("scratch mapped");
        assert!(scratch.flags.is_writable());
        let calib = sys.space().lookup(u.calibration).expect("calib mapped");
        assert!(calib.flags.is_writable());
        assert!(!calib.flags.is_dirty(), "calibration page starts clean");
        // 28-bit entropy window.
        assert_eq!(u.text.as_u64() >> 40, 0x55);
        assert_eq!(u.text.as_u64() & 0xfff, 0);
    }

    #[test]
    fn truth_module_lookup_and_function_addr() {
        let cfg = LinuxConfig {
            fixed_slide: Some(271),
            ..LinuxConfig::seeded(14)
        };
        let sys = LinuxSystem::build(cfg);
        let t = sys.truth();
        assert!(t.module("bluetooth").is_some());
        assert!(t.module("nonexistent").is_none());
        let f = t.function_addr("do_syscall_64").unwrap();
        assert_eq!(f.as_u64(), 0xffff_ffff_a1e0_0000 + 0x2340);
    }

    #[test]
    fn into_machine_preserves_truth() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(15));
        let base = sys.truth().kernel_base;
        let (machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 1);
        assert_eq!(truth.kernel_base, base);
        assert!(machine.space().mapped_pages() > 0);
    }

    #[test]
    #[should_panic(expected = "fixed slide out of range")]
    fn oversized_fixed_slide_panics() {
        let _ = LinuxSystem::build(LinuxConfig {
            fixed_slide: Some(KERNEL_SLOTS),
            ..LinuxConfig::default()
        });
    }
}
