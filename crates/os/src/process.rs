//! User-space process layout with 28-bit ASLR and ELF-style libraries.
//!
//! Models the §IV-F target: a process whose code text sits at
//! `0x55XXXXXXX000` and whose shared libraries load at
//! `0x7fXXXXXXX000`, each library being a run of consecutive sections
//! with the permission sequence `r-x`, `---`, `r--`, `rw-` (exactly the
//! glibc layout of Fig. 7). Section sizes double as fingerprinting
//! signatures for library identification.

use core::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};

/// Permission class of a user-space region, as the attack classifies it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PermClass {
    /// Readable and executable (`r-x`); timing-indistinguishable from
    /// `r--` for the attack.
    ReadExec,
    /// Readable only (`r--`).
    ReadOnly,
    /// Readable and writable (`rw-`).
    ReadWrite,
    /// `PROT_NONE` guard (`---`): a VMA exists, present bit clear.
    None,
}

impl PermClass {
    /// The PTE flags realizing this class.
    #[must_use]
    pub fn flags(self) -> PteFlags {
        match self {
            PermClass::ReadExec => PteFlags::user_rx(),
            PermClass::ReadOnly => PteFlags::user_ro(),
            PermClass::ReadWrite => PteFlags::user_rw(),
            PermClass::None => PteFlags::none_guard(),
        }
    }

    /// `/proc/PID/maps`-style permission string.
    #[must_use]
    pub const fn maps_str(self) -> &'static str {
        match self {
            PermClass::ReadExec => "r-x",
            PermClass::ReadOnly => "r--",
            PermClass::ReadWrite => "rw-",
            PermClass::None => "---",
        }
    }
}

impl fmt::Display for PermClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.maps_str())
    }
}

/// One section of a library/binary image: permission class + byte size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Section {
    /// Permission class of the section.
    pub perm: PermClass,
    /// Size in bytes (4 KiB multiple).
    pub size: u64,
}

/// A loadable image: named sequence of sections, used both to build the
/// layout and as the attack's fingerprint signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageSignature {
    /// Image name (e.g. `libc.so.6`).
    pub name: &'static str,
    /// Consecutive sections, in address order.
    pub sections: Vec<Section>,
    /// Extra writable pages the allocator appends right after the image
    /// (malloc arenas, TLS). Present in the page tables but **not** in
    /// the maps file — the Fig. 7 "detected additional pages".
    pub hidden_rw_bytes: u64,
}

impl ImageSignature {
    /// glibc, with the exact Fig. 7 section sizes:
    /// `r-x` 0x1e7000, `---` 0x200000, `r--` 0x4000, `rw-` 0x2000, plus
    /// 0x2000 of hidden allocator pages.
    #[must_use]
    pub fn libc() -> Self {
        Self {
            name: "libc.so.6",
            sections: vec![
                Section {
                    perm: PermClass::ReadExec,
                    size: 0x1e_7000,
                },
                Section {
                    perm: PermClass::None,
                    size: 0x20_0000,
                },
                Section {
                    perm: PermClass::ReadOnly,
                    size: 0x4000,
                },
                Section {
                    perm: PermClass::ReadWrite,
                    size: 0x2000,
                },
            ],
            hidden_rw_bytes: 0x2000,
        }
    }

    /// The dynamic loader.
    #[must_use]
    pub fn ld() -> Self {
        Self {
            name: "ld-2.27.so",
            sections: vec![
                Section {
                    perm: PermClass::ReadExec,
                    size: 0x2_7000,
                },
                Section {
                    perm: PermClass::None,
                    size: 0x1f_f000,
                },
                Section {
                    perm: PermClass::ReadOnly,
                    size: 0x1000,
                },
                Section {
                    perm: PermClass::ReadWrite,
                    size: 0x1000,
                },
            ],
            hidden_rw_bytes: 0x1000,
        }
    }

    /// libpthread.
    #[must_use]
    pub fn libpthread() -> Self {
        Self {
            name: "libpthread-2.27.so",
            sections: vec![
                Section {
                    perm: PermClass::ReadExec,
                    size: 0x1_9000,
                },
                Section {
                    perm: PermClass::None,
                    size: 0x1f_e000,
                },
                Section {
                    perm: PermClass::ReadOnly,
                    size: 0x1000,
                },
                Section {
                    perm: PermClass::ReadWrite,
                    size: 0x1000,
                },
            ],
            hidden_rw_bytes: 0x2000,
        }
    }

    /// libm.
    #[must_use]
    pub fn libm() -> Self {
        Self {
            name: "libm-2.27.so",
            sections: vec![
                Section {
                    perm: PermClass::ReadExec,
                    size: 0x18_b000,
                },
                Section {
                    perm: PermClass::None,
                    size: 0x1f_f000,
                },
                Section {
                    perm: PermClass::ReadOnly,
                    size: 0x1000,
                },
                Section {
                    perm: PermClass::ReadWrite,
                    size: 0x1000,
                },
            ],
            hidden_rw_bytes: 0,
        }
    }

    /// libdl.
    #[must_use]
    pub fn libdl() -> Self {
        Self {
            name: "libdl-2.27.so",
            sections: vec![
                Section {
                    perm: PermClass::ReadExec,
                    size: 0x2000,
                },
                Section {
                    perm: PermClass::None,
                    size: 0x20_0000,
                },
                Section {
                    perm: PermClass::ReadOnly,
                    size: 0x1000,
                },
                Section {
                    perm: PermClass::ReadWrite,
                    size: 0x1000,
                },
            ],
            hidden_rw_bytes: 0,
        }
    }

    /// The Fig. 7 application image: `r-x` 0x2000, long `---` gap,
    /// `r--` 0x1000, `rw-` 0x1000 (+1 hidden page).
    #[must_use]
    pub fn fig7_app() -> Self {
        Self {
            name: "app",
            sections: vec![
                Section {
                    perm: PermClass::ReadExec,
                    size: 0x2000,
                },
                Section {
                    perm: PermClass::None,
                    size: 0x11f_f000,
                },
                Section {
                    perm: PermClass::ReadOnly,
                    size: 0x1000,
                },
                Section {
                    perm: PermClass::ReadWrite,
                    size: 0x1000,
                },
            ],
            hidden_rw_bytes: 0x1000,
        }
    }

    /// The default library set for fingerprinting studies.
    #[must_use]
    pub fn standard_set() -> Vec<Self> {
        vec![
            Self::libc(),
            Self::ld(),
            Self::libpthread(),
            Self::libm(),
            Self::libdl(),
        ]
    }

    /// Total mapped span (sections only, no hidden pages).
    #[must_use]
    pub fn span(&self) -> u64 {
        self.sections.iter().map(|s| s.size).sum()
    }

    /// The visible section-size signature `(perm, size)` list used as the
    /// fingerprint key.
    #[must_use]
    pub fn signature(&self) -> Vec<(PermClass, u64)> {
        self.sections.iter().map(|s| (s.perm, s.size)).collect()
    }
}

/// One `/proc/PID/maps` line of ground truth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MapsEntry {
    /// Region start.
    pub start: VirtAddr,
    /// Region end (exclusive).
    pub end: VirtAddr,
    /// Permissions.
    pub perm: PermClass,
    /// Owning image name.
    pub image: &'static str,
}

impl fmt::Display for MapsEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:012x}-{:012x} {} {}",
            self.start.as_u64(),
            self.end.as_u64(),
            self.perm.maps_str(),
            self.image
        )
    }
}

/// A placed image.
#[derive(Clone, Debug)]
pub struct PlacedImage {
    /// Image identity/signature.
    pub signature: ImageSignature,
    /// Load base.
    pub base: VirtAddr,
}

/// Ground truth of the built process.
#[derive(Clone, Debug)]
pub struct ProcessTruth {
    /// The main binary.
    pub app: PlacedImage,
    /// Loaded libraries in address order.
    pub libraries: Vec<PlacedImage>,
    /// The maps-file view (hidden pages excluded!).
    pub maps: Vec<MapsEntry>,
}

impl ProcessTruth {
    /// Base of a library by name.
    #[must_use]
    pub fn library_base(&self, name: &str) -> Option<VirtAddr> {
        self.libraries
            .iter()
            .find(|l| l.signature.name == name)
            .map(|l| l.base)
    }
}

/// Builds a process address space: app at `0x55…`, libraries at `0x7f…`.
///
/// `space` may already contain other mappings (e.g. a kernel); the
/// function only adds user VMAs. Returns ground truth incl. the
/// maps-file view.
///
/// # Panics
///
/// Panics if randomized placements collide (practically impossible at
/// 28-bit entropy with a handful of images; a collision indicates a
/// seed-reuse bug in the caller).
pub fn build_process(
    space: &mut AddressSpace,
    app: &ImageSignature,
    libraries: &[ImageSignature],
    seed: u64,
) -> ProcessTruth {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5553_4552_4153_4c52); // "USERASLR"
    let mut maps = Vec::new();

    let app_base = VirtAddr::new_truncate(0x5500_0000_0000 + (rng.gen_range(0u64..1 << 28) << 12));
    place_image(space, app, app_base, &mut maps);
    let app_placed = PlacedImage {
        signature: app.clone(),
        base: app_base,
    };

    let mut placed = Vec::new();
    let mut cursor =
        VirtAddr::new_truncate(0x7f00_0000_0000 + (rng.gen_range(0u64..1 << 28) << 12));
    for lib in libraries {
        place_image(space, lib, cursor, &mut maps);
        placed.push(PlacedImage {
            signature: lib.clone(),
            base: cursor,
        });
        // Libraries load back-to-back with a small randomized gap.
        let gap = rng.gen_range(1u64..8) * 0x1000;
        cursor = cursor.wrapping_add(lib.span() + lib.hidden_rw_bytes + gap);
    }

    maps.sort_by_key(|e| e.start);
    ProcessTruth {
        app: app_placed,
        libraries: placed,
        maps,
    }
}

fn place_image(
    space: &mut AddressSpace,
    image: &ImageSignature,
    base: VirtAddr,
    maps: &mut Vec<MapsEntry>,
) {
    let mut cursor = base;
    for section in &image.sections {
        let pages = section.size / 4096;
        match section.perm {
            PermClass::None => {
                // PROT_NONE: VMA exists, pages non-present. Map then
                // drop the present bit, like mprotect(PROT_NONE).
                for i in 0..pages {
                    let va = cursor.wrapping_add(i * 4096);
                    space
                        .map(va, PageSize::Size4K, PteFlags::user_ro())
                        .expect("PROT_NONE placement");
                    space
                        .protect(va, PageSize::Size4K, PteFlags::none_guard())
                        .expect("PROT_NONE protect");
                }
            }
            perm => {
                space
                    .map_range(cursor, pages, PageSize::Size4K, perm.flags())
                    .expect("section placement");
                if perm == PermClass::ReadWrite {
                    // Data sections have been written by the loader and
                    // the program: their dirty bits are set. (A clean
                    // writable page times like a kernel page under the
                    // masked store — Fig. 3 vs §IV-B.)
                    for i in 0..pages {
                        space
                            .mark_accessed(cursor.wrapping_add(i * 4096), true)
                            .expect("dirty rw section");
                    }
                }
            }
        }
        maps.push(MapsEntry {
            start: cursor,
            end: cursor.wrapping_add(section.size),
            perm: section.perm,
            image: image.name,
        });
        cursor = cursor.wrapping_add(section.size);
    }
    // Hidden allocator pages: in the page tables, not in the maps file.
    if image.hidden_rw_bytes > 0 {
        space
            .map_range(
                cursor,
                image.hidden_rw_bytes / 4096,
                PageSize::Size4K,
                PteFlags::user_rw(),
            )
            .expect("hidden allocator pages");
        for i in 0..image.hidden_rw_bytes / 4096 {
            space
                .mark_accessed(cursor.wrapping_add(i * 4096), true)
                .expect("dirty hidden page");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avx_mmu::Walker;

    fn build() -> (AddressSpace, ProcessTruth) {
        let mut space = AddressSpace::new();
        let truth = build_process(
            &mut space,
            &ImageSignature::fig7_app(),
            &ImageSignature::standard_set(),
            42,
        );
        (space, truth)
    }

    #[test]
    fn app_in_55_range_libs_in_7f_range() {
        let (_, truth) = build();
        assert_eq!(truth.app.base.as_u64() >> 40, 0x55);
        for lib in &truth.libraries {
            assert_eq!(lib.base.as_u64() >> 40, 0x7f, "{}", lib.signature.name);
        }
    }

    #[test]
    fn entropy_is_28_bits_page_aligned() {
        let mut bases = std::collections::HashSet::new();
        for seed in 0..16 {
            let mut space = AddressSpace::new();
            let t = build_process(&mut space, &ImageSignature::fig7_app(), &[], seed);
            assert_eq!(t.app.base.as_u64() & 0xfff, 0);
            assert!(t.app.base.as_u64() < 0x5500_0000_0000 + (1u64 << 40));
            bases.insert(t.app.base);
        }
        assert!(bases.len() > 12, "bases should vary across seeds");
    }

    #[test]
    fn libc_sections_have_fig7_sizes() {
        let libc = ImageSignature::libc();
        let sig = libc.signature();
        assert_eq!(sig[0], (PermClass::ReadExec, 0x1e_7000));
        assert_eq!(sig[1], (PermClass::None, 0x20_0000));
        assert_eq!(sig[2], (PermClass::ReadOnly, 0x4000));
        assert_eq!(sig[3], (PermClass::ReadWrite, 0x2000));
        assert_eq!(libc.span(), 0x1e_7000 + 0x20_0000 + 0x4000 + 0x2000);
    }

    #[test]
    fn sections_mapped_with_correct_permissions() {
        let (space, truth) = build();
        let libc_base = truth.library_base("libc.so.6").unwrap();
        let rx = space.lookup(libc_base).unwrap();
        assert!(!rx.flags.is_no_execute());
        assert!(!rx.flags.is_writable());
        // Inside the PROT_NONE gap: VMA exists but non-present.
        let gap = libc_base.wrapping_add(0x1e_7000 + 0x1000);
        assert!(space.lookup(gap).is_none());
        let walk = Walker::new().walk(&space, gap);
        assert_eq!(walk.terminal_level, avx_mmu::Level::Pt, "VMA exists");
        // r-- section.
        let ro = space
            .lookup(libc_base.wrapping_add(0x1e_7000 + 0x20_0000))
            .unwrap();
        assert!(!ro.flags.is_writable());
        // rw- section.
        let rw = space
            .lookup(libc_base.wrapping_add(0x1e_7000 + 0x20_0000 + 0x4000))
            .unwrap();
        assert!(rw.flags.is_writable());
    }

    #[test]
    fn hidden_pages_mapped_but_absent_from_maps() {
        let (space, truth) = build();
        let libc_base = truth.library_base("libc.so.6").unwrap();
        let hidden = libc_base.wrapping_add(ImageSignature::libc().span());
        assert!(space.lookup(hidden).is_some(), "hidden page is in the PTs");
        let in_maps = truth
            .maps
            .iter()
            .any(|e| hidden >= e.start && hidden < e.end);
        assert!(!in_maps, "hidden page must not appear in the maps file");
    }

    #[test]
    fn maps_sorted_and_contiguous_per_image() {
        let (_, truth) = build();
        assert!(truth.maps.windows(2).all(|w| w[0].start <= w[1].start));
        let libc_entries: Vec<_> = truth
            .maps
            .iter()
            .filter(|e| e.image == "libc.so.6")
            .collect();
        assert_eq!(libc_entries.len(), 4);
        for pair in libc_entries.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "sections are consecutive");
        }
    }

    #[test]
    fn maps_entry_display_looks_like_proc_maps() {
        let (_, truth) = build();
        let line = truth.maps[0].to_string();
        assert!(line.contains('-'));
        assert!(
            line.contains("r-x")
                || line.contains("r--")
                || line.contains("rw-")
                || line.contains("---")
        );
    }

    #[test]
    fn signatures_distinguish_standard_libraries() {
        let set = ImageSignature::standard_set();
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                assert_ne!(a.signature(), b.signature(), "{} vs {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut s1 = AddressSpace::new();
        let mut s2 = AddressSpace::new();
        let t1 = build_process(
            &mut s1,
            &ImageSignature::fig7_app(),
            &ImageSignature::standard_set(),
            7,
        );
        let t2 = build_process(
            &mut s2,
            &ImageSignature::fig7_app(),
            &ImageSignature::standard_set(),
            7,
        );
        assert_eq!(t1.app.base, t2.app.base);
        assert_eq!(t1.library_base("libc.so.6"), t2.library_base("libc.so.6"));
    }

    #[test]
    fn perm_class_flags_round_trip() {
        assert!(PermClass::ReadWrite.flags().is_writable());
        assert!(!PermClass::ReadOnly.flags().is_writable());
        assert!(!PermClass::ReadExec.flags().is_no_execute());
        assert!(!PermClass::None.flags().is_present());
        assert_eq!(PermClass::None.maps_str(), "---");
    }
}
