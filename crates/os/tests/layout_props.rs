//! Property tests of the OS layout builders: structural invariants
//! that must hold for every seed and configuration.

use proptest::prelude::*;

use avx_mmu::{VirtAddr, Walker};
use avx_os::linux::{
    LinuxConfig, LinuxSystem, KASLR_ALIGN, KERNEL_SLOTS, KERNEL_TEXT_REGION_END,
    KERNEL_TEXT_REGION_START, MODULE_REGION_END, MODULE_REGION_START,
};
use avx_os::process::{build_process, ImageSignature};
use avx_os::windows::{
    WindowsConfig, WindowsSystem, WIN_KERNEL_REGION_END, WIN_KERNEL_REGION_START,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linux layout invariants for arbitrary seeds and feature mixes.
    #[test]
    fn linux_layout_invariants(seed in any::<u64>(), kpti in any::<bool>(), flare in any::<bool>(), fgkaslr in any::<bool>()) {
        // FLARE + KPTI is contradictory (FLARE fills ranges KPTI removes);
        // the builder is exercised on the meaningful combinations.
        prop_assume!(!(kpti && flare));
        let sys = LinuxSystem::build(LinuxConfig {
            kpti,
            flare,
            fgkaslr,
            ..LinuxConfig::seeded(seed)
        });
        let t = sys.truth();

        // Slide within range, 2 MiB aligned, image fits.
        prop_assert!(t.kernel_base.as_u64() >= KERNEL_TEXT_REGION_START);
        prop_assert_eq!(t.kernel_base.as_u64() % KASLR_ALIGN, 0);
        prop_assert!(
            t.kernel_base.as_u64() + t.kernel_slots * KASLR_ALIGN <= KERNEL_TEXT_REGION_END
        );
        prop_assert!(t.slide_slots <= KERNEL_SLOTS - t.kernel_slots);

        // KPTI ⇔ trampoline visible, image hidden.
        let walker = Walker::new();
        if kpti {
            let tramp = t.trampoline.expect("trampoline under KPTI");
            prop_assert!(walker.walk(sys.space(), tramp).is_mapped());
            prop_assert!(t.modules.is_empty());
        } else {
            prop_assert!(t.trampoline.is_none());
            prop_assert!(walker.walk(sys.space(), t.kernel_base).is_mapped());
            prop_assert_eq!(t.modules.len(), 125);
        }

        // Modules: in-range, sorted, guard-separated, fully mapped.
        for pair in t.modules.windows(2) {
            prop_assert!(pair[0].end() < pair[1].base);
        }
        for m in &t.modules {
            prop_assert!(m.base.as_u64() >= MODULE_REGION_START);
            prop_assert!(m.end().as_u64() <= MODULE_REGION_END);
        }

        // Strict W^X everywhere.
        for region in sys.space().iter_regions() {
            if region.flags.is_writable() {
                prop_assert!(region.flags.is_no_execute(), "W^X at {}", region.start);
            }
        }

        // Functions stay inside the text region.
        let text_bytes = sys.config().text_slots * KASLR_ALIGN;
        for f in &t.functions {
            if f.name == "entry_SYSCALL_64" {
                continue;
            }
            prop_assert!(f.offset < text_bytes.max(0x20_0000), "{} at {:#x}", f.name, f.offset);
        }
    }

    /// FLARE must make *every* kernel-region candidate look mapped.
    #[test]
    fn flare_covers_all_candidates(seed in any::<u64>()) {
        let sys = LinuxSystem::build(LinuxConfig {
            flare: true,
            ..LinuxConfig::seeded(seed)
        });
        let walker = Walker::new();
        for slot in (0..KERNEL_SLOTS).step_by(17) {
            let va = VirtAddr::new_truncate(KERNEL_TEXT_REGION_START + slot * KASLR_ALIGN);
            prop_assert!(walker.walk(sys.space(), va).is_mapped(), "slot {slot}");
        }
    }

    /// The module placement is a bijection: every spec appears exactly
    /// once regardless of seed-driven shuffling.
    #[test]
    fn module_placement_is_a_permutation(seed in any::<u64>()) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let mut names: Vec<&str> = sys.truth().modules.iter().map(|m| m.spec.name).collect();
        names.sort_unstable();
        let mut expected: Vec<&str> =
            avx_os::modules::UBUNTU_18_04_MODULES.iter().map(|m| m.name).collect();
        expected.sort_unstable();
        prop_assert_eq!(names, expected);
    }

    /// Windows layout invariants.
    #[test]
    fn windows_layout_invariants(seed in any::<u64>(), kvas in any::<bool>()) {
        let sys = WindowsSystem::build(WindowsConfig {
            kvas,
            seed,
            ..WindowsConfig::default()
        });
        let t = sys.truth();
        prop_assert!(t.kernel_base.as_u64() >= WIN_KERNEL_REGION_START);
        prop_assert!(t.kernel_base.as_u64() < WIN_KERNEL_REGION_END);
        prop_assert_eq!(t.kernel_base.as_u64() % 0x20_0000, 0);
        // Entry within the first slot, page aligned.
        let off = t.entry.as_u64() - t.kernel_base.as_u64();
        prop_assert!(off < 0x20_0000);
        prop_assert_eq!(off % 4096, 0);
        let walker = Walker::new();
        if kvas {
            let shadow = t.shadow.expect("shadow under KVAS");
            prop_assert!(walker.walk(sys.space(), shadow).is_mapped());
            prop_assert!(!walker.walk(sys.space(), t.kernel_base).is_mapped());
        } else {
            prop_assert!(t.shadow.is_none());
            prop_assert!(walker.walk(sys.space(), t.entry).is_mapped());
        }
    }

    /// Process layouts: images never overlap, hidden pages directly
    /// follow their image, and the maps file is consistent.
    #[test]
    fn process_layout_invariants(seed in any::<u64>()) {
        let mut space = avx_mmu::AddressSpace::new();
        let truth = build_process(
            &mut space,
            &ImageSignature::fig7_app(),
            &ImageSignature::standard_set(),
            seed,
        );
        // Library spans are disjoint and ascending.
        for pair in truth.libraries.windows(2) {
            let a_end = pair[0].base.as_u64()
                + pair[0].signature.span()
                + pair[0].signature.hidden_rw_bytes;
            prop_assert!(a_end <= pair[1].base.as_u64());
        }
        // Every maps entry is backed by page-table state of the same
        // permission class.
        for entry in &truth.maps {
            let mid = VirtAddr::new_truncate(
                entry.start.as_u64() + (entry.end.as_u64() - entry.start.as_u64()) / 2,
            );
            let lookup = space.lookup(mid.align_down(4096));
            match entry.perm {
                avx_os::PermClass::None => prop_assert!(lookup.is_none()),
                avx_os::PermClass::ReadWrite => {
                    prop_assert!(lookup.is_some_and(|m| m.flags.is_writable()));
                }
                _ => prop_assert!(lookup.is_some_and(|m| !m.flags.is_writable())),
            }
        }
        // 28-bit windows.
        prop_assert_eq!(truth.app.base.as_u64() >> 40, 0x55);
    }
}
