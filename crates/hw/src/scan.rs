//! VEX-encoded masked-op scanner (§V-B).
//!
//! The paper's NOP-replacement mitigation survey scans every executable
//! of a default Ubuntu install for `VMASKMOV`/`VPMASKMOV` instructions
//! and finds only 6 of 4104 using them. This module implements the byte
//! scanner (a 3-byte-VEX matcher — all masked-move forms live in the
//! 0F38 map, which the 2-byte VEX prefix cannot encode) plus a
//! synthetic-corpus generator to reproduce the survey without shipping
//! an Ubuntu image.

use std::fs;
use std::io;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Masked-move opcodes in the VEX.0F38 map.
const MASKED_OPCODES: [(u8, &str); 6] = [
    (0x2c, "vmaskmovps (load)"),
    (0x2d, "vmaskmovpd (load)"),
    (0x2e, "vmaskmovps (store)"),
    (0x2f, "vmaskmovpd (store)"),
    (0x8c, "vpmaskmovd/q (load)"),
    (0x8e, "vpmaskmovd/q (store)"),
];

/// One scanner hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MaskedOpHit {
    /// Byte offset of the VEX prefix.
    pub offset: usize,
    /// Decoded mnemonic.
    pub mnemonic: &'static str,
}

/// Returns every masked-move instruction encoded in `bytes`.
///
/// Matches the 3-byte VEX pattern `C4 [RXB|mmmmm=0F38] [W vvvv L pp=66]
/// opcode` with opcode ∈ {2C, 2D, 2E, 2F, 8C, 8E}. Arbitrary data can
/// alias this pattern (≈3·10⁻⁸ per byte), which is inherent to
/// disassembler-free scanning; the corpus generator below neutralizes
/// accidental aliases so ground truth stays exact.
#[must_use]
pub fn scan_bytes(bytes: &[u8]) -> Vec<MaskedOpHit> {
    let mut hits = Vec::new();
    if bytes.len() < 4 {
        return hits;
    }
    for i in 0..bytes.len() - 3 {
        if bytes[i] != 0xc4 {
            continue;
        }
        // Byte 1: bits 7..5 = ~R~X~B (free), bits 4..0 = mm-mmm map.
        if bytes[i + 1] & 0x1f != 0x02 {
            continue; // not the 0F38 map
        }
        // Byte 2: bit 7 = W, bits 6..3 = ~vvvv, bit 2 = L, bits 1..0 = pp.
        if bytes[i + 2] & 0x03 != 0x01 {
            continue; // masked moves require the 66 prefix (pp = 01)
        }
        let opcode = bytes[i + 3];
        if let Some(&(_, mnemonic)) = MASKED_OPCODES.iter().find(|&&(op, _)| op == opcode) {
            hits.push(MaskedOpHit {
                offset: i,
                mnemonic,
            });
        }
    }
    hits
}

/// `true` if the byte slice contains at least one masked move.
#[must_use]
pub fn contains_masked_op(bytes: &[u8]) -> bool {
    !scan_bytes(bytes).is_empty()
}

/// Scans a file on disk.
///
/// # Errors
///
/// Propagates I/O errors from reading the file.
pub fn scan_file<P: AsRef<Path>>(path: P) -> io::Result<Vec<MaskedOpHit>> {
    Ok(scan_bytes(&fs::read(path)?))
}

/// Survey result over a set of binaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SurveyCount {
    /// Binaries scanned.
    pub total: usize,
    /// Binaries containing ≥ 1 masked move.
    pub containing: usize,
}

/// Scans every regular file in `dir` (non-recursive).
///
/// # Errors
///
/// Propagates directory-iteration and read errors.
pub fn survey_dir<P: AsRef<Path>>(dir: P) -> io::Result<SurveyCount> {
    let mut count = SurveyCount::default();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            count.total += 1;
            if contains_masked_op(&fs::read(entry.path())?) {
                count.containing += 1;
            }
        }
    }
    Ok(count)
}

/// Surveys in-memory binaries (used with the synthetic corpus).
#[must_use]
pub fn survey_corpus(corpus: &[Vec<u8>]) -> SurveyCount {
    SurveyCount {
        total: corpus.len(),
        containing: corpus.iter().filter(|b| contains_masked_op(b)).count(),
    }
}

/// Canonical encoding of `vpmaskmovd ymm0, ymm1, [rax]` — the probe
/// instruction of the attack itself.
pub const VPMASKMOVD_LOAD_YMM: [u8; 5] = [0xc4, 0xe2, 0x75, 0x8c, 0x00];

/// Canonical encoding of `vpmaskmovd [rax], ymm1, ymm0`.
pub const VPMASKMOVD_STORE_YMM: [u8; 5] = [0xc4, 0xe2, 0x75, 0x8e, 0x00];

/// Generates a synthetic executable corpus: `total` pseudo-binaries of
/// `size` bytes, of which exactly `with_masked_ops` contain a masked
/// move. Accidental byte aliases are neutralized so the ground truth is
/// exact — the §V-B survey shape (6/4104) can then be reproduced
/// without an OS image.
#[must_use]
pub fn synthetic_corpus(
    total: usize,
    with_masked_ops: usize,
    size: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    assert!(with_masked_ops <= total, "subset larger than corpus");
    assert!(size >= 16, "binaries must fit an instruction");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x434f_5250_5553_3432); // "CORPUS42"
    let mut corpus = Vec::with_capacity(total);
    for index in 0..total {
        let mut blob: Vec<u8> = (0..size).map(|_| rng.gen()).collect();
        // Neutralize accidental VEX aliases.
        loop {
            let hits = scan_bytes(&blob);
            if hits.is_empty() {
                break;
            }
            for hit in hits {
                blob[hit.offset] = 0x90; // NOP over the fake prefix
            }
        }
        if index < with_masked_ops {
            let at = rng.gen_range(0..size - VPMASKMOVD_LOAD_YMM.len());
            blob[at..at + VPMASKMOVD_LOAD_YMM.len()].copy_from_slice(&VPMASKMOVD_LOAD_YMM);
        }
        corpus.push(blob);
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_canonical_load_and_store() {
        let hits = scan_bytes(&VPMASKMOVD_LOAD_YMM);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, 0);
        assert!(hits[0].mnemonic.contains("load"));
        let hits = scan_bytes(&VPMASKMOVD_STORE_YMM);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].mnemonic.contains("store"));
    }

    #[test]
    fn detects_vmaskmovps_forms() {
        // vmaskmovps xmm0, xmm1, [rax]: C4 E2 71 2C 00 (L=0, pp=01).
        let load = [0xc4, 0xe2, 0x71, 0x2c, 0x00];
        assert_eq!(scan_bytes(&load)[0].mnemonic, "vmaskmovps (load)");
        // vmaskmovpd store, W1 variant byte2 0xf5.
        let store = [0xc4, 0xe2, 0xf5, 0x2f, 0x00];
        assert_eq!(scan_bytes(&store)[0].mnemonic, "vmaskmovpd (store)");
    }

    #[test]
    fn rejects_wrong_map_prefix_and_opcode() {
        // mmmmm = 0F (1): not the 0F38 map.
        assert!(scan_bytes(&[0xc4, 0xe1, 0x75, 0x8c, 0x00]).is_empty());
        // pp = 00 (no 66 prefix).
        assert!(scan_bytes(&[0xc4, 0xe2, 0x74, 0x8c, 0x00]).is_empty());
        // Non-masked opcode in the right map.
        assert!(scan_bytes(&[0xc4, 0xe2, 0x75, 0x90, 0x00]).is_empty());
        // Plain data.
        assert!(scan_bytes(&[0x90; 64]).is_empty());
        assert!(scan_bytes(&[]).is_empty());
    }

    #[test]
    fn finds_instruction_embedded_mid_stream() {
        let mut blob = vec![0x90u8; 100];
        blob[40..45].copy_from_slice(&VPMASKMOVD_LOAD_YMM);
        let hits = scan_bytes(&blob);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, 40);
    }

    #[test]
    fn corpus_survey_reproduces_paper_shape() {
        let corpus = synthetic_corpus(4104, 6, 4096, 1);
        let count = survey_corpus(&corpus);
        assert_eq!(count.total, 4104);
        assert_eq!(count.containing, 6, "exact ground truth by construction");
    }

    #[test]
    fn corpus_neutralization_kills_random_aliases() {
        // Large random blobs would alias occasionally; after generation
        // the negative binaries must scan clean.
        let corpus = synthetic_corpus(8, 2, 256 * 1024, 7);
        for (i, blob) in corpus.iter().enumerate() {
            let has = contains_masked_op(blob);
            assert_eq!(has, i < 2, "binary {i}");
        }
    }

    #[test]
    fn file_and_dir_survey() {
        let dir = std::env::temp_dir().join("avx_scan_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("with.bin"), VPMASKMOVD_LOAD_YMM).unwrap();
        fs::write(dir.join("without.bin"), [0x90u8; 32]).unwrap();
        let hits = scan_file(dir.join("with.bin")).unwrap();
        assert_eq!(hits.len(), 1);
        let count = survey_dir(&dir).unwrap();
        assert_eq!(
            count,
            SurveyCount {
                total: 2,
                containing: 1
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "subset larger than corpus")]
    fn oversized_subset_panics() {
        let _ = synthetic_corpus(1, 2, 64, 0);
    }
}
