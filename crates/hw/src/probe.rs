//! Real-hardware masked-op prober.
//!
//! Implements [`avx_channel::Prober`] with actual AVX2
//! `VPMASKMOVD` instructions timed by `RDTSC` — the proof-of-concept
//! path of the paper. The mask register is always all-zero, so by the
//! architecture's fault-suppression rule (Intel SDM, paper property P1)
//! the access raises no exception regardless of the probed address.
//!
//! Only compiled to real probes on x86-64; construction fails at
//! runtime when AVX2 is absent.

use core::fmt;

use avx_channel::Prober;
use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

/// Why a hardware prober could not be constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// The host is not x86-64.
    WrongArchitecture,
    /// The CPU does not advertise AVX2.
    NoAvx2,
    /// The crate was built without the `real-avx2` feature.
    DisabledAtBuild,
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::WrongArchitecture => write!(f, "host is not x86-64"),
            HwError::NoAvx2 => write!(f, "cpu does not support avx2"),
            HwError::DisabledAtBuild => {
                write!(f, "built without the real-avx2 feature")
            }
        }
    }
}

impl std::error::Error for HwError {}

/// Size of the buffer walked to evict TLB entries (covers the 1536-entry
/// STLB of recent cores with 4 KiB pages).
#[cfg(all(target_arch = "x86_64", feature = "real-avx2"))]
const EVICTION_BUFFER_BYTES: usize = 16 * 1024 * 1024;

/// A [`Prober`] over the real CPU.
pub struct HwProber {
    eviction_buffer: Vec<u8>,
    probing_cycles: u64,
    probes: u64,
    total_start: u64,
    clock_ghz: f64,
}

impl fmt::Debug for HwProber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HwProber(probing_cycles={}, clock={} GHz)",
            self.probing_cycles, self.clock_ghz
        )
    }
}

impl HwProber {
    /// Builds a hardware prober.
    ///
    /// `clock_ghz` is used only for cycle→seconds reporting (read it
    /// from `/proc/cpuinfo` or pass the nominal TSC frequency).
    ///
    /// # Errors
    ///
    /// [`HwError::WrongArchitecture`] off x86-64; [`HwError::NoAvx2`]
    /// when the CPU lacks AVX2.
    ///
    /// # Safety
    ///
    /// A constructed prober issues masked loads/stores with all-zero
    /// masks at **arbitrary virtual addresses** of the calling process.
    /// Architecturally these never fault and never transfer data, but
    /// the caller must accept that the probes touch the process's
    /// translation state and must not point the prober at addresses
    /// whose *side effects* matter (e.g. MMIO mappings).
    #[allow(unsafe_code)]
    pub unsafe fn new(clock_ghz: f64) -> Result<Self, HwError> {
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = clock_ghz;
            Err(HwError::WrongArchitecture)
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "real-avx2")))]
        {
            let _ = clock_ghz;
            Err(HwError::DisabledAtBuild)
        }
        #[cfg(all(target_arch = "x86_64", feature = "real-avx2"))]
        {
            if !std::arch::is_x86_feature_detected!("avx2") {
                return Err(HwError::NoAvx2);
            }
            Ok(Self {
                eviction_buffer: vec![1u8; EVICTION_BUFFER_BYTES],
                probing_cycles: 0,
                probes: 0,
                total_start: crate::tsc::rdtsc_serialized(),
                clock_ghz,
            })
        }
    }

    /// Times one all-zero-mask `VPMASKMOVD` load at `addr`.
    #[cfg(all(target_arch = "x86_64", feature = "real-avx2"))]
    #[allow(unsafe_code)]
    fn timed_masked_load(addr: u64) -> u64 {
        use core::arch::x86_64::{_mm256_maskload_epi32, _mm256_setzero_si256};
        let start = crate::tsc::rdtsc_serialized();
        // SAFETY: the mask is all-zero, so no element is accessed and no
        // exception is raised regardless of `addr` (Intel SDM VMASKMOV:
        // "faults will not occur due to referencing any memory location
        // if the corresponding mask bit for that data element is zero").
        let v = unsafe { _mm256_maskload_epi32(addr as *const i32, _mm256_setzero_si256()) };
        std::hint::black_box(v);
        let end = crate::tsc::rdtscp_fenced();
        end.saturating_sub(start)
    }

    /// Times one all-zero-mask `VPMASKMOVD` store at `addr`.
    #[cfg(all(target_arch = "x86_64", feature = "real-avx2"))]
    #[allow(unsafe_code)]
    fn timed_masked_store(addr: u64) -> u64 {
        use core::arch::x86_64::{_mm256_maskstore_epi32, _mm256_setzero_si256};
        let start = crate::tsc::rdtsc_serialized();
        // SAFETY: all-zero mask — no bytes are written, no fault is
        // raised (same SDM rule as the load path).
        unsafe {
            _mm256_maskstore_epi32(
                addr as *mut i32,
                _mm256_setzero_si256(),
                _mm256_setzero_si256(),
            );
        }
        let end = crate::tsc::rdtscp_fenced();
        end.saturating_sub(start)
    }
}

impl Prober for HwProber {
    fn probe(&mut self, kind: OpKind, addr: VirtAddr) -> u64 {
        #[cfg(all(target_arch = "x86_64", feature = "real-avx2"))]
        {
            let cycles = match kind {
                OpKind::Load => Self::timed_masked_load(addr.as_u64()),
                OpKind::Store => Self::timed_masked_store(addr.as_u64()),
            };
            self.probing_cycles += cycles;
            self.probes += 1;
            cycles
        }
        #[cfg(not(all(target_arch = "x86_64", feature = "real-avx2")))]
        {
            let _ = (kind, addr);
            unreachable!("HwProber cannot be constructed without real-avx2")
        }
    }

    fn probe_batch_into(&mut self, kind: OpKind, addrs: &[VirtAddr], out: &mut Vec<u64>) {
        #[cfg(all(target_arch = "x86_64", feature = "real-avx2"))]
        {
            // Keep the timed instructions in one monomorphic loop: one
            // bounds-checked pass into the caller's reused buffer, no
            // per-probe dynamic dispatch — the sweep-shaped attacks
            // stream whole candidate tiles through this entry point.
            out.reserve(addrs.len());
            let mut batch_cycles = 0u64;
            match kind {
                OpKind::Load => {
                    for addr in addrs {
                        let cycles = Self::timed_masked_load(addr.as_u64());
                        batch_cycles += cycles;
                        out.push(cycles);
                    }
                }
                OpKind::Store => {
                    for addr in addrs {
                        let cycles = Self::timed_masked_store(addr.as_u64());
                        batch_cycles += cycles;
                        out.push(cycles);
                    }
                }
            }
            self.probing_cycles += batch_cycles;
            self.probes += addrs.len() as u64;
        }
        #[cfg(not(all(target_arch = "x86_64", feature = "real-avx2")))]
        {
            let _ = (kind, addrs, out);
            unreachable!("HwProber cannot be constructed without real-avx2")
        }
    }

    fn evict(&mut self, addr: VirtAddr) {
        // Walk the eviction buffer at page stride; enough distinct
        // translations to push `addr` out of DTLB and STLB sets.
        let _ = addr;
        let mut acc = 0u8;
        for page in (0..self.eviction_buffer.len()).step_by(4096) {
            acc = acc.wrapping_add(self.eviction_buffer[page]);
        }
        std::hint::black_box(acc);
    }

    fn spend(&mut self, _cycles: u64) {
        // Real time passes by itself on hardware.
    }

    fn probes_issued(&self) -> u64 {
        self.probes
    }

    fn probing_cycles(&self) -> u64 {
        self.probing_cycles
    }

    fn total_cycles(&self) -> u64 {
        crate::tsc::rdtsc_serialized().saturating_sub(self.total_start)
    }

    fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prober() -> Option<HwProber> {
        // SAFETY (test): probes target only this test's own buffer or
        // plain unmapped user addresses; no MMIO exists in this process.
        #[allow(unsafe_code)]
        unsafe {
            HwProber::new(2.0).ok()
        }
    }

    #[test]
    fn construction_matches_platform_capability() {
        #[allow(unsafe_code)]
        let result = unsafe { HwProber::new(2.0) };
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                assert!(result.is_ok());
            } else {
                assert_eq!(result.err(), Some(HwError::NoAvx2));
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(result.err(), Some(HwError::WrongArchitecture));
    }

    #[test]
    fn probing_own_buffer_never_faults_and_costs_cycles() {
        let Some(mut p) = prober() else { return };
        let buf = vec![0u8; 8192];
        let addr = VirtAddr::new_truncate(buf.as_ptr() as u64);
        for _ in 0..32 {
            let load = p.probe(OpKind::Load, addr);
            let store = p.probe(OpKind::Store, addr);
            assert!(load > 0);
            assert!(store > 0);
        }
        assert!(p.probing_cycles() > 0);
        assert!(p.total_cycles() >= p.probing_cycles());
    }

    #[test]
    fn probing_unmapped_address_is_suppressed() {
        // This is property P1 live on hardware: an all-zero-mask probe
        // of a wild (almost certainly unmapped) user address must not
        // crash the process.
        let Some(mut p) = prober() else { return };
        let wild = VirtAddr::new_truncate(0x1234_5678_9000);
        for _ in 0..16 {
            let _ = p.probe(OpKind::Load, wild);
            let _ = p.probe(OpKind::Store, wild);
        }
    }

    #[test]
    fn kernel_half_probe_is_suppressed() {
        // Inaccessible (supervisor) addresses are the attack's target;
        // the probe must survive them too.
        let Some(mut p) = prober() else { return };
        let kernel = VirtAddr::new_truncate(0xffff_ffff_8000_0000);
        for _ in 0..16 {
            let _ = p.probe(OpKind::Load, kernel);
        }
    }

    #[test]
    fn error_display() {
        assert_eq!(HwError::NoAvx2.to_string(), "cpu does not support avx2");
        assert_eq!(HwError::WrongArchitecture.to_string(), "host is not x86-64");
    }
}
