//! # avx-hw — real-hardware backend for the AVX timing side channel
//!
//! Two independent pieces:
//!
//! * [`probe::HwProber`] — the paper's proof-of-concept path: times real
//!   AVX2 `VPMASKMOVD` instructions with `RDTSC`, implementing the same
//!   [`avx_channel::Prober`] interface the simulator implements, so
//!   every attack in `avx-channel` runs unchanged on hardware
//!   (x86-64 with AVX2 only; construction fails gracefully elsewhere).
//! * [`scan`] — a VEX byte scanner that surveys binaries for
//!   `VMASKMOV`/`VPMASKMOV` usage, reproducing the §V-B mitigation
//!   analysis (6 of 4104 Ubuntu executables), plus a synthetic corpus
//!   generator with exact ground truth.
//!
//! ```
//! use avx_hw::scan::{contains_masked_op, VPMASKMOVD_LOAD_YMM};
//!
//! assert!(contains_masked_op(&VPMASKMOVD_LOAD_YMM));
//! assert!(!contains_masked_op(&[0x90; 16]));
//! ```

#![deny(missing_docs)]
// Unsafe is confined to the intrinsic/timer wrappers, each with a
// documented safety argument.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod probe;
pub mod scan;
pub mod tsc;

pub use probe::{HwError, HwProber};
pub use scan::{scan_bytes, survey_corpus, synthetic_corpus, MaskedOpHit, SurveyCount};
