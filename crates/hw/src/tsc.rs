//! Cycle-accurate timing primitives.
//!
//! On x86-64 this wraps `RDTSC`/`RDTSCP` with the fencing the paper's
//! measurements require (serializing before, `RDTSCP` + `LFENCE`
//! after). On other architectures a monotonic-clock fallback keeps the
//! crate compiling so the VEX scanner remains usable everywhere.

/// Reads the time-stamp counter with full serialization before the
/// read (`MFENCE; LFENCE` ordering, as the PoC does).
#[cfg(target_arch = "x86_64")]
#[must_use]
pub fn rdtsc_serialized() -> u64 {
    #[allow(unsafe_code)]
    // SAFETY: `_mm_mfence`/`_mm_lfence`/`_rdtsc` have no memory-safety
    // preconditions; they only order the pipeline.
    unsafe {
        core::arch::x86_64::_mm_mfence();
        core::arch::x86_64::_mm_lfence();
        core::arch::x86_64::_rdtsc()
    }
}

/// Reads the TSC *after* prior instructions complete (`RDTSCP` then
/// `LFENCE`), the closing bracket of a timed region.
#[cfg(target_arch = "x86_64")]
#[must_use]
pub fn rdtscp_fenced() -> u64 {
    let mut aux = 0u32;
    #[allow(unsafe_code)]
    // SAFETY: `__rdtscp` writes only to the provided aux slot.
    let t = unsafe { core::arch::x86_64::__rdtscp(&mut aux) };
    #[allow(unsafe_code)]
    // SAFETY: fence, no preconditions.
    unsafe {
        core::arch::x86_64::_mm_lfence();
    }
    t
}

/// Monotonic-nanosecond fallback used on non-x86-64 hosts.
#[cfg(not(target_arch = "x86_64"))]
#[must_use]
pub fn rdtsc_serialized() -> u64 {
    fallback_nanos()
}

/// See [`rdtsc_serialized`].
#[cfg(not(target_arch = "x86_64"))]
#[must_use]
pub fn rdtscp_fenced() -> u64 {
    fallback_nanos()
}

#[cfg(not(target_arch = "x86_64"))]
fn fallback_nanos() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Times one closure invocation in TSC cycles (or nanoseconds on the
/// fallback path).
pub fn time_cycles<F: FnOnce()>(f: F) -> u64 {
    let start = rdtsc_serialized();
    f();
    rdtscp_fenced().saturating_sub(start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_is_monotonic_nonzero() {
        let a = rdtsc_serialized();
        let b = rdtsc_serialized();
        assert!(b >= a, "TSC must not go backwards: {a} -> {b}");
        assert!(a > 0);
    }

    #[test]
    fn timing_a_busy_loop_costs_cycles() {
        let cycles = time_cycles(|| {
            let mut x = 0u64;
            for i in 0..10_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        });
        assert!(cycles > 100, "10k multiplies cannot be free: {cycles}");
    }

    #[test]
    fn empty_region_is_cheap_relative_to_work() {
        let empty = (0..32).map(|_| time_cycles(|| {})).min().unwrap();
        let busy = (0..32)
            .map(|_| {
                time_cycles(|| {
                    let mut x = 0u64;
                    for i in 0..100_000u64 {
                        x = x.wrapping_add(i ^ 0x5a5a);
                    }
                    std::hint::black_box(x);
                })
            })
            .min()
            .unwrap();
        assert!(busy > empty, "busy {busy} vs empty {empty}");
    }
}
