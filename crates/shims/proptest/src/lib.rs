//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships
//! the subset of proptest that its property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, integer-range and tuple
//! strategies, [`any`], [`prop_oneof!`], `prop::collection::vec`,
//! [`Just`], and the `prop_assert*` family. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly. No shrinking: a failing case panics with the
//! assertion message directly, which is enough for CI triage.

#![deny(missing_docs)]

/// Deterministic case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw");
        self.next_u64() % bound
    }
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize, T: Arbitrary> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
impl_arbitrary_tuple!(A, B, C, D, E);
impl_arbitrary_tuple!(A, B, C, D, E, F);

/// Marker strategy for [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($t:ident, $idx:tt)),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

/// Weighted union of same-typed strategies (the [`prop_oneof!`] output).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds from weighted, boxed arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof needs positive total weight");
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed correctly")
    }
}

/// `prop::` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Acceptable size arguments for [`vec()`].
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }
        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }
        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy for vectors of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Vectors with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span) as usize
                    };
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body is
/// run for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)*
                // The closure gives `prop_assume!` a scope to `return`
                // (skip the case) from.
                #[allow(clippy::redundant_closure_call)]
                (|| -> () { $body })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn mapped_strategies_apply(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn tuples_vecs_and_oneof(v in prop::collection::vec(any::<u16>(), 1..8),
                                 pair in (any::<bool>(), 0u64..5),
                                 pick in prop_oneof![2 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(pair.1 < 5);
            prop_assert!(pick == 1 || pick == 2);
            prop_assume!(pair.0);
            prop_assert!(pair.0);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
