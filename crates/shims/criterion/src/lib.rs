//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace benches
//! use — `Criterion::benchmark_group`, `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `Bencher::iter`,
//! [`criterion_group!`] / [`criterion_main!`] and [`black_box`] — over a
//! plain wall-clock measurement loop. Results print as
//! `group/function  time: [min mean max]` per sample set. No HTML
//! reports, no statistical regression machinery: enough to compare
//! throughput of two implementations side by side in CI.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing sampling parameters.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budgeted for measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm-up: run the closure until the warm-up budget is spent,
        // and learn how long one iteration takes.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(50);
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed;
            }
        }

        // Size each sample so the whole set fits the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u128::from(u32::MAX)) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples.first().copied().unwrap_or(0.0);
        let max = samples.last().copied().unwrap_or(0.0);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{}/{id}  time: [{} {} {}]  ({} samples × {iters} iters)",
            self.name,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            samples.len(),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement handle.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0, "routine must have run");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
