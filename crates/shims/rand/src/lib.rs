//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small subset of the rand 0.8 API it actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the simulator requires (it never asserts exact
//! values of the upstream ChaCha stream).

#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize, T: Standard> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Samples a value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Statistically solid, tiny, and
    /// deterministic across platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling (rand's `SliceRandom` subset).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(3u64..=5);
            assert!((3..=5).contains(&y));
            let z = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let mean: f64 = (0..50_000).map(|_| r.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
