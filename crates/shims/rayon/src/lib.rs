//! Offline stand-in for the `rayon` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships
//! the slice of the rayon API its campaign engine uses:
//! `into_par_iter()` over ranges, vectors and slices, followed by
//! `.map(..).collect()`, `.for_each(..)`, `.sum()` or `.reduce(..)`.
//! Work is split into per-thread chunks executed on
//! [`std::thread::scope`] threads (one per available core), and results
//! come back **in input order** — the same observable contract rayon's
//! indexed parallel iterators give.

#![deny(missing_docs)]

use std::num::NonZeroUsize;

/// Re-exports that make `use rayon::prelude::*` work.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

/// Number of worker threads used for a job of `n` items.
fn thread_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n)
        .max(1)
}

/// Ordered parallel map: applies `f` to every item on a thread pool and
/// returns the results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` in parallel, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map(self.items, f);
    }

    /// Rayon tuning hint — accepted and ignored.
    #[must_use]
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// A parallel map stage awaiting collection.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Executes the map and collects the ordered results.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map(self.items, self.f).into_iter().collect()
    }

    /// Executes the map and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        par_map(self.items, self.f).into_iter().sum()
    }

    /// Executes the map and folds the results with `op`, seeded by
    /// `identity`.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> R
    where
        Id: Fn() -> R,
        Op: Fn(R, R) -> R,
    {
        par_map(self.items, self.f).into_iter().fold(identity(), op)
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;

    /// Materializes the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_iter_range!(u32, u64, usize, i32, i64);

macro_rules! impl_into_par_iter_range_inclusive {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_iter_range_inclusive!(u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let expected: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn for_each_visits_everything() {
        let sum = AtomicU64::new(0);
        (1u64..=100).into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn sum_and_reduce_agree() {
        let s: u64 = (1u64..=50).into_par_iter().map(|x| x).sum();
        let r: u64 = (1u64..=50)
            .into_par_iter()
            .map(|x| x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 1275);
        assert_eq!(r, 1275);
    }

    #[test]
    fn slice_par_iter_borrows() {
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.as_slice().into_par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            return;
        }
        let ids: Vec<std::thread::ThreadId> = (0u64..64)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
            .collect();
        let mut unique: Vec<String> = ids.iter().map(|id| format!("{id:?}")).collect();
        unique.sort();
        unique.dedup();
        assert!(unique.len() > 1, "expected work on >1 thread");
    }
}
