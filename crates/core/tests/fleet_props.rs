//! Property tests of the fleet engine's contracts (ARCHITECTURE.md
//! invariant 11): the reducer merge is exact, associative and
//! commutative; aggregates are invariant to how the population is
//! sharded; kill-and-resume is bit-identical to an uninterrupted run;
//! any single victim reruns in isolation to its in-fleet outcome; and
//! the counters survive million-victim magnitudes without overflow.

use std::path::PathBuf;

use avx_channel::attacks::campaign::{CampaignConfig, Scenario, TrialOutcome};
use avx_channel::fleet::{splitmix64, victim_seed, Checkpoint, Fleet, FleetConfig, FleetReducer};
use avx_channel::stats::Trials;
use avx_channel::KptiConfidence;
use avx_uarch::CpuProfile;

/// A small but real kernel-base fleet: big enough to span several
/// shards and wrap the fixture pool, small enough to run in tier 1.
fn small_fleet(config: FleetConfig) -> Fleet {
    Fleet::new(
        Scenario::KernelBase,
        CpuProfile::alder_lake_i5_12400f(),
        CampaignConfig::default(),
        config,
    )
}

/// Deterministic synthetic outcome stream for pure reducer tests —
/// magnitudes picked to look like real per-victim probe counts.
fn synthetic_outcome(i: u64) -> TrialOutcome {
    let r = splitmix64(i);
    TrialOutcome {
        probes: 1000 + r % 700,
        addresses: 512,
        accuracy: Trials {
            successes: u64::from(!r.is_multiple_of(10)),
            total: 1,
        },
        confidence: match r % 4 {
            0 => Some(KptiConfidence::NoCandidate),
            1 => Some(KptiConfidence::Unique),
            2 => Some(KptiConfidence::GuessedFirst),
            _ => Some(KptiConfidence::Confirmed),
        },
        ..TrialOutcome::default()
    }
}

fn reduce(indices: impl Iterator<Item = u64>) -> FleetReducer {
    let mut r = FleetReducer::new();
    for i in indices {
        r.push(&synthetic_outcome(i));
    }
    r
}

/// Unique scratch path per test (the suite runs tests in parallel).
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fleet-props-{tag}-{}.json", std::process::id()))
}

#[test]
fn reducer_merge_is_associative_and_commutative_to_the_bit() {
    for window in [1u64, 7, 64, 1000] {
        let a = reduce(0..window);
        let b = reduce(window..window * 2 + 3);
        let c = reduce(window * 2 + 3..window * 3 + 11);

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "window {window}");

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = ab;
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right, "window {window}");

        // Identity: the empty reducer is neutral on both sides.
        let mut with_empty = a;
        with_empty.merge(&FleetReducer::new());
        assert_eq!(with_empty, a, "window {window}");
    }
}

#[test]
fn shard_count_invariance_is_bit_identical() {
    // The same 48-victim population on one shard, even shards, a
    // non-dividing shard size, and one victim per shard.
    let baseline = small_fleet(FleetConfig::new(48).with_pool(4).with_shard_size(48))
        .run()
        .expect("single-shard run");
    assert_eq!(baseline.shards, 1);
    assert_eq!(baseline.aggregate.victims, 48);
    for shard_size in [16u64, 7, 1] {
        let report = small_fleet(
            FleetConfig::new(48)
                .with_pool(4)
                .with_shard_size(shard_size),
        )
        .run()
        .expect("sharded run");
        assert_eq!(
            report.aggregate, baseline.aggregate,
            "shard_size {shard_size} diverged from the single-shard aggregate"
        );
    }
    // with_shards partitions the same way.
    let report = small_fleet(FleetConfig::new(48).with_pool(4).with_shards(6))
        .run()
        .expect("with_shards run");
    assert_eq!(report.shards, 6);
    assert_eq!(report.aggregate, baseline.aggregate);
}

#[test]
fn kill_and_resume_is_bit_identical_to_uninterrupted() {
    let path = scratch("resume");
    let _ = std::fs::remove_file(&path);

    let fresh = small_fleet(FleetConfig::new(40).with_pool(4).with_shards(4))
        .run()
        .expect("uninterrupted run");
    assert!(fresh.complete);

    // "Kill" after the first shard: run one pending shard per call.
    let killed = small_fleet(
        FleetConfig::new(40)
            .with_pool(4)
            .with_shards(4)
            .with_checkpoint(&path)
            .with_max_shards(1),
    );
    let first = killed.run().expect("first shard");
    assert!(!first.complete);
    assert_eq!(first.shards_run, 1);
    assert_eq!(first.aggregate.victims, 10);

    // Resume the remaining shards in one go.
    let resumed = small_fleet(
        FleetConfig::new(40)
            .with_pool(4)
            .with_shards(4)
            .with_checkpoint(&path),
    )
    .run()
    .expect("resumed run");
    assert!(resumed.complete);
    assert_eq!(resumed.shards_resumed, 1);
    assert_eq!(resumed.shards_run, 3);
    assert_eq!(
        resumed.aggregate, fresh.aggregate,
        "kill-and-resume aggregate diverged from the uninterrupted run"
    );

    // A third run finds everything complete and executes nothing.
    let idle = small_fleet(
        FleetConfig::new(40)
            .with_pool(4)
            .with_shards(4)
            .with_checkpoint(&path),
    )
    .run()
    .expect("idle run");
    assert!(idle.complete);
    assert_eq!(idle.shards_run, 0);
    assert_eq!(idle.aggregate, fresh.aggregate);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_recorded_under_a_different_config_is_refused() {
    let path = scratch("mismatch");
    let _ = std::fs::remove_file(&path);

    let partial = small_fleet(
        FleetConfig::new(40)
            .with_pool(4)
            .with_shards(4)
            .with_checkpoint(&path)
            .with_max_shards(1),
    );
    partial.run().expect("first shard");

    // Different campaign seed — resuming would merge incompatible
    // aggregates, so the engine must refuse.
    let err = small_fleet(
        FleetConfig::new(40)
            .with_pool(4)
            .with_shards(4)
            .with_seed(1)
            .with_checkpoint(&path),
    )
    .run()
    .expect_err("fingerprint mismatch must be refused");
    assert!(err.contains("fingerprint"), "{err}");

    // Different shard count — the bitmap no longer lines up.
    let err = small_fleet(
        FleetConfig::new(40)
            .with_pool(4)
            .with_shards(8)
            .with_checkpoint(&path),
    )
    .run()
    .expect_err("shard-count mismatch must be refused");
    assert!(
        err.contains("fingerprint") || err.contains("shards"),
        "{err}"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_victim_reruns_in_isolation_to_its_in_fleet_outcome() {
    let fleet = small_fleet(FleetConfig::new(12).with_pool(4).with_shards(3));
    let pool = fleet.build_pool();

    // Folding the per-victim outcomes by hand reproduces the fleet
    // aggregate...
    let report = fleet.run().expect("fleet run");
    let mut by_hand = FleetReducer::new();
    for idx in 0..12 {
        by_hand.push(&fleet.run_victim_in(&pool, idx));
    }
    assert_eq!(by_hand, report.aggregate);

    // ...and any single victim, rerun in complete isolation (its own
    // freshly built fixture), matches its in-fleet outcome exactly.
    for idx in [0u64, 3, 5, 11] {
        let in_fleet = fleet.run_victim_in(&pool, idx);
        let isolated = fleet.run_victim(idx);
        assert_eq!(isolated.probes, in_fleet.probes, "victim {idx}");
        assert_eq!(isolated.addresses, in_fleet.addresses, "victim {idx}");
        assert_eq!(
            isolated.accuracy.successes, in_fleet.accuracy.successes,
            "victim {idx}"
        );
        assert_eq!(isolated.confidence, in_fleet.confidence, "victim {idx}");
        assert!((isolated.probing_seconds - in_fleet.probing_seconds).abs() < 1e-15);
    }
}

#[test]
fn victim_streams_are_unique_and_scenario_separated() {
    // 10⁵ victims across two scenario streams: no collision within a
    // stream, no cross-stream aliasing at matching indices.
    let mut seeds: Vec<u64> = (0..100_000u64)
        .map(|i| victim_seed(42, Scenario::KernelBase.seed_salt(), i))
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 100_000);
    for i in (0..100_000u64).step_by(9973) {
        assert_ne!(
            victim_seed(42, Scenario::KernelBase.seed_salt(), i),
            victim_seed(42, Scenario::Kpti.seed_salt(), i),
            "victim {i} aliased across scenario streams"
        );
    }
}

#[test]
fn counters_survive_million_victim_magnitudes_without_overflow() {
    // Simulated 10⁶-victim campaign at realistic per-victim cost:
    // ~54k probes each (the heaviest measured per-trial budget, the
    // KPTI cell) pushed as 1000 shard reducers of 1000 victims each.
    const VICTIMS_PER_SHARD: u64 = 1000;
    const SHARDS: u64 = 1000;
    const PROBES_PER_VICTIM: u64 = 54_582;

    let mut shard = FleetReducer::new();
    for _ in 0..VICTIMS_PER_SHARD {
        shard.push(&TrialOutcome {
            probes: PROBES_PER_VICTIM,
            addresses: 512,
            accuracy: Trials {
                successes: 1,
                total: 1,
            },
            confidence: Some(KptiConfidence::Confirmed),
            ..TrialOutcome::default()
        });
    }
    let mut total = FleetReducer::new();
    for _ in 0..SHARDS {
        total.merge(&shard);
    }

    let victims = VICTIMS_PER_SHARD * SHARDS;
    assert_eq!(total.victims, victims);
    assert_eq!(total.probes, victims * PROBES_PER_VICTIM); // 5.45e10 ≫ u32
    assert_eq!(total.addresses, victims * 512);
    assert_eq!(total.accuracy().total, victims);
    assert_eq!(total.confidence[3], victims);
    // The moment carrier is exact at this magnitude too: Σx² =
    // 10⁶ × 54582² ≈ 3e15 per the u128 sum, so σ over a constant
    // stream is exactly zero — any f64 roundoff would show here.
    assert_eq!(total.probe_moments.count(), victims);
    assert!((total.probe_moments.mean() - PROBES_PER_VICTIM as f64).abs() < 1e-9);
    assert_eq!(total.probe_moments.stddev(), 0.0);

    // And the checkpoint format carries the magnitudes losslessly.
    let checkpoint = Checkpoint {
        fingerprint: 7,
        completed: vec![true; SHARDS as usize],
        reducer: total,
    };
    let back = Checkpoint::from_json(&checkpoint.to_json()).expect("roundtrip");
    assert_eq!(back, checkpoint);
}
