//! Property tests for the calibration subsystem.
//!
//! Three contracts: (1) [`Legacy`] is bit-exact with the pre-subsystem
//! `Threshold::calibrate` arithmetic on *any* sample series, (2) the
//! EM re-fit accepts every degenerate input (tiny n, zero variance,
//! single mode) without panicking and never fabricates separation from
//! single-mode data, and (3) the trimmed floor is invariant to injected
//! interrupt-spike contamination where the legacy mean-based floor is
//! not.

use proptest::prelude::*;

use avx_channel::calibrate::{
    fit_two_gaussians, Bimodal, Calibrator, CalibratorKind, Legacy, NoiseAware, Trimmed,
    DEFAULT_MARGIN,
};
use avx_channel::stats::Welford;
use avx_channel::{Prober, SimProber, Threshold};
use avx_os::linux::{LinuxConfig, LinuxSystem};
use avx_uarch::{CpuProfile, NoiseProfile, OpKind};

/// The seed-era `Threshold::calibrate` measurement loop, verbatim:
/// warm-up load, then interleaved min/Welford over the timed stores.
fn pre_refactor_calibrate(p: &mut SimProber, page: avx_mmu::VirtAddr, samples: usize) -> Threshold {
    let _ = p.probe(OpKind::Load, page);
    let mut w = Welford::new();
    let mut min = u64::MAX;
    for _ in 0..samples.max(1) {
        let t = p.probe(OpKind::Store, page);
        min = min.min(t);
        w.push(t as f64);
    }
    let value = if w.count() >= 4 {
        f64::min(w.mean(), min as f64 + 2.0)
    } else {
        w.mean()
    };
    Threshold {
        value,
        margin: DEFAULT_MARGIN,
    }
}

fn noisy_prober(seed: u64, noise: NoiseProfile) -> (SimProber, avx_os::LinuxTruth) {
    let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
    machine.set_noise_profile(noise);
    (SimProber::new(machine), truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (1a) On arbitrary sample series, `Legacy::fit` reproduces the
    /// pre-refactor arithmetic to the bit.
    #[test]
    fn legacy_fit_is_bit_exact_on_arbitrary_series(
        samples in prop::collection::vec(1u64..5_000, 0..64),
    ) {
        let fit = Legacy.fit(&samples);
        let mut w = Welford::new();
        let mut min = u64::MAX;
        for &t in &samples {
            min = min.min(t);
            w.push(t as f64);
        }
        let expect = if w.count() >= 4 {
            f64::min(w.mean(), min as f64 + 2.0)
        } else {
            w.mean()
        };
        prop_assert_eq!(fit.threshold.value.to_bits(), expect.to_bits());
        prop_assert_eq!(fit.threshold.margin.to_bits(), DEFAULT_MARGIN.to_bits());
    }

    /// (1b) End to end: `Threshold::calibrate` (and `calibrate_with`
    /// under every estimator kind) issues the exact probe schedule of
    /// the pre-refactor loop, and the Legacy threshold is bit-equal —
    /// across noise environments, so the equivalence is not an artifact
    /// of quiet timings.
    #[test]
    fn calibrate_matches_pre_refactor_probe_for_probe(
        seed in 0u64..500,
        samples in 1usize..24,
        noise_idx in 0usize..4,
    ) {
        let noise = NoiseProfile::ALL[noise_idx];
        let (mut p_old, truth_old) = noisy_prober(seed, noise);
        let reference = pre_refactor_calibrate(&mut p_old, truth_old.user.calibration, samples);
        let issued = p_old.probes_issued();

        let (mut p_new, truth_new) = noisy_prober(seed, noise);
        let th = Threshold::calibrate(&mut p_new, truth_new.user.calibration, samples);
        prop_assert_eq!(th.value.to_bits(), reference.value.to_bits());
        prop_assert_eq!(p_new.probes_issued(), issued, "probe schedule drifted");

        // Every estimator consumes the identical probe schedule; only
        // the arithmetic on the collected series differs.
        for kind in CalibratorKind::ALL {
            let (mut p, truth) = noisy_prober(seed, noise);
            let _ = Threshold::calibrate_with(&mut p, truth.user.calibration, samples, kind);
            prop_assert_eq!(p.probes_issued(), issued, "{} probe schedule", kind);
        }
    }

    /// (2a) EM total function: arbitrary input (including adversarial
    /// near-constant and tiny series) never panics, and a returned fit
    /// is internally ordered with finite parameters.
    #[test]
    fn em_never_panics_and_fits_are_well_formed(
        samples in prop::collection::vec(1u64..10_000, 0..128),
    ) {
        if let Some(mix) = fit_two_gaussians(&samples) {
            prop_assert!(mix.lo_mean <= mix.hi_mean);
            prop_assert!(mix.sigma > 0.0 && mix.sigma.is_finite());
            prop_assert!((0.0..=1.0).contains(&mix.lo_weight));
            prop_assert!(mix.lo_mean.is_finite() && mix.hi_mean.is_finite());
            prop_assert_eq!(mix.n, samples.len());
        } else {
            // Refusals only on the documented degeneracies.
            let distinct = {
                let mut s = samples.clone();
                s.sort_unstable();
                s.dedup();
                s.len()
            };
            prop_assert!(samples.len() < 4 || distinct < 2);
        }
        // Every estimator kind is total on the same inputs.
        for kind in CalibratorKind::ALL {
            let fit = kind.fit(&samples);
            prop_assert!(fit.threshold.value.is_finite(), "{}", kind);
            prop_assert!(fit.sigma.is_finite(), "{}", kind);
        }
    }

    /// (2b) Single-mode data must never pass the separation check: the
    /// Bimodal calibrator has to fall back to the trimmed floor rather
    /// than split one band in half.
    #[test]
    fn em_single_mode_always_falls_back(
        center in 50u64..500,
        width in 1u64..6,
        n in 8usize..64,
    ) {
        let samples: Vec<u64> = (0..n as u64).map(|i| center + i % width).collect();
        let fit = Bimodal.fit(&samples);
        prop_assert_eq!(fit.estimator, "trimmed", "split {:?}", fit);
        if let Some(mix) = fit_two_gaussians(&samples) {
            prop_assert!(!mix.is_separated(), "{:?}", mix);
        }
    }

    /// (3) Spike robustness: up to 3 injected interrupt spikes in a
    /// 16-sample series cannot move the trimmed floor by even one
    /// cycle, while the legacy value is allowed to do whatever it does
    /// (its min-pull bounds the damage from above, not from below).
    #[test]
    fn trimmed_floor_ignores_injected_spikes(
        base in prop::collection::vec(90u64..97, 13..16),
        spikes in prop::collection::vec(500u64..5_000, 1..4),
    ) {
        let clean_value = Trimmed.fit(&base).threshold.value;
        let mut contaminated = base.to_vec();
        contaminated.extend_from_slice(&spikes);
        let spiked_value = Trimmed.fit(&contaminated).threshold.value;
        prop_assert!(
            (spiked_value - clean_value).abs() <= 1.0,
            "clean {clean_value} vs spiked {spiked_value}"
        );
        // NoiseAware inherits the robustness whenever it selects the
        // trimmed path; when it selects legacy the dispersion was small
        // enough that the spikes were absent anyway.
        let na = NoiseAware.fit(&contaminated);
        if na.estimator == "trimmed" {
            prop_assert_eq!(na.threshold.value.to_bits(), spiked_value.to_bits());
        }
    }
}

/// Non-proptest spot check: the NoiseAware cutoff routes the presets
/// the way the campaign relies on (quiet → legacy, laptop → trimmed).
#[test]
fn noise_aware_routes_presets_as_documented() {
    for (seed, noise, expect) in [
        (3u64, NoiseProfile::Quiet, "legacy"),
        (3, NoiseProfile::LaptopDvfs, "trimmed"),
        (7, NoiseProfile::Quiet, "legacy"),
        (7, NoiseProfile::LaptopDvfs, "trimmed"),
    ] {
        let (mut p, truth) = noisy_prober(seed, noise);
        let fit = Threshold::calibrate_with(
            &mut p,
            truth.user.calibration,
            16,
            CalibratorKind::NoiseAware,
        );
        assert_eq!(fit.estimator, expect, "seed {seed} noise {noise}");
    }
}
