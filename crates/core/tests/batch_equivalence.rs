//! Batch/scalar equivalence properties of the probe pipeline.
//!
//! The batched fast path (`Prober::probe_batch` →
//! `Machine::execute_batch`) must be *observably identical* to the
//! scalar loop it replaces: same cycle readings, same clock, same
//! translation-state evolution. These properties drive shuffled address
//! lists mixing kernel slots, module pages, user pages and wild
//! addresses through two identically-seeded simulators — one batched,
//! one scalar — and require bit-exact agreement for every `OpKind`, and
//! for every `ProbeStrategy` through `measure_batch` on the sweep
//! shapes the attacks use.

use proptest::prelude::*;

use avx_channel::{ProbeStrategy, Prober, SimProber};
use avx_mmu::VirtAddr;
use avx_os::linux::{
    LinuxConfig, LinuxSystem, KASLR_ALIGN, KERNEL_TEXT_REGION_START, MODULE_REGION_START,
};
use avx_uarch::{CpuProfile, NoiseModel, OpKind};

/// Two identically-seeded probers over the same Linux layout.
fn prober_pair(seed: u64, noise: bool) -> (SimProber, SimProber) {
    let build = || {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut machine, _) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed ^ 0x77);
        if !noise {
            machine.set_noise(NoiseModel::none());
        }
        SimProber::new(machine)
    };
    (build(), build())
}

/// One address drawn from the regions the attacks probe, plus wild
/// addresses for the suppression path.
fn arb_addr() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => (0u64..512).prop_map(|s| KERNEL_TEXT_REGION_START + s * KASLR_ALIGN),
        3 => (0u64..16384).prop_map(|s| MODULE_REGION_START + s * 4096),
        2 => (0u64..4096).prop_map(|p| 0x5555_5540_0000 + p * 4096),
        1 => any::<u64>(),
    ]
}

/// A consecutive candidate run as the sweep attacks generate them:
/// `(start, stride, count)` in one of the probed regions.
fn arb_run() -> impl Strategy<Value = Vec<u64>> {
    let kernel = (0u64..256, 16u64..=64)
        .prop_map(|(s, n)| (KERNEL_TEXT_REGION_START + s * KASLR_ALIGN, KASLR_ALIGN, n));
    let modules =
        (0u64..8192, 16u64..=64).prop_map(|(s, n)| (MODULE_REGION_START + s * 4096, 4096, n));
    let user = (0u64..2048, 16u64..=64).prop_map(|(s, n)| (0x5555_5540_0000 + s * 4096, 4096, n));
    prop_oneof![kernel, modules, user]
        .prop_map(|(start, stride, count)| (0..count).map(|i| start + i * stride).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `probe_batch` over an arbitrary shuffled list is cycle-exact
    /// against the scalar `probe` loop — with the full noise model on,
    /// which also proves both paths consume the RNG stream identically.
    #[test]
    fn probe_batch_is_cycle_exact_for_shuffled_lists(
        seed in 0u64..500,
        raw in prop::collection::vec(arb_addr(), 1..200),
    ) {
        let addrs: Vec<VirtAddr> = raw.into_iter().map(VirtAddr::new_truncate).collect();
        for kind in [OpKind::Load, OpKind::Store] {
            let (mut scalar, mut batched) = prober_pair(seed, true);
            let batch = batched.probe_batch(kind, &addrs);
            let looped: Vec<u64> = addrs.iter().map(|&a| scalar.probe(kind, a)).collect();
            prop_assert_eq!(&batch, &looped, "{} cycles diverged", kind);
            prop_assert_eq!(scalar.probing_cycles(), batched.probing_cycles());
            prop_assert_eq!(scalar.total_cycles(), batched.total_cycles());
        }
    }

    /// `measure_batch` on sweep-shaped candidate lists (up to two
    /// shuffled consecutive runs, as range scans produce) matches the
    /// per-address `measure` loop exactly, for every strategy and op
    /// kind, on a noise-free machine (batching reorders warm-up probes
    /// across a tile, so the noise *stream* is consumed in a different
    /// order — the deterministic readings must still agree).
    #[test]
    fn measure_batch_matches_scalar_on_sweep_shapes(
        seed in 0u64..500,
        first in arb_run(),
        second in arb_run(),
        join in any::<bool>(),
        repeats in 1u8..5,
    ) {
        let mut raw = first;
        if join {
            raw.extend(second);
        }
        let addrs: Vec<VirtAddr> = raw.into_iter().map(VirtAddr::new_truncate).collect();
        for strategy in [
            ProbeStrategy::Single,
            ProbeStrategy::SecondOfTwo,
            ProbeStrategy::MinOf(repeats),
        ] {
            for kind in [OpKind::Load, OpKind::Store] {
                let (mut scalar, mut batched) = prober_pair(seed, false);
                let batch = strategy.measure_batch(&mut batched, kind, &addrs);
                let looped: Vec<u64> = addrs
                    .iter()
                    .map(|&a| strategy.measure(&mut scalar, kind, a))
                    .collect();
                prop_assert_eq!(
                    &batch,
                    &looped,
                    "{:?} {} readings diverged",
                    strategy,
                    kind
                );
            }
        }
    }
}
