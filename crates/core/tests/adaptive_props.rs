//! Property tests for the adaptive sequential stopping rule.
//!
//! Pin the three contracts the engine must keep with the fixed-budget
//! pipeline it replaces: (1) the per-address budget is a hard cap,
//! (2) under [`NoiseModel::none`] the decisions are bit-exact with the
//! fixed-threshold decisions, and (3) the decision is invariant to the
//! order in which a batch tile's samples arrive.

use proptest::prelude::*;

use avx_channel::adaptive::{AdaptiveConfig, AdaptiveSampler};
use avx_channel::stats::SequentialLlr;
use avx_channel::{ProbeStrategy, SimProber, Threshold};
use avx_mmu::VirtAddr;
use avx_os::linux::{LinuxConfig, LinuxSystem, KASLR_ALIGN, KERNEL_TEXT_REGION_START};
use avx_uarch::{CpuProfile, NoiseModel, OpKind};

fn quiet_prober(seed: u64) -> (SimProber, Threshold) {
    let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
    m.set_noise(NoiseModel::none());
    let mut p = SimProber::new(m);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
    (p, th)
}

fn noisy_prober(seed: u64) -> (SimProber, Threshold) {
    let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
    let mut p = SimProber::new(machine); // full profile noise
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
    (p, th)
}

fn slots(offset: u64, count: u64) -> Vec<VirtAddr> {
    (0..count)
        .map(|i| VirtAddr::new_truncate(KERNEL_TEXT_REGION_START + (offset + i) * KASLR_ALIGN))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (1) No address may ever exceed warm-up + `max_probes` samples —
    /// even under the full noise model, where the SPRT may never cross
    /// a boundary and must be cut off by the budget.
    #[test]
    fn budget_is_never_exceeded(
        seed in 0u64..1000,
        max_probes in 1u32..12,
        error_exp in 1u32..8,
        offset in 0u64..400,
        count in 1u64..48,
    ) {
        let (mut p, th) = noisy_prober(seed);
        let config = AdaptiveConfig {
            min_probes: 1,
            max_probes,
            error_rate: 10f64.powi(-(error_exp as i32)),
        };
        let sampler = AdaptiveSampler::from_threshold(&th, 1.0).with_config(config);
        let addrs = slots(offset, count);
        let batch = sampler.classify_batch(&mut p, OpKind::Load, &addrs);
        for (i, &n) in batch.probes.iter().enumerate() {
            prop_assert!(n >= 2, "addr {i}: at least warm-up + one sample, got {n}");
            prop_assert!(
                n <= 1 + max_probes,
                "addr {i}: {n} probes exceeds warm-up + budget {max_probes}"
            );
        }
    }

    /// (2) Under `NoiseModel::none()` every adaptive decision equals the
    /// fixed-N threshold decision on the same candidates.
    #[test]
    fn noiseless_decisions_are_bit_exact_with_fixed(
        seed in 0u64..1000,
        max_probes in 1u32..10,
        offset in 0u64..400,
        count in 1u64..64,
    ) {
        let addrs = slots(offset, count);

        let (mut p_fixed, th) = quiet_prober(seed);
        let fixed_samples =
            ProbeStrategy::SecondOfTwo.measure_batch(&mut p_fixed, OpKind::Load, &addrs);
        let fixed: Vec<bool> = fixed_samples.iter().map(|&s| th.is_mapped(s)).collect();

        let (mut p, th) = quiet_prober(seed);
        let sampler = AdaptiveSampler::from_threshold(&th, 1.0)
            .with_config(AdaptiveConfig::with_max_probes(max_probes));
        let batch = sampler.classify_batch(&mut p, OpKind::Load, &addrs);
        prop_assert_eq!(batch.mapped, fixed);
    }

    /// (3a) The accumulated evidence is a sum: any permutation of the
    /// same sample multiset reaches the same Λ and the same forced call.
    #[test]
    fn accumulator_is_sample_order_invariant(
        samples in prop::collection::vec(80u64..1000, 1..24),
        rotation in 0usize..24,
        sigma_tenths in 5u64..60,
    ) {
        let sigma = sigma_tenths as f64 / 10.0;
        let build = || SequentialLlr::new(93.0, 107.0, sigma, 1e-4);

        let mut forward = build();
        for &s in &samples {
            forward.push(s);
        }
        let mut rotated = samples.clone();
        rotated.rotate_left(rotation % samples.len());
        let mut perm = build();
        for &s in &rotated {
            perm.push(s);
        }
        prop_assert!((forward.llr() - perm.llr()).abs() < 1e-9);
        prop_assert_eq!(forward.forced(), perm.forced());
        prop_assert_eq!(forward.count(), perm.count());
    }

    /// (3b) Within one batch tile, the order of the candidate addresses
    /// does not change any candidate's decision or probe count (under
    /// no noise, where readings are order-independent).
    #[test]
    fn tile_decisions_are_address_order_invariant(
        seed in 0u64..1000,
        offset in 0u64..400,
        rotation in 1usize..16,
    ) {
        // One full tile of candidates.
        let tile = slots(offset, ProbeStrategy::BATCH_TILE as u64);

        let (mut p, th) = quiet_prober(seed);
        let sampler = AdaptiveSampler::from_threshold(&th, 1.0);
        let straight = sampler.classify_batch(&mut p, OpKind::Load, &tile);

        let mut shuffled = tile.clone();
        shuffled.rotate_left(rotation % tile.len());
        let (mut p, th) = quiet_prober(seed);
        let sampler = AdaptiveSampler::from_threshold(&th, 1.0);
        let rotated = sampler.classify_batch(&mut p, OpKind::Load, &shuffled);

        for (i, &addr) in tile.iter().enumerate() {
            let j = shuffled.iter().position(|&a| a == addr).unwrap();
            prop_assert_eq!(
                straight.mapped[i], rotated.mapped[j],
                "addr {:?}: decision depends on tile order", addr
            );
            prop_assert_eq!(
                straight.probes[i], rotated.probes[j],
                "addr {:?}: budget depends on tile order", addr
            );
        }
    }
}

/// The fixed-budget cap also binds the early-stopping min-filter.
#[test]
fn min_filter_budget_is_never_exceeded() {
    use avx_channel::adaptive::AdaptiveMinFilter;
    for seed in 0..6u64 {
        let (mut p, _) = noisy_prober(seed);
        let filter = AdaptiveMinFilter {
            max_probes: 5,
            stable_rounds: 200, // unreachably strict: budget must bind
            epsilon: 0,
        };
        let batch = filter.measure_batch(&mut p, OpKind::Load, &slots(seed * 7, 40));
        assert!(batch.probes.iter().all(|&n| n == 1 + 5), "seed {seed}");
    }
}
