//! Property suite for the defense axis (`avx_channel::defense`).
//!
//! Pins the four arena invariants:
//! 1. `DefenseKind::None` is bit-identical to the historical
//!    no-defense path — probe values *and* probe counts, both
//!    observables regimes (invariant 12: `Defense::None` is silent).
//! 2. Re-randomization is deterministic: same seed + trigger schedule
//!    ⇒ bit-identical `CampaignRow`.
//! 3. Masked translation is total: every probe of a masked space
//!    measures and classifies; guard pages, huge pages, split slots
//!    and region boundaries never panic.
//! 4. Mid-scan re-randomization never violates the
//!    `AddrRange::tiles()` probe-order contract: the attacker's sweep
//!    schedule is the attacker's, no matter what the victim does.

use avx_channel::attacks::campaign::{CampaignConfig, CampaignRow, Scenario};
use avx_channel::defense::{
    Defense, DefenseKind, DefenseRegion, Rerandomizing, DEFAULT_RERANDOMIZE_PERIOD,
};
use avx_channel::{AddrRange, KernelBaseFinder, Prober, SimProber, Threshold};
use avx_mmu::VirtAddr;
use avx_os::linux::{
    LinuxConfig, LinuxSystem, KASLR_ALIGN, KERNEL_SLOTS, KERNEL_TEXT_REGION_END,
    KERNEL_TEXT_REGION_START, MODULE_REGION_END,
};
use avx_uarch::{CpuProfile, ObservablesVersion, OpKind};

fn profile() -> CpuProfile {
    CpuProfile::alder_lake_i5_12400f()
}

fn assert_rows_bit_identical(a: &CampaignRow, b: &CampaignRow, what: &str) {
    assert_eq!(
        a.probing_seconds.to_bits(),
        b.probing_seconds.to_bits(),
        "{what}: probing seconds moved"
    );
    assert_eq!(
        a.total_seconds.to_bits(),
        b.total_seconds.to_bits(),
        "{what}: total seconds moved"
    );
    assert_eq!(a.probes, b.probes, "{what}: probe count moved");
    assert_eq!(
        a.probes_per_address.to_bits(),
        b.probes_per_address.to_bits(),
        "{what}: probes/address moved"
    );
    assert_eq!(
        a.accuracy.successes, b.accuracy.successes,
        "{what}: successes moved"
    );
    assert_eq!(a.accuracy.total, b.accuracy.total, "{what}: records moved");
}

// ---------------------------------------------------------------------
// Property 1: Defense::None is the bit-exact historical path.

#[test]
fn none_campaign_rows_are_bit_identical_in_both_regimes() {
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        for scenario in [Scenario::KernelBase, Scenario::Kpti] {
            let base = CampaignConfig::new(3, 41).with_observables(observables);
            let plain = scenario.campaign(&profile(), base);
            let defended = scenario.campaign(&profile(), base.with_defense(DefenseKind::None));
            assert_rows_bit_identical(
                &plain,
                &defended,
                &format!("{scenario}/{}", observables.name()),
            );
            assert_eq!(plain.defense, "none");
            assert_eq!(defended.defense, "none");
        }
    }
}

#[test]
fn none_machine_probe_values_are_bit_identical_in_both_regimes() {
    // Below the campaign: the raw per-probe cycle stream of an
    // installed-None machine equals the untouched machine's, value for
    // value, under both observables regimes.
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        let sys = LinuxSystem::build(LinuxConfig::seeded(42));
        let (mut plain, truth) = sys.machine(profile(), 42);
        let (mut defended, _) = sys.machine(profile(), 42);
        plain.set_observables(observables);
        defended.set_observables(observables);
        DefenseKind::None.install(
            &mut defended,
            &[
                DefenseRegion::linux_kernel_text(),
                DefenseRegion::linux_modules(),
            ],
            42,
        );
        assert!(defended.defense().is_none(), "None never installs");

        let addrs: Vec<VirtAddr> = (0..64)
            .map(|s| truth.kernel_base.wrapping_add(s * KASLR_ALIGN))
            .chain(std::iter::once(truth.user.calibration))
            .collect();
        let a = plain.execute_batch(OpKind::Load, &addrs);
        let b = defended.execute_batch(OpKind::Load, &addrs);
        assert_eq!(a, b, "probe stream moved under {}", observables.name());
    }
}

// ---------------------------------------------------------------------
// Property 2: re-randomization is deterministic.

#[test]
fn rerandomizing_campaign_rows_are_deterministic() {
    let config = CampaignConfig::new(4, 7).with_defense(DefenseKind::Rerandomizing);
    let first = Scenario::KernelBase.campaign(&profile(), config);
    let second = Scenario::KernelBase.campaign(&profile(), config);
    assert_eq!(first.defense, "rerandomizing");
    assert_rows_bit_identical(&first, &second, "rerandomizing replay");
}

#[test]
fn rerandomizing_determinism_holds_under_v2_observables() {
    let config = CampaignConfig::new(3, 9)
        .with_defense(DefenseKind::Rerandomizing)
        .with_observables(ObservablesVersion::V2);
    let first = Scenario::KernelBase.campaign(&profile(), config);
    let second = Scenario::KernelBase.campaign(&profile(), config);
    assert_rows_bit_identical(&first, &second, "rerandomizing v2 replay");
}

// ---------------------------------------------------------------------
// Property 3: masked translation is total.

#[test]
fn masked_translation_is_total_on_layout_edges() {
    let sys = LinuxSystem::build(LinuxConfig::seeded(13));
    let (mut machine, truth) = sys.machine(profile(), 13);
    DefenseKind::MaskedTranslation.install(
        &mut machine,
        &[
            DefenseRegion::linux_kernel_text(),
            DefenseRegion::linux_modules(),
        ],
        13,
    );

    // Every flavour of edge the Linux layout can produce: region
    // boundaries, 2 MiB huge-page interiors, 4 KiB split-slot pages,
    // module guard gaps, and addresses just outside the masked regions.
    let split_slot = truth.kernel_base.wrapping_add(8 * KASLR_ALIGN + 0x3000);
    let first_module = truth.modules.first().expect("modules loaded");
    let guard_gap = first_module.end();
    let mut edges = vec![
        VirtAddr::new_truncate(KERNEL_TEXT_REGION_START),
        VirtAddr::new_truncate(KERNEL_TEXT_REGION_END - 0x1000),
        VirtAddr::new_truncate(KERNEL_TEXT_REGION_START - 0x1000),
        VirtAddr::new_truncate(MODULE_REGION_END - 0x1000),
        truth.kernel_base,
        truth.kernel_base.wrapping_add(0x1234),
        split_slot,
        first_module.base,
        guard_gap,
        truth.user.calibration,
    ];
    for slot in 0..KERNEL_SLOTS {
        edges.push(VirtAddr::new_truncate(
            KERNEL_TEXT_REGION_START + slot * KASLR_ALIGN,
        ));
    }

    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    for &addr in &edges {
        let cycles = p.probe(OpKind::Load, addr);
        assert!(cycles > 0, "probe of {addr} must measure");
        // Classification is total: every measurement lands on one side
        // of the boundary.
        let _mapped = (cycles as f64) <= th.boundary();
    }

    // The mask itself is involutive and total on the same edge set.
    let defense = p.machine().defense().expect("mask installed").clone();
    for &addr in &edges {
        let once = defense.masked(addr);
        assert_eq!(defense.masked(once), addr, "involution at {addr}");
    }
}

// ---------------------------------------------------------------------
// Property 4: mid-scan re-randomization never bends the probe order.

/// A transparent prober that records every probed address in issue
/// order — the instrument for the `AddrRange::tiles()` contract.
struct RecordingProber {
    inner: SimProber,
    log: Vec<VirtAddr>,
}

impl Prober for RecordingProber {
    fn probe(&mut self, kind: OpKind, addr: VirtAddr) -> u64 {
        self.log.push(addr);
        self.inner.probe(kind, addr)
    }

    fn probe_batch_into(&mut self, kind: OpKind, addrs: &[VirtAddr], out: &mut Vec<u64>) {
        self.log.extend_from_slice(addrs);
        self.inner.probe_batch_into(kind, addrs, out);
    }

    fn evict(&mut self, addr: VirtAddr) {
        self.inner.evict(addr);
    }

    fn spend(&mut self, cycles: u64) {
        self.inner.spend(cycles);
    }

    fn probes_issued(&self) -> u64 {
        self.inner.probes_issued()
    }

    fn probing_cycles(&self) -> u64 {
        self.inner.probing_cycles()
    }

    fn total_cycles(&self) -> u64 {
        self.inner.total_cycles()
    }

    fn clock_ghz(&self) -> f64 {
        self.inner.clock_ghz()
    }
}

#[test]
fn mid_scan_rerandomization_preserves_tile_probe_order() {
    let sys = LinuxSystem::build(LinuxConfig::seeded(33));
    let (mut machine, truth) = sys.machine(profile(), 33);
    // An aggressive trigger: fires many times inside the 512-slot scan.
    Rerandomizing { period: 128 }.install(&mut machine, &[DefenseRegion::linux_kernel_text()], 33);
    let mut p = RecordingProber {
        inner: SimProber::new(machine),
        log: Vec::new(),
    };
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    p.log.clear();

    let scan = KernelBaseFinder::new(th).scan(&mut p);
    assert_eq!(scan.mapped.len(), KERNEL_SLOTS as usize, "scan completed");
    assert!(
        p.inner.machine().rerandomizations() >= 2,
        "the victim re-randomized mid-scan ({} events)",
        p.inner.machine().rerandomizations()
    );

    // The attacker's sweep schedule is exactly the tile order of the
    // kernel region — first occurrences in the log match tile-flattened
    // candidates one for one, re-randomization or not.
    let expected: Vec<VirtAddr> = AddrRange::new(
        VirtAddr::new_truncate(KERNEL_TEXT_REGION_START),
        KASLR_ALIGN,
        KERNEL_SLOTS,
    )
    .tiles()
    .flat_map(|tile| tile.to_vec())
    .collect();
    let mut seen = std::collections::HashSet::new();
    let first_occurrences: Vec<VirtAddr> = p
        .log
        .iter()
        .copied()
        .filter(|a| {
            let v = a.as_u64();
            (KERNEL_TEXT_REGION_START..KERNEL_TEXT_REGION_END).contains(&v) && seen.insert(*a)
        })
        .collect();
    assert_eq!(first_occurrences, expected, "probe order bent");
}

// ---------------------------------------------------------------------
// The defended rows themselves stay deterministic enough to pin: the
// default trigger period is part of the public contract.

#[test]
fn default_trigger_period_is_pinned() {
    assert_eq!(DEFAULT_RERANDOMIZE_PERIOD, 384);
    assert_eq!(
        Rerandomizing::default().period,
        DEFAULT_RERANDOMIZE_PERIOD,
        "default Rerandomizing uses the pinned trigger"
    );
}
