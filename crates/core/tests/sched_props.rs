//! Property suite for the schedule axis (`avx_channel::schedule`).
//!
//! Pins the campaign-level face of invariant 13:
//! 1. `ScheduleKind::None` is bit-identical to the historical
//!    no-schedule path — probe values *and* probe counts, both
//!    observables regimes.
//! 2. Scheduled campaigns are deterministic: same seed + schedule ⇒
//!    bit-identical `CampaignRow`, events included.
//! 3. Mid-scan module churn never violates the `AddrRange::tiles()`
//!    probe-order contract: the attacker's sweep schedule is the
//!    attacker's, no matter what the victim loads or unloads.
//! 4. Trigger-never-fires: a scheduled quiet→quiet swap stays
//!    bit-exact with the open-loop sweep — the recalibrator's
//!    `DriftMonitor::check` is the only trigger site, and a no-op
//!    environment gives it nothing to fire on.

use avx_channel::attacks::campaign::{CampaignConfig, CampaignRow, Scenario};
use avx_channel::schedule::ScheduleKind;
use avx_channel::{AddrRange, KernelBaseFinder, Prober, RecalConfig, SimProber, Threshold};
use avx_mmu::VirtAddr;
use avx_os::linux::{
    LinuxConfig, LinuxSystem, KASLR_ALIGN, KERNEL_SLOTS, KERNEL_TEXT_REGION_END,
    KERNEL_TEXT_REGION_START,
};
use avx_uarch::{CpuProfile, NoiseProfile, ObservablesVersion, OpKind, SchedEvent, VictimSchedule};

fn profile() -> CpuProfile {
    CpuProfile::alder_lake_i5_12400f()
}

fn assert_rows_bit_identical(a: &CampaignRow, b: &CampaignRow, what: &str) {
    assert_eq!(
        a.probing_seconds.to_bits(),
        b.probing_seconds.to_bits(),
        "{what}: probing seconds moved"
    );
    assert_eq!(
        a.total_seconds.to_bits(),
        b.total_seconds.to_bits(),
        "{what}: total seconds moved"
    );
    assert_eq!(a.probes, b.probes, "{what}: probe count moved");
    assert_eq!(
        a.probes_per_address.to_bits(),
        b.probes_per_address.to_bits(),
        "{what}: probes/address moved"
    );
    assert_eq!(
        a.accuracy.successes, b.accuracy.successes,
        "{what}: successes moved"
    );
    assert_eq!(a.accuracy.total, b.accuracy.total, "{what}: records moved");
}

// ---------------------------------------------------------------------
// Property 1: ScheduleKind::None is the bit-exact historical path.

#[test]
fn none_campaign_rows_are_bit_identical_in_both_regimes() {
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        for scenario in [Scenario::KernelBase, Scenario::Kpti] {
            let base = CampaignConfig::new(3, 41).with_observables(observables);
            let plain = scenario.campaign(&profile(), base);
            let scheduled = scenario.campaign(&profile(), base.with_schedule(ScheduleKind::None));
            assert_rows_bit_identical(
                &plain,
                &scheduled,
                &format!("{scenario}/{}", observables.name()),
            );
            assert_eq!(plain.schedule, "none");
            assert_eq!(scheduled.schedule, "none");
        }
    }
}

#[test]
fn none_machine_probe_values_are_bit_identical_in_both_regimes() {
    // Below the campaign: the raw per-probe cycle stream of an
    // installed-None machine equals the untouched machine's, value for
    // value, under both observables regimes.
    for observables in [ObservablesVersion::V1, ObservablesVersion::V2] {
        let sys = LinuxSystem::build(LinuxConfig::seeded(42));
        let (mut plain, truth) = sys.machine(profile(), 42);
        let (mut scheduled, _) = sys.machine(profile(), 42);
        plain.set_observables(observables);
        scheduled.set_observables(observables);
        ScheduleKind::None.install(&mut scheduled, NoiseProfile::Quiet, 42);
        assert!(scheduled.victim_schedule().is_none(), "None never installs");

        let addrs: Vec<VirtAddr> = (0..64)
            .map(|s| truth.kernel_base.wrapping_add(s * KASLR_ALIGN))
            .chain(std::iter::once(truth.user.calibration))
            .collect();
        let a = plain.execute_batch(OpKind::Load, &addrs);
        let b = scheduled.execute_batch(OpKind::Load, &addrs);
        assert_eq!(a, b, "probe stream moved under {}", observables.name());
    }
}

// ---------------------------------------------------------------------
// Property 2: scheduled campaigns replay bit-identically.

#[test]
fn scheduled_campaign_rows_are_deterministic() {
    for kind in [
        ScheduleKind::DvfsSquare,
        ScheduleKind::CoTenantBurst,
        ScheduleKind::ModuleChurn,
    ] {
        let config = CampaignConfig::new(3, 7).with_schedule(kind);
        let first = Scenario::KernelBase.campaign(&profile(), config);
        let second = Scenario::KernelBase.campaign(&profile(), config);
        assert_eq!(first.schedule, kind.name());
        assert_rows_bit_identical(&first, &second, &format!("{kind} replay"));
    }
}

#[test]
fn schedule_determinism_holds_under_v2_observables() {
    let config = CampaignConfig::new(3, 9)
        .with_schedule(ScheduleKind::DvfsSquare)
        .with_observables(ObservablesVersion::V2);
    let first = Scenario::KernelBase.campaign(&profile(), config);
    let second = Scenario::KernelBase.campaign(&profile(), config);
    assert_rows_bit_identical(&first, &second, "dvfs-square v2 replay");
}

// ---------------------------------------------------------------------
// Property 3: mid-scan module churn never bends the probe order.

/// A transparent prober that records every probed address in issue
/// order — the instrument for the `AddrRange::tiles()` contract.
struct RecordingProber {
    inner: SimProber,
    log: Vec<VirtAddr>,
}

impl Prober for RecordingProber {
    fn probe(&mut self, kind: OpKind, addr: VirtAddr) -> u64 {
        self.log.push(addr);
        self.inner.probe(kind, addr)
    }

    fn probe_batch_into(&mut self, kind: OpKind, addrs: &[VirtAddr], out: &mut Vec<u64>) {
        self.log.extend_from_slice(addrs);
        self.inner.probe_batch_into(kind, addrs, out);
    }

    fn evict(&mut self, addr: VirtAddr) {
        self.inner.evict(addr);
    }

    fn spend(&mut self, cycles: u64) {
        self.inner.spend(cycles);
    }

    fn probes_issued(&self) -> u64 {
        self.inner.probes_issued()
    }

    fn probing_cycles(&self) -> u64 {
        self.inner.probing_cycles()
    }

    fn total_cycles(&self) -> u64 {
        self.inner.total_cycles()
    }

    fn clock_ghz(&self) -> f64 {
        self.inner.clock_ghz()
    }
}

#[test]
fn mid_scan_module_churn_preserves_tile_probe_order() {
    let sys = LinuxSystem::build(LinuxConfig::seeded(33));
    let (mut machine, truth) = sys.machine(profile(), 33);
    ScheduleKind::ModuleChurn.install(&mut machine, NoiseProfile::Quiet, 33);
    let mut p = RecordingProber {
        inner: SimProber::new(machine),
        log: Vec::new(),
    };
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    p.log.clear();

    let scan = KernelBaseFinder::new(th).scan(&mut p);
    assert_eq!(scan.mapped.len(), KERNEL_SLOTS as usize, "scan completed");
    let sched = p
        .inner
        .machine()
        .victim_schedule()
        .expect("churn installed");
    assert!(
        sched.fired() >= 2,
        "the victim churned mid-scan ({} events)",
        sched.fired()
    );

    // The attacker's sweep schedule is exactly the tile order of the
    // kernel region — first occurrences in the log match tile-flattened
    // candidates one for one, module churn or not.
    let expected: Vec<VirtAddr> = AddrRange::new(
        VirtAddr::new_truncate(KERNEL_TEXT_REGION_START),
        KASLR_ALIGN,
        KERNEL_SLOTS,
    )
    .tiles()
    .flat_map(|tile| tile.to_vec())
    .collect();
    let mut seen = std::collections::HashSet::new();
    let first_occurrences: Vec<VirtAddr> = p
        .log
        .iter()
        .copied()
        .filter(|a| {
            let v = a.as_u64();
            (KERNEL_TEXT_REGION_START..KERNEL_TEXT_REGION_END).contains(&v) && seen.insert(*a)
        })
        .collect();
    assert_eq!(first_occurrences, expected, "probe order bent");
}

// ---------------------------------------------------------------------
// Property 4: a scheduled no-op never trips the recalibrator.

#[test]
fn quiet_to_quiet_swap_stays_bit_exact_with_the_open_loop_sweep() {
    // The victim fires a NoiseSwap back to its own preset every few
    // hundred ops. The environment never actually changes, so the
    // closed-loop sweep — recalibration armed — must stay bit-exact
    // with the plain open-loop sweep on the untouched machine:
    // `DriftMonitor::check` is the only trigger, and a flat stream
    // gives it nothing.
    let sys = LinuxSystem::build(LinuxConfig::seeded(55));
    let (plain_machine, truth) = sys.machine(profile(), 55);
    let (mut swapped_machine, _) = sys.machine(profile(), 55);
    swapped_machine.set_victim_schedule(Some(
        VictimSchedule::new(64, 55)
            .with_base(NoiseProfile::Quiet)
            .every(4, 8, SchedEvent::NoiseSwap(NoiseProfile::Quiet)),
    ));

    let mut open = SimProber::new(plain_machine);
    let th_open = Threshold::calibrate(&mut open, truth.user.calibration, 16);
    let open_scan = KernelBaseFinder::new(th_open).scan(&mut open);

    let mut closed = SimProber::new(swapped_machine);
    let th_closed = Threshold::calibrate(&mut closed, truth.user.calibration, 16);
    let closed_scan = KernelBaseFinder::new(th_closed)
        .with_recalibration(RecalConfig::default())
        .scan(&mut closed);

    assert_eq!(
        th_open.boundary().to_bits(),
        th_closed.boundary().to_bits(),
        "calibration moved"
    );
    assert_eq!(open_scan.base, closed_scan.base);
    assert_eq!(open_scan.mapped, closed_scan.mapped, "classification moved");
    assert_eq!(
        open_scan.probing_cycles, closed_scan.probing_cycles,
        "probing cycles moved — a refit fired"
    );
    assert_eq!(
        open.probes_issued(),
        closed.probes_issued(),
        "probe count moved — a refit fired"
    );
    let sched = closed
        .machine()
        .victim_schedule()
        .expect("swap schedule installed");
    assert!(sched.fired() >= 2, "the no-op swaps did fire");
}
