//! Property tests for the confirmation decision layer.
//!
//! Three contracts:
//!
//! 1. **Off by default, quiet under quiet** — the campaign chokepoint
//!    ships with `confirm: None`, and on a noiseless machine turning
//!    confirmation *on* never changes the answer of a scan: the
//!    re-tests all agree with the sweep, so the only observable is the
//!    extra probes they spend. This is the invariant that keeps every
//!    pre-confirmation golden row untouched.
//! 2. **The slot-level sequential test counts concordant re-visits** —
//!    at the default error rate an all-mapped verdict stream confirms
//!    after exactly `max(revisits, 2)` visits, an all-unmapped stream
//!    rejects after exactly 2, and a non-concordant stream is forced to
//!    a verdict at `max_revisits`, like the sample-level SPRT at budget
//!    exhaustion.
//! 3. **Run tracking is gap-algebraic and seam-free** — with
//!    `gap_tolerance = 0` the tracker fires exactly where the naive
//!    first-window rule fires on the same verdict stream (fed in any
//!    chunking), and a single confirmed gap inside a promising run is
//!    survived iff the tolerance covers it.

use proptest::prelude::*;

use avx_channel::attacks::campaign::CampaignConfig;
use avx_channel::attacks::kaslr::KernelBaseFinder;
use avx_channel::decision::run_anchors;
use avx_channel::{
    ConfirmConfig, KptiAttack, KptiConfidence, RunTracker, SimProber, SlotSprt, Threshold,
};
use avx_os::linux::{LinuxConfig, LinuxSystem, KPTI_TRAMPOLINE_OFFSET};
use avx_uarch::{CpuProfile, NoiseModel};

fn quiet_prober(config: LinuxConfig, seed: u64) -> (SimProber, avx_os::LinuxTruth) {
    let sys = LinuxSystem::build(config);
    let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
    machine.set_noise(NoiseModel::none());
    (SimProber::new(machine), truth)
}

#[test]
fn campaigns_ship_with_confirmation_off() {
    assert!(CampaignConfig::new(8, 0).confirm.is_none());
    // The knobs the docs promise (CALIBRATION.md "Confirmation
    // protocol") — a silent change here would re-tune every scan that
    // opts in.
    let c = ConfirmConfig::default();
    assert_eq!(
        (c.revisits, c.escalation, c.max_revisits, c.gap_tolerance),
        (2, 2, 6, 1)
    );
    assert!((c.error_rate - 0.05).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (1) Noiseless kernel-base scans: confirmation keeps the quiet
    /// answer bit for bit and only ever adds probes.
    #[test]
    fn noiseless_kernel_base_scan_is_answer_stable_under_confirmation(seed in 0u64..200) {
        let (mut p_off, truth) = quiet_prober(LinuxConfig::seeded(seed), seed);
        let (mut p_on, _) = quiet_prober(LinuxConfig::seeded(seed), seed);
        let th = Threshold::calibrate(&mut p_off, truth.user.calibration, 8);
        let th2 = Threshold::calibrate(&mut p_on, truth.user.calibration, 8);
        prop_assert_eq!(th, th2);

        let off = KernelBaseFinder::new(th).scan(&mut p_off);
        let on = KernelBaseFinder::new(th)
            .with_confirmation(ConfirmConfig::default())
            .scan(&mut p_on);

        prop_assert_eq!(on.base, off.base);
        prop_assert_eq!(on.samples.len(), off.samples.len());
        if off.base.is_some() {
            prop_assert!(on.probes > off.probes, "re-tests must be accounted");
        }
    }

    /// (1) Noiseless KPTI scans: same contract, plus the confidence
    /// upgrade — a quiet unique hit re-tests clean and reports
    /// `Confirmed` instead of `Unique`.
    #[test]
    fn noiseless_kpti_scan_is_answer_stable_under_confirmation(seed in 0u64..200) {
        let config = LinuxConfig { kpti: true, ..LinuxConfig::seeded(seed) };
        let (mut p_off, truth) = quiet_prober(config.clone(), seed);
        let (mut p_on, _) = quiet_prober(config, seed);
        let th = Threshold::calibrate(&mut p_off, truth.user.calibration, 8);
        let th2 = Threshold::calibrate(&mut p_on, truth.user.calibration, 8);
        prop_assert_eq!(th, th2);

        let off = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p_off);
        let on = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET)
            .with_confirmation(ConfirmConfig::default())
            .scan(&mut p_on);

        prop_assert_eq!(on.base, off.base);
        prop_assert_eq!(on.trampoline, off.trampoline);
        if off.base.is_some() {
            prop_assert_eq!(off.confidence, KptiConfidence::Unique);
            prop_assert_eq!(on.confidence, KptiConfidence::Confirmed);
            prop_assert!(on.probes > off.probes);
        }
    }

    /// (2) An all-mapped verdict stream confirms after exactly
    /// `max(revisits, 2)` visits (two concordant verdicts cross the
    /// sequential boundary at ε = 0.05; the run-length policy can only
    /// lengthen that).
    #[test]
    fn concordant_mapped_stream_confirms_at_the_revisit_count(revisits in 1u32..5) {
        let config = ConfirmConfig { revisits, max_revisits: 16, ..ConfirmConfig::default() };
        let mut sprt = SlotSprt::new(config);
        let mut verdict = None;
        while verdict.is_none() {
            verdict = sprt.push(true);
        }
        prop_assert_eq!(verdict, Some(true));
        prop_assert_eq!(sprt.visits(), revisits.max(2));
    }

    /// (2) An all-unmapped stream rejects after exactly 2 visits, no
    /// matter how long a run the caller asked for.
    #[test]
    fn concordant_unmapped_stream_rejects_in_two_visits(revisits in 1u32..5) {
        let config = ConfirmConfig { revisits, max_revisits: 16, ..ConfirmConfig::default() };
        let mut sprt = SlotSprt::new(config);
        let mut verdict = None;
        while verdict.is_none() {
            verdict = sprt.push(false);
        }
        prop_assert_eq!(verdict, Some(false));
        prop_assert_eq!(sprt.visits(), 2);
    }

    /// (2) A strictly alternating stream never satisfies either
    /// boundary and is forced to a verdict at exactly `max_revisits`.
    #[test]
    fn alternating_stream_is_forced_at_the_visit_cap(
        max_revisits in 3u32..10,
        start_mapped in any::<bool>(),
    ) {
        let config = ConfirmConfig { max_revisits, ..ConfirmConfig::default() };
        let mut sprt = SlotSprt::new(config);
        let mut verdict = None;
        let mut mapped = start_mapped;
        while verdict.is_none() {
            verdict = sprt.push(mapped);
            mapped = !mapped;
        }
        prop_assert!(verdict.is_some());
        prop_assert_eq!(sprt.visits(), max_revisits);
    }

    /// (3) With zero gap tolerance the tracker fires exactly where the
    /// naive "first window of `min_run` consecutive mapped slots" rule
    /// fires — independent of how the stream is chunked, which is the
    /// seam-freedom the streaming Windows scan relies on.
    #[test]
    fn zero_tolerance_tracker_matches_the_naive_rule_across_chunkings(
        mapped in prop::collection::vec(any::<bool>(), 1..64),
        min_run in 1usize..4,
        split in 0usize..64,
    ) {
        let naive = mapped
            .windows(min_run)
            .position(|w| w.iter().all(|&m| m))
            .map(|i| i as u64);

        let mut tracker = RunTracker::new(min_run as u64, 0);
        let mut fired = None;
        let split = split.min(mapped.len());
        for (base, chunk) in [(0, &mapped[..split]), (split, &mapped[split..])] {
            for (i, &m) in chunk.iter().enumerate() {
                if fired.is_none() {
                    fired = tracker.observe((base + i) as u64, m);
                }
            }
        }
        prop_assert_eq!(fired, naive);

        // And the anchor list agrees on the legacy-first rule for full
        // runs (run_anchors appends a trailing shorter run, so compare
        // only when the naive rule found a full one).
        if let Some(first) = naive {
            prop_assert_eq!(run_anchors(&mapped, min_run)[0] as u64, first);
        }
    }

    /// (3) A single confirmed gap inside a promising run is survived
    /// iff the tolerance covers it: `a` mapped, one gap, `b` mapped
    /// slots fire at slot 0 with tolerance 1 and not with tolerance 0
    /// (unless the tail alone is long enough).
    #[test]
    fn one_gap_is_survived_exactly_when_tolerated(
        a in 1u64..4,
        pad in 0u64..3,
    ) {
        let min_run = a + 1 + pad;
        let b = min_run - a;
        let mut stream = vec![true; a as usize];
        stream.push(false);
        stream.extend(vec![true; b as usize]);
        let feed = |tracker: &mut RunTracker| {
            let mut fired = None;
            for (slot, &mapped) in stream.iter().enumerate() {
                if fired.is_none() {
                    fired = tracker.observe(slot as u64, mapped);
                }
            }
            fired
        };
        let mut tolerant = RunTracker::new(min_run, 1);
        let mut strict = RunTracker::new(min_run, 0);
        prop_assert_eq!(feed(&mut tolerant), Some(0), "tolerance 1 bridges one gap");
        prop_assert_eq!(feed(&mut strict), None, "tolerance 0 resets at the gap");
    }
}
