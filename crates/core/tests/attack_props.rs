//! Property tests of the attack layer: for every layout the simulator
//! can produce, the attacks recover the ground truth (noiseless), and
//! the matcher/classifier logic is order- and subset-robust.

use proptest::prelude::*;

use avx_channel::attacks::userspace::{LibraryMatcher, UserSpaceScanner};
use avx_channel::{
    AmdKernelBaseFinder, KernelBaseFinder, KptiAttack, ModuleClassifier, ModuleScanner,
    PermissionAttack, SimProber, Threshold,
};
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_os::linux::{LinuxConfig, LinuxSystem, KPTI_TRAMPOLINE_OFFSET};
use avx_os::modules::UBUNTU_18_04_MODULES;
use avx_os::process::{build_process, ImageSignature};
use avx_uarch::{CpuProfile, Machine, NoiseModel};

fn quiet_prober(
    config: LinuxConfig,
    profile: CpuProfile,
    seed: u64,
) -> (SimProber, avx_os::LinuxTruth) {
    let sys = LinuxSystem::build(config);
    let (mut machine, truth) = sys.into_machine(profile, seed);
    machine.set_noise(NoiseModel::none());
    (SimProber::new(machine), truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Noiseless Intel base recovery is *exact for every slide*.
    #[test]
    fn intel_base_exact_for_every_slide(slide in 0u64..492) {
        let (mut p, truth) = quiet_prober(
            LinuxConfig { fixed_slide: Some(slide), ..LinuxConfig::seeded(1) },
            CpuProfile::alder_lake_i5_12400f(),
            slide,
        );
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let scan = KernelBaseFinder::new(th).scan(&mut p);
        prop_assert_eq!(scan.base, Some(truth.kernel_base));
        prop_assert_eq!(scan.slide_slots(), Some(slide));
    }

    /// Same for the AMD level-based finder.
    #[test]
    fn amd_base_exact_for_every_slide(slide in 0u64..492) {
        let (mut p, truth) = quiet_prober(
            LinuxConfig { fixed_slide: Some(slide), ..LinuxConfig::seeded(2) },
            CpuProfile::zen3_ryzen5_5600x(),
            slide,
        );
        let scan = AmdKernelBaseFinder::for_default_kernel().scan(&mut p);
        prop_assert_eq!(scan.base, Some(truth.kernel_base));
    }

    /// And for the KPTI trampoline attack.
    #[test]
    fn kpti_base_exact_for_every_slide(slide in 0u64..492) {
        let (mut p, truth) = quiet_prober(
            LinuxConfig {
                kpti: true,
                fixed_slide: Some(slide),
                ..LinuxConfig::seeded(3)
            },
            CpuProfile::alder_lake_i5_12400f(),
            slide,
        );
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let scan = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
        prop_assert_eq!(scan.base, Some(truth.kernel_base));
    }

    /// Noiseless module scans detect every module exactly, for any
    /// placement seed.
    #[test]
    fn module_scan_exact_for_any_seed(seed in any::<u64>()) {
        let (mut p, truth) = quiet_prober(
            LinuxConfig::seeded(seed),
            CpuProfile::ice_lake_i7_1065g7(),
            seed,
        );
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let scan = ModuleScanner::new(th).scan(&mut p);
        prop_assert_eq!(scan.detected.len(), truth.modules.len());
        for (d, m) in scan.detected.iter().zip(truth.modules.iter()) {
            prop_assert_eq!(d.base, m.base);
            prop_assert_eq!(d.size, m.spec.size);
        }
        // Classification: unique-size modules resolve to their name.
        let ids = ModuleClassifier::new(&UBUNTU_18_04_MODULES).classify(&scan);
        for (id, m) in ids.iter().zip(truth.modules.iter()) {
            let unique = UBUNTU_18_04_MODULES
                .iter()
                .filter(|o| o.size == m.spec.size)
                .count()
                == 1;
            if unique {
                prop_assert_eq!(id.unique_name(), Some(m.spec.name));
            } else {
                prop_assert!(id.unique_name().is_none());
            }
        }
    }

    /// The library matcher finds any subset of the standard libraries
    /// in any load order, and never hallucinates absent ones.
    #[test]
    fn library_matcher_subset_robust(mask in 1u8..31, seed in any::<u64>()) {
        let all = ImageSignature::standard_set();
        let loaded: Vec<ImageSignature> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, s)| s.clone())
            .collect();
        let mut space = AddressSpace::new();
        let truth = build_process(&mut space, &ImageSignature::fig7_app(), &loaded, seed);
        let own = VirtAddr::new_truncate(0x5400_0000_0000);
        space.map(own, PageSize::Size4K, PteFlags::user_ro()).unwrap();
        let mut machine = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, seed);
        machine.set_noise(NoiseModel::none());
        let mut p = SimProber::new(machine);
        let perm = PermissionAttack::calibrate(&mut p, own);
        let scanner = UserSpaceScanner::new(perm);

        let first = truth.libraries.first().unwrap().base;
        let last = truth.libraries.last().unwrap();
        let span = last.base.as_u64() + last.signature.span() + 0x10_0000 - first.as_u64();
        let map = scanner.scan(&mut p, first, span / 4096);
        let matches = LibraryMatcher::new(all.clone()).find_all(&map);

        for lib in &truth.libraries {
            prop_assert!(
                matches.iter().any(|m| m.name == lib.signature.name && m.base == lib.base),
                "{} missed", lib.signature.name
            );
        }
        for m in &matches {
            prop_assert!(
                truth.libraries.iter().any(|l| l.signature.name == m.name),
                "hallucinated {}", m.name
            );
        }
    }

    /// Calibration is profile-portable: on every Intel profile the
    /// calibrated threshold separates that profile's own bands.
    #[test]
    fn calibration_is_profile_portable(idx in 0usize..7) {
        let profiles = [
            CpuProfile::ice_lake_i7_1065g7(),
            CpuProfile::coffee_lake_i9_9900(),
            CpuProfile::alder_lake_i5_12400f(),
            CpuProfile::skylake_i7_6600u(),
            CpuProfile::xeon_e5_2676(),
            CpuProfile::xeon_cascade_lake(),
            CpuProfile::xeon_platinum_8171m(),
        ];
        let profile = profiles[idx].clone();
        let mapped = profile.expect_kernel_mapped_load();
        let unmapped = profile.expect_kernel_unmapped_load();
        let (mut p, truth) = quiet_prober(LinuxConfig::seeded(5), profile, 5);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        prop_assert!(th.is_mapped(mapped.round() as u64));
        prop_assert!(!th.is_mapped(unmapped.round() as u64));
    }
}
