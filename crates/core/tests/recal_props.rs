//! Property tests for the closed-loop recalibration engine.
//!
//! Three contracts:
//!
//! 1. **Silence under silence** — with `NoiseModel::none()` the drift
//!    trigger can never fire, and the [`Recalibrating`] driver is
//!    bit-exact with the open-loop sweep (samples, verdicts and probe
//!    counts), on both the fixed and the adaptive path. This is what
//!    keeps every pre-recalibration golden row untouched when the
//!    feature is threaded through the campaign engine.
//! 2. **A σ×6 step fires within one window** — once at least
//!    `min_samples` post-step samples have been observed, the
//!    dispersion trigger trips no later than `window` samples after the
//!    step, at the monitor level for arbitrary band levels and
//!    end-to-end through a drifting machine.
//! 3. **The k-means → EM retirement is value-preserving** — on clean
//!    (non-drifting) bimodal sweep data, [`Threshold::refit_bimodal`]
//!    places its decision boundary where the retired
//!    [`Threshold::from_bimodal_samples`] k-means split placed it,
//!    within tolerance, while additionally recovering the environment
//!    σ the k-means path never produced.

use proptest::prelude::*;

use avx_channel::attacks::kaslr::KernelBaseFinder;
use avx_channel::attacks::modules::ModuleScanner;
use avx_channel::recal::{DriftMonitor, RecalConfig, Recalibrating};
use avx_channel::{AdaptiveSampler, PageTableAttack, ProbeStrategy, SimProber, Threshold};
use avx_mmu::VirtAddr;
use avx_os::linux::{LinuxConfig, LinuxSystem};
use avx_uarch::{CpuProfile, NoiseModel, NoiseProfile};

fn quiet_prober(seed: u64) -> (SimProber, avx_os::LinuxTruth) {
    let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
    machine.set_noise(NoiseModel::none());
    (SimProber::new(machine), truth)
}

fn va(i: u64) -> VirtAddr {
    VirtAddr::new_truncate(0xffff_ffff_8000_0000 + i * 0x1000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (1) Noiseless fixed-path sweeps: driver == open loop, bit for
    /// bit, and the trigger never fires — across seeds and strategies.
    #[test]
    fn noiseless_fixed_sweep_is_bit_exact_and_never_refits(
        seed in 0u64..500,
        strategy_pick in 0u8..3,
    ) {
        let strategy = match strategy_pick {
            0 => ProbeStrategy::Single,
            1 => ProbeStrategy::SecondOfTwo,
            _ => ProbeStrategy::MinOf(4),
        };
        // Two identically-built machines: translation-cache state must
        // match probe for probe (the no-warm-up `Single` strategy is
        // cache-state sensitive).
        let (mut p_open, truth) = quiet_prober(seed);
        let (mut p_closed, _) = quiet_prober(seed);
        let th = Threshold::calibrate(&mut p_open, truth.user.calibration, 8);
        let th2 = Threshold::calibrate(&mut p_closed, truth.user.calibration, 8);
        prop_assert_eq!(th, th2);
        let mut attack = PageTableAttack::new(th);
        attack.strategy = strategy;
        let range = KernelBaseFinder::candidate_range();

        let open = attack.sweep_range(&mut p_open, &range);
        let mut driver = Recalibrating::new(attack, RecalConfig::default());
        let closed = driver.sweep_range(&mut p_closed, &range);

        prop_assert_eq!(closed.refits, 0);
        prop_assert_eq!(closed.samples, open.samples);
        prop_assert_eq!(closed.mapped, open.mapped);
        prop_assert_eq!(closed.probes, open.probes);
        prop_assert_eq!(driver.threshold(), th, "threshold must not move");
    }

    /// (1) Noiseless adaptive-path sweeps: same contract through the
    /// SPRT engine (the path the campaign's adaptive golden rows use).
    #[test]
    fn noiseless_adaptive_sweep_is_bit_exact_and_never_refits(seed in 0u64..500) {
        let (mut p, truth) = quiet_prober(seed);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = PageTableAttack::new(th)
            .with_adaptive(AdaptiveSampler::from_threshold(&th, 1.0));
        let range = KernelBaseFinder::candidate_range();

        let open = attack.sweep_range(&mut p, &range);
        let mut driver = Recalibrating::new(attack, RecalConfig::default());
        let closed = driver.sweep_range(&mut p, &range);

        prop_assert_eq!(closed.refits, 0);
        prop_assert_eq!(closed.samples, open.samples);
        prop_assert_eq!(closed.mapped, open.mapped);
        prop_assert_eq!(closed.probes, open.probes);
    }

    /// (2) Monitor level: after a σ×6 step of the band dispersion, the
    /// trigger fires within one window of the step, for arbitrary band
    /// levels and pre-step jitter.
    #[test]
    fn sigma_step_fires_within_one_window(
        level in 60u64..500,
        pre_jitter in 0u64..2,
        phase in 0u64..7919,
    ) {
        let config = RecalConfig::default();
        // Baseline σ covers the pre-step jitter (a correct fit).
        let mut monitor = DriftMonitor::new(config, pre_jitter.max(1) as f64);
        let boundary = level as f64 - 10.0; // all samples in the slow band
        for i in 0..300usize {
            monitor.observe(i, va(i as u64), level + (i as u64 % (pre_jitter + 1)), true);
            prop_assert_eq!(monitor.check(boundary), None, "pre-step at {}", i);
        }
        // The step: spread jumps to ±6×(pre-step σ ∨ 1) — a σ×6 shift.
        let spread = 6 * pre_jitter.max(1);
        let mut fired = None;
        for i in 300..300 + config.window {
            let wobble = ((i as u64 * 7919 + phase) % (2 * spread + 1)) as i64 - spread as i64;
            let sample = (level as i64 + wobble).max(1) as u64;
            monitor.observe(i, va(i as u64), sample, true);
            if monitor.check(boundary).is_some() {
                fired = Some(i);
                break;
            }
        }
        let fired = fired.expect("σ×6 step must fire within one window");
        prop_assert!(fired < 300 + config.window, "fired at {}", fired);
    }

    /// (3) The k-means retirement: on clean two-band data the EM re-fit
    /// and the retired k-means split agree on the decision boundary
    /// within 2 cycles (≈ the band quantization), classify both band
    /// means identically, and the EM fit recovers a σ consistent with
    /// the injected wobble.
    #[test]
    fn em_refit_matches_retired_kmeans_boundary_on_clean_input(
        lo in 60u64..120,
        gap in 12u64..40,
        wobble in 1u64..4,
        per_band in 60usize..220,
    ) {
        let hi = lo + gap;
        let mut samples = Vec::with_capacity(per_band * 2);
        for i in 0..per_band as u64 {
            samples.push(lo + (i % (2 * wobble + 1)));
            samples.push(hi + (i % (2 * wobble + 1)));
        }
        let kmeans = Threshold::from_bimodal_samples(&samples)
            .expect("k-means splits clean bimodal data");
        let em = Threshold::refit_bimodal(&samples)
            .expect("EM refit splits clean bimodal data");
        prop_assert!(
            (em.threshold.boundary() - kmeans.boundary()).abs() <= 2.0,
            "boundaries diverged: em {} vs k-means {}",
            em.threshold.boundary(),
            kmeans.boundary()
        );
        // Identical verdicts on both band centers (the contract the
        // Windows-guest bootstrap needs).
        let center = |b: u64| b + wobble;
        prop_assert_eq!(em.threshold.is_mapped(center(lo)), kmeans.is_mapped(center(lo)));
        prop_assert_eq!(em.threshold.is_mapped(center(hi)), kmeans.is_mapped(center(hi)));
        prop_assert!(em.threshold.is_mapped(center(lo)));
        prop_assert!(!em.threshold.is_mapped(center(hi)));
        // And the EM path adds what k-means never had: a σ estimate.
        prop_assert!(em.sigma > 0.0 && em.sigma <= 2.0 * wobble as f64 + 1.0);
    }
}

/// (1) The module-area scan (a different range shape: 16384 × 4 KiB)
/// under the noiseless contract, driven chunk by chunk like the
/// streaming Windows scan.
#[test]
fn noiseless_chunked_sweep_is_bit_exact_and_never_refits() {
    let (mut p, truth) = quiet_prober(77);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
    let scanner_range = ModuleScanner::candidate_range();
    let mut attack = PageTableAttack::new(th);
    attack.strategy = ProbeStrategy::MinOf(2);

    let open = attack.sweep_range(&mut p, &scanner_range);
    let mut driver = Recalibrating::new(attack, RecalConfig::default());
    let mut samples = Vec::new();
    let mut mapped = Vec::new();
    let mut probes = 0u64;
    for chunk in scanner_range.chunks(1024) {
        let sweep = driver.sweep_range(&mut p, &chunk);
        assert_eq!(sweep.refits, 0);
        samples.extend(sweep.samples);
        mapped.extend(sweep.mapped);
        probes += sweep.probes;
    }
    assert_eq!(samples, open.samples);
    assert_eq!(mapped, open.mapped);
    assert_eq!(probes, open.probes);
}

/// (2) End-to-end: a machine whose noise steps quiet → laptop (σ×6)
/// mid-scan must trip the driver, and no later than one window of
/// addresses past the step (each address costs at least one probe, so
/// the step's probe index bounds its address index).
#[test]
fn sigma_step_fires_within_one_window_end_to_end() {
    const STEP_AT_PROBE: u64 = 600;
    let sys = LinuxSystem::build(LinuxConfig::seeded(21));
    let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 21);
    machine.set_noise_profile(NoiseProfile::drift_with(
        NoiseProfile::Quiet,
        NoiseProfile::LaptopDvfs,
        STEP_AT_PROBE,
        STEP_AT_PROBE,
    ));
    let mut p = SimProber::new(machine);
    let fit = Threshold::calibrate_with(
        &mut p,
        truth.user.calibration,
        16,
        avx_channel::CalibratorKind::NoiseAware,
    );
    let config = RecalConfig::default();
    let attack = PageTableAttack::new(fit.threshold).with_adaptive(AdaptiveSampler::from_fit(&fit));
    let mut driver = Recalibrating::new(attack, config);
    let sweep = driver.sweep_range(&mut p, &KernelBaseFinder::candidate_range());
    assert!(sweep.refits >= 1, "σ×6 step must trigger the loop");
    let first = driver.events()[0];
    assert!(
        (first.at_address as u64) <= STEP_AT_PROBE + config.window as u64,
        "trigger lagged more than one window past the step: address {}",
        first.at_address
    );
}

/// The recovered fit feeds the σ-policy chokepoint: after a refit the
/// driver's sampler hypotheses stay centred on the (unchanged)
/// calibrated boundary while the σ model widens — which is exactly
/// what `Sampling::sampler_from_fit` produces from the new fit.
#[test]
fn refit_rebuilds_the_sampler_through_the_fit() {
    let sys = LinuxSystem::build(LinuxConfig::seeded(5));
    let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 5);
    machine.set_noise_profile(NoiseProfile::drift_quiet_to_laptop());
    let mut p = SimProber::new(machine);
    let fit = Threshold::calibrate_with(
        &mut p,
        truth.user.calibration,
        16,
        avx_channel::CalibratorKind::NoiseAware,
    );
    let sampler = AdaptiveSampler::from_fit(&fit);
    let attack = PageTableAttack::new(fit.threshold).with_adaptive(sampler);
    let mut driver = Recalibrating::new(attack, RecalConfig::default());
    let _ = driver.sweep_range(&mut p, &KernelBaseFinder::candidate_range());
    assert!(driver.refits() >= 1);
    let last = driver.events().last().unwrap();
    assert!(
        last.fit.sigma > sampler.sigma,
        "the refit must widen the σ model: {} vs initial {}",
        last.fit.sigma,
        sampler.sigma
    );
    // The boundary survives the refits (band means are stable).
    assert!((driver.threshold().boundary() - fit.threshold.boundary()).abs() <= 4.0);
}
