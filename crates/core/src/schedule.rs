//! The schedule axis — event-driven victims as the fifth campaign knob.
//!
//! The drift ramp from [`avx_uarch::NoiseProfile::Drift`] advances per
//! probe, but a real victim's environment changes on a wall clock the
//! attacker does not control: DVFS duty cycles, co-tenant arrival and
//! departure, module load/unload. [`ScheduleKind`] packages the three
//! canonical event shapes as named presets over
//! [`avx_uarch::VictimSchedule`], the discrete-event scheduler the
//! victim side of [`Machine`] owns. An installed schedule's events all
//! route through existing chokepoints — noise swaps through the
//! [`Machine::set_noise`] site, layout churn through the page-table
//! `write_entry` path — so the closed-loop recalibrator sees them
//! through [`crate::recal::DriftMonitor::check`] alone (invariant 8:
//! no new trigger sites).
//!
//! * [`ScheduleKind::None`] — the bit-exact historical victim.
//!   Installing it does nothing at all (invariant 13: no schedule ⇒
//!   no clock reads), so every pre-schedule golden row is unchanged by
//!   construction.
//! * [`ScheduleKind::DvfsSquare`] — a square-wave DVFS duty cycle:
//!   the victim core oscillates between the campaign's base noise
//!   preset and [`NoiseProfile::LaptopDvfs`] on a fixed period.
//! * [`ScheduleKind::CoTenantBurst`] — co-tenant arrival/departure
//!   bursts: two tenants arrive back-to-back, linger, then depart,
//!   each scaling the victim's noise model additively.
//! * [`ScheduleKind::ModuleChurn`] — mid-scan layout churn: kernel
//!   modules load and unload in the module region and short-lived
//!   processes spawn in user space, mutating the trial's own machine
//!   clone through `write_entry`.
//!
//! Installation is per-machine and per-trial, after the defense axis
//! and before the first probe; the schedule's randomness is derived
//! from the trial seed through its own SplitMix64 stream, never from
//! the machine's measurement RNG.
//!
//! ```
//! use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
//! use avx_channel::schedule::ScheduleKind;
//! use avx_uarch::CpuProfile;
//!
//! let config = CampaignConfig::new(2, 0).with_schedule(ScheduleKind::CoTenantBurst);
//! let row = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
//! assert_eq!(row.schedule, "cotenant-burst");
//! ```

use core::fmt;

use avx_os::linux::{MODULE_ALIGN, MODULE_REGION_END, MODULE_REGION_START};
use avx_uarch::defense::splitmix64;
use avx_uarch::{Machine, NoiseProfile, SchedEvent, SchedRegion, VictimSchedule};

/// Virtual-clock rate of every schedule preset: one tick per 64
/// victim-observed ops. At 2 probes per scanned slot this makes a tick
/// span 32 slots — coarse enough that whole probe tiles land inside
/// one environment phase, fine enough that every preset fires well
/// within a single 512-slot kernel-base scan.
pub const DEFAULT_OPS_PER_TICK: u64 = 64;

/// Start of the user-space region [`ScheduleKind::ModuleChurn`] spawns
/// short-lived process images into. Deliberately far from both the
/// campaign calibration page (`0x5400_0000_0000`) and the library
/// regions the user-space scanner sweeps (`0x7f3e_...`), so spawned
/// images never shadow an attack target.
pub const SPAWN_REGION_START: u64 = 0x6000_0000_0000;

/// End (exclusive) of the process-spawn region: 1024 pages.
pub const SPAWN_REGION_END: u64 = 0x6000_0040_0000;

/// The schedule menu — the fifth campaign axis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ScheduleKind {
    /// No schedule: the bit-exact historical victim.
    #[default]
    None,
    /// Square-wave DVFS duty cycle between the base noise preset and
    /// [`NoiseProfile::LaptopDvfs`].
    DvfsSquare,
    /// Co-tenant arrival/departure bursts scaling the noise model
    /// additively.
    CoTenantBurst,
    /// Mid-scan module load/unload plus process spawns mutating the
    /// victim's address space.
    ModuleChurn,
}

impl ScheduleKind {
    /// All schedules, grid order.
    pub const ALL: [ScheduleKind; 4] = [
        ScheduleKind::None,
        ScheduleKind::DvfsSquare,
        ScheduleKind::CoTenantBurst,
        ScheduleKind::ModuleChurn,
    ];

    /// The row/CLI label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScheduleKind::None => "none",
            ScheduleKind::DvfsSquare => "dvfs-square",
            ScheduleKind::CoTenantBurst => "cotenant-burst",
            ScheduleKind::ModuleChurn => "module-churn",
        }
    }

    /// Parses a CLI/env name (`--schedule <name>` / `AVX_SCHEDULE`).
    #[must_use]
    pub fn parse(name: &str) -> Option<ScheduleKind> {
        match name {
            "none" | "off" => Some(ScheduleKind::None),
            "dvfs-square" | "dvfs" | "square" => Some(ScheduleKind::DvfsSquare),
            "cotenant-burst" | "cotenant" | "burst" => Some(ScheduleKind::CoTenantBurst),
            "module-churn" | "churn" => Some(ScheduleKind::ModuleChurn),
            _ => None,
        }
    }

    /// Builds the preset's [`VictimSchedule`] over the campaign's base
    /// noise preset, with event randomness derived from `seed` through
    /// a dedicated SplitMix64 stream. `None` builds nothing.
    ///
    /// `base` matters because [`Machine`] stores the *resolved*
    /// [`avx_uarch::NoiseModel`], not the preset: the DVFS square wave
    /// needs the preset name to swap back to, and the tenant
    /// multiplier rebases on whatever preset is current.
    #[must_use]
    pub fn build(self, base: NoiseProfile, seed: u64) -> Option<VictimSchedule> {
        let sched_seed = splitmix64(seed ^ 0x5c4e_d7ab_1e00_cafe);
        match self {
            ScheduleKind::None => None,
            // Laptop phase ticks 4..10, base phase ticks 10..16, then
            // repeat: a 768-op period whose first edge (op 256) lines
            // up with the drift ramp's default onset, so the PR 5
            // closed-loop machinery faces the same "world moved after
            // calibration" shape — now event-driven.
            ScheduleKind::DvfsSquare => Some(
                VictimSchedule::new(DEFAULT_OPS_PER_TICK, sched_seed)
                    .with_base(base)
                    .every(4, 12, SchedEvent::NoiseSwap(NoiseProfile::LaptopDvfs))
                    .every(10, 12, SchedEvent::NoiseSwap(base)),
            ),
            // Two tenants arrive back-to-back, linger for half the
            // 1024-op period, then depart in order — a sawtooth of
            // multipliers 1 → 3 → 5 → 3 → 1 over the base model.
            ScheduleKind::CoTenantBurst => Some(
                VictimSchedule::new(DEFAULT_OPS_PER_TICK, sched_seed)
                    .with_base(base)
                    .every(4, 16, SchedEvent::TenantArrive)
                    .every(8, 16, SchedEvent::TenantArrive)
                    .every(12, 16, SchedEvent::TenantDepart)
                    .every(16, 16, SchedEvent::TenantDepart),
            ),
            // A 16-page module loads every 512 ops and unloads 256 ops
            // later (LIFO), with a small process image spawning on a
            // slower period — steady-state churn through `write_entry`.
            ScheduleKind::ModuleChurn => Some(
                VictimSchedule::new(DEFAULT_OPS_PER_TICK, sched_seed)
                    .with_base(base)
                    .with_module_region(SchedRegion::new(
                        MODULE_REGION_START,
                        MODULE_REGION_END,
                        MODULE_ALIGN,
                    ))
                    .with_spawn_region(SchedRegion::new(
                        SPAWN_REGION_START,
                        SPAWN_REGION_END,
                        0x1000,
                    ))
                    .every(4, 8, SchedEvent::ModuleLoad { pages: 16 })
                    .every(8, 8, SchedEvent::ModuleUnload)
                    .every(6, 16, SchedEvent::ProcessSpawn { pages: 4 }),
            ),
        }
    }

    /// Installs this schedule on `machine`. The single installation
    /// chokepoint every campaign trial goes through, mirroring
    /// [`crate::defense::DefenseKind::install`]. `None` is
    /// architecturally silent: the machine keeps its empty schedule
    /// slot and never reads the virtual clock.
    pub fn install(self, machine: &mut Machine, base: NoiseProfile, seed: u64) {
        machine.set_victim_schedule(self.build(base, seed));
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in ScheduleKind::ALL {
            assert_eq!(ScheduleKind::parse(kind.name()), Some(kind), "{kind}");
        }
        assert_eq!(ScheduleKind::parse("dvfs"), Some(ScheduleKind::DvfsSquare));
        assert_eq!(
            ScheduleKind::parse("burst"),
            Some(ScheduleKind::CoTenantBurst)
        );
        assert_eq!(
            ScheduleKind::parse("churn"),
            Some(ScheduleKind::ModuleChurn)
        );
        assert_eq!(ScheduleKind::parse("off"), Some(ScheduleKind::None));
        assert_eq!(ScheduleKind::parse("bogus"), None);
    }

    #[test]
    fn none_builds_nothing() {
        assert!(ScheduleKind::None.build(NoiseProfile::Quiet, 7).is_none());
    }

    #[test]
    fn presets_build_active_schedules_with_the_campaign_base() {
        for kind in [
            ScheduleKind::DvfsSquare,
            ScheduleKind::CoTenantBurst,
            ScheduleKind::ModuleChurn,
        ] {
            let sched = kind.build(NoiseProfile::SmtSibling, 7).expect("preset");
            assert!(sched.is_active(), "{kind}");
            assert_eq!(sched.profile(), NoiseProfile::SmtSibling, "{kind}");
            assert_eq!(sched.ops_per_tick(), DEFAULT_OPS_PER_TICK, "{kind}");
        }
    }

    #[test]
    fn build_is_seed_deterministic() {
        let a = ScheduleKind::ModuleChurn
            .build(NoiseProfile::Quiet, 41)
            .expect("preset");
        let b = ScheduleKind::ModuleChurn
            .build(NoiseProfile::Quiet, 41)
            .expect("preset");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn spawn_region_avoids_attack_targets() {
        // The campaign calibration page and the user-space scanner's
        // library sweep must never collide with spawned images.
        let calibration_page = 0x5400_0000_0000u64;
        let library_sweep_floor = 0x7f00_0000_0000u64;
        assert!(SPAWN_REGION_END < library_sweep_floor);
        assert!(SPAWN_REGION_START > calibration_page + 0x1000);
    }
}
