//! Adaptive sequential probing: spend probes where the signal is weak.
//!
//! The paper's pipeline burns a *fixed* repetition budget per candidate
//! address (probe twice keep the second, or min-of-N), sized for the
//! noisiest environment it must survive. NetSpectre's observation is
//! that the probe count a reliable decision actually needs varies by
//! orders of magnitude with the noise floor — so this module adds an
//! early-stopping decision layer on top of the batched probe pipeline:
//!
//! * [`AdaptiveSampler`] wraps the [`SequentialLlr`] accumulator from
//!   [`crate::stats`] and drives the mapped/unmapped scans (P2): every
//!   address keeps its own log-likelihood ratio and drops out of the
//!   sweep the moment its classification is statistically settled.
//! * [`AdaptiveMinFilter`] is the sequential analogue of the min-filter
//!   used by the AMD walk-level scans (P3): it stops re-probing an
//!   address once its running minimum has stopped improving.
//! * [`Sampling`] is the campaign-facing policy switch between the
//!   paper's fixed-budget strategies and the adaptive engine.
//!
//! Both run through [`crate::Prober::probe_batch`] in the same
//! [`crate::ProbeStrategy::BATCH_TILE`]-sized tiles as the fixed path,
//! so TLB-warmth semantics are identical; only the *number* of probes
//! per address changes. Under [`avx_uarch::NoiseModel::none`] the
//! adaptive decisions are bit-exact with the fixed-threshold decisions
//! (a property test pins this).
//!
//! # Example: an adaptive sweep over kernel candidates
//!
//! ```
//! use avx_channel::adaptive::AdaptiveSampler;
//! use avx_channel::{SimProber, Threshold};
//! use avx_os::linux::{LinuxConfig, LinuxSystem};
//! use avx_uarch::{CpuProfile, OpKind};
//!
//! let sys = LinuxSystem::build(LinuxConfig::seeded(3));
//! let (machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 3);
//! let mut p = SimProber::new(machine);
//!
//! // Calibrate, then let each address buy only the evidence it needs.
//! let fit = Threshold::calibrate_with(
//!     &mut p,
//!     truth.user.calibration,
//!     16,
//!     avx_channel::CalibratorKind::NoiseAware,
//! );
//! let sampler = AdaptiveSampler::from_fit(&fit);
//! let addrs = [truth.kernel_base, truth.kernel_base.wrapping_add(0x4000_0000)];
//! let batch = sampler.classify_batch(&mut p, OpKind::Load, &addrs);
//! assert_eq!(batch.mapped, vec![true, false]);
//! assert!(batch.probes_per_address() <= 9.0, "hard budget respected");
//! ```

use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

use crate::calibrate::{CalibrationFit, Threshold};
use crate::prober::{ProbeStrategy, Prober};
use crate::stats::{SeqDecision, SequentialLlr};
use crate::sweep::AddrRange;

/// Probe budgets and the confidence target of the sequential test.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AdaptiveConfig {
    /// Samples required before a decision may be taken (≥ 1).
    pub min_probes: u32,
    /// Hard per-address budget of measurement samples; exhausting it
    /// forces the decision from the accumulated evidence.
    pub max_probes: u32,
    /// Target per-address error rate ε (SPRT boundaries at
    /// `±ln((1−ε)/ε)`).
    pub error_rate: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            min_probes: 1,
            max_probes: 8,
            error_rate: 1e-4,
        }
    }
}

impl AdaptiveConfig {
    /// Budget-capped config with the default confidence target.
    #[must_use]
    pub fn with_max_probes(max_probes: u32) -> Self {
        Self {
            max_probes: max_probes.max(1),
            ..Self::default()
        }
    }
}

/// How a sweep spends its probe budget.
///
/// The three policies tell the noise-robustness story of the adaptive
/// engine: [`Sampling::Fixed`] is the paper's quiet-host-tuned schedule
/// (cheap, degrades in noise), [`Sampling::FixedBudget`] is the fixed
/// schedule sized to survive the noisy profiles (robust, pays the full
/// width everywhere), and [`Sampling::Adaptive`] matches the robust
/// budget's accuracy while only spending it where the evidence demands.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Sampling {
    /// Fixed per-address repetition (the paper's §IV methodology).
    #[default]
    Fixed,
    /// Fixed min-of-N repetition at a noise-robust width — what you
    /// must pay *everywhere* to keep accuracy without early stopping.
    FixedBudget(u8),
    /// SPRT-based early stopping with the given budgets.
    Adaptive(AdaptiveConfig),
}

impl Sampling {
    /// Adaptive sampling with default budgets.
    #[must_use]
    pub fn adaptive() -> Self {
        Sampling::Adaptive(AdaptiveConfig::default())
    }

    /// The noise-robust fixed comparator with the same worst-case width
    /// as the default adaptive budget.
    #[must_use]
    pub fn fixed_budget() -> Self {
        Sampling::FixedBudget(AdaptiveConfig::default().max_probes.min(255) as u8)
    }

    /// `true` for the adaptive variant.
    #[must_use]
    pub const fn is_adaptive(&self) -> bool {
        matches!(self, Sampling::Adaptive(_))
    }

    /// Short label for reports.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Sampling::Fixed => "fixed",
            Sampling::FixedBudget(_) => "fixed-budget",
            Sampling::Adaptive(_) => "adaptive",
        }
    }

    /// The fixed probe strategy this policy imposes on mapped/unmapped
    /// sweeps, when it does ([`Sampling::FixedBudget`] only).
    #[must_use]
    pub fn strategy_override(&self) -> Option<ProbeStrategy> {
        match *self {
            Sampling::FixedBudget(n) => Some(ProbeStrategy::MinOf(n.max(1))),
            _ => None,
        }
    }

    /// The sampler this policy induces for a calibrated threshold in an
    /// environment with Gaussian noise `sigma`; `None` for the fixed
    /// policy.
    #[must_use]
    pub fn sampler(&self, threshold: &Threshold, sigma: f64) -> Option<AdaptiveSampler> {
        match *self {
            Sampling::Fixed | Sampling::FixedBudget(_) => None,
            Sampling::Adaptive(config) => {
                Some(AdaptiveSampler::from_threshold(threshold, sigma).with_config(config))
            }
        }
    }

    /// The sampler this policy induces for a full [`CalibrationFit`]:
    /// hypotheses from the fitted threshold, likelihood σ from the
    /// fit's own dispersion estimate — the no-oracle path, where the
    /// attacker models the noise it *measured* during calibration
    /// instead of being told [`avx_uarch::NoiseProfile::effective_sigma`].
    /// `None` for the fixed policies.
    #[must_use]
    pub fn sampler_from_fit(&self, fit: &CalibrationFit) -> Option<AdaptiveSampler> {
        match *self {
            Sampling::Fixed | Sampling::FixedBudget(_) => None,
            Sampling::Adaptive(config) => Some(AdaptiveSampler::from_fit(fit).with_config(config)),
        }
    }

    /// The one place the estimator-dependent σ policy lives: under
    /// [`crate::CalibratorKind::Legacy`] the SPRT keeps the historical
    /// oracle σ (`oracle_sigma`, typically
    /// [`avx_uarch::NoiseProfile::effective_sigma`] — preserving
    /// bit-exact golden rows); any robust estimator switches to the
    /// fit's own measured dispersion ([`Sampling::sampler_from_fit`]),
    /// so threshold *and* noise model both come from the attacker's
    /// measurements. Campaign, cloud and user-space paths must all
    /// route through here rather than re-implementing the match.
    #[must_use]
    pub fn sampler_for_calibration(
        &self,
        calibrator: crate::CalibratorKind,
        fit: &CalibrationFit,
        oracle_sigma: f64,
    ) -> Option<AdaptiveSampler> {
        match calibrator {
            crate::CalibratorKind::Legacy => self.sampler(&fit.threshold, oracle_sigma),
            _ => self.sampler_from_fit(fit),
        }
    }

    /// The early-stopping min-filter this policy induces for the
    /// walk-level (P3) scans; `None` for the fixed policies.
    #[must_use]
    pub fn min_filter(&self) -> Option<AdaptiveMinFilter> {
        match *self {
            Sampling::Fixed | Sampling::FixedBudget(_) => None,
            Sampling::Adaptive(config) => Some(AdaptiveMinFilter {
                max_probes: config.max_probes.min(u32::from(u8::MAX)) as u8,
                ..AdaptiveMinFilter::default()
            }),
        }
    }
}

/// Result of one adaptive sweep over a candidate set.
#[derive(Clone, Debug)]
pub struct AdaptiveBatch {
    /// Per-address mapped/unmapped decision, input order.
    pub mapped: Vec<bool>,
    /// Representative latency per address (minimum measurement sample —
    /// the spike-free floor, comparable to the fixed path's series).
    pub samples: Vec<u64>,
    /// Raw probes issued per address, warm-up included.
    pub probes: Vec<u32>,
    /// `true` where the SPRT crossed a boundary; `false` where the
    /// budget ran out and the decision was forced from the evidence
    /// sign.
    pub settled: Vec<bool>,
}

impl AdaptiveBatch {
    /// An empty batch with room for `n` addresses.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            mapped: Vec::with_capacity(n),
            samples: Vec::with_capacity(n),
            probes: Vec::with_capacity(n),
            settled: Vec::with_capacity(n),
        }
    }

    /// Total raw probes the sweep issued.
    #[must_use]
    pub fn total_probes(&self) -> u64 {
        self.probes.iter().map(|&n| u64::from(n)).sum()
    }

    /// Mean probes per address (0 for an empty sweep).
    #[must_use]
    pub fn probes_per_address(&self) -> f64 {
        if self.probes.is_empty() {
            0.0
        } else {
            self.total_probes() as f64 / self.probes.len() as f64
        }
    }
}

/// The SPRT-driven mapped/unmapped sweep engine.
///
/// Built from a calibrated [`Threshold`]: the mapped hypothesis mean is
/// the calibrated reference level and the unmapped hypothesis sits one
/// full acceptance gap above it, so the SPRT midpoint coincides with
/// [`Threshold::boundary`] and a forced decision equals the fixed
/// threshold decision.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveSampler {
    /// Mean of the mapped (fast) hypothesis, cycles.
    pub mapped_mean: f64,
    /// Mean of the unmapped (slow) hypothesis, cycles.
    pub unmapped_mean: f64,
    /// Gaussian σ of the environment the likelihoods assume.
    pub sigma: f64,
    /// Budgets and confidence target.
    pub config: AdaptiveConfig,
}

impl AdaptiveSampler {
    /// Builds the sampler around a calibrated threshold.
    ///
    /// `sigma` is the Gaussian noise level of the environment (e.g.
    /// [`avx_uarch::NoiseProfile::effective_sigma`]); larger σ makes
    /// the test demand more evidence per address automatically.
    ///
    /// The hypotheses are centered on [`Threshold::boundary`] — also
    /// when a degenerate margin forces the half-gap onto its floor —
    /// so a forced decision always equals the fixed threshold decision.
    #[must_use]
    pub fn from_threshold(threshold: &Threshold, sigma: f64) -> Self {
        let half_gap = threshold.margin.max(1.0);
        Self {
            mapped_mean: threshold.boundary() - half_gap,
            unmapped_mean: threshold.boundary() + half_gap,
            sigma,
            config: AdaptiveConfig::default(),
        }
    }

    /// Builds the sampler from a [`CalibrationFit`]: hypotheses around
    /// the fitted threshold, likelihood σ taken from the fit's own
    /// (MAD- or EM-based) dispersion estimate, floored at 1 cycle so a
    /// degenerate calibration series cannot make the SPRT overconfident.
    #[must_use]
    pub fn from_fit(fit: &CalibrationFit) -> Self {
        Self::from_threshold(&fit.threshold, fit.sigma.max(1.0))
    }

    /// Replaces the budgets/confidence target.
    #[must_use]
    pub fn with_config(mut self, config: AdaptiveConfig) -> Self {
        self.config = config;
        self
    }

    /// A fresh per-address accumulator.
    #[must_use]
    pub fn accumulator(&self) -> SequentialLlr {
        SequentialLlr::new(
            self.mapped_mean,
            self.unmapped_mean,
            self.sigma,
            self.config.error_rate,
        )
    }

    /// Sweeps `addrs`, classifying each candidate with as few probes as
    /// its evidence allows.
    ///
    /// Works in [`ProbeStrategy::BATCH_TILE`]-sized tiles exactly like
    /// the fixed batched path: one warm-up pass per tile (translations
    /// resident for the measurement rounds), then measurement rounds
    /// over the tile's still-undecided addresses until every address
    /// has crossed an SPRT boundary or spent its budget.
    pub fn classify_batch<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        kind: OpKind,
        addrs: &[VirtAddr],
    ) -> AdaptiveBatch {
        let mut out = AdaptiveBatch::with_capacity(addrs.len());
        let mut scratch = AdaptiveScratch::default();
        for tile in addrs.chunks(ProbeStrategy::BATCH_TILE) {
            self.classify_tile(p, kind, tile, &mut out, &mut scratch);
        }
        out
    }

    /// Streaming variant of [`AdaptiveSampler::classify_batch`] over an
    /// [`AddrRange`]: candidate addresses are generated one tile at a
    /// time into a reused buffer instead of materializing the full
    /// range. Identical tile decomposition and probe order.
    pub fn classify_range<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        kind: OpKind,
        range: &AddrRange,
    ) -> AdaptiveBatch {
        let mut out = AdaptiveBatch::with_capacity(range.len());
        let mut scratch = AdaptiveScratch::default();
        let mut tile = Vec::with_capacity(ProbeStrategy::BATCH_TILE);
        for chunk in range.chunks(ProbeStrategy::BATCH_TILE as u64) {
            chunk.fill(&mut tile);
            self.classify_tile(p, kind, &tile, &mut out, &mut scratch);
        }
        out
    }

    /// One warm-up + SPRT measurement rounds over a single tile,
    /// appending the per-address calls to `out`. All intermediate state
    /// lives in `scratch`, so the sweep loop allocates nothing.
    fn classify_tile<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        kind: OpKind,
        tile: &[VirtAddr],
        out: &mut AdaptiveBatch,
        s: &mut AdaptiveScratch,
    ) {
        let max_probes = self.config.max_probes.max(1);

        // Warm-up pass: same TLB-priming role as the fixed path's
        // first probe; its reading is discarded.
        s.warm.clear();
        p.probe_batch_into(kind, tile, &mut s.warm);

        s.acc.clear();
        s.acc.extend(tile.iter().map(|_| self.accumulator()));
        s.floor.clear();
        s.floor.resize(tile.len(), u64::MAX);
        s.probes.clear();
        s.probes.resize(tile.len(), 1u32);
        s.decision.clear();
        s.decision.resize(tile.len(), SeqDecision::Undecided);
        s.live.clear();
        s.live.extend(0..tile.len());

        for round in 1..=max_probes {
            s.subset.clear();
            s.subset.extend(s.live.iter().map(|&i| tile[i]));
            s.samples.clear();
            p.probe_batch_into(kind, &s.subset, &mut s.samples);
            for (&i, &sample) in s.live.iter().zip(&s.samples) {
                s.probes[i] += 1;
                s.floor[i] = s.floor[i].min(sample);
                let d = s.acc[i].push(sample);
                if round >= self.config.min_probes {
                    s.decision[i] = d;
                }
            }
            let decision = &s.decision;
            s.live.retain(|&i| decision[i] == SeqDecision::Undecided);
            if s.live.is_empty() {
                break;
            }
        }

        for i in 0..tile.len() {
            let settled = s.decision[i] != SeqDecision::Undecided;
            let call = if settled {
                s.decision[i]
            } else {
                s.acc[i].forced()
            };
            out.mapped.push(call == SeqDecision::Mapped);
            out.samples.push(s.floor[i]);
            out.probes.push(s.probes[i]);
            out.settled.push(settled);
        }
    }
}

/// Reusable per-tile state of [`AdaptiveSampler::classify_tile`].
#[derive(Clone, Debug, Default)]
struct AdaptiveScratch {
    warm: Vec<u64>,
    acc: Vec<SequentialLlr>,
    floor: Vec<u64>,
    probes: Vec<u32>,
    decision: Vec<SeqDecision>,
    live: Vec<usize>,
    subset: Vec<VirtAddr>,
    samples: Vec<u64>,
}

/// Result of one adaptive min-filter sweep.
#[derive(Clone, Debug)]
pub struct MinFilterBatch {
    /// Per-address spike-filtered minimum, input order.
    pub mins: Vec<u64>,
    /// Raw probes issued per address, warm-up included.
    pub probes: Vec<u32>,
}

impl MinFilterBatch {
    /// Total raw probes the sweep issued.
    #[must_use]
    pub fn total_probes(&self) -> u64 {
        self.probes.iter().map(|&n| u64::from(n)).sum()
    }
}

/// Early-stopping min-filter for the walk-level scans (P3, the AMD
/// path).
///
/// The fixed pipeline takes the minimum of a full `repeats`-wide window
/// because interrupt spikes only ever *add* latency. But the minimum
/// converges long before the window is spent on a quiet machine: this
/// filter keeps probing an address only until its running minimum has
/// failed to improve (by more than `epsilon` cycles) for
/// `stable_rounds` consecutive samples.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AdaptiveMinFilter {
    /// Hard per-address budget of measurement samples.
    pub max_probes: u8,
    /// Consecutive non-improving samples that settle the minimum.
    pub stable_rounds: u8,
    /// Improvement below this many cycles counts as "not improving"
    /// (absorbs sub-cycle Gaussian wiggle around the floor).
    pub epsilon: u64,
}

impl Default for AdaptiveMinFilter {
    fn default() -> Self {
        Self {
            max_probes: 8,
            stable_rounds: 2,
            epsilon: 1,
        }
    }
}

impl AdaptiveMinFilter {
    /// Sweeps `addrs` with the early-stopping min-filter, tile by tile.
    pub fn measure_batch<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        kind: OpKind,
        addrs: &[VirtAddr],
    ) -> MinFilterBatch {
        let mut out = MinFilterBatch {
            mins: Vec::with_capacity(addrs.len()),
            probes: Vec::with_capacity(addrs.len()),
        };
        let mut scratch = MinFilterScratch::default();
        for tile in addrs.chunks(ProbeStrategy::BATCH_TILE) {
            self.measure_tile(p, kind, tile, &mut out, &mut scratch);
        }
        out
    }

    /// Streaming variant of [`AdaptiveMinFilter::measure_batch`] over
    /// an [`AddrRange`]: one reused tile buffer, identical probe order.
    pub fn measure_range<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        kind: OpKind,
        range: &AddrRange,
    ) -> MinFilterBatch {
        let mut out = MinFilterBatch {
            mins: Vec::with_capacity(range.len()),
            probes: Vec::with_capacity(range.len()),
        };
        let mut scratch = MinFilterScratch::default();
        let mut tile = Vec::with_capacity(ProbeStrategy::BATCH_TILE);
        for chunk in range.chunks(ProbeStrategy::BATCH_TILE as u64) {
            chunk.fill(&mut tile);
            self.measure_tile(p, kind, &tile, &mut out, &mut scratch);
        }
        out
    }

    fn measure_tile<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        kind: OpKind,
        tile: &[VirtAddr],
        out: &mut MinFilterBatch,
        s: &mut MinFilterScratch,
    ) {
        let max_probes = self.max_probes.max(1);
        let stable_target = self.stable_rounds.max(1);

        s.warm.clear();
        p.probe_batch_into(kind, tile, &mut s.warm); // warm-up, discarded
        s.min.clear();
        s.min.resize(tile.len(), u64::MAX);
        s.stable.clear();
        s.stable.resize(tile.len(), 0u8);
        s.probes.clear();
        s.probes.resize(tile.len(), 1u32);
        s.live.clear();
        s.live.extend(0..tile.len());

        for _round in 1..=max_probes {
            s.subset.clear();
            s.subset.extend(s.live.iter().map(|&i| tile[i]));
            s.samples.clear();
            p.probe_batch_into(kind, &s.subset, &mut s.samples);
            for (&i, &sample) in s.live.iter().zip(&s.samples) {
                s.probes[i] += 1;
                if sample.saturating_add(self.epsilon) >= s.min[i] {
                    s.stable[i] = s.stable[i].saturating_add(1);
                } else {
                    s.stable[i] = 0;
                }
                s.min[i] = s.min[i].min(sample);
            }
            let stable = &s.stable;
            s.live.retain(|&i| stable[i] < stable_target);
            if s.live.is_empty() {
                break;
            }
        }

        for i in 0..tile.len() {
            out.mins.push(s.min[i]);
            out.probes.push(s.probes[i]);
        }
    }
}

/// Reusable per-tile state of [`AdaptiveMinFilter::measure_tile`].
#[derive(Clone, Debug, Default)]
struct MinFilterScratch {
    warm: Vec<u64>,
    min: Vec<u64>,
    stable: Vec<u8>,
    probes: Vec<u32>,
    live: Vec<usize>,
    subset: Vec<VirtAddr>,
    samples: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_mmu::{AddressSpace, PageSize, PteFlags};
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, Machine, NoiseModel};

    fn quiet_linux(seed: u64) -> (SimProber, avx_os::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        m.set_noise(NoiseModel::none());
        (SimProber::new(m), truth)
    }

    fn calibrated(p: &mut SimProber, truth: &avx_os::LinuxTruth) -> Threshold {
        Threshold::calibrate(p, truth.user.calibration, 8)
    }

    fn kernel_range() -> Vec<VirtAddr> {
        crate::attacks::kaslr::KernelBaseFinder::candidate_range().to_vec()
    }

    #[test]
    fn sampler_midpoint_matches_threshold_boundary() {
        let th = Threshold::new(93.0, 7.0);
        let s = AdaptiveSampler::from_threshold(&th, 1.0);
        assert_eq!(s.accumulator().midpoint(), th.boundary());
        // Degenerate margins hit the half-gap floor but must stay
        // centered on the boundary, or forced decisions would diverge
        // from the fixed rule.
        for margin in [0.0, 0.4, 0.9] {
            let th = Threshold::new(93.0, margin);
            let s = AdaptiveSampler::from_threshold(&th, 1.0);
            assert_eq!(s.accumulator().midpoint(), th.boundary(), "margin {margin}");
            assert!(s.unmapped_mean > s.mapped_mean);
        }
    }

    #[test]
    fn quiet_sweep_matches_fixed_classification_with_fewer_probes() {
        let (mut p, truth) = quiet_linux(3);
        let th = calibrated(&mut p, &truth);
        let addrs = kernel_range();

        // Fixed comparator: the noise-robust budget the adaptive engine
        // is allowed to spend (warm-up + 8 samples).
        let (mut p_fixed, _) = quiet_linux(3);
        let fixed_samples =
            ProbeStrategy::MinOf(8).measure_batch(&mut p_fixed, OpKind::Load, &addrs);
        let fixed_mapped: Vec<bool> = fixed_samples.iter().map(|&s| th.is_mapped(s)).collect();
        let fixed_probes =
            addrs.len() as u64 * u64::from(ProbeStrategy::MinOf(8).probes_per_measurement());

        let sampler = AdaptiveSampler::from_threshold(&th, 1.0);
        let batch = sampler.classify_batch(&mut p, OpKind::Load, &addrs);
        assert_eq!(batch.mapped, fixed_mapped, "same classification");
        assert!(
            batch.total_probes() * 2 <= fixed_probes,
            "≥2x fewer probes: adaptive {} vs fixed {fixed_probes}",
            batch.total_probes()
        );
        assert!(
            batch.settled.iter().all(|&s| s),
            "quiet: everything settles"
        );
    }

    #[test]
    fn budget_is_hard_capped_and_forced_decisions_flagged() {
        // A sampler whose hypotheses sit miles away from the actual
        // readings never crosses a boundary: every address must stop at
        // the budget and be flagged unsettled.
        let (mut p, _) = quiet_linux(5);
        let th = Threshold::new(1e6, 1.0);
        let sampler = AdaptiveSampler::from_threshold(&th, 1e5)
            .with_config(AdaptiveConfig::with_max_probes(3));
        let addrs: Vec<VirtAddr> = kernel_range().into_iter().take(48).collect();
        let batch = sampler.classify_batch(&mut p, OpKind::Load, &addrs);
        for (i, &n) in batch.probes.iter().enumerate() {
            assert_eq!(n, 1 + 3, "addr {i}: warm-up + full budget");
            assert!(!batch.settled[i]);
            // All readings are far below the hypothetical means → the
            // evidence sign says mapped.
            assert!(batch.mapped[i]);
        }
    }

    #[test]
    fn probe_accounting_matches_prober_counter() {
        let (mut p, truth) = quiet_linux(7);
        let th = calibrated(&mut p, &truth);
        let sampler = AdaptiveSampler::from_threshold(&th, 1.0);
        let addrs: Vec<VirtAddr> = kernel_range().into_iter().take(64).collect();
        let before = p.probes_issued();
        let batch = sampler.classify_batch(&mut p, OpKind::Load, &addrs);
        assert_eq!(p.probes_issued() - before, batch.total_probes());
    }

    #[test]
    fn adaptive_min_filter_finds_the_floor_under_spikes() {
        let mut space = AddressSpace::new();
        let kernel = VirtAddr::new_truncate(0xffff_ffff_a1e0_0000);
        space
            .map(kernel, PageSize::Size2M, PteFlags::kernel_rx())
            .unwrap();
        let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 41);
        m.set_noise(NoiseModel::new(0.0, 0.4, (500.0, 600.0)));
        let mut p = SimProber::new(m);
        let filter = AdaptiveMinFilter {
            max_probes: 12,
            ..AdaptiveMinFilter::default()
        };
        let batch = filter.measure_batch(&mut p, OpKind::Load, &[kernel]);
        assert_eq!(batch.mins, vec![93], "spikes filtered to the floor");
    }

    #[test]
    fn adaptive_min_filter_stops_early_on_quiet_machines() {
        let (mut p, _) = quiet_linux(11);
        let addrs: Vec<VirtAddr> = kernel_range().into_iter().take(128).collect();
        let filter = AdaptiveMinFilter::default();
        let batch = filter.measure_batch(&mut p, OpKind::Load, &addrs);
        // Noiseless: round 1 sets the min, rounds 2–3 confirm it.
        for &n in &batch.probes {
            assert_eq!(n, 1 + 3, "warm-up + settle in stable_rounds+1");
        }
        let fixed =
            addrs.len() as u64 * u64::from(ProbeStrategy::MinOf(8).probes_per_measurement());
        assert!(batch.total_probes() * 2 <= fixed);
    }

    #[test]
    fn empty_sweeps_are_empty() {
        let (mut p, truth) = quiet_linux(13);
        let th = calibrated(&mut p, &truth);
        let sampler = AdaptiveSampler::from_threshold(&th, 1.0);
        let batch = sampler.classify_batch(&mut p, OpKind::Load, &[]);
        assert!(batch.mapped.is_empty());
        assert_eq!(batch.probes_per_address(), 0.0);
        let filter = AdaptiveMinFilter::default();
        assert!(filter
            .measure_batch(&mut p, OpKind::Load, &[])
            .mins
            .is_empty());
    }

    #[test]
    fn sampling_policy_builds_the_right_engines() {
        let th = Threshold::new(93.0, 7.0);
        assert!(Sampling::Fixed.sampler(&th, 1.0).is_none());
        assert!(Sampling::Fixed.min_filter().is_none());
        assert!(!Sampling::Fixed.is_adaptive());
        assert_eq!(Sampling::Fixed.name(), "fixed");

        let budget = Sampling::fixed_budget();
        assert_eq!(budget, Sampling::FixedBudget(8));
        assert_eq!(budget.name(), "fixed-budget");
        assert_eq!(budget.strategy_override(), Some(ProbeStrategy::MinOf(8)));
        assert!(budget.sampler(&th, 1.0).is_none());
        assert!(budget.min_filter().is_none());

        let adaptive = Sampling::adaptive();
        assert!(adaptive.is_adaptive());
        assert_eq!(adaptive.name(), "adaptive");
        assert!(adaptive.strategy_override().is_none());
        let sampler = adaptive.sampler(&th, 2.5).unwrap();
        assert_eq!(sampler.sigma, 2.5);
        assert_eq!(sampler.mapped_mean, 93.0);
        assert_eq!(sampler.unmapped_mean, 107.0);
        let filter = adaptive.min_filter().unwrap();
        assert_eq!(filter.max_probes, 8);
    }
}
