//! The probing abstraction.
//!
//! [`Prober`] is the single interface all attacks are written against:
//! "time one masked op at this address". Two implementations exist —
//! [`SimProber`] over the [`avx_uarch::Machine`] simulator (this crate)
//! and `HwProber` over real AVX2 hardware (the `avx-hw` crate). The
//! attacks cannot tell them apart, which is the point: the same code is
//! both the reproduction harness and the proof-of-concept.
//!
//! ```
//! use avx_channel::{ProbeStrategy, Prober, SimProber};
//! use avx_os::linux::{LinuxConfig, LinuxSystem};
//! use avx_uarch::{CpuProfile, NoiseModel, OpKind};
//!
//! let sys = LinuxSystem::build(LinuxConfig::seeded(1));
//! let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 1);
//! machine.set_noise(NoiseModel::none());
//! let mut p = SimProber::new(machine);
//!
//! // The paper's second-of-two schedule: warm-up probe, keep the second.
//! let cycles = ProbeStrategy::SecondOfTwo.measure(&mut p, OpKind::Load, truth.kernel_base);
//! assert_eq!(cycles, 93, "kernel-mapped masked load, TLB warm");
//! assert_eq!(p.probes_issued(), 2, "raw probes are accounted");
//! ```

use avx_mmu::VirtAddr;
use avx_os::ExecutionContext;
use avx_uarch::{Machine, NoiseModel, OpKind};

/// Cycle cost booked per software TLB-eviction round (the attacker's
/// eviction loop touches thousands of pages; this models its runtime
/// contribution, which dominates TLB-attack wall clock).
pub const EVICTION_COST_CYCLES: u64 = 2_000;

/// A timing-probe backend.
///
/// Implementations must guarantee that [`Prober::probe`] never raises an
/// architectural fault — that is property P1 of the paper and what makes
/// the attack safe to run in-process.
pub trait Prober {
    /// Times one all-zero-mask masked op at `addr`; returns cycles.
    fn probe(&mut self, kind: OpKind, addr: VirtAddr) -> u64;

    /// Times one masked op per address, returning cycles in input
    /// order.
    ///
    /// Semantically equivalent to calling [`Prober::probe`] once per
    /// address; backends amortize per-probe bookkeeping. Prefer
    /// [`Prober::probe_batch_into`] in loops — it reuses the caller's
    /// buffer instead of allocating a fresh `Vec` per call.
    fn probe_batch(&mut self, kind: OpKind, addrs: &[VirtAddr]) -> Vec<u64> {
        let mut out = Vec::with_capacity(addrs.len());
        self.probe_batch_into(kind, addrs, &mut out);
        out
    }

    /// Allocation-free batched probe: appends one measurement per
    /// address to `out` (existing contents are preserved).
    ///
    /// This is the hot entry point of every sweep-shaped attack
    /// (Fig. 4/5/7, the Windows region scan): the sweep engines thread
    /// one scratch buffer through all tiles, so the steady-state probe
    /// loop allocates nothing. The default implementation is the probe
    /// loop; [`SimProber`] forwards to
    /// [`avx_uarch::Machine::execute_batch_into`], and the hardware
    /// prober in `avx-hw` keeps the timed instructions in one tight
    /// loop.
    fn probe_batch_into(&mut self, kind: OpKind, addrs: &[VirtAddr], out: &mut Vec<u64>) {
        out.reserve(addrs.len());
        for &addr in addrs {
            let cycles = self.probe(kind, addr);
            out.push(cycles);
        }
    }

    /// Evicts cached translation state for `addr` (TLB attack setup).
    fn evict(&mut self, addr: VirtAddr);

    /// Books non-probe overhead cycles (loop logic, record-keeping).
    fn spend(&mut self, cycles: u64);

    /// Raw probes issued so far — the budget metric of the adaptive
    /// engine and the "probes per address" column of campaign reports.
    fn probes_issued(&self) -> u64;

    /// Cycles spent inside the timed masked operations ("Probing" in
    /// Table I).
    fn probing_cycles(&self) -> u64;

    /// All cycles incl. overhead ("Total" in Table I).
    fn total_cycles(&self) -> u64;

    /// Clock frequency for cycle→seconds conversion.
    fn clock_ghz(&self) -> f64;

    /// Probing time in seconds.
    fn probing_seconds(&self) -> f64 {
        self.probing_cycles() as f64 / (self.clock_ghz() * 1e9)
    }

    /// Total time in seconds.
    fn total_seconds(&self) -> f64 {
        self.total_cycles() as f64 / (self.clock_ghz() * 1e9)
    }
}

/// How a single logical measurement is composed of raw probes.
///
/// The paper executes the masked op *twice* per candidate and keeps the
/// second measurement (§IV-B) — the first run warms the TLB so the
/// second cleanly separates mapped from unmapped. Spike-sensitive scans
/// (modules) use `MinOf`, which discards positive outliers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeStrategy {
    /// One probe, no warm-up.
    Single,
    /// Probe twice, keep the second (the paper's default).
    SecondOfTwo,
    /// Probe `n` times after one warm-up, keep the minimum.
    MinOf(u8),
}

impl ProbeStrategy {
    /// Addresses per batched-measurement tile.
    ///
    /// A tile's warm-up probes must still be cached when its measurement
    /// probes run. 16 sits comfortably inside the smallest translation
    /// structure involved (the 32-entry huge-page TLB of
    /// [`avx_mmu::TlbConfig`]'s default geometry) while long enough to
    /// amortize per-batch dispatch.
    pub const BATCH_TILE: usize = 16;

    /// Runs the strategy at `addr`.
    pub fn measure<P: Prober + ?Sized>(&self, p: &mut P, kind: OpKind, addr: VirtAddr) -> u64 {
        match *self {
            ProbeStrategy::Single => p.probe(kind, addr),
            ProbeStrategy::SecondOfTwo => {
                let _ = p.probe(kind, addr);
                p.probe(kind, addr)
            }
            ProbeStrategy::MinOf(n) => {
                let _ = p.probe(kind, addr);
                (0..n.max(1))
                    .map(|_| p.probe(kind, addr))
                    .min()
                    .expect("n >= 1")
            }
        }
    }

    /// Batched variant of [`ProbeStrategy::measure`]: one measurement
    /// per address, returned in input order.
    ///
    /// Addresses are processed in tiles of [`ProbeStrategy::BATCH_TILE`]
    /// so each tile's warm-up pass stays resident in the translation
    /// caches when its measurement pass runs — tile-local warm/measure
    /// interleaving is what keeps the batched sweep's steady-state
    /// readings identical to per-address measurement while letting the
    /// backend amortize per-probe overhead.
    pub fn measure_batch<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        kind: OpKind,
        addrs: &[VirtAddr],
    ) -> Vec<u64> {
        let mut out = Vec::with_capacity(addrs.len());
        let mut scratch = ProbeScratch::default();
        self.measure_batch_into(p, kind, addrs, &mut out, &mut scratch);
        out
    }

    /// Allocation-free variant of [`ProbeStrategy::measure_batch`]:
    /// appends one measurement per address to `out`, keeping every
    /// intermediate buffer (warm-up readings, min-filter rounds) in the
    /// caller-provided `scratch`. Identical tile decomposition and
    /// probe order to the allocating variant.
    pub fn measure_batch_into<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        kind: OpKind,
        addrs: &[VirtAddr],
        out: &mut Vec<u64>,
        scratch: &mut ProbeScratch,
    ) {
        out.reserve(addrs.len());
        for tile in addrs.chunks(Self::BATCH_TILE) {
            match *self {
                ProbeStrategy::Single => p.probe_batch_into(kind, tile, out),
                ProbeStrategy::SecondOfTwo => {
                    scratch.warm.clear();
                    p.probe_batch_into(kind, tile, &mut scratch.warm);
                    p.probe_batch_into(kind, tile, out);
                }
                ProbeStrategy::MinOf(n) => {
                    scratch.warm.clear();
                    p.probe_batch_into(kind, tile, &mut scratch.warm);
                    let start = out.len();
                    p.probe_batch_into(kind, tile, out);
                    for _ in 1..n.max(1) {
                        scratch.round.clear();
                        p.probe_batch_into(kind, tile, &mut scratch.round);
                        for (min, &cycles) in out[start..].iter_mut().zip(&scratch.round) {
                            *min = (*min).min(cycles);
                        }
                    }
                }
            }
        }
    }

    /// Raw probes issued per measurement.
    #[must_use]
    pub fn probes_per_measurement(&self) -> u32 {
        match *self {
            ProbeStrategy::Single => 1,
            ProbeStrategy::SecondOfTwo => 2,
            ProbeStrategy::MinOf(n) => 1 + u32::from(n.max(1)),
        }
    }
}

/// Reusable buffers for [`ProbeStrategy::measure_batch_into`]: the
/// discarded warm-up readings and the min-filter round samples. One
/// instance serves a whole sweep, so the steady-state measurement loop
/// performs no allocation.
#[derive(Clone, Debug, Default)]
pub struct ProbeScratch {
    /// Warm-up pass readings (discarded).
    pub warm: Vec<u64>,
    /// Per-round samples of the min filter.
    pub round: Vec<u64>,
}

/// Prober over the microarchitectural simulator.
#[derive(Debug)]
pub struct SimProber {
    machine: Machine,
    context: ExecutionContext,
    overhead: u64,
    probes: u64,
}

impl SimProber {
    /// Wraps a machine in the native (non-enclave) context.
    #[must_use]
    pub fn new(machine: Machine) -> Self {
        Self::with_context(machine, ExecutionContext::native())
    }

    /// Wraps a machine in an explicit execution context. Enclave
    /// contexts with degraded timers widen the noise accordingly.
    #[must_use]
    pub fn with_context(mut machine: Machine, context: ExecutionContext) -> Self {
        if context.timer_noise_factor != 1.0 {
            let t = machine.profile().timing;
            machine.set_noise(NoiseModel::new(
                t.noise_sigma * context.timer_noise_factor,
                t.spike_prob,
                t.spike_range,
            ));
        }
        Self {
            machine,
            context,
            overhead: 0,
            probes: 0,
        }
    }

    /// The execution context the attack runs in.
    #[must_use]
    pub fn context(&self) -> ExecutionContext {
        self.context
    }

    /// Read access to the underlying machine.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access — used by experiment drivers that interleave
    /// kernel-side activity (Fig. 6) or defense behaviour with probing.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Unwraps the machine.
    #[must_use]
    pub fn into_machine(self) -> Machine {
        self.machine
    }
}

impl Prober for SimProber {
    fn probe(&mut self, kind: OpKind, addr: VirtAddr) -> u64 {
        self.overhead += self.machine.profile().probe_overhead as u64;
        self.probes += 1;
        self.machine.probe(kind, addr)
    }

    fn probe_batch_into(&mut self, kind: OpKind, addrs: &[VirtAddr], out: &mut Vec<u64>) {
        self.overhead += self.machine.profile().probe_overhead as u64 * addrs.len() as u64;
        self.probes += addrs.len() as u64;
        self.machine.execute_batch_into(kind, addrs, out);
    }

    fn evict(&mut self, addr: VirtAddr) {
        self.machine.evict_translation(addr);
        self.overhead += EVICTION_COST_CYCLES;
    }

    fn spend(&mut self, cycles: u64) {
        self.overhead += cycles;
    }

    fn probes_issued(&self) -> u64 {
        self.probes
    }

    fn probing_cycles(&self) -> u64 {
        self.machine.elapsed_cycles()
    }

    fn total_cycles(&self) -> u64 {
        self.machine.elapsed_cycles() + self.overhead
    }

    fn clock_ghz(&self) -> f64 {
        self.machine.profile().freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avx_mmu::{AddressSpace, PageSize, PteFlags};
    use avx_os::sgx::ExecutionContext as Ctx;
    use avx_uarch::CpuProfile;

    fn machine() -> Machine {
        let mut space = AddressSpace::new();
        space
            .map(
                VirtAddr::new_truncate(0x5555_5555_4000),
                PageSize::Size4K,
                PteFlags::user_rw(),
            )
            .unwrap();
        space
            .map(
                VirtAddr::new_truncate(0xffff_ffff_a1e0_0000),
                PageSize::Size2M,
                PteFlags::kernel_rx(),
            )
            .unwrap();
        let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 1);
        m.set_noise(NoiseModel::none());
        m
    }

    const KERNEL: u64 = 0xffff_ffff_a1e0_0000;

    #[test]
    fn batch_tile_matches_the_machine_noise_block() {
        // The v2 observables regime precomputes noise in blocks of
        // `avx_uarch::NOISE_BLOCK`; probe batches are tiled in
        // `BATCH_TILE` chunks. Keeping them equal means one noise block
        // per warm/measure tile — change them together or not at all.
        assert_eq!(ProbeStrategy::BATCH_TILE, avx_uarch::NOISE_BLOCK);
    }

    #[test]
    fn probe_accounts_probing_and_overhead() {
        let mut p = SimProber::new(machine());
        let cycles = p.probe(OpKind::Load, VirtAddr::new_truncate(KERNEL));
        assert!(cycles > 0);
        assert_eq!(p.probing_cycles(), cycles);
        assert!(p.total_cycles() > p.probing_cycles());
    }

    #[test]
    fn second_of_two_returns_steady_state() {
        let mut p = SimProber::new(machine());
        let t = ProbeStrategy::SecondOfTwo.measure(
            &mut p,
            OpKind::Load,
            VirtAddr::new_truncate(KERNEL),
        );
        assert_eq!(t, 93, "steady kernel-mapped load");
    }

    #[test]
    fn min_of_discards_outliers() {
        // With spike noise, MinOf should sit at the deterministic floor.
        let mut space = AddressSpace::new();
        space
            .map(
                VirtAddr::new_truncate(KERNEL),
                PageSize::Size2M,
                PteFlags::kernel_rx(),
            )
            .unwrap();
        let mut m = Machine::new(CpuProfile::alder_lake_i5_12400f(), space, 99);
        m.set_noise(NoiseModel::new(0.0, 0.5, (500.0, 600.0)));
        let mut p = SimProber::new(m);
        let t =
            ProbeStrategy::MinOf(8).measure(&mut p, OpKind::Load, VirtAddr::new_truncate(KERNEL));
        assert_eq!(t, 93, "min filters the spikes");
    }

    #[test]
    fn probes_per_measurement_counts() {
        assert_eq!(ProbeStrategy::Single.probes_per_measurement(), 1);
        assert_eq!(ProbeStrategy::SecondOfTwo.probes_per_measurement(), 2);
        assert_eq!(ProbeStrategy::MinOf(4).probes_per_measurement(), 5);
    }

    #[test]
    fn probes_issued_counts_scalar_and_batched_probes() {
        let mut p = SimProber::new(machine());
        assert_eq!(p.probes_issued(), 0);
        let _ = p.probe(OpKind::Load, VirtAddr::new_truncate(KERNEL));
        assert_eq!(p.probes_issued(), 1);
        let addrs: Vec<VirtAddr> = (0..5)
            .map(|i| VirtAddr::new_truncate(KERNEL + i * 0x20_0000))
            .collect();
        let _ = p.probe_batch(OpKind::Store, &addrs);
        assert_eq!(p.probes_issued(), 6);
        let _ = ProbeStrategy::MinOf(3).measure(&mut p, OpKind::Load, addrs[0]);
        assert_eq!(p.probes_issued(), 6 + 4, "warm-up + 3 repeats");
    }

    #[test]
    fn evict_books_overhead_and_colds_translation() {
        let mut p = SimProber::new(machine());
        let warm = ProbeStrategy::SecondOfTwo.measure(
            &mut p,
            OpKind::Load,
            VirtAddr::new_truncate(KERNEL),
        );
        let before = p.total_cycles();
        p.evict(VirtAddr::new_truncate(KERNEL));
        assert!(p.total_cycles() >= before + EVICTION_COST_CYCLES);
        let cold = p.probe(OpKind::Load, VirtAddr::new_truncate(KERNEL));
        assert!(cold > warm + 100);
    }

    #[test]
    fn seconds_conversion_uses_profile_clock() {
        let mut p = SimProber::new(machine());
        p.spend(4_400_000_000);
        assert!((p.total_seconds() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sgx1_context_widens_noise() {
        let m = machine(); // noise disabled, but with_context scales profile sigma
        let p = SimProber::with_context(m, Ctx::sgx1());
        assert!(!p.context().has_precise_timer());
        // The context is recorded; noise scaling is applied to the
        // profile sigma (observable through repeated probes in
        // integration tests with noise enabled).
        assert_eq!(p.context().timer_noise_factor, 4.0);
    }

    #[test]
    fn probe_never_faults_on_wild_addresses() {
        let mut p = SimProber::new(machine());
        for addr in [0u64, 0x1000, 0xffff_8000_0000_0000, 0x7fff_ffff_f000] {
            let _ = p.probe(OpKind::Load, VirtAddr::new_truncate(addr));
            let _ = p.probe(OpKind::Store, VirtAddr::new_truncate(addr));
        }
        // Reaching here without panic = no architectural fault modelled.
    }

    #[test]
    fn probe_batch_matches_scalar_sequence_and_accounting() {
        let addrs: Vec<VirtAddr> = (0..40)
            .map(|i| VirtAddr::new_truncate(0xffff_ffff_a000_0000 + i * 0x20_0000))
            .collect();
        for kind in [OpKind::Load, OpKind::Store] {
            let mut scalar = SimProber::new(machine());
            let mut batched = SimProber::new(machine());
            let batch = batched.probe_batch(kind, &addrs);
            let looped: Vec<u64> = addrs.iter().map(|&a| scalar.probe(kind, a)).collect();
            assert_eq!(batch, looped);
            assert_eq!(scalar.probing_cycles(), batched.probing_cycles());
            assert_eq!(scalar.total_cycles(), batched.total_cycles());
        }
    }

    #[test]
    fn measure_batch_matches_scalar_measurement_per_strategy() {
        let addrs: Vec<VirtAddr> = (0..40)
            .map(|i| VirtAddr::new_truncate(0xffff_ffff_a000_0000 + i * 0x20_0000))
            .collect();
        for strategy in [
            ProbeStrategy::Single,
            ProbeStrategy::SecondOfTwo,
            ProbeStrategy::MinOf(3),
        ] {
            for kind in [OpKind::Load, OpKind::Store] {
                let mut scalar = SimProber::new(machine());
                let mut batched = SimProber::new(machine());
                let batch = strategy.measure_batch(&mut batched, kind, &addrs);
                let looped: Vec<u64> = addrs
                    .iter()
                    .map(|&a| strategy.measure(&mut scalar, kind, a))
                    .collect();
                assert_eq!(batch, looped, "{strategy:?} {kind}");
            }
        }
    }
}
